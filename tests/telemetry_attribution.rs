//! PR9 acceptance: critical-path attribution closes against the
//! driver's own latency accounting in every durability domain.
//!
//! The sharded open-loop driver measures sojourn (arrival → completion)
//! with an exact-sum histogram; the obs layer independently rebuilds
//! each request from flight-recorder events (queue wait + execution +
//! commit + flush + fence wait + WPQ stall + backoff + rollback). The
//! two accountings must agree within 1% — in practice exactly, since
//! every nanosecond between arrival and completion is charged to
//! exactly one component.

use std::sync::Arc;

use optane_ptm::obs::{self, spans, Sampler};
use optane_ptm::pmem_sim::DurabilityDomain;
use optane_ptm::trace::TraceSink;
use optane_ptm::workloads::{run_sharded_kv, ShardedRunConfig, StreamConfig};

fn run_domain(domain: DurabilityDomain) -> (spans::Decomposition, Vec<spans::OpSpan>, u64, u64) {
    let mut rc = ShardedRunConfig {
        shards: 2,
        threads_per_shard: 1,
        domain,
        ..ShardedRunConfig::default()
    };
    rc.stream = StreamConfig {
        total_ops: 600,
        mean_gap_ns: 150,
        seed: 7,
        ..StreamConfig::default()
    };
    rc.trace = (0..rc.shards)
        .map(|i| TraceSink::new_for_shard(1 << 17, i as u32))
        .collect();
    rc.obs = (0..rc.shards)
        .map(|i| Arc::new(Sampler::new_for_shard(obs::DEFAULT_PERIOD_NS, 1 << 10, i)))
        .collect();
    let r = run_sharded_kv(&rc);

    let mut threads = Vec::new();
    for sink in &rc.trace {
        for t in sink.threads() {
            assert_eq!(t.dropped, 0, "trace ring lost events; size the ring up");
            threads.push(t);
        }
    }
    let (op_spans, dropped) = spans::reconstruct(&threads);
    let d = spans::decompose(&op_spans, dropped, &[50.0, 99.0]);
    (d, op_spans, r.sojourn.count(), r.sojourn.sum())
}

#[test]
fn attribution_closes_within_one_percent_in_all_domains() {
    for domain in [
        DurabilityDomain::Adr,
        DurabilityDomain::Eadr,
        DurabilityDomain::Pdram,
        DurabilityDomain::PdramLite,
    ] {
        let (d, op_spans, req_count, sojourn_sum) = run_domain(domain);
        assert_eq!(
            op_spans.len() as u64,
            req_count,
            "{domain:?}: one span per completed request"
        );
        let span_sum: u64 = op_spans.iter().map(|s| s.total_ns()).sum();
        let err = (span_sum as f64 - sojourn_sum as f64).abs() / sojourn_sum.max(1) as f64;
        assert!(
            err <= 0.01,
            "{domain:?}: span components {span_sum} ns vs measured {sojourn_sum} ns \
             ({:.3}% > 1%)",
            err * 100.0
        );

        // The p99 row is internally exact too: its cohort's component
        // means must sum to its mean total.
        let p99 = d.tails.iter().find(|t| t.pct == 99.0).unwrap();
        assert!(p99.cohort.count >= 1);
        let comp_sum: f64 = p99.cohort.mean_comp_ns.iter().sum();
        assert!(
            (comp_sum - p99.cohort.mean_total_ns).abs() <= 1e-6 * p99.cohort.mean_total_ns,
            "{domain:?}: p99 cohort components do not close"
        );

        // Domain physics show up in the attribution: ADR pays flush +
        // fence time on the critical path, eADR-class domains pay none.
        let flush_fence = d.mean.mean_comp_ns[spans::Comp::Flush as usize]
            + d.mean.mean_comp_ns[spans::Comp::FenceWait as usize]
            + d.mean.mean_comp_ns[spans::Comp::WpqStall as usize];
        match domain {
            DurabilityDomain::Adr => {
                assert!(flush_fence > 0.0, "ADR must show flush/fence on the path")
            }
            DurabilityDomain::Eadr | DurabilityDomain::Pdram => assert_eq!(
                flush_fence, 0.0,
                "{domain:?} must show no flush/fence/WPQ time"
            ),
            // PdramLite still flushes log lines into the persistent
            // DRAM window; either shape is legal, so no assertion.
            _ => {}
        }
    }
}
