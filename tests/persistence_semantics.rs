//! The durability-domain semantics matrix, exercised end to end at the
//! session level: for each domain, which stores survive a crash, and at
//! what cost. This is the contract every layer above (allocator, PTM,
//! containers) is built on.

use optane_ptm::pmem_sim::{
    DurabilityDomain, LatencyModel, Machine, MachineConfig, MediaKind, PersistenceClass,
};
use std::sync::Arc;

fn machine(domain: DurabilityDomain) -> Arc<Machine> {
    Machine::new(MachineConfig {
        domain,
        track_persistence: true,
        window_ns: u64::MAX,
        ..MachineConfig::default()
    })
}

/// One scripted history: three stores with different persistence effort.
/// Returns the surviving values of the three words across many seeds as
/// (always, sometimes, never) classification per word.
fn survival_profile(domain: DurabilityDomain) -> [&'static str; 3] {
    let m = machine(domain);
    let p = m.alloc_pool("o", 64, MediaKind::Optane);
    let mut s = m.session(0);
    // word 0: store + clwb + sfence (full ADR discipline)
    s.store(p.addr(0), 1);
    s.clwb(p.addr(0));
    s.sfence();
    // word 8: store + clwb, NO fence
    s.store(p.addr(8), 2);
    s.clwb(p.addr(8));
    // word 16: bare store
    s.store(p.addr(16), 3);

    let mut kept = [0u32; 3];
    let seeds: u32 = 48;
    for seed in 0..seeds {
        let img = m.crash(seed.into());
        for (i, (w, v)) in [(0u64, 1u64), (8, 2), (16, 3)].iter().enumerate() {
            if img.pools[0].words[*w as usize] == *v {
                kept[i] += 1;
            }
        }
    }
    kept.map(|k| {
        if k == seeds {
            "always"
        } else if k == 0 {
            "never"
        } else {
            "sometimes"
        }
    })
}

#[test]
fn adr_guarantees_exactly_flush_plus_fence() {
    let [fenced, flushed, bare] = survival_profile(DurabilityDomain::Adr);
    assert_eq!(fenced, "always", "clwb+sfence is the ADR guarantee");
    assert_eq!(flushed, "sometimes", "clwb without fence is in flight");
    assert_eq!(bare, "sometimes", "a bare store may have been evicted");
}

#[test]
fn eadr_class_domains_guarantee_cache_visibility() {
    for domain in [
        DurabilityDomain::Eadr,
        DurabilityDomain::Pdram,
        DurabilityDomain::PdramLite,
    ] {
        let profile = survival_profile(domain);
        assert_eq!(
            profile,
            ["always", "always", "always"],
            "{domain:?}: every cache-visible store survives"
        );
    }
}

#[test]
fn no_power_reserve_guarantees_nothing() {
    let [fenced, flushed, bare] = survival_profile(DurabilityDomain::NoPowerReserve);
    assert_eq!(
        fenced, "sometimes",
        "even flush+fence may sit in a lost WPQ"
    );
    assert_eq!(flushed, "sometimes");
    assert_eq!(bare, "sometimes");
}

#[test]
fn dram_pools_never_survive_any_domain() {
    for domain in DurabilityDomain::ALL {
        let m = machine(domain);
        let p = m.alloc_pool("d", 64, MediaKind::Dram);
        let mut s = m.session(0);
        s.store(p.addr(0), 9);
        s.clwb(p.addr(0));
        s.sfence();
        let img = m.crash(1);
        assert_eq!(img.pools[0].words[0], 0, "{domain:?}");
    }
}

#[test]
fn persistence_costs_rank_as_the_paper_says() {
    // Same instruction sequence, per-domain cost ordering:
    // ADR > eADR ≈ PDRAM-normal-pool; PDRAM serves loads at DRAM speed.
    let cost = |domain: DurabilityDomain, class: PersistenceClass| {
        let m = machine(domain);
        let p = m.alloc_pool_with_class("o", 1 << 12, MediaKind::Optane, class);
        let mut s = m.session(0);
        // Hot lines (L3-resident), so persistence instructions — not
        // miss latency — dominate the difference, as in a warmed-up PTM
        // log region.
        for i in 0..64u64 {
            let a = p.addr((i % 4) * 8);
            s.store(a, i);
            s.clwb(a);
            s.sfence();
            let _ = s.load(a);
        }
        s.now()
    };
    let adr = cost(DurabilityDomain::Adr, PersistenceClass::Normal);
    let eadr = cost(DurabilityDomain::Eadr, PersistenceClass::Normal);
    let pdram = cost(DurabilityDomain::Pdram, PersistenceClass::Normal);
    assert!(
        adr > 2 * eadr,
        "flushes+fences dominate: adr={adr} eadr={eadr}"
    );
    assert!(pdram <= eadr, "pdram={pdram} must not exceed eadr={eadr}");
}

#[test]
fn pdram_lite_class_is_the_only_accelerated_pool_under_lite() {
    let m = machine(DurabilityDomain::PdramLite);
    let lite = m.alloc_pool_with_class(
        "lite",
        1 << 12,
        MediaKind::Optane,
        PersistenceClass::PdramLite,
    );
    let normal = m.alloc_pool("normal", 1 << 12, MediaKind::Optane);
    let mut s = m.session(0);
    // Cold loads, distinct lines: lite pays DRAM, normal pays Optane.
    let t0 = s.now();
    for i in 0..32u64 {
        s.load(lite.addr(i * 8));
    }
    let lite_cost = s.now() - t0;
    let t1 = s.now();
    for i in 0..32u64 {
        s.load(normal.addr(i * 8));
    }
    let normal_cost = s.now() - t1;
    // Lite cold misses also fill the DRAM cache (Optane fetch), so probe
    // again warm:
    let t2 = s.now();
    m.clear_l3();
    for i in 0..32u64 {
        s.load(lite.addr(i * 8));
    }
    let lite_warm = s.now() - t2;
    assert!(
        lite_warm < normal_cost / 2,
        "warm lite {lite_warm} vs optane {normal_cost}"
    );
    let _ = lite_cost;
    // And a model-consistency check: the latency model itself says so.
    let model = LatencyModel::default();
    assert!(model.dram_load_ns * 2 < model.optane_load_ns);
}
