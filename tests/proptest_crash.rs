//! Property-based crash consistency: for random transaction programs and
//! random adversarial crash seeds under every durability domain, the
//! recovered state equals exactly the committed prefix of the program.

use optane_ptm::palloc::PHeap;
use optane_ptm::pmem_sim::{AdversaryPolicy, DurabilityDomain, Machine, MachineConfig};
use optane_ptm::pstructs::PHashMap;
use optane_ptm::ptm::{recover, Algo, Ptm, PtmConfig, TxThread};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Step {
    Insert(u64, u64),
    Remove(u64),
    /// A multi-key transaction (all-or-nothing by construction).
    Multi(Vec<(u64, u64)>),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64, 1u64..1_000_000).prop_map(|(k, v)| Step::Insert(k, v)),
            (0u64..64).prop_map(Step::Remove),
            prop::collection::vec((0u64..64, 1u64..1_000_000), 2..6).prop_map(Step::Multi),
        ],
        1..60,
    )
}

fn domains() -> impl Strategy<Value = DurabilityDomain> {
    prop_oneof![
        Just(DurabilityDomain::Adr),
        Just(DurabilityDomain::Eadr),
        Just(DurabilityDomain::Pdram),
        Just(DurabilityDomain::PdramLite),
    ]
}

fn policies() -> impl Strategy<Value = AdversaryPolicy> {
    prop_oneof![
        Just(AdversaryPolicy::PerWord),
        Just(AdversaryPolicy::AllOld),
        Just(AdversaryPolicy::AllNew),
        Just(AdversaryPolicy::PerLine),
        (1u64..100).prop_map(|p| AdversaryPolicy::Biased(p as f64 / 100.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recovered_state_is_exactly_the_committed_state(
        program in steps(),
        domain in domains(),
        policy in policies(),
        algo_idx in 0usize..Algo::ALL.len(),
        seed in any::<u64>(),
    ) {
        let algo = Algo::ALL[algo_idx];
        let machine = Machine::new(MachineConfig {
            domain,
            track_persistence: true,
            ..MachineConfig::default()
        });
        let heap = PHeap::format(&machine, "h", 1 << 17, 4);
        let cfg = PtmConfig { algo, ..PtmConfig::default() };
        let ptm = Ptm::new(cfg);
        let mut th = TxThread::new(ptm, heap.clone(), machine.session(0));
        let map = th.run(|tx| PHashMap::create(tx, 64));
        heap.set_root(th.session_mut(), 0, map.header());
        let mut model: HashMap<u64, u64> = HashMap::new();
        for step in &program {
            match step {
                Step::Insert(k, v) => {
                    th.run(|tx| map.insert(tx, *k, *v).map(|_| ()));
                    model.insert(*k, *v);
                }
                Step::Remove(k) => {
                    th.run(|tx| map.remove(tx, *k).map(|_| ()));
                    model.remove(k);
                }
                Step::Multi(kvs) => {
                    th.run(|tx| {
                        for &(k, v) in kvs {
                            map.insert(tx, k, v)?;
                        }
                        Ok(())
                    });
                    for &(k, v) in kvs {
                        model.insert(k, v);
                    }
                }
            }
        }
        // Crash (under a sampled adversary policy), reboot, recover,
        // re-attach.
        let image = machine.crash_with(seed, policy);
        let machine2 = Machine::reboot(&image, MachineConfig {
            domain,
            track_persistence: true,
            ..MachineConfig::default()
        });
        recover(&machine2);
        let (heap2, _gc) = PHeap::attach(machine2.pool(heap.pool().id())).unwrap();
        let ptm2 = Ptm::new(PtmConfig { algo, ..PtmConfig::default() });
        let mut th2 = TxThread::new(ptm2, heap2.clone(), machine2.session(0));
        let map2 = PHashMap::from_header(heap2.root_raw(0));
        // Every committed key/value must be present with its final value;
        // every removed key absent. (All transactions committed before the
        // crash, so the recovered state must equal the model exactly.)
        for k in 0..64u64 {
            let got = th2.run(|tx| map2.get(tx, k));
            prop_assert_eq!(got, model.get(&k).copied(), "domain {:?} algo {:?} policy {} key {}", domain, algo, policy, k);
        }
        prop_assert_eq!(th2.run(|tx| map2.len(tx)), model.len() as u64);
    }
}
