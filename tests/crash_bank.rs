//! End-to-end crash atomicity: concurrent bank transfers, a power
//! failure frozen mid-flight, reboot, recovery — the total balance must
//! be exactly conserved under every (algorithm, durability domain) pair
//! and many adversarial persistence seeds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use optane_ptm::palloc::{layout, PHeap};
use optane_ptm::pmem_sim::{DurabilityDomain, Machine, MachineConfig, PAddr};
use optane_ptm::ptm::{recover, Algo, Ptm, PtmConfig, TxThread};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ACCOUNTS: u64 = 32;
const INITIAL: u64 = 500;
const THREADS: usize = 3;

fn run_crash_bank(algo: Algo, domain: DurabilityDomain, seed: u64) -> (u64, u64, u64) {
    let machine = Machine::new(MachineConfig {
        domain,
        track_persistence: true,
        ..MachineConfig::default()
    });
    let heap = PHeap::format(&machine, "bank", 1 << 15, 4);
    let cfg = PtmConfig {
        algo,
        ..PtmConfig::default()
    };
    let ptm = Ptm::new(cfg);
    machine.begin_run(1, u64::MAX);
    let table = {
        let mut th = TxThread::new(ptm.clone(), heap.clone(), machine.session(0));
        let h = Arc::clone(&heap);
        let table = h.alloc(th.session_mut(), ACCOUNTS as usize);
        th.run(|tx| {
            for i in 0..ACCOUNTS {
                tx.write_at(table, i, INITIAL)?;
            }
            Ok(())
        });
        heap.set_root(th.session_mut(), 0, table);
        table
    };
    let stop = Arc::new(AtomicBool::new(false));
    machine.begin_run(THREADS, u64::MAX);
    let image = std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let machine = Arc::clone(&machine);
            let ptm = Arc::clone(&ptm);
            let heap = Arc::clone(&heap);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut th = TxThread::new(ptm, heap, machine.session(tid));
                let mut rng = SmallRng::seed_from_u64(seed ^ tid as u64);
                while !stop.load(Ordering::Relaxed) {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = rng.gen_range(0..ACCOUNTS);
                    let amt = rng.gen_range(1..40);
                    th.run(|tx| {
                        let f = tx.read_at(table, from)?;
                        let t = tx.read_at(table, to)?;
                        if from != to && f >= amt {
                            tx.write_at(table, from, f - amt)?;
                            tx.write_at(table, to, t + amt)?;
                        }
                        Ok(())
                    });
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
        machine.freeze();
        let image = machine.crash(seed);
        stop.store(true, Ordering::Relaxed);
        machine.thaw();
        image
    });
    let machine2 = Machine::reboot(
        &image,
        MachineConfig {
            domain,
            track_persistence: true,
            ..MachineConfig::default()
        },
    );
    let report = recover(&machine2);
    let pool = machine2.pool(heap.pool().id());
    let table2 = PAddr(pool.raw_load(layout::OFF_ROOTS));
    assert_eq!(table2, table, "root pointer must survive");
    let total: u64 = (0..ACCOUNTS)
        .map(|i| pool.raw_load(table2.word() + i))
        .sum();
    (
        total,
        report.redo_replayed as u64,
        report.undo_rolled_back as u64,
    )
}

#[test]
fn money_conserved_redo_adr() {
    for seed in 0..4 {
        let (total, ..) = run_crash_bank(Algo::RedoLazy, DurabilityDomain::Adr, seed);
        assert_eq!(total, ACCOUNTS * INITIAL, "seed {seed}");
    }
}

#[test]
fn money_conserved_undo_adr() {
    for seed in 0..4 {
        let (total, ..) = run_crash_bank(Algo::UndoEager, DurabilityDomain::Adr, seed);
        assert_eq!(total, ACCOUNTS * INITIAL, "seed {seed}");
    }
}

#[test]
fn money_conserved_cow_adr() {
    for seed in 0..4 {
        let (total, ..) = run_crash_bank(Algo::CowShadow, DurabilityDomain::Adr, seed);
        assert_eq!(total, ACCOUNTS * INITIAL, "seed {seed}");
    }
}

#[test]
fn money_conserved_redo_eadr() {
    let (total, ..) = run_crash_bank(Algo::RedoLazy, DurabilityDomain::Eadr, 7);
    assert_eq!(total, ACCOUNTS * INITIAL);
}

#[test]
fn money_conserved_undo_eadr() {
    let (total, ..) = run_crash_bank(Algo::UndoEager, DurabilityDomain::Eadr, 7);
    assert_eq!(total, ACCOUNTS * INITIAL);
}

#[test]
fn money_conserved_cow_eadr() {
    let (total, ..) = run_crash_bank(Algo::CowShadow, DurabilityDomain::Eadr, 7);
    assert_eq!(total, ACCOUNTS * INITIAL);
}

#[test]
fn money_conserved_redo_pdram() {
    let (total, ..) = run_crash_bank(Algo::RedoLazy, DurabilityDomain::Pdram, 11);
    assert_eq!(total, ACCOUNTS * INITIAL);
}

#[test]
fn money_conserved_redo_pdram_lite() {
    let (total, ..) = run_crash_bank(Algo::RedoLazy, DurabilityDomain::PdramLite, 13);
    assert_eq!(total, ACCOUNTS * INITIAL);
}

#[test]
fn money_conserved_hybrid_htm_eadr() {
    // The hybrid HTM path has no log: its commit must be crash-atomic by
    // construction (the simulated power failure cannot split xend).
    for seed in 0..3 {
        let machine = Machine::new(MachineConfig {
            domain: DurabilityDomain::Eadr,
            track_persistence: true,
            ..MachineConfig::default()
        });
        let heap = PHeap::format(&machine, "bank", 1 << 15, 4);
        let ptm = Ptm::new(PtmConfig {
            htm_retries: 4,
            ..PtmConfig::redo()
        });
        machine.begin_run(1, u64::MAX);
        let table = {
            let mut th = TxThread::new(ptm.clone(), heap.clone(), machine.session(0));
            let h = Arc::clone(&heap);
            let table = h.alloc(th.session_mut(), ACCOUNTS as usize);
            th.run(|tx| {
                for i in 0..ACCOUNTS {
                    tx.write_at(table, i, INITIAL)?;
                }
                Ok(())
            });
            heap.set_root(th.session_mut(), 0, table);
            table
        };
        let stop = Arc::new(AtomicBool::new(false));
        machine.begin_run(THREADS, u64::MAX);
        let image = std::thread::scope(|scope| {
            for tid in 0..THREADS {
                let machine = Arc::clone(&machine);
                let ptm = Arc::clone(&ptm);
                let heap = Arc::clone(&heap);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut th = TxThread::new(ptm, heap, machine.session(tid));
                    let mut rng = SmallRng::seed_from_u64(seed ^ tid as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let from = rng.gen_range(0..ACCOUNTS);
                        let to = rng.gen_range(0..ACCOUNTS);
                        let amt = rng.gen_range(1..40);
                        th.run(|tx| {
                            let f = tx.read_at(table, from)?;
                            let t = tx.read_at(table, to)?;
                            if from != to && f >= amt {
                                tx.write_at(table, from, f - amt)?;
                                tx.write_at(table, to, t + amt)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
            machine.freeze();
            let image = machine.crash(seed);
            stop.store(true, Ordering::Relaxed);
            machine.thaw();
            image
        });
        assert!(
            ptm.stats_snapshot().htm_commits > 0,
            "hardware path must actually engage"
        );
        let machine2 = Machine::reboot(
            &image,
            MachineConfig {
                domain: DurabilityDomain::Eadr,
                track_persistence: true,
                ..MachineConfig::default()
            },
        );
        recover(&machine2);
        let pool = machine2.pool(heap.pool().id());
        let table2 = PAddr(pool.raw_load(layout::OFF_ROOTS));
        let total: u64 = (0..ACCOUNTS)
            .map(|i| pool.raw_load(table2.word() + i))
            .sum();
        assert_eq!(total, ACCOUNTS * INITIAL, "seed {seed}: torn HTM commit");
    }
}
