//! Differential property test for group commit: for random two-thread
//! transaction programs, running with `group_commit` on and off must
//! commit the *identical* final heap state — the fence-window
//! coalescing is a pure timing optimization with no logical effect —
//! while the grouped run actually elides fences (so the equivalence is
//! not vacuous).

use optane_ptm::palloc::PHeap;
use optane_ptm::pmem_sim::{DurabilityDomain, Machine, MachineConfig};
use optane_ptm::pstructs::PHashMap;
use optane_ptm::ptm::{Algo, Ptm, PtmConfig, TxThread};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Step {
    Insert(u64, u64),
    Remove(u64),
}

/// Per-thread key spaces are disjoint (thread 0 owns 0..32, thread 1
/// owns 32..64), so the sequentially interleaved execution is
/// conflict-free and the final state is a pure function of the program.
fn program(thread: u64) -> impl Strategy<Value = Vec<Step>> {
    let base = thread * 32;
    prop::collection::vec(
        prop_oneof![
            (base..base + 32, 1u64..1_000_000).prop_map(|(k, v)| Step::Insert(k, v)),
            (base..base + 32).prop_map(Step::Remove),
        ],
        1..30,
    )
}

/// Run both threads' programs alternately (one OS thread, two virtual
/// threads sharing one PTM — the group-commit window spans both) and
/// return the final map state plus the number of fences elided.
fn run_programs(
    programs: &[Vec<Step>; 2],
    algo: Algo,
    group_commit: bool,
) -> (Vec<Option<u64>>, u64) {
    let machine = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
    machine.begin_run(2, u64::MAX);
    let heap = PHeap::format(&machine, "h", 1 << 16, 4);
    let ptm = Ptm::new(PtmConfig {
        algo,
        group_commit,
        group_window_ns: 1 << 20,
        ..PtmConfig::default()
    });
    let mut ths: Vec<TxThread> = (0..2)
        .map(|t| TxThread::new(Arc::clone(&ptm), Arc::clone(&heap), machine.session(t)))
        .collect();
    let map = ths[0].run(|tx| PHashMap::create(tx, 64));
    heap.set_root(ths[0].session_mut(), 0, map.header());
    let rounds = programs[0].len().max(programs[1].len());
    for i in 0..rounds {
        for t in 0..2 {
            match programs[t].get(i) {
                Some(Step::Insert(k, v)) => {
                    ths[t].run(|tx| map.insert(tx, *k, *v).map(|_| ()));
                }
                Some(Step::Remove(k)) => {
                    ths[t].run(|tx| map.remove(tx, *k).map(|_| ()));
                }
                None => {}
            }
        }
    }
    let state = (0..64u64)
        .map(|k| ths[0].run(|tx| map.get(tx, k)))
        .collect();
    (state, ptm.stats.snapshot().sfences_elided)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn group_commit_on_and_off_commit_identical_state(
        p0 in program(0),
        p1 in program(1),
        algo_idx in 0usize..Algo::ALL.len(),
    ) {
        let algo = Algo::ALL[algo_idx];
        let programs = [p0, p1];
        let (plain, plain_elided) = run_programs(&programs, algo, false);
        let (grouped, grouped_elided) = run_programs(&programs, algo, true);
        prop_assert_eq!(plain_elided, 0, "group commit off must never join");
        prop_assert!(
            grouped_elided > 0,
            "a two-thread interleaving under a wide-open window must join at least once"
        );
        prop_assert_eq!(&plain, &grouped, "algo {:?}: states diverged", algo);
    }
}
