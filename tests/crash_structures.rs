//! Durability of committed data across crash + recovery + heap re-attach
//! for the persistent data structures, under every durability domain and
//! many adversarial seeds.

use optane_ptm::palloc::PHeap;
use optane_ptm::pmem_sim::{DurabilityDomain, Machine, MachineConfig};
use optane_ptm::pstructs::{BpTree, PHashMap, PList, PQueue};
use optane_ptm::ptm::{recover, Algo, Ptm, PtmConfig, TxThread};
use std::sync::Arc;

fn cfg_for(algo: Algo) -> PtmConfig {
    PtmConfig {
        algo,
        ..PtmConfig::default()
    }
}

fn machine(domain: DurabilityDomain) -> Arc<Machine> {
    Machine::new(MachineConfig {
        domain,
        track_persistence: true,
        ..MachineConfig::default()
    })
}

fn crash_recover(m: &Arc<Machine>, heap: &Arc<PHeap>, seed: u64) -> (Arc<Machine>, Arc<PHeap>) {
    let domain = m.domain();
    let image = m.crash(seed);
    let m2 = Machine::reboot(
        &image,
        MachineConfig {
            domain,
            track_persistence: true,
            ..MachineConfig::default()
        },
    );
    recover(&m2);
    let (heap2, _gc) = PHeap::attach(m2.pool(heap.pool().id())).expect("attach");
    (m2, heap2)
}

#[test]
fn btree_committed_keys_survive_every_domain() {
    for domain in [
        DurabilityDomain::Adr,
        DurabilityDomain::Eadr,
        DurabilityDomain::Pdram,
        DurabilityDomain::PdramLite,
    ] {
        for algo in Algo::ALL {
            let m = machine(domain);
            let heap = PHeap::format(&m, "h", 1 << 16, 4);
            let ptm = Ptm::new(cfg_for(algo));
            let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
            let tree = th.run(BpTree::create);
            heap.set_root(th.session_mut(), 0, tree.header());
            for k in 0..150u64 {
                th.run(|tx| tree.insert(tx, k * 7, k).map(|_| ()));
            }
            // Also remove some (removal must be durable too).
            for k in 0..30u64 {
                th.run(|tx| tree.remove(tx, k * 7 * 5).map(|_| ()));
            }
            for seed in [0u64, 3, 9] {
                let (m2, heap2) = crash_recover(&m, &heap, seed);
                let ptm2 = Ptm::new(cfg_for(algo));
                let mut th2 = TxThread::new(ptm2, heap2.clone(), m2.session(0));
                let tree2 = BpTree::from_header(heap2.root_raw(0));
                for k in 0..150u64 {
                    let removed = k % 5 == 0 && k / 5 < 30;
                    let expect = if removed { None } else { Some(k) };
                    let got = th2.run(|tx| tree2.get(tx, k * 7));
                    assert_eq!(got, expect, "{domain:?}/{algo:?} seed {seed} key {}", k * 7);
                }
            }
        }
    }
}

#[test]
fn hashmap_and_list_and_queue_survive() {
    let m = machine(DurabilityDomain::Adr);
    let heap = PHeap::format(&m, "h", 1 << 16, 4);
    let ptm = Ptm::new(cfg_for(Algo::RedoLazy));
    let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
    let map = th.run(|tx| PHashMap::create(tx, 64));
    let list = th.run(PList::create);
    let queue = th.run(PQueue::create);
    heap.set_root(th.session_mut(), 0, map.header());
    heap.set_root(th.session_mut(), 1, list.header());
    heap.set_root(th.session_mut(), 2, queue.header());
    for k in 0..60u64 {
        th.run(|tx| map.insert(tx, k, k + 1).map(|_| ()));
        th.run(|tx| list.insert(tx, k * 2).map(|_| ()));
        th.run(|tx| queue.enqueue(tx, k));
    }
    th.run(|tx| queue.dequeue(tx)); // head moves to 1
    for seed in 0..6u64 {
        let (m2, heap2) = crash_recover(&m, &heap, seed);
        let ptm2 = Ptm::new(cfg_for(Algo::RedoLazy));
        let mut th2 = TxThread::new(ptm2, heap2.clone(), m2.session(0));
        let map2 = PHashMap::from_header(heap2.root_raw(0));
        let list2 = PList::from_header(heap2.root_raw(1));
        let queue2 = PQueue::from_header(heap2.root_raw(2));
        assert_eq!(th2.run(|tx| map2.len(tx)), 60);
        assert_eq!(th2.run(|tx| map2.get(tx, 31)), Some(32));
        assert!(th2.run(|tx| list2.contains(tx, 58)));
        assert_eq!(th2.run(|tx| list2.len(tx)), 60);
        assert_eq!(th2.run(|tx| queue2.len(tx)), 59);
        assert_eq!(th2.run(|tx| queue2.dequeue(tx)), Some(1), "seed {seed}");
    }
}

#[test]
fn double_crash_is_idempotent() {
    // Crash, recover, crash again immediately, recover again: state stable.
    let m = machine(DurabilityDomain::Adr);
    let heap = PHeap::format(&m, "h", 1 << 14, 4);
    let ptm = Ptm::new(cfg_for(Algo::UndoEager));
    let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
    let map = th.run(|tx| PHashMap::create(tx, 32));
    heap.set_root(th.session_mut(), 0, map.header());
    for k in 0..40u64 {
        th.run(|tx| map.insert(tx, k, !k).map(|_| ()));
    }
    let (m2, heap2) = crash_recover(&m, &heap, 1);
    let (m3, heap3) = crash_recover(&m2, &heap2, 2);
    let ptm3 = Ptm::new(cfg_for(Algo::UndoEager));
    let mut th3 = TxThread::new(ptm3, heap3.clone(), m3.session(0));
    let map3 = PHashMap::from_header(heap3.root_raw(0));
    for k in 0..40u64 {
        assert_eq!(th3.run(|tx| map3.get(tx, k)), Some(!k));
    }
}

#[test]
fn work_continues_after_recovery() {
    // The recovered heap is fully usable: allocate, mutate, crash again.
    let m = machine(DurabilityDomain::Adr);
    let heap = PHeap::format(&m, "h", 1 << 15, 4);
    let ptm = Ptm::new(cfg_for(Algo::RedoLazy));
    let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
    let tree = th.run(BpTree::create);
    heap.set_root(th.session_mut(), 0, tree.header());
    for k in 0..50u64 {
        th.run(|tx| tree.insert(tx, k, k).map(|_| ()));
    }
    let (m2, heap2) = crash_recover(&m, &heap, 5);
    let ptm2 = Ptm::new(cfg_for(Algo::RedoLazy));
    let mut th2 = TxThread::new(ptm2, heap2.clone(), m2.session(0));
    let tree2 = BpTree::from_header(heap2.root_raw(0));
    for k in 50..100u64 {
        th2.run(|tx| tree2.insert(tx, k, k).map(|_| ()));
    }
    let (m3, heap3) = crash_recover(&m2, &heap2, 6);
    let ptm3 = Ptm::new(cfg_for(Algo::RedoLazy));
    let mut th3 = TxThread::new(ptm3, heap3.clone(), m3.session(0));
    let tree3 = BpTree::from_header(heap3.root_raw(0));
    assert_eq!(th3.run(|tx| tree3.len(tx)), 100);
    for k in 0..100u64 {
        assert_eq!(th3.run(|tx| tree3.get(tx, k)), Some(k));
    }
}

#[test]
fn skiplist_pvec_blob_survive_crashes() {
    use optane_ptm::pstructs::{PBlob, PSkipList, PVec};
    let m = machine(DurabilityDomain::Adr);
    let heap = PHeap::format(&m, "h", 1 << 16, 6);
    let ptm = Ptm::new(cfg_for(Algo::RedoLazy));
    let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
    let sl = th.run(PSkipList::create);
    let v = th.run(PVec::create);
    heap.set_root(th.session_mut(), 0, sl.header());
    heap.set_root(th.session_mut(), 1, v.header());
    for k in 0..80u64 {
        th.run(|tx| sl.insert(tx, k * 3, k).map(|_| ()));
        th.run(|tx| v.push(tx, k * k));
    }
    // A blob anchored through the skip list.
    let payload = b"crash-proof payload \xF0\x9F\x92\xBE".to_vec();
    let pl = payload.clone();
    th.run(|tx| {
        let blob = PBlob::create(tx, &pl)?;
        sl.insert(tx, 1_000_000, blob.addr().0)?;
        Ok(())
    });
    for seed in [0u64, 4, 17] {
        let (m2, heap2) = crash_recover(&m, &heap, seed);
        let ptm2 = Ptm::new(cfg_for(Algo::RedoLazy));
        let mut th2 = TxThread::new(ptm2, heap2.clone(), m2.session(0));
        let sl2 = PSkipList::from_header(heap2.root_raw(0));
        let v2 = PVec::from_header(heap2.root_raw(1));
        for k in 0..80u64 {
            assert_eq!(th2.run(|tx| sl2.get(tx, k * 3)), Some(k), "seed {seed}");
            assert_eq!(th2.run(|tx| v2.get(tx, k)), k * k);
        }
        let blob_addr = th2.run(|tx| sl2.get(tx, 1_000_000)).unwrap();
        let blob = PBlob::from_addr(optane_ptm::pmem_sim::PAddr(blob_addr));
        assert_eq!(th2.run(|tx| blob.read(tx)), payload);
    }
}
