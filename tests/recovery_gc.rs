//! Cross-crate Makalu-style leak recovery: blocks allocated by
//! transactions that never committed (or that leaked because the crash
//! hit between allocation and linking) are reclaimed by the attach-time
//! GC, while everything reachable stays allocated.

use optane_ptm::palloc::PHeap;
use optane_ptm::pmem_sim::{DurabilityDomain, Machine, MachineConfig};
use optane_ptm::pstructs::BpTree;
use optane_ptm::ptm::{recover, Ptm, PtmConfig, TxThread};
use std::sync::Arc;

fn machine() -> Arc<Machine> {
    Machine::new(MachineConfig {
        domain: DurabilityDomain::Eadr,
        track_persistence: true,
        ..MachineConfig::default()
    })
}

#[test]
fn tree_nodes_stay_live_and_raw_leaks_are_reclaimed() {
    let m = machine();
    let heap = PHeap::format(&m, "h", 1 << 16, 4);
    let ptm = Ptm::new(PtmConfig::redo());
    let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
    let tree = th.run(BpTree::create);
    heap.set_root(th.session_mut(), 0, tree.header());
    for k in 0..200u64 {
        th.run(|tx| tree.insert(tx, k, k).map(|_| ()));
    }
    // Deliberately leak blocks: allocated non-transactionally, never
    // linked anywhere (models a crash between alloc and link).
    let h = Arc::clone(&heap);
    for _ in 0..10 {
        let _leak = h.alloc(th.session_mut(), 16);
    }
    let image = m.crash(0);
    let m2 = Machine::reboot(
        &image,
        MachineConfig {
            domain: DurabilityDomain::Eadr,
            track_persistence: true,
            ..MachineConfig::default()
        },
    );
    recover(&m2);
    let (heap2, gc) = PHeap::attach(m2.pool(heap.pool().id())).expect("attach");
    assert_eq!(gc.leaked_blocks, 10, "exactly the raw leaks are reclaimed");
    assert!(gc.live_blocks > 10, "tree nodes stay live");
    // The tree is intact and the reclaimed space is reusable.
    let ptm2 = Ptm::new(PtmConfig::redo());
    let mut th2 = TxThread::new(ptm2, heap2.clone(), m2.session(0));
    let tree2 = BpTree::from_header(heap2.root_raw(0));
    assert_eq!(th2.run(|tx| tree2.len(tx)), 200);
    assert!(heap2.free_blocks() >= 10);
}

#[test]
fn unreferenced_subtree_is_collected_after_root_clear() {
    // Clearing a root makes an entire structure garbage; attach reclaims
    // every node of it.
    let m = machine();
    let heap = PHeap::format(&m, "h", 1 << 16, 4);
    let ptm = Ptm::new(PtmConfig::redo());
    let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
    let tree = th.run(BpTree::create);
    heap.set_root(th.session_mut(), 0, tree.header());
    for k in 0..100u64 {
        th.run(|tx| tree.insert(tx, k, k).map(|_| ()));
    }
    heap.set_root(th.session_mut(), 0, optane_ptm::pmem_sim::PAddr::NULL);
    let image = m.crash(1);
    let m2 = Machine::reboot(
        &image,
        MachineConfig {
            domain: DurabilityDomain::Eadr,
            track_persistence: true,
            ..MachineConfig::default()
        },
    );
    recover(&m2);
    let (_heap2, gc) = PHeap::attach(m2.pool(heap.pool().id())).expect("attach");
    assert_eq!(gc.live_blocks, 0);
    assert!(gc.reclaimed_blocks > 8, "all tree nodes collected");
}

#[test]
fn log_pools_do_not_confuse_heap_gc() {
    // The PTM's log pools live beside the heap pool; attach must only
    // scan the heap pool and succeed regardless.
    let m = machine();
    let heap = PHeap::format(&m, "h", 1 << 14, 4);
    let ptm = Ptm::new(PtmConfig::undo());
    let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
    let h = Arc::clone(&heap);
    let a = h.alloc(th.session_mut(), 8);
    th.run(|tx| tx.write(a, 9));
    heap.set_root(th.session_mut(), 0, a);
    let image = m.crash(2);
    let m2 = Machine::reboot(
        &image,
        MachineConfig {
            domain: DurabilityDomain::Eadr,
            track_persistence: true,
            ..MachineConfig::default()
        },
    );
    recover(&m2);
    let (heap2, gc) = PHeap::attach(m2.pool(heap.pool().id())).expect("attach");
    assert_eq!(gc.live_blocks, 1);
    assert_eq!(heap2.pool().raw_load(a.word()), 9);
}
