//! Flight-recorder validation: the trace is deterministic, merges in
//! timestamp order, and — for random workload/scenario/thread mixes —
//! re-derives exactly the totals the live counters report.

use optane_ptm::pmem_sim::{DurabilityDomain, MediaKind};
use optane_ptm::ptm::Algo;
use optane_ptm::trace::analyze::{crosscheck, TraceTotals};
use optane_ptm::trace::export::{read_binary, write_binary, ExpectedTotals};
use optane_ptm::trace::{EventKind, TraceSink};
use optane_ptm::workloads::driver::{run_scenario, RunConfig, RunResult, Scenario};
use optane_ptm::workloads::{IndexKind, Tatp, Tpcc, Vacation, VacationCfg};
use proptest::prelude::*;
use std::sync::Arc;

fn expected_of(r: &RunResult) -> ExpectedTotals {
    ExpectedTotals {
        commits: r.ptm.commits,
        aborts: r.ptm.aborts,
        aborts_read_locked: r.ptm.aborts_read_locked,
        aborts_read_version: r.ptm.aborts_read_version,
        aborts_acquire: r.ptm.aborts_acquire,
        aborts_validation: r.ptm.aborts_validation,
        htm_commits: r.ptm.htm_commits,
        htm_logged_commits: r.ptm.htm_logged_commits,
        htm_aborts: r.ptm.htm_aborts,
        htm_capacity_aborts: r.ptm.htm_capacity_aborts,
        htm_conflict_aborts: r.ptm.htm_conflict_aborts,
        htm_explicit_aborts: r.ptm.htm_explicit_aborts,
        htm_fallbacks: r.ptm.htm_fallbacks,
        clwbs: r.mem.clwbs,
        clwb_writebacks: r.mem.clwb_writebacks,
        clwb_batches: r.mem.clwb_batches,
        sfences: r.mem.sfences,
        fence_wait_ns: r.mem.fence_wait_ns,
        wpq_stall_ns: r.mem.wpq_stall_ns,
        fence_joins: r.ptm.sfences_elided,
    }
}

fn traced_run(
    which: u8,
    threads: usize,
    ops: u64,
    algo: Algo,
    domain: DurabilityDomain,
) -> (Arc<TraceSink>, RunResult) {
    let sink = TraceSink::new(1 << 17);
    let sc = Scenario::new("tv", MediaKind::Optane, domain, algo);
    let rc = RunConfig {
        threads,
        ops_per_thread: ops,
        seed: 42,
        trace: Some(Arc::clone(&sink)),
        ..RunConfig::default()
    };
    let r = match which {
        0 => run_scenario(&mut Tatp::new(600), &sc, &rc),
        1 => run_scenario(&mut Tpcc::new(IndexKind::Hash, 4, 2_000), &sc, &rc),
        _ => run_scenario(&mut Vacation::new(VacationCfg::low(256)), &sc, &rc),
    };
    (sink, r)
}

#[test]
fn identical_single_thread_runs_dump_identical_bytes() {
    // Two runs of the same deterministic single-thread workload must
    // produce byte-identical binary dumps: same events, same timestamps,
    // same embedded counter totals.
    let (s1, r1) = traced_run(1, 1, 120, Algo::RedoLazy, DurabilityDomain::Adr);
    let (s2, r2) = traced_run(1, 1, 120, Algo::RedoLazy, DurabilityDomain::Adr);
    let d1 = write_binary(&s1.threads(), &expected_of(&r1));
    let d2 = write_binary(&s2.threads(), &expected_of(&r2));
    assert!(!d1.is_empty());
    assert_eq!(
        d1, d2,
        "trace dumps of identical runs must be byte-identical"
    );
    // And the dump round-trips through the reader.
    let dump = read_binary(&d1).unwrap();
    assert_eq!(dump.expected, expected_of(&r1));
    assert_eq!(dump.threads.len(), 1);
}

#[test]
fn merged_timeline_is_nondecreasing_across_threads() {
    let (sink, _r) = traced_run(1, 4, 150, Algo::RedoLazy, DurabilityDomain::Adr);
    assert_eq!(sink.dropped_events(), 0);
    let merged = sink.merged();
    assert!(
        merged.len() > 1000,
        "4-thread tpcc must record plenty of events"
    );
    let tids: std::collections::BTreeSet<u32> = merged.iter().map(|e| e.tid).collect();
    assert!(tids.len() >= 4, "events from every worker thread");
    for w in merged.windows(2) {
        assert!(
            w[0].ts <= w[1].ts,
            "merge must be ordered: {} then {}",
            w[0].ts,
            w[1].ts
        );
    }
}

#[test]
fn htm_sections_retire_with_zero_persistence_events() {
    // `Algo::HtmLogged`'s defining contract under ADR: everything between
    // an attempt's `TxBegin` and its `HtmRetire` ran inside the hardware
    // section, and a `clwb` or `sfence` there would have aborted it on
    // real silicon. The per-thread event streams are program-ordered, so
    // the window check is a linear scan.
    let (sink, r) = traced_run(0, 2, 300, Algo::HtmLogged, DurabilityDomain::Adr);
    assert!(
        r.ptm.htm_logged_commits > 0,
        "tatp under ADR must commit on the logged hardware path"
    );
    assert_eq!(sink.dropped_events(), 0);
    let mut retires = 0u64;
    for th in sink.threads() {
        let mut persists_since_begin = 0u64;
        let mut saw_begin = false;
        for e in &th.events {
            match e.kind {
                EventKind::TxBegin => {
                    persists_since_begin = 0;
                    saw_begin = true;
                }
                EventKind::Clwb | EventKind::ClwbBatch | EventKind::Sfence => {
                    persists_since_begin += 1;
                }
                EventKind::HtmRetire => {
                    assert!(saw_begin, "HtmRetire without a TxBegin");
                    assert_eq!(
                        persists_since_begin, 0,
                        "clwb/sfence retired inside an HTM section (tid {})",
                        th.tid
                    );
                    retires += 1;
                }
                _ => {}
            }
        }
    }
    assert_eq!(
        retires, r.ptm.htm_commits,
        "every hardware commit must be marked by exactly one HtmRetire"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn trace_totals_equal_live_counters_on_random_workloads(
        which in 0u8..3,
        threads in 1usize..4,
        ops in 20u64..120,
        algo_idx in 0usize..Algo::ALL.len(),
        eadr in any::<bool>(),
    ) {
        let algo = Algo::ALL[algo_idx];
        let domain = if eadr { DurabilityDomain::Eadr } else { DurabilityDomain::Adr };
        let (sink, r) = traced_run(which, threads, ops, algo, domain);
        prop_assert_eq!(sink.dropped_events(), 0, "ring sized for test scale");
        let derived = TraceTotals::from_events(&sink.merged());
        let diverged = crosscheck(&derived, &expected_of(&r));
        prop_assert!(
            diverged.is_empty(),
            "trace must re-derive the counters exactly: {:?}",
            diverged
        );
    }
}
