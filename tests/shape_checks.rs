//! Cheap, qualitative versions of the paper's findings, asserted as
//! tests: who wins, in which direction, under which domain. These are the
//! claims the full benchmark binaries regenerate at scale (see
//! EXPERIMENTS.md); here they run in seconds at reduced op counts.

use optane_ptm::pmem_sim::{DurabilityDomain, MediaKind};
use optane_ptm::ptm::Algo;
use optane_ptm::workloads::driver::{run_scenario, RunConfig, Scenario};
use optane_ptm::workloads::{IndexKind, KvStore, Tatp, Tpcc, Workload};

fn rc(threads: usize, ops: u64) -> RunConfig {
    RunConfig {
        threads,
        ops_per_thread: ops,
        seed: 1234,
        ..RunConfig::default()
    }
}

fn tpcc() -> Tpcc {
    Tpcc::new(IndexKind::Hash, 4, 4_000)
}

fn mops(w: &mut dyn Workload, sc: &Scenario, c: &RunConfig) -> f64 {
    struct Dyn<'a>(&'a mut dyn Workload);
    impl Workload for Dyn<'_> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn heap_words(&self) -> usize {
            self.0.heap_words()
        }
        fn setup(&mut self, th: &mut optane_ptm::ptm::TxThread) {
            self.0.setup(th)
        }
        fn op(
            &self,
            th: &mut optane_ptm::ptm::TxThread,
            rng: &mut rand::rngs::SmallRng,
            tid: usize,
            i: u64,
        ) {
            self.0.op(th, rng, tid, i)
        }
    }
    run_scenario(&mut Dyn(w), sc, c).throughput_mops()
}

fn sc(media: MediaKind, domain: DurabilityDomain, algo: Algo) -> Scenario {
    Scenario::new("s", media, domain, algo)
}

#[test]
fn eadr_beats_adr_on_optane() {
    // §III-C: "eADR provides substantial performance gains".
    let c = rc(2, 400);
    let adr = mops(
        &mut tpcc(),
        &sc(MediaKind::Optane, DurabilityDomain::Adr, Algo::RedoLazy),
        &c,
    );
    let eadr = mops(
        &mut tpcc(),
        &sc(MediaKind::Optane, DurabilityDomain::Eadr, Algo::RedoLazy),
        &c,
    );
    assert!(
        eadr > 1.5 * adr,
        "eADR {eadr} should clearly beat ADR {adr}"
    );
}

#[test]
fn dram_beats_optane_same_domain() {
    // §III-B: Optane performance is below DRAM.
    let c = rc(2, 400);
    for domain in [DurabilityDomain::Adr, DurabilityDomain::Eadr] {
        let d = mops(
            &mut tpcc(),
            &sc(MediaKind::Dram, domain, Algo::RedoLazy),
            &c,
        );
        let o = mops(
            &mut tpcc(),
            &sc(MediaKind::Optane, domain, Algo::RedoLazy),
            &c,
        );
        assert!(d > o, "{domain:?}: DRAM {d} must beat Optane {o}");
    }
}

#[test]
fn redo_beats_undo_on_tpcc_under_adr() {
    // §III-B: "in almost every case, redo logging outperforms undo".
    let c = rc(2, 400);
    let r = mops(
        &mut tpcc(),
        &sc(MediaKind::Optane, DurabilityDomain::Adr, Algo::RedoLazy),
        &c,
    );
    let u = mops(
        &mut tpcc(),
        &sc(MediaKind::Optane, DurabilityDomain::Adr, Algo::UndoEager),
        &c,
    );
    assert!(
        r > u,
        "redo {r} must beat undo {u} on a write-heavy workload"
    );
}

#[test]
fn tatp_is_the_undo_outlier() {
    // §III-B: TATP's tiny write sets make undo competitive (the paper's
    // only outlier). Competitive = within 25% or better.
    let c = rc(2, 500);
    let mut w1 = Tatp::new(600);
    let r = mops(
        &mut w1,
        &sc(MediaKind::Optane, DurabilityDomain::Adr, Algo::RedoLazy),
        &c,
    );
    let mut w2 = Tatp::new(600);
    let u = mops(
        &mut w2,
        &sc(MediaKind::Optane, DurabilityDomain::Adr, Algo::UndoEager),
        &c,
    );
    assert!(
        u > 0.75 * r,
        "undo {u} must be competitive with redo {r} on TATP"
    );
}

#[test]
fn pdram_closes_most_of_the_gap_to_dram() {
    // §IV-D: "PDRAM matches DRAM performance up until Optane scalability
    // bottlenecks occur"; at low thread counts it should be close. Use a
    // miss-heavy workload (KV store beyond the L3) so the media latency
    // actually shows; the TPCC working set at test scale is L3-resident,
    // where the domains are indistinguishable by design.
    let mk = || KvStore::new(16 << 10); // 16 MB values, 4 MB L3, 64 MB DRAM cache
    let c = rc(2, 300);
    let dram = mops(
        &mut mk(),
        &sc(MediaKind::Dram, DurabilityDomain::Eadr, Algo::RedoLazy),
        &c,
    );
    let eadr = mops(
        &mut mk(),
        &sc(MediaKind::Optane, DurabilityDomain::Eadr, Algo::RedoLazy),
        &c,
    );
    let pdram = mops(
        &mut mk(),
        &sc(MediaKind::Optane, DurabilityDomain::Pdram, Algo::RedoLazy),
        &c,
    );
    assert!(
        pdram > 1.2 * eadr,
        "PDRAM {pdram} must clearly beat eADR {eadr} on a miss-heavy workload"
    );
    assert!(
        pdram > 0.6 * dram,
        "PDRAM {pdram} should close most of the gap to DRAM {dram}"
    );
}

#[test]
fn pdram_lite_at_least_matches_eadr_redo() {
    // §IV-D: "PDRAM-Lite outperforms eADR in every case, but the gains
    // are marginal for all but TATP and TPCC".
    let c = rc(2, 500);
    let mut w1 = Tatp::new(600);
    let eadr = mops(
        &mut w1,
        &sc(MediaKind::Optane, DurabilityDomain::Eadr, Algo::RedoLazy),
        &c,
    );
    let mut w2 = Tatp::new(600);
    let lite = mops(
        &mut w2,
        &sc(
            MediaKind::Optane,
            DurabilityDomain::PdramLite,
            Algo::RedoLazy,
        ),
        &c,
    );
    assert!(
        lite > 0.95 * eadr,
        "PDRAM-Lite {lite} must be at least eADR {eadr} (minus noise)"
    );
}

#[test]
fn fence_elision_speeds_up_adr() {
    // Table III: removing fences (incorrectly) buys measurable speedup.
    let c = rc(2, 400);
    let (correct, elided) = Scenario::fence_elision_pair(Algo::UndoEager);
    let base = mops(&mut tpcc(), &correct, &c);
    let fast = mops(&mut tpcc(), &elided, &c);
    assert!(
        fast > 1.03 * base,
        "fence elision ({fast}) must beat correct ADR ({base})"
    );
}

#[test]
fn fence_share_collapses_from_adr_to_eadr() {
    // §III-B, as surfaced by the phase profiler: under ADR the persistence
    // phases (flush + fence-wait) consume a large share of transaction
    // time; under eADR clwb/sfence are elided by the domain, so the same
    // workload's persistence share collapses to zero.
    use optane_ptm::ptm::Phase;
    let c = rc(1, 400);
    for algo in Algo::ALL {
        let adr = run_scenario(
            &mut tpcc(),
            &sc(MediaKind::Optane, DurabilityDomain::Adr, algo),
            &c,
        );
        let eadr = run_scenario(
            &mut tpcc(),
            &sc(MediaKind::Optane, DurabilityDomain::Eadr, algo),
            &c,
        );
        let adr_share = adr.phases.persistence_share();
        let eadr_share = eadr.phases.persistence_share();
        assert!(
            adr_share > 0.25,
            "{algo:?}: ADR persistence share must be substantial, got {adr_share}"
        );
        assert!(
            eadr_share < 0.01,
            "{algo:?}: eADR persistence share must collapse, got {eadr_share}"
        );
        assert!(
            adr.phases.get(Phase::Flush) > 0,
            "{algo:?}: ADR must charge flush time"
        );
        assert!(
            adr.phases.get(Phase::FenceWait) > 0,
            "{algo:?}: ADR must charge fence-wait time"
        );
    }
}

#[test]
fn commit_abort_ratio_declines_with_threads() {
    // Tables I/II trend: more threads => lower commits-per-abort.
    let mut w = tpcc();
    let s = sc(MediaKind::Optane, DurabilityDomain::Adr, Algo::RedoLazy);
    struct D<'a>(&'a mut Tpcc);
    impl Workload for D<'_> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn heap_words(&self) -> usize {
            self.0.heap_words()
        }
        fn setup(&mut self, th: &mut optane_ptm::ptm::TxThread) {
            self.0.setup(th)
        }
        fn op(
            &self,
            th: &mut optane_ptm::ptm::TxThread,
            rng: &mut rand::rngs::SmallRng,
            tid: usize,
            i: u64,
        ) {
            self.0.op(th, rng, tid, i)
        }
    }
    let low = run_scenario(&mut D(&mut w), &s, &rc(2, 600));
    let mut w2 = tpcc();
    let high = run_scenario(&mut D(&mut w2), &s, &rc(8, 600));
    let (rl, rh) = (low.commit_abort_ratio(), high.commit_abort_ratio());
    assert!(
        rh < rl || rl.is_infinite(),
        "ratio must decline with threads: 2t={rl} 8t={rh}"
    );
    assert!(
        high.ptm.aborts > 0,
        "8 threads on 4 warehouses must conflict"
    );
}

#[test]
fn kvstore_working_set_regimes() {
    // Fig. 8: L3-resident beats media-resident; and for PDRAM, a working
    // set beyond the DRAM cache falls back toward Optane speed.
    let model = optane_ptm::pmem_sim::LatencyModel {
        l3_bytes: 1 << 20,         // 1 MB
        dram_cache_bytes: 8 << 20, // 8 MB
        ..optane_ptm::pmem_sim::LatencyModel::default()
    };
    let c = RunConfig {
        threads: 1,
        ops_per_thread: 250,
        model: model.clone(),
        ..RunConfig::default()
    };
    let run = |items: u64, domain| {
        let mut w = KvStore::new(items);
        mops(&mut w, &sc(MediaKind::Optane, domain, Algo::RedoLazy), &c)
    };
    let small_eadr = run(256, DurabilityDomain::Eadr); // 256 KB, fits L3
    let big_eadr = run(16 << 10, DurabilityDomain::Eadr); // 16 MB
    assert!(
        small_eadr > 1.5 * big_eadr,
        "L3 cliff: {small_eadr} vs {big_eadr}"
    );
    let mid_pdram = run(4 << 10, DurabilityDomain::Pdram); // 4 MB: fits DRAM cache
    let big_pdram = run(16 << 10, DurabilityDomain::Pdram); // 16 MB: exceeds it
    assert!(
        mid_pdram > 1.2 * big_pdram,
        "DRAM-cache cliff for PDRAM: {mid_pdram} vs {big_pdram}"
    );
}

#[test]
fn trace_shows_wpq_stalls_under_write_hot_adr() {
    // PR4 shape: a write-hot workload under ADR with a deliberately tiny
    // WPQ must produce at least one reconstructed stall interval in the
    // flight-recorder timeline, and stall time must agree with the
    // machine counter.
    use optane_ptm::trace::{analyze, TraceSink};
    let sink = TraceSink::new(1 << 18);
    let model = optane_ptm::pmem_sim::LatencyModel {
        wpq_lines: 4,
        ..optane_ptm::pmem_sim::LatencyModel::default()
    };
    let c = RunConfig {
        threads: 2,
        ops_per_thread: 400,
        seed: 1234,
        model,
        trace: Some(std::sync::Arc::clone(&sink)),
        ..RunConfig::default()
    };
    let r = run_scenario(
        &mut tpcc(),
        &sc(MediaKind::Optane, DurabilityDomain::Adr, Algo::RedoLazy),
        &c,
    );
    assert_eq!(
        sink.dropped_events(),
        0,
        "ring must not overflow at test scale"
    );
    let t = analyze::wpq_timeline(&sink.merged());
    assert!(
        !t.stalls.is_empty(),
        "tiny WPQ under write-hot ADR must stall at least once"
    );
    assert_eq!(
        t.total_stall_ns, r.mem.wpq_stall_ns,
        "trace-derived stall time must equal the machine counter"
    );
}

#[test]
fn trace_shows_no_fence_waits_under_eadr() {
    // PR4 shape: under eADR the domain elides clwb/sfence entirely, so a
    // traced run must contain zero sfence (and zero clwb) events.
    use optane_ptm::trace::{EventKind, TraceSink};
    let sink = TraceSink::new(1 << 18);
    let c = RunConfig {
        threads: 2,
        ops_per_thread: 400,
        seed: 1234,
        trace: Some(std::sync::Arc::clone(&sink)),
        ..RunConfig::default()
    };
    run_scenario(
        &mut tpcc(),
        &sc(MediaKind::Optane, DurabilityDomain::Eadr, Algo::RedoLazy),
        &c,
    );
    let merged = sink.merged();
    assert!(!merged.is_empty(), "traced run must record events");
    for kind in [EventKind::Sfence, EventKind::Clwb, EventKind::WpqStall] {
        assert_eq!(
            merged.iter().filter(|e| e.kind == kind).count(),
            0,
            "eADR must produce no {kind:?} events"
        );
    }
}

#[test]
fn write_sets_are_small_enough_for_pdram_lite() {
    // §IV-B sizing argument: "the Vacation benchmark never requires more
    // than 37 contiguous cache lines for its redo log. TPCC (Hash Table)
    // requires at most 36." Our log entries are 4 words (2 per line);
    // verify the same order of magnitude, which is what justifies a
    // handful-of-pages PDRAM-Lite budget.
    use optane_ptm::workloads::{Vacation, VacationCfg};
    let c = rc(2, 400);
    let s = sc(MediaKind::Optane, DurabilityDomain::Eadr, Algo::RedoLazy);

    struct D<'a>(&'a mut dyn Workload);
    impl Workload for D<'_> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn heap_words(&self) -> usize {
            self.0.heap_words()
        }
        fn setup(&mut self, th: &mut optane_ptm::ptm::TxThread) {
            self.0.setup(th)
        }
        fn op(
            &self,
            th: &mut optane_ptm::ptm::TxThread,
            rng: &mut rand::rngs::SmallRng,
            tid: usize,
            i: u64,
        ) {
            self.0.op(th, rng, tid, i)
        }
    }

    let mut vac = Vacation::new(VacationCfg::high(512));
    let r = run_scenario(&mut D(&mut vac), &s, &c);
    let vac_lines = r.ptm.max_write_entries.div_ceil(2);
    assert!(
        vac_lines <= 40,
        "Vacation redo log must stay within tens of lines, got {vac_lines}"
    );

    let mut t = tpcc();
    let r = run_scenario(&mut D(&mut t), &s, &c);
    let tpcc_lines = r.ptm.max_write_entries.div_ceil(2);
    assert!(
        tpcc_lines <= 60,
        "TPCC redo log must stay within tens of lines, got {tpcc_lines}"
    );
    assert!(tpcc_lines >= 10, "TPCC transactions do write substantially");
}
