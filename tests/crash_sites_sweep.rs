//! Integration test for the deterministic crash-site enumeration
//! harness: a bounded sweep over every registered algorithm, all four live
//! durability domains and every adversary policy must be violation-free;
//! deliberately broken recovery must fail with a deterministic,
//! replayable reproducer; and recovery interrupted by a second crash
//! must converge on the next pass.

use optane_ptm::pmem_sim::{
    catch_simulated_crash, silence_simulated_crash_panics, AdversaryPolicy, CrashInjector,
    DurabilityDomain, Machine, MachineConfig,
};
use optane_ptm::ptm::crash_harness::{run_site, sweep, BankTransfers, SweepCase, SweepOptions};
use optane_ptm::ptm::{recover, Algo, RecoverOptions};
use std::sync::Arc;

fn small_bank() -> BankTransfers {
    BankTransfers {
        accounts: 6,
        initial: 80,
        transfers: 5,
        ..BankTransfers::default()
    }
}

/// The headline acceptance sweep: {redo, undo, cow} × {ADR, eADR, PDRAM,
/// PDRAM-Lite} × all four adversary policies, strided to a test-sized
/// budget, with zero violations.
#[test]
fn bounded_sweep_over_the_full_grid_is_clean() {
    let bank = small_bank();
    let mut cases = Vec::new();
    for algo in Algo::ALL {
        for domain in [
            DurabilityDomain::Adr,
            DurabilityDomain::Eadr,
            DurabilityDomain::Pdram,
            DurabilityDomain::PdramLite,
        ] {
            for policy in AdversaryPolicy::SWEEP {
                cases.push(SweepCase {
                    algo,
                    domain,
                    policy,
                    seed: 9,
                });
            }
        }
    }
    let report = sweep(
        &bank,
        &cases,
        SweepOptions {
            max_sites_per_case: Some(10),
            ..SweepOptions::default()
        },
    );
    let expected = Algo::ALL.len() * 4 * AdversaryPolicy::SWEEP.len();
    assert_eq!(report.cases.len(), expected);
    assert!(report.sites_run() >= expected as u64 * 10);
    let lines: Vec<String> = report.violations().map(|v| v.to_string()).collect();
    assert!(report.is_clean(), "{lines:#?}");
}

/// Breaking recovery on purpose must make the sweep fail, and the
/// reproducer must replay the identical violation (and pass again once
/// recovery is fixed).
#[test]
fn broken_recovery_yields_a_deterministic_reproducer() {
    let bank = small_bank();
    let case = SweepCase {
        algo: Algo::UndoEager,
        domain: DurabilityDomain::Adr,
        policy: AdversaryPolicy::AllNew,
        seed: 9,
    };
    let broken = RecoverOptions {
        skip_undo_rollback: true,
        ..RecoverOptions::default()
    };
    let report = sweep(
        &bank,
        &[case],
        SweepOptions {
            max_sites_per_case: Some(64),
            recover: broken,
        },
    );
    let v = report
        .violations()
        .next()
        .expect("skipping undo rollback must be caught")
        .clone();
    assert!(
        v.reproducer()
            .starts_with("CRASH-REPRO workload=bank site="),
        "{}",
        v.reproducer()
    );
    let replay1 = run_site(&bank, &case, v.site, broken);
    let replay2 = run_site(&bank, &case, v.site, broken);
    assert_eq!(replay1.state_digest, replay2.state_digest);
    assert!(replay1.violations.contains(&v.detail));
    let fixed = run_site(&bank, &case, v.site, RecoverOptions::default());
    assert!(fixed.violations.is_empty(), "{:?}", fixed.violations);
}

/// Crash *during recovery itself* (via the injection layer armed on the
/// rebooted machine), then recover again: the second pass must converge
/// to a consistent bank.
#[test]
fn crash_during_recovery_converges_on_the_next_pass() {
    use optane_ptm::ptm::crash_harness::{count_sites, derive_crash_seed, CrashWorkload};

    silence_simulated_crash_panics();
    let bank = small_bank();
    let case = SweepCase {
        algo: Algo::UndoEager,
        domain: DurabilityDomain::Adr,
        policy: AdversaryPolicy::PerWord,
        seed: 9,
    };
    // First crash: mid-workload, at a site deep enough that transfers
    // (and thus undo logs) are in flight.
    let total = count_sites(&bank, &case);
    let site = total * 3 / 4;
    let machine = Machine::new(MachineConfig::functional(case.domain));
    let inj = CrashInjector::at_site(site, case.policy, derive_crash_seed(case.seed, site));
    machine.arm_injector(Arc::clone(&inj));
    let completed = catch_simulated_crash(|| bank.run(&machine, &case)).is_ok();
    machine.disarm_injector();
    assert!(!completed, "site {site}/{total} must interrupt the run");
    let image = inj.take_outcome().unwrap().image;

    // Second crash: during recovery, at every recovery site in turn.
    for recovery_site in 0..u64::MAX {
        let m2 = Machine::reboot(&image, MachineConfig::functional(case.domain));
        let inj2 = CrashInjector::at_site(recovery_site, case.policy, 77 ^ recovery_site);
        m2.arm_injector(Arc::clone(&inj2));
        let done = catch_simulated_crash(|| recover(&m2)).is_ok();
        m2.disarm_injector();
        if done {
            assert!(recovery_site > 0, "recovery of an in-flight tx has sites");
            break;
        }
        let image2 = inj2.take_outcome().unwrap().image;
        let m3 = Machine::reboot(&image2, MachineConfig::functional(case.domain));
        recover(&m3);
        // Converged: the doubly-crashed machine passes the same checks
        // the harness applies, including committed-prefix equality.
        let (heap, gc) = optane_ptm::palloc::PHeap::attach(
            m3.pools()
                .into_iter()
                .find(|p| p.name() == bank.heap_pool())
                .unwrap(),
        )
        .unwrap();
        heap.validate().unwrap();
        let violations = bank.check(&m3, &heap, &gc, &case);
        assert!(
            violations.is_empty(),
            "recovery site {recovery_site}: {violations:?}"
        );
    }
}
