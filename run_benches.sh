#!/bin/bash
# Regenerates every table and figure of the paper into results/, plus the
# crash-site sweep, then consolidates everything into one JSON-Lines
# archive (results/BENCH_${BENCH_TAG}.json, one object per figure/table
# point) and diffs it against the previous archive with bench_trend.
#
# The archive tag defaults to the current PR; override with e.g.
# `BENCH_TAG=PR10 ./run_benches.sh`. Archiving is unconditional: every
# full run leaves a BENCH_<tag>.json for the trend guard to compare.
#
# Each binary runs once with --json (the structured superset of its CSV;
# run any binary without flags for the human-readable CSV instead).
set -u
cd /root/repo
mkdir -p results
BENCH_TAG="${BENCH_TAG:-PR10}"
BINS="fig3 fig4 fig6 fig7 table1 table2 table3 fig8 algo_compare ablation_log_split ablation_flush_timing ablation_lite_budget ablation_orec ablation_htm ablation_window ablation_index ablation_write_combining ablation_trace_overhead ablation_obs_overhead ablation_htm_logged memstats latency shard_scaling recovery_bench"
for bin in $BINS; do
  echo "=== $bin start $(date +%T) ==="
  cargo run -q --release -p bench --bin $bin -- --json > results/$bin.jsonl 2> results/$bin.log
  echo "=== $bin done  $(date +%T) (rc=$?) ==="
done
echo "=== crash_sites start $(date +%T) ==="
cargo run -q --release -p bench --bin crash_sites -- --max-sites 200 --json > results/crash_sites.jsonl 2> results/crash_sites.log
echo "=== crash_sites done  $(date +%T) (rc=$?) ==="
echo "=== crash_sites (sharded group-commit) start $(date +%T) ==="
cargo run -q --release -p bench --bin crash_sites -- --workload group --shards 4 --max-sites 50 --json > results/crash_sites_sharded.jsonl 2> results/crash_sites_sharded.log
echo "=== crash_sites (sharded group-commit) done  $(date +%T) (rc=$?) ==="
echo "=== crash_sites (cross-shard 2PC transfer) start $(date +%T) ==="
cargo run -q --release -p bench --bin crash_sites -- --workload transfer --shards 2 --max-sites 24 --json > results/crash_sites_transfer.jsonl 2> results/crash_sites_transfer.log
echo "=== crash_sites (cross-shard 2PC transfer) done  $(date +%T) (rc=$?) ==="
echo "=== trace_analyze start $(date +%T) ==="
cargo run -q --release -p bench --bin trace_analyze -- --json > results/trace_analyze.jsonl 2> results/trace_analyze.log
echo "=== trace_analyze done  $(date +%T) (rc=$?) ==="
echo "=== obs_report start $(date +%T) ==="
cargo run -q --release -p bench --bin obs_report -- --verify --json > results/obs_report.jsonl 2> results/obs_report.log
echo "=== obs_report done  $(date +%T) (rc=$?) ==="
cat results/*.jsonl > "results/BENCH_${BENCH_TAG}.json"
echo "consolidated $(wc -l < "results/BENCH_${BENCH_TAG}.json") points into results/BENCH_${BENCH_TAG}.json"
echo "=== bench_trend start $(date +%T) ==="
cargo run -q --release -p bench --bin bench_trend 2>&1 | tee results/bench_trend.log
echo "=== bench_trend done  $(date +%T) (rc=$?) ==="
echo ALL_BENCHES_DONE
