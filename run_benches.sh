#!/bin/bash
# Regenerates every table and figure of the paper into results/.
set -u
cd /root/repo
for bin in fig3 fig4 fig6 fig7 table1 table2 table3 fig8 ablation_log_split ablation_flush_timing ablation_lite_budget ablation_orec ablation_htm ablation_window ablation_index memstats latency; do
  echo "=== $bin start $(date +%T) ==="
  cargo run -q --release -p bench --bin $bin > results/$bin.csv 2> results/$bin.log
  echo "=== $bin done  $(date +%T) (rc=$?) ==="
done
echo ALL_BENCHES_DONE
