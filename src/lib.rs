//! # optane-ptm
//!
//! Umbrella crate for the reproduction of Zardoshti et al., *Understanding
//! and Improving Persistent Transactions on Optane™ DC Memory* (IPDPS 2020).
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use one coherent namespace:
//!
//! * [`pmem_sim`] — the simulated Optane substrate (latency model, virtual
//!   time, durability domains, crash simulation);
//! * [`palloc`] — the Makalu-style persistent allocator;
//! * [`ptm`] — the persistent transactional memory runtime (orec-lazy redo
//!   and orec-eager undo);
//! * [`pstructs`] — persistent data structures built on `ptm`;
//! * [`workloads`] — the paper's five benchmark applications and the
//!   virtual-thread measurement driver;
//! * [`trace`] — the virtual-time flight recorder (per-thread event rings,
//!   Perfetto/binary export, abort-attribution and WPQ analysis);
//! * [`obs`] — continuous telemetry on top of the trace funnel
//!   (virtual-time time-series sampler, per-request critical-path span
//!   reconstruction, bench-trend regression guard).

pub use obs;
pub use palloc;
pub use pmem_sim;
pub use pstructs;
pub use ptm;
pub use trace;
pub use workloads;
