#!/bin/bash
# CI gate: formatting, lints, the full test suite, and a smoke run of the
# phase profiler. Everything must pass for a change to land.
set -eu
cd "$(dirname "$0")"

echo "=== fmt ==="
cargo fmt --check

echo "=== clippy ==="
cargo clippy --workspace -- -D warnings

echo "=== test ==="
# --workspace: the root package's integration tests alone skip the ptm /
# pstructs / workloads unit suites.
cargo test -q --workspace

echo "=== algorithm seam check ==="
# The pluggable-algorithm refactor (PR 5) demands that the only dispatch
# on PtmConfig::algo is the registry in crates/ptm/src/algo/. A `match`
# on an `.algo` field anywhere else means someone re-grew a hard-coded
# algorithm switch outside the seam.
if grep -rn "match .*\.algo\b" crates examples tests --include='*.rs' \
    | grep -v "crates/ptm/src/algo/"; then
  echo "ERROR: algorithm dispatch outside ptm::algo registry (see above)" >&2
  exit 1
fi

echo "=== phase_profile smoke (4 algorithms x {ADR, eADR}) ==="
# phase_profile iterates the full {undo, redo, cow, htm-logged} x
# {ADR, eADR} matrix internally, so this one smoke run exercises every
# registered algorithm in both flush-required and flush-elided domains.
cargo run -q --release -p bench --bin phase_profile -- --threads 1 --ops 200 > /dev/null

echo "=== algo_compare smoke ==="
# Head-to-head {redo, undo, cow, htm-logged} comparison across all four
# durability domains (throughput / abort rate / persistence work).
cargo run -q --release -p bench --bin algo_compare -- --quick --threads 2 --ops 100 > /dev/null

echo "=== htm-logged ablation smoke + ADR crossover guard ==="
# Redo vs HtmLogged on the KV workload under ADR. The binary's built-in
# guard exits nonzero if the logged hardware path commits nothing or
# loses to software redo at low contention at 1-2 threads (the PR 8
# acceptance claim: back-end logging brings the HTM fast path to ADR).
cargo run -q --release -p bench --bin ablation_htm_logged -- --quick > /dev/null

echo "=== write-combining smoke + flush-elision guard ==="
# Quick naive-vs-combined ablation. The binary's built-in regression
# guard exits nonzero if the combined pipeline elides zero flushes on
# the redo ADR workload (i.e. the planner stopped deduplicating).
cargo run -q --release -p bench --bin ablation_write_combining -- --quick > /dev/null

echo "=== crash_sites smoke sweep (4 algorithms x 4 domains) ==="
# Bounded deterministic crash-site sweep: every {algo x domain x policy}
# case — all four registered algorithms, including cow shadow and the
# htm-logged back-end ring — with 12 strided sites each. Exits nonzero
# on any invariant violation, printing CRASH-REPRO reproducer lines to
# stderr.
cargo run -q --release -p bench --bin crash_sites -- --quick > /dev/null

echo "=== shard_scaling smoke + scaling / group-commit / 2PC-cost guards ==="
# Quick 1 -> 4 shard sweep of the sharded multi-pool engine, plus the
# cross-shard transfer sweep at frac {0, 0.1} under ADR and eADR. The
# binary's built-in guards exit nonzero if aggregate throughput stops
# scaling (largest shard count must beat shards/2 x the 1-shard
# baseline), if group commit stops reducing fences per commit, or if
# cross-shard mean latency at frac=0.1 under ADR exceeds 2.5x the
# all-single-shard baseline.
cargo run -q --release -p bench --bin shard_scaling -- --quick > /dev/null

echo "=== per-shard crash sweep smoke (group-commit window workload) ==="
# 4 shards swept independently under derived seeds, crashing the
# two-thread group-commit bank inside open fence windows. Exits nonzero
# if any shard's recovery tears a joined window.
cargo run -q --release -p bench --bin crash_sites -- --quick --workload group --shards 4 > /dev/null

echo "=== cross-shard 2PC crash sweep smoke (transfer workload) ==="
# One 2-shard engine, one global site numbering across both shard
# machines: {redo, undo, cow} x 4 domains x adversary policies, a few
# strided sites each, asserting cross-shard transfers stay all-or-nothing
# and in-doubt resolution is idempotent and worker-count independent.
cargo run -q --release -p bench --bin crash_sites -- --workload transfer --shards 2 --max-sites 4 > /dev/null

echo "=== 2PC recovery digest equality (1 vs 4 recovery workers) ==="
# Replay one mid-run cross-shard crash site twice, rebooting with 1 and
# 4 recovery workers; the printed recovered-state digests must match
# bit for bit (parallel recovery is a pure scheduling change).
XS_ARGS="--workload transfer --shards 2 --site 150 --algo redo --domain adr --policy all-old"
DIGEST_1=$(cargo run -q --release -p bench --bin crash_sites -- $XS_ARGS --workers 1 | grep 'state digest')
DIGEST_4=$(cargo run -q --release -p bench --bin crash_sites -- $XS_ARGS --workers 4 | grep 'state digest')
if [ -z "$DIGEST_1" ] || [ "$DIGEST_1" != "$DIGEST_4" ]; then
  echo "ERROR: recovery digest differs across worker counts: [$DIGEST_1] vs [$DIGEST_4]" >&2
  exit 1
fi

echo "=== recovery_bench smoke + restart SLO guards ==="
# Restart-latency sweep (pool size x dirtiness x recovery workers) on
# crafted committed-but-unretired log images. The binary's built-in
# guards exit nonzero if (a) parallel recovery is slower than 0.9x
# serial where the host has real cores (on a 1-core host this ratio
# degenerates and the absolute overhead bound takes over), (b) 4-worker
# recovery overhead blows up past thread bookkeeping, or (c) the first
# read through the online-GC epoch fence degenerates to waiting for the
# full sweep.
cargo run -q --release -p bench --bin recovery_bench -- --quick > /dev/null

echo "=== trace smoke ==="
# Record a short traced run, then re-derive its totals from the trace
# alone. trace_analyze exits nonzero if any trace-derived total diverges
# from the embedded counters or the Chrome JSON is structurally invalid.
TRACE_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run -q --release -p bench --bin phase_profile -- --quick --trace "$TRACE_TMP/smoke.trc" > /dev/null
cargo run -q --release -p bench --bin trace_analyze -- --file "$TRACE_TMP/smoke.trc" > /dev/null
# And the live self-run cross-check (4-thread tpcc-hash under ADR).
cargo run -q --release -p bench --bin trace_analyze -- --quick > /dev/null

echo "=== obs_report smoke (ADR series + eADR domain sanity) ==="
# Continuous-telemetry report on the sharded open-loop run. The binary's
# built-in checks exit nonzero if (a) the span decomposition fails to
# close against the driver's measured sojourn total within 1%, (b) the
# replayed run produces a different series (determinism), or (c) the
# series contradicts the domain: ADR must show fence + WPQ activity,
# eADR must show zero fence and zero WPQ sample rows.
cargo run -q --release -p bench --bin obs_report -- --quick --verify > /dev/null
cargo run -q --release -p bench --bin obs_report -- --quick --domain eadr > /dev/null

echo "=== obs overhead ablation (sampler off = inert, on <= 2%) ==="
# Sampling disabled must be bit-identical run to run; armed must not
# perturb 1-thread virtual time at all and stay within 2% at 4 threads.
cargo run -q --release -p bench --bin ablation_obs_overhead -- --quick > /dev/null

echo "=== bench_trend smoke ==="
# Diff consecutive results/BENCH_PR<N>.json archives. --quick tolerates
# an empty or single-archive history (fresh checkout) but still fails on
# unreadable/unparseable archives.
cargo run -q --release -p bench --bin bench_trend -- --quick > /dev/null

echo CI_OK
