//! Concurrent bank transfers with a mid-flight power failure.
//!
//! ```text
//! cargo run --example bank
//! ```
//!
//! Four worker threads transfer money between persistent accounts while
//! the main thread pulls the plug at an arbitrary moment. After reboot
//! and recovery, every transfer is either fully applied or fully undone:
//! the total balance is exactly what it started as — under both PTM
//! algorithms.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use optane_ptm::palloc::PHeap;
use optane_ptm::pmem_sim::{DurabilityDomain, Machine, MachineConfig, PAddr};
use optane_ptm::ptm::{recover, Algo, Ptm, PtmConfig, TxThread};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ACCOUNTS: u64 = 64;
const INITIAL: u64 = 1_000;

fn main() {
    for algo in Algo::ALL {
        run(algo);
    }
    println!("bank OK");
}

fn run(algo: Algo) {
    let machine = Machine::new(MachineConfig {
        domain: DurabilityDomain::Adr,
        track_persistence: true,
        ..MachineConfig::default()
    });
    let heap = PHeap::format(&machine, "bank-heap", 1 << 16, 4);
    let cfg = PtmConfig::with_algo(algo);
    let ptm = Ptm::new(cfg.clone());

    // Set up the accounts table and anchor it.
    let threads = 4;
    machine.begin_run(1, u64::MAX);
    let table = {
        let mut th = TxThread::new(ptm.clone(), heap.clone(), machine.session(0));
        let heap_ref = Arc::clone(&heap);
        let table = heap_ref.alloc(th.session_mut(), ACCOUNTS as usize);
        th.run(|tx| {
            for i in 0..ACCOUNTS {
                tx.write_at(table, i, INITIAL)?;
            }
            Ok(())
        });
        heap.set_root(th.session_mut(), 0, table);
        table
    };

    // Workers transfer money until told to stop.
    let stop = Arc::new(AtomicBool::new(false));
    machine.begin_run(threads, u64::MAX);
    let image = std::thread::scope(|scope| {
        for tid in 0..threads {
            let machine = Arc::clone(&machine);
            let ptm = Arc::clone(&ptm);
            let heap = Arc::clone(&heap);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut th = TxThread::new(ptm, heap, machine.session(tid));
                let mut rng = SmallRng::seed_from_u64(tid as u64);
                while !stop.load(Ordering::Relaxed) {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = rng.gen_range(0..ACCOUNTS);
                    let amt = rng.gen_range(1..50);
                    th.run(|tx| {
                        let f = tx.read_at(table, from)?;
                        let t = tx.read_at(table, to)?;
                        if from != to && f >= amt {
                            tx.write_at(table, from, f - amt)?;
                            tx.write_at(table, to, t + amt)?;
                        }
                        Ok(())
                    });
                }
            });
        }
        // Let the workers run, then pull the plug mid-flight. `freeze`
        // stops the world between memory operations so the failure is
        // instantaneous, exactly like a real power cut.
        std::thread::sleep(std::time::Duration::from_millis(60));
        machine.freeze();
        let image = machine.crash(0xC0FFEE);
        stop.store(true, Ordering::Relaxed);
        machine.thaw();
        image
    });

    // Reboot, recover, check the invariant.
    let machine2 = Machine::reboot(
        &image,
        MachineConfig {
            domain: DurabilityDomain::Adr,
            track_persistence: true,
            ..MachineConfig::default()
        },
    );
    let report = recover(&machine2);
    let pool = machine2.pool(heap.pool().id());
    let table2 = PAddr(pool.raw_load(optane_ptm::palloc::layout::OFF_ROOTS));
    let total: u64 = (0..ACCOUNTS)
        .map(|i| pool.raw_load(table2.word() + i))
        .sum();
    println!(
        "{algo:?}: after crash+recovery total = {total} (expected {}), \
         {} redo replayed / {} undo rolled back",
        ACCOUNTS * INITIAL,
        report.redo_replayed,
        report.undo_rolled_back
    );
    assert_eq!(total, ACCOUNTS * INITIAL, "{algo:?}: money not conserved");
}
