//! Crash-recovery torture in miniature: build a persistent B+Tree, crash
//! under every durability domain and many adversarial seeds, recover, and
//! verify that exactly the committed keys survive.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use optane_ptm::palloc::PHeap;
use optane_ptm::pmem_sim::{DurabilityDomain, Machine, MachineConfig};
use optane_ptm::pstructs::BpTree;
use optane_ptm::ptm::{recover, Algo, Ptm, PtmConfig, TxThread};

fn main() {
    let domains = [
        DurabilityDomain::Adr,
        DurabilityDomain::Eadr,
        DurabilityDomain::Pdram,
        DurabilityDomain::PdramLite,
    ];
    for domain in domains {
        for algo in Algo::ALL {
            // PDRAM-Lite is a redo-log design; skip the undo pairing.
            if domain == DurabilityDomain::PdramLite && algo == Algo::UndoEager {
                continue;
            }
            torture(domain, algo);
        }
    }
    println!("crash_recovery OK");
}

fn torture(domain: DurabilityDomain, algo: Algo) {
    let keys = 200u64;
    let machine = Machine::new(MachineConfig {
        domain,
        track_persistence: true,
        ..MachineConfig::default()
    });
    let heap = PHeap::format(&machine, "heap", 1 << 16, 4);
    let cfg = PtmConfig::with_algo(algo);
    let ptm = Ptm::new(cfg);
    let mut th = TxThread::new(ptm, heap.clone(), machine.session(0));
    let tree = th.run(BpTree::create);
    heap.set_root(th.session_mut(), 0, tree.header());
    for k in 0..keys {
        th.run(|tx| tree.insert(tx, k, k * 3 + 1).map(|_| ()));
    }

    let mut survived = 0;
    for seed in 0..8u64 {
        let image = machine.crash(seed);
        let machine2 = Machine::reboot(
            &image,
            MachineConfig {
                domain,
                track_persistence: true,
                ..MachineConfig::default()
            },
        );
        recover(&machine2);
        let (heap2, _gc) = PHeap::attach(machine2.pool(heap.pool().id())).expect("attach");
        let ptm2 = Ptm::new(PtmConfig::redo());
        let mut th2 = TxThread::new(ptm2, heap2.clone(), machine2.session(0));
        let tree2 = BpTree::from_header(heap2.root_raw(0));
        for k in 0..keys {
            let v = th2.run(|tx| tree2.get(tx, k));
            assert_eq!(
                v,
                Some(k * 3 + 1),
                "{domain:?}/{algo:?} seed {seed}: committed key {k} lost"
            );
        }
        survived += 1;
    }
    println!("{domain:?}/{algo:?}: all {keys} committed keys survived {survived}/8 crash seeds");
}
