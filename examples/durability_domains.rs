//! The paper's headline result in one screen: the same workload under
//! ADR, eADR, PDRAM and PDRAM-Lite, plus the DRAM baseline.
//!
//! ```text
//! cargo run --release --example durability_domains
//! ```
//!
//! Runs a small TPCC burst under each durability domain and prints
//! virtual-time throughput plus the flush/fence counts that explain the
//! differences (ADR pays per-line `clwb` and `sfence`; the others don't).

use optane_ptm::pmem_sim::{DurabilityDomain, MediaKind};
use optane_ptm::ptm::Algo;
use optane_ptm::workloads::driver::{run_scenario, RunConfig, Scenario};
use optane_ptm::workloads::{IndexKind, Tpcc};

fn main() {
    let scenarios = [
        Scenario::new(
            "DRAM (volatile)",
            MediaKind::Dram,
            DurabilityDomain::Eadr,
            Algo::RedoLazy,
        ),
        Scenario::new(
            "Optane ADR",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            Algo::RedoLazy,
        ),
        Scenario::new(
            "Optane eADR",
            MediaKind::Optane,
            DurabilityDomain::Eadr,
            Algo::RedoLazy,
        ),
        Scenario::new(
            "PDRAM",
            MediaKind::Optane,
            DurabilityDomain::Pdram,
            Algo::RedoLazy,
        ),
        Scenario::new(
            "PDRAM-Lite",
            MediaKind::Optane,
            DurabilityDomain::PdramLite,
            Algo::RedoLazy,
        ),
    ];
    let rc = RunConfig {
        threads: 4,
        ops_per_thread: 400,
        ..RunConfig::default()
    };
    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>14}",
        "domain", "Mtx/s(virt)", "clwbs", "sfences", "fence_wait_us"
    );
    let mut baseline = None;
    for sc in &scenarios {
        let mut w = Tpcc::new(IndexKind::Hash, 4, rc.threads as u64 * rc.ops_per_thread);
        let r = run_scenario(&mut w, sc, &rc);
        let mops = r.throughput_mops();
        baseline.get_or_insert(mops);
        println!(
            "{:<16} {:>12.3} {:>10} {:>10} {:>14}",
            sc.label,
            mops,
            r.mem.clwbs,
            r.mem.sfences,
            r.mem.fence_wait_ns / 1_000
        );
    }
    println!("\n(The paper's finding: ADR pays explicit flushes+fences; eADR elides them;");
    println!(" PDRAM additionally serves persistent pages at DRAM latency and nearly");
    println!(" closes the gap to the volatile DRAM baseline.)");
}
