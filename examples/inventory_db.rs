//! A small inventory service on the `PtmDb` façade: the "downstream
//! adoption" path — one object owns the machine, heap and PTM; crashes
//! are two calls.
//!
//! ```text
//! cargo run --example inventory_db
//! ```

use optane_ptm::pmem_sim::{DurabilityDomain, MachineConfig};
use optane_ptm::pstructs::PHashMap;
use optane_ptm::ptm::db::PtmDb;
use optane_ptm::ptm::PtmConfig;
use std::sync::Arc;

const SLOT_INVENTORY: usize = 0;

fn main() {
    let cfg = || MachineConfig {
        domain: DurabilityDomain::Adr,
        track_persistence: true,
        ..MachineConfig::default()
    };

    // Day 1: create the store, stock some items.
    let db = PtmDb::create(cfg(), PtmConfig::redo(), 1 << 18, 8);
    {
        let mut th = db.thread(0);
        let inv = th.run(|tx| PHashMap::create(tx, 128));
        let heap = Arc::clone(db.heap());
        heap.set_root(th.session_mut(), SLOT_INVENTORY, inv.header());
        for (sku, qty) in [(1001u64, 50u64), (1002, 12), (1003, 7)] {
            th.run(|tx| inv.insert(tx, sku, qty).map(|_| ()));
        }
        // A sale: two SKUs in one atomic transaction.
        th.run(|tx| {
            inv.update(tx, 1001, |q| q - 2)?;
            inv.update(tx, 1003, |q| q - 1)?;
            Ok(())
        });
    }
    println!("day 1 closed; pulling the plug...");
    let image = db.crash(0xFADE);

    // Day 2: reopen (recovery + GC happen inside), keep selling.
    let (db2, reports) = PtmDb::reopen(&image, cfg(), PtmConfig::redo());
    println!(
        "reopened: {} logs scanned, {} blocks live, {} reclaimed",
        reports.recovery.logs_scanned, reports.gc.live_blocks, reports.gc.reclaimed_blocks
    );
    let mut th = db2.thread(0);
    let inv = PHashMap::from_header(db2.heap().root_raw(SLOT_INVENTORY));
    for sku in [1001u64, 1002, 1003] {
        let qty = th.run(|tx| inv.get(tx, sku));
        println!("sku {sku}: {qty:?}");
    }
    assert_eq!(th.run(|tx| inv.get(tx, 1001)), Some(48));
    assert_eq!(th.run(|tx| inv.get(tx, 1003)), Some(6));
    println!("inventory_db OK");
}
