//! Quickstart: a persistent key/value map that survives a power failure.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the full lifecycle: build a simulated Optane machine, format a
//! persistent heap, run transactions against a persistent hash map, pull
//! the plug, reboot, recover, and read the data back.

use optane_ptm::palloc::PHeap;
use optane_ptm::pmem_sim::{DurabilityDomain, Machine, MachineConfig};
use optane_ptm::pstructs::PHashMap;
use optane_ptm::ptm::{recover, Ptm, PtmConfig, TxThread};

fn main() {
    // 1. A simulated Optane DC machine under the ADR durability domain
    //    (explicit clwb+sfence required, like 2019-era hardware), with
    //    persistence tracking on so we can crash it.
    let machine = Machine::new(MachineConfig {
        domain: DurabilityDomain::Adr,
        track_persistence: true,
        ..MachineConfig::default()
    });

    // 2. A persistent heap and the PTM runtime (orec-lazy / redo).
    let heap = PHeap::format(&machine, "app-heap", 1 << 18, 8);
    let ptm = Ptm::new(PtmConfig::redo());
    let mut th = TxThread::new(ptm, heap.clone(), machine.session(0));

    // 3. Create a persistent map and anchor it in a heap root slot so it
    //    is findable after a restart.
    let map = th.run(|tx| PHashMap::create(tx, 256));
    heap.set_root(th.session_mut(), 0, map.header());

    // 4. Transactions.
    for (k, v) in [(1u64, 100u64), (2, 200), (3, 300)] {
        th.run(|tx| map.insert(tx, k, v).map(|_| ()));
    }
    th.run(|tx| map.update(tx, 2, |v| v + 22));
    println!("before crash: map has {} entries", th.run(|tx| map.len(tx)));

    // 5. Power failure. The crash image contains exactly what ADR
    //    guarantees (plus an adversarial subset of unflushed lines).
    let image = machine.crash(0xDEAD_BEEF);
    println!("power failure! rebooting from the surviving image...");

    // 6. Reboot: rebuild the machine from the image, run PTM recovery
    //    (replays committed redo logs, rolls back in-flight undo logs),
    //    then re-attach the heap (Makalu-style GC reclaims leaks).
    let machine2 = Machine::reboot(
        &image,
        MachineConfig {
            domain: DurabilityDomain::Adr,
            track_persistence: true,
            ..MachineConfig::default()
        },
    );
    let report = recover(&machine2);
    println!(
        "recovery: {} logs scanned, {} redo replayed, {} undo rolled back",
        report.logs_scanned, report.redo_replayed, report.undo_rolled_back
    );
    let (heap2, gc) = PHeap::attach(machine2.pool(heap.pool().id())).expect("heap attach");
    println!(
        "gc: {} blocks scanned, {} live, {} reclaimed ({} leaked)",
        gc.blocks_scanned, gc.live_blocks, gc.reclaimed_blocks, gc.leaked_blocks
    );

    // 7. The data is still there.
    let ptm2 = Ptm::new(PtmConfig::redo());
    let mut th2 = TxThread::new(ptm2, heap2.clone(), machine2.session(0));
    let map2 = PHashMap::from_header(heap2.root_raw(0));
    for k in [1u64, 2, 3] {
        let v = th2.run(|tx| map2.get(tx, k));
        println!("after recovery: map[{k}] = {v:?}");
    }
    assert_eq!(th2.run(|tx| map2.get(tx, 2)), Some(222));
    println!("quickstart OK");
}
