//! A minimal, dependency-free drop-in for the subset of the `rand` 0.8
//! API this workspace uses: [`rngs::SmallRng`], [`SeedableRng`], and the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`).
//!
//! The container this repository builds in has no access to a crates-io
//! registry, so the upstream crate cannot be fetched; this shim keeps the
//! call sites source-compatible. The generator is xoshiro256++ seeded via
//! SplitMix64 (the same construction upstream `SmallRng` uses on 64-bit
//! targets). Streams are deterministic per seed but are **not**
//! bit-identical to upstream `rand` — nothing in this repo depends on
//! upstream's exact streams, only on per-seed determinism.

pub mod rngs;

pub use rngs::SmallRng;

/// Core generator interface: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` and `from_seed` are used
/// in this workspace).
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (upstream: the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable as [`Rng::gen_range`] endpoints.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high)`; `high > low` checked by caller.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample in `[low, high]`; `high >= low` checked by caller.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + r) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument for [`Rng::gen_range`] (upstream `SampleRange`).
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u64..=15);
            assert!((5..=15).contains(&w));
            let x: usize = r.gen_range(0..3usize);
            assert!(x < 3);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn standard_samples_full_width() {
        let mut r = SmallRng::seed_from_u64(4);
        // Over a few draws the high and low halves of u64 must both vary.
        let xs: Vec<u64> = (0..16).map(|_| r.gen::<u64>()).collect();
        assert!(xs.iter().any(|x| x >> 32 != 0));
        assert!(xs.iter().any(|x| x & 0xFFFF_FFFF != 0));
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
