//! Concrete generators. Only [`SmallRng`] is provided — the single
//! generator every call site in this workspace uses.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step: expands a 64-bit seed into stream of well-mixed words
/// (the canonical xoshiro seeding procedure).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, non-cryptographic PRNG: xoshiro256++.
///
/// Matches the role (not the exact stream) of upstream `rand`'s
/// `SmallRng` on 64-bit targets.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            let mut sm = 0xDEAD_BEEFu64;
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
        }
        SmallRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut r = SmallRng::from_seed([0; 32]);
        assert_ne!(r.next_u64(), 0);
        let mut z = SmallRng::seed_from_u64(0);
        let a = z.next_u64();
        let b = z.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn from_seed_uses_all_bytes() {
        let mut s1 = [0u8; 32];
        let mut s2 = [0u8; 32];
        s1[0] = 1;
        s2[31] = 1;
        let mut a = SmallRng::from_seed(s1);
        let mut b = SmallRng::from_seed(s2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
