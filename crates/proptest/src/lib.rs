//! A minimal, dependency-free drop-in for the subset of `proptest` this
//! workspace uses. The container this repository builds in has no access
//! to a crates-io registry, so the upstream crate cannot be fetched.
//!
//! Supported surface (everything the repo's property tests call):
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! * strategies: integer ranges, tuples, `any::<T>()`, `Just`,
//!   `prop::collection::vec(strategy, size)`, `.prop_map(f)`,
//!   `prop_oneof![..]`
//! * assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//!
//! Semantics differ from upstream in one deliberate way: failures panic
//! immediately with the failing case index and there is **no shrinking**.
//! Case generation is deterministic — the RNG is seeded from the test
//! function's name — so a failure reproduces on every run.

use std::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng};

pub mod collection;
pub mod option;

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Always yields a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// Types with a default whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl<T: rand::Standard> Arbitrary for T {
    fn arbitrary(rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

/// Strategy over `T`'s whole domain.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Failure value for test bodies that use `?` / early `return Ok(())`
/// (upstream runs each case in a function returning
/// `Result<(), TestCaseError>`; the shim does the same via a closure).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Deterministic per-test RNG (used by the `proptest!` expansion).
pub fn __seed_rng(test_name: &str) -> SmallRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    SmallRng::seed_from_u64(h.finish())
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    // The closure is load-bearing: it gives `$body` a scope
                    // where `?` on TestCaseError works, as in real proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case {} failed: {}", __case, e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything the repo's tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Upstream's `prelude::prop` namespace.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0u64..8, 1u64..3)) {
            prop_assert!(a < 8 && (1..3).contains(&b));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_map_cover_arms(x in prop_oneof![
            (0u64..4).prop_map(|v| v),
            Just(99u64),
        ]) {
            prop_assert!(x < 4 || x == 99);
        }

        #[test]
        fn any_bool_is_fine(b in any::<bool>(), s in any::<u64>()) {
            let _ = (b, s);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::__seed_rng("some::test");
        let mut b = crate::__seed_rng("some::test");
        let sa = crate::Strategy::sample(&(0u64..1_000_000), &mut a);
        let sb = crate::Strategy::sample(&(0u64..1_000_000), &mut b);
        assert_eq!(sa, sb);
    }
}
