//! Collection strategies (`prop::collection::vec`).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::Strategy;

/// Accepted size arguments for [`vec`]: `n`, `a..b`, `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec strategy: empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec strategy: empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
