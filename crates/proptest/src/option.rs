//! Option strategies (`prop::option::of`).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::Strategy;

/// `None` half the time, `Some(inner sample)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut SmallRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}
