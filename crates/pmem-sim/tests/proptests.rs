//! Property-based tests of the simulator's core invariants.

use pmem_sim::bandwidth::BwServer;
use pmem_sim::cache::{line_key, CacheSim};
use pmem_sim::{DurabilityDomain, Machine, MachineConfig, MediaKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A bandwidth server never loses service time: after any request
    /// sequence submitted at time 0, the backlog equals the total service.
    #[test]
    fn bw_server_conserves_service(services in prop::collection::vec(0u64..1_000, 1..50)) {
        let s = BwServer::new();
        let total: u64 = services.iter().sum();
        for &svc in &services {
            s.request(0, svc);
        }
        prop_assert_eq!(s.backlog(0), total);
    }

    /// Grants are FIFO-monotone: each request finishes no earlier than the
    /// previous one (same arrival time).
    #[test]
    fn bw_server_grants_monotone(services in prop::collection::vec(1u64..500, 2..40)) {
        let s = BwServer::new();
        let mut last = 0;
        for &svc in &services {
            let g = s.request(0, svc);
            prop_assert!(g.finish >= last);
            last = g.finish;
        }
    }

    /// After a touch, a line is present; after clwb it is clean but still
    /// present — regardless of interleaving with other keys.
    #[test]
    fn cache_clwb_cleans_but_retains(
        keys in prop::collection::vec((0u32..4, 0u64..256), 1..100),
        probe_pool in 0u32..4,
        probe_line in 0u64..256,
    ) {
        let c = CacheSim::new(1 << 20);
        for &(p, l) in &keys {
            c.access(line_key(p, l), true);
        }
        let k = line_key(probe_pool, probe_line);
        c.access(k, true);
        prop_assert!(c.present(k));
        prop_assert!(c.dirty(k));
        c.clwb(k);
        prop_assert!(c.present(k));
        prop_assert!(!c.dirty(k));
    }

    /// Stores under eADR are always preserved by a crash (any seed); the
    /// same stores under ADR are preserved iff flushed+fenced.
    #[test]
    fn crash_preserves_exactly_the_guaranteed(
        writes in prop::collection::vec((0u64..64, 1u64..u64::MAX), 1..30),
        flush_mask in any::<u32>(),
        seed in any::<u64>(),
    ) {
        for domain in [DurabilityDomain::Adr, DurabilityDomain::Eadr] {
            let m = Machine::new(MachineConfig::functional(domain));
            let p = m.alloc_pool("t", 64, MediaKind::Optane);
            let mut s = m.session(0);
            let mut flushed = std::collections::HashMap::new();
            let mut current = std::collections::HashMap::new();
            for (i, &(w, v)) in writes.iter().enumerate() {
                s.store(p.addr(w), v);
                current.insert(w, v);
                if flush_mask & (1 << (i % 32)) != 0 {
                    s.clwb(p.addr(w));
                    s.sfence();
                    // Everything in the line is now durable at its
                    // current value; coarse model: track per-word.
                    let line = w / 8;
                    for lw in line * 8..(line + 1) * 8 {
                        if let Some(&cv) = current.get(&lw) {
                            flushed.insert(lw, cv);
                        }
                    }
                }
            }
            let img = m.crash(seed);
            for w in 0..64u64 {
                let got = img.pools[0].words[w as usize];
                match domain {
                    DurabilityDomain::Eadr => {
                        // Cache-visible value survives exactly.
                        prop_assert_eq!(got, *current.get(&w).unwrap_or(&0));
                    }
                    DurabilityDomain::Adr => {
                        // Guaranteed: flushed value or a later current
                        // value (the adversary may persist more, never
                        // less, and never an unrelated value).
                        let f = *flushed.get(&w).unwrap_or(&0);
                        let c = *current.get(&w).unwrap_or(&0);
                        prop_assert!(
                            got == f || got == c,
                            "word {} got {} (flushed {}, current {})", w, got, f, c
                        );
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Reboot from a crash image reproduces the image exactly.
    #[test]
    fn reboot_is_faithful(
        writes in prop::collection::vec((0u64..64, any::<u64>()), 1..30),
        seed in any::<u64>(),
    ) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let p = m.alloc_pool("t", 64, MediaKind::Optane);
        let mut s = m.session(0);
        for &(w, v) in &writes {
            s.store(p.addr(w), v);
        }
        let img = m.crash(seed);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Eadr));
        let p2 = m2.pool(p.id());
        for w in 0..64u64 {
            prop_assert_eq!(p2.raw_load(w), img.pools[0].words[w as usize]);
        }
    }

    /// Virtual time is monotone and additive for a single thread.
    #[test]
    fn session_time_is_monotone(ops in prop::collection::vec(0u64..3, 1..200)) {
        let m = Machine::new(MachineConfig {
            domain: DurabilityDomain::Adr,
            ..MachineConfig::default()
        });
        let p = m.alloc_pool("t", 1 << 12, MediaKind::Optane);
        let mut s = m.session(0);
        let mut last = 0;
        for (i, &op) in ops.iter().enumerate() {
            let addr = p.addr((i as u64 * 17) % (1 << 11));
            match op {
                0 => { s.load(addr); }
                1 => { s.store(addr, i as u64); }
                _ => { s.clwb(addr); s.sfence(); }
            }
            prop_assert!(s.now() >= last);
            last = s.now();
        }
    }
}
