//! Per-thread timed access to the simulated machine.
//!
//! A [`MemSession`] charges every access's modeled latency to the thread's
//! virtual clock, routes misses and writebacks through the shared
//! bandwidth servers, and maintains the `clwb`/`sfence` state machine that
//! the ADR durability domain requires:
//!
//! * `store` updates the cache-visible value (and dirties the L3 line);
//! * `clwb` issues an asynchronous writeback of a dirty line toward the
//!   WPQ, recording its completion time (and, when persistence tracking is
//!   on, snapshotting the flushed values);
//! * `sfence` waits for the thread's outstanding flushes and then — under
//!   ADR — commits the snapshots to the durable shadow.
//!
//! Under eADR and the PDRAM domains, `clwb`/`sfence` are free no-ops and
//! stores are durable once cache-visible; PDRAM additionally serves
//! Optane-backed pools at DRAM latency while charging asynchronous
//! writeback traffic against the Optane write path (stalling only when the
//! backlog bound is exceeded — the paper's WPQ-saturation wall).

use std::collections::HashSet;
use std::sync::Arc;

use crate::cache::{line_key, Access};
use crate::clock::ClockHandle;
use crate::domain::DurabilityDomain;
use crate::inject::SiteKind;
use crate::machine::Machine;
use crate::pool::{MediaKind, PAddr, PmemPool, PoolId};
use crate::stats::MachineStats;
use crate::WORDS_PER_LINE;

/// A line pending durability: flushed by `clwb`, committed by `sfence`.
struct PendingFlush {
    pool: PoolId,
    line: u64,
    /// Captured at `clwb` time iff persistence tracking is enabled.
    snapshot: Option<[u64; WORDS_PER_LINE]>,
    /// Capture epoch ordering this flush against other flushes of the
    /// same line.
    epoch: u64,
}

/// Per-thread access handle. Not `Sync`; create one per virtual thread.
pub struct MemSession {
    machine: Arc<Machine>,
    tid: usize,
    clock: ClockHandle,
    /// Pool-id-indexed cache of pool handles (append-only registry).
    pool_cache: Vec<Option<Arc<PmemPool>>>,
    pending: Vec<PendingFlush>,
    /// WPQ-acceptance time of this thread's latest outstanding flush.
    /// ADR guarantees stores once they reach the memory controller's
    /// queues, so `sfence` waits for queue acceptance — the drain to
    /// media is asynchronous (its saturation is modeled by the
    /// backlog-bound stalls at `clwb` time).
    last_flush_accept: u64,
    /// Flight-recorder ring, captured from the machine's attached tracer
    /// at construction (None when tracing is off — the common case — so
    /// every record site is a single branch on an owned Option). The
    /// ring is submitted back to the sink when the session drops.
    ring: Option<(Arc<trace::TraceSink>, trace::TraceRing)>,
    /// Telemetry sample ring, captured from the machine's attached
    /// sampler at construction; every event that reaches
    /// [`MemSession::trace_event`] is also folded into the current
    /// sampling window. Ingest never touches the clock, so sampling is
    /// invisible to virtual time. Submitted back on drop.
    samples: Option<(Arc<obs::Sampler>, obs::SampleRing)>,
    /// Inside a hardware-transactional section ([`Self::htm_begin`] ..
    /// commit/abort). Flush/fence instructions are illegal in a section
    /// (they abort real HTM — the paper's §V TSX observation); debug
    /// builds assert it.
    htm_active: bool,
    /// Conflict serial sampled at `xbegin`.
    htm_start_serial: u64,
    /// Line-granular footprint of the current section (reads + writes).
    htm_footprint: HashSet<u64>,
    /// Write subset of the footprint: the lines published at `xend`.
    htm_writes: HashSet<u64>,
}

impl MemSession {
    pub(crate) fn new(machine: Arc<Machine>, tid: usize, clock: ClockHandle) -> Self {
        let ring = machine.tracer().map(|sink| {
            let ring = sink.ring();
            (sink, ring)
        });
        let samples = machine.sampler().map(|sampler| {
            let ring = sampler.ring();
            (sampler, ring)
        });
        MemSession {
            machine,
            tid,
            clock,
            pool_cache: Vec::new(),
            pending: Vec::new(),
            last_flush_accept: 0,
            ring,
            samples,
            htm_active: false,
            htm_start_serial: 0,
            htm_footprint: HashSet::new(),
            htm_writes: HashSet::new(),
        }
    }

    // ---- hardware transactional memory -------------------------------

    /// Whether this machine offers hardware transactions at all.
    #[inline]
    pub fn htm_enabled(&self) -> bool {
        self.machine.config().htm.enabled
    }

    /// Begin a hardware-transactional section (`xbegin`): charges the
    /// begin cost and samples the machine's conflict serial. Sections do
    /// not nest.
    pub fn htm_begin(&mut self) {
        debug_assert!(!self.htm_active, "hardware sections do not nest");
        self.htm_active = true;
        self.htm_start_serial = self.machine.htm_serial_now();
        self.htm_footprint.clear();
        self.htm_writes.clear();
        self.clock.advance(self.machine.config().htm.begin_ns);
    }

    /// Whether a hardware section is currently open.
    #[inline]
    pub fn htm_in_section(&self) -> bool {
        self.htm_active
    }

    /// Track a read inside the section at line granularity. `false`
    /// means the footprint exceeded the modeled capacity — the caller
    /// must abort the section (capacity abort).
    #[inline]
    pub fn htm_track_read(&mut self, addr: PAddr) -> bool {
        debug_assert!(self.htm_active, "htm_track_read outside a section");
        self.htm_footprint
            .insert(line_key(addr.pool().0, addr.line()));
        self.htm_footprint.len() <= self.machine.config().htm.capacity_lines
    }

    /// Track a (buffered) write inside the section at line granularity;
    /// write lines are also part of the read/write footprint. `false` is
    /// a capacity abort, as for [`Self::htm_track_read`].
    #[inline]
    pub fn htm_track_write(&mut self, addr: PAddr) -> bool {
        debug_assert!(self.htm_active, "htm_track_write outside a section");
        let key = line_key(addr.pool().0, addr.line());
        self.htm_footprint.insert(key);
        self.htm_writes.insert(key);
        self.htm_footprint.len() <= self.machine.config().htm.capacity_lines
    }

    /// Current line-granular footprint of the open section.
    #[inline]
    pub fn htm_footprint_lines(&self) -> usize {
        self.htm_footprint.len()
    }

    /// End the section with a conflict check (`xend`): charges the
    /// commit cost; atomically verifies no concurrent committer
    /// published a line of this section's footprint since `xbegin`, and
    /// publishes this section's write lines. `false` = conflict abort
    /// (nothing published). Either way the section is closed.
    pub fn htm_commit(&mut self) -> bool {
        debug_assert!(self.htm_active, "htm_commit outside a section");
        self.clock.advance(self.machine.config().htm.commit_ns);
        let ok = self.machine.htm_try_commit(
            self.htm_start_serial,
            &self.htm_footprint,
            &self.htm_writes,
        );
        self.htm_close();
        ok
    }

    /// End the section without a conflict check or publication: the
    /// read-only retire, for callers whose per-read validation already
    /// guarantees a consistent snapshot as of the start timestamp.
    /// Charges the commit cost.
    pub fn htm_commit_readonly(&mut self) {
        debug_assert!(self.htm_active, "htm_commit_readonly outside a section");
        self.clock.advance(self.machine.config().htm.commit_ns);
        self.htm_close();
    }

    /// Abort the section (`xabort` or an internal conflict/capacity
    /// event): discards tracking state, publishes nothing, charges
    /// nothing beyond what the section already paid.
    pub fn htm_abort(&mut self) {
        self.htm_close();
    }

    fn htm_close(&mut self) {
        self.htm_active = false;
        self.htm_footprint.clear();
        self.htm_writes.clear();
    }

    /// Publish committed lines on behalf of a software (non-HTM) commit
    /// so overlapping open sections conflict-abort against it. Call
    /// while the commit still excludes racing readers (e.g. before
    /// releasing its write locks).
    pub fn htm_publish_lines(&mut self, lines: impl IntoIterator<Item = PAddr>) {
        self.machine
            .htm_publish(lines.into_iter().map(|a| line_key(a.pool().0, a.line())));
    }

    /// Record a flight-recorder event at the current virtual time. A
    /// single branch when tracing is off; used by this session's own
    /// durability instrumentation and by the PTM layer for transaction
    /// lifecycle events.
    #[inline]
    pub fn trace_event(&mut self, kind: trace::EventKind, a: u64, b: u64) {
        if let Some((_, ring)) = self.ring.as_mut() {
            ring.record(self.clock.now(), kind, a, b);
        }
        if let Some((_, ring)) = self.samples.as_mut() {
            ring.ingest(self.clock.now(), kind, a, b);
        }
    }

    /// Whether this session is recording trace events or telemetry
    /// samples (callers use this to skip computing event payloads).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.ring.is_some() || self.samples.is_some()
    }

    /// The virtual thread id of this session.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The owning machine.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Charge `ns` of work to this thread (metadata accesses, compute).
    #[inline]
    pub fn advance(&mut self, ns: u64) {
        self.clock.advance(ns);
    }

    /// Idle this thread until virtual time `target` (open-loop drivers
    /// waiting for a request's arrival time). No-op if already past it.
    #[inline]
    pub fn advance_to(&mut self, target: u64) {
        self.clock.advance_to(target);
    }

    /// Publish the clock (call before blocking on app-level sync).
    pub fn publish_clock(&mut self) {
        self.clock.publish();
    }

    /// Mark this virtual thread finished for the run.
    pub fn finish(&mut self) {
        self.clock.finish();
    }

    /// Enter a crash-atomic section (see
    /// [`crate::clock::ClockHandle::enter_atomic`]): a simulated power
    /// failure will not land in the middle of it.
    pub fn enter_atomic(&mut self) {
        self.clock.enter_atomic();
    }

    /// Leave a crash-atomic section.
    pub fn exit_atomic(&mut self) {
        self.clock.exit_atomic();
    }

    /// Report a persistence-relevant event to the machine's crash-site
    /// injector (no-op unless one is armed). Called *before* the event's
    /// effect, so site N enumerates "crash just before event N".
    #[inline]
    fn site(&self, kind: SiteKind) {
        self.machine.note_site(kind, self.clock.in_atomic());
    }

    #[inline]
    fn resolve(&mut self, id: PoolId) -> Arc<PmemPool> {
        let idx = id.0 as usize;
        if idx >= self.pool_cache.len() {
            self.pool_cache.resize(idx + 1, None);
        }
        if self.pool_cache[idx].is_none() {
            self.pool_cache[idx] = Some(self.machine.pool(id));
        }
        Arc::clone(self.pool_cache[idx].as_ref().unwrap())
    }

    /// Whether accesses to `pool` pay Optane or DRAM latency under the
    /// active domain.
    #[inline]
    fn effective_optane(&self, pool: &PmemPool) -> bool {
        pool.media_kind() == MediaKind::Optane
            && !self
                .machine
                .domain()
                .serves_at_dram_speed(pool.media_kind(), pool.class())
    }

    /// Whether writes to `pool` generate deferred Optane writeback traffic
    /// (PDRAM / PDRAM-Lite accelerated pools).
    #[inline]
    fn pdram_writeback(&self, pool: &PmemPool) -> bool {
        pool.media_kind() == MediaKind::Optane
            && self
                .machine
                .domain()
                .serves_at_dram_speed(pool.media_kind(), pool.class())
    }

    /// Charge synchronous back-pressure from an over-bound write-server
    /// backlog. One physical stall is attributed exactly once: to
    /// `wpq_stall_ns` (with a `WpqStall` trace event) when the write
    /// landed on the Optane path, otherwise to `dram_write_stall_ns` —
    /// so the WPQ counter and the trace-derived stall total both mean
    /// exactly "Optane write-pending-queue pressure" and always agree.
    fn backpressure(&mut self, optane: bool, backlog: u64, bound: u64) {
        if backlog <= bound {
            return;
        }
        let stall = backlog - bound;
        if optane {
            MachineStats::bump(&self.machine.stats.wpq_stall_ns, stall);
            self.trace_event(trace::EventKind::WpqStall, stall, backlog);
        } else {
            MachineStats::bump(&self.machine.stats.dram_write_stall_ns, stall);
        }
        self.clock.advance(stall);
    }

    /// Persist a displaced dirty line's contents. MUST run synchronously
    /// with the cache-slot replacement, before any clock advance: an
    /// advance is a freeze/crash park point, and a crash landing between
    /// the slot replacement and this persist would lose data that a
    /// concurrent thread's `clwb` (correctly) skipped because the line
    /// had already left the cache.
    fn persist_victim(&mut self, victim_key: u64) {
        if self.machine.tracking() && self.machine.domain() == DurabilityDomain::Adr {
            let pool_id = PoolId((victim_key >> 44) as u32);
            let line = victim_key & ((1 << 44) - 1);
            let pool = self.resolve(pool_id);
            pool.persist_line_now(line);
        }
    }

    /// Charge a displaced dirty line's writeback to the appropriate
    /// bandwidth server (timing only; durability handled by
    /// [`Self::persist_victim`]).
    fn writeback_victim(&mut self, victim_key: u64) {
        let pool_id = PoolId((victim_key >> 44) as u32);
        let pool = self.resolve(pool_id);
        // A PDRAM-accelerated pool's L3 victims land in the DRAM cache.
        let optane = self.effective_optane(&pool);
        let m = self.machine.model();
        let g = self
            .machine
            .servers
            .write_for(optane, victim_key)
            .request(self.now(), m.write_line_ns(optane));
        MachineStats::bump(&self.machine.stats.evictions, 1);
        if optane {
            MachineStats::bump(&self.machine.stats.optane_lines_written, 1);
        } else {
            MachineStats::bump(&self.machine.stats.dram_lines_written, 1);
        }
        // Evictions are asynchronous: the thread only stalls when the
        // write server's backlog bound is exceeded.
        let bound = m.wpq_backlog_ns();
        self.backpressure(optane, g.backlog, bound);
    }

    fn miss_fill(&mut self, pool: &PmemPool, key: u64, dirty_victim: Option<u64>, rfo: bool) {
        // Durability of the displaced line first — before any advance
        // (park point). See `persist_victim`.
        if let Some(v) = dirty_victim {
            self.site(SiteKind::Eviction);
            self.persist_victim(v);
        }
        let m = self.machine.model().clone();
        // For PDRAM-accelerated pools the L3 miss goes through the DRAM
        // cache of Optane pages: a hit there is a DRAM access, a miss pays
        // Optane latency while the page is pulled in (Fig. 8's
        // working-set-exceeds-DRAM regime).
        let optane = if self.pdram_writeback(pool) {
            match self.machine.dram_cache.access(key, rfo) {
                Access::Hit => false,
                Access::Miss { .. } => true,
            }
        } else {
            self.effective_optane(pool)
        };
        // Bandwidth queueing on the read path...
        let g = self
            .machine
            .servers
            .read_for(optane)
            .request(self.now(), m.read_line_ns(optane));
        self.clock.advance_to(g.finish);
        // ...plus the media access latency itself.
        let mut lat = m.load_miss_ns(optane);
        if rfo {
            lat += m.store_rfo_extra_ns;
        }
        self.clock.advance(lat);
        MachineStats::bump(&self.machine.stats.l3_misses, 1);
        if let Some(v) = dirty_victim {
            self.writeback_victim(v);
        }
    }

    /// Timed 64-bit load.
    pub fn load(&mut self, addr: PAddr) -> u64 {
        let pool = self.resolve(addr.pool());
        let key = line_key(addr.pool().0, addr.line());
        MachineStats::bump(&self.machine.stats.loads, 1);
        match self.machine.cache.access(key, false) {
            Access::Hit => {
                self.clock.advance(self.machine.model().l3_hit_ns);
                MachineStats::bump(&self.machine.stats.l3_hits, 1);
            }
            Access::Miss { dirty_victim } => {
                self.miss_fill(&pool, key, dirty_victim, false);
            }
        }
        pool.raw_load(addr.word())
    }

    /// Timed 64-bit store (becomes durable according to the domain rules).
    pub fn store(&mut self, addr: PAddr, value: u64) {
        self.site(SiteKind::Store);
        let pool = self.resolve(addr.pool());
        let key = line_key(addr.pool().0, addr.line());
        MachineStats::bump(&self.machine.stats.stores, 1);
        match self.machine.cache.access(key, true) {
            Access::Hit => {
                self.clock.advance(self.machine.model().store_hit_ns);
                MachineStats::bump(&self.machine.stats.l3_hits, 1);
            }
            Access::Miss { dirty_victim } => {
                self.miss_fill(&pool, key, dirty_victim, true);
                // Creating a new dirty line under PDRAM schedules deferred
                // Optane writeback traffic.
                if self.pdram_writeback(&pool) {
                    let m = self.machine.model();
                    let g = self
                        .machine
                        .servers
                        .write_for(true, key)
                        .request(self.now(), m.optane_write_line_ns);
                    MachineStats::bump(&self.machine.stats.optane_lines_written, 1);
                    let bound = m.pdram_backlog_ns();
                    self.backpressure(true, g.backlog, bound);
                }
            }
        }
        pool.raw_store(addr.word(), value);
    }

    /// Timed compare-and-swap (used by allocator free lists and tests).
    pub fn cas(&mut self, addr: PAddr, expect: u64, new: u64) -> Result<u64, u64> {
        self.site(SiteKind::Store);
        let pool = self.resolve(addr.pool());
        let key = line_key(addr.pool().0, addr.line());
        MachineStats::bump(&self.machine.stats.stores, 1);
        match self.machine.cache.access(key, true) {
            Access::Hit => {
                self.clock.advance(self.machine.model().store_hit_ns);
                MachineStats::bump(&self.machine.stats.l3_hits, 1);
            }
            Access::Miss { dirty_victim } => self.miss_fill(&pool, key, dirty_victim, true),
        }
        pool.raw_cas(addr.word(), expect, new)
    }

    /// Timed `clwb` of the line containing `addr`.
    ///
    /// Free under eADR-class domains (the PTM elides the instruction; the
    /// session also guards so callers need not special-case).
    pub fn clwb(&mut self, addr: PAddr) {
        if !self.machine.domain().requires_flushes() {
            return;
        }
        debug_assert!(
            !self.htm_active,
            "clwb inside a hardware section would abort it"
        );
        self.site(SiteKind::Clwb);
        let pool = self.resolve(addr.pool());
        let key = line_key(addr.pool().0, addr.line());
        let optane = self.effective_optane(&pool);
        let m = self.machine.model().clone();
        MachineStats::bump(&self.machine.stats.clwbs, 1);
        let was_dirty = self.machine.cache.clwb(key);
        self.trace_event(trace::EventKind::Clwb, key, was_dirty as u64);
        // Record the durability obligation regardless of the line's dirty
        // state, and before any clock advance (a park point): a clean
        // line may have been cleaned by *another thread's* in-flight
        // `clwb` whose fence has not executed; this thread's
        // `clwb`+`sfence` must still guarantee the data (flush+fence by
        // any thread after the last store is the architectural contract).
        if self.machine.tracking() && pool.media_kind() == MediaKind::Optane {
            let (snapshot, epoch) = pool.snapshot_line(addr.line());
            self.pending.push(PendingFlush {
                pool: addr.pool(),
                line: addr.line(),
                snapshot: Some(snapshot),
                epoch,
            });
        }
        if !was_dirty {
            self.clock.advance(m.clwb_clean_ns);
            return;
        }
        self.clock.advance(m.clwb_ns(optane));
        MachineStats::bump(&self.machine.stats.clwb_writebacks, 1);
        if optane {
            MachineStats::bump(&self.machine.stats.optane_lines_written, 1);
        } else {
            MachineStats::bump(&self.machine.stats.dram_lines_written, 1);
        }
        let g = self
            .machine
            .servers
            .write_for(optane, key)
            .request(self.now(), m.write_line_ns(optane));
        // The flush is durable once the WPQ accepts it — when its bank
        // starts serving it — not when the media write completes.
        self.site(SiteKind::WpqAccept);
        let accept = g
            .finish
            .saturating_sub(m.write_line_ns(optane))
            .max(self.now());
        self.last_flush_accept = self.last_flush_accept.max(accept);
        self.trace_event(trace::EventKind::WpqAccept, g.backlog, accept);
        // WPQ bound: a full queue back-pressures the flusher synchronously.
        let bound = m.wpq_backlog_ns();
        self.backpressure(optane, g.backlog, bound);
    }

    /// Batched `clwb`: drain a planner's worth of line addresses in an
    /// order that interleaves Optane write banks.
    ///
    /// The flush planner (`ptm`'s `LineSet`) hands over one fence
    /// window's unique lines at once; issuing them round-robin across
    /// the banded write path spreads WPQ load so no single bank's
    /// backlog dominates the following `sfence` wait. The schedule is a
    /// pure function of the line keys (bank hash + arrival order), so
    /// crash-site enumeration stays deterministic: each line still goes
    /// through the ordinary [`Self::clwb`] site/state machine.
    ///
    /// Drains `lines` (leaving it empty for reuse); free under
    /// eADR-class domains.
    pub fn clwb_batch(&mut self, lines: &mut Vec<PAddr>) {
        if !self.machine.domain().requires_flushes() || lines.is_empty() {
            lines.clear();
            return;
        }
        MachineStats::bump(&self.machine.stats.clwb_batches, 1);
        self.trace_event(trace::EventKind::ClwbBatch, lines.len() as u64, 0);
        if lines.len() > 1 {
            let banks = self.machine.servers.optane_write.len();
            let mut seq = vec![0u32; banks];
            let mut keyed: Vec<(u32, u32, PAddr)> = lines
                .drain(..)
                .map(|a| {
                    let bank = self
                        .machine
                        .servers
                        .optane_bank_of(line_key(a.pool().0, a.line()));
                    let s = seq[bank];
                    seq[bank] += 1;
                    (s, bank as u32, a)
                })
                .collect();
            // Unique (round, bank) pairs: round-robin one line per bank
            // per round, deterministic for a given input order.
            keyed.sort_unstable_by_key(|&(s, b, _)| (s, b));
            for (_, _, a) in keyed {
                self.clwb(a);
            }
        } else {
            let a = lines.pop().unwrap();
            self.clwb(a);
        }
    }

    /// Timed `sfence`: waits for this thread's outstanding flushes, then
    /// commits their durability (under ADR).
    pub fn sfence(&mut self) {
        if !self.machine.domain().requires_flushes() {
            return;
        }
        debug_assert!(
            !self.htm_active,
            "sfence inside a hardware section would abort it"
        );
        self.site(SiteKind::Sfence);
        MachineStats::bump(&self.machine.stats.sfences, 1);
        let now = self.now();
        let wait = self.last_flush_accept.saturating_sub(now);
        // Recorded before the wait is charged, so the event spans the
        // fence-wait interval [ts, ts+wait].
        self.trace_event(trace::EventKind::Sfence, wait, 0);
        if wait > 0 {
            MachineStats::bump(&self.machine.stats.fence_wait_ns, wait);
            self.clock.advance(wait);
        }
        self.clock.advance(self.machine.model().sfence_ns);
        self.commit_pending();
    }

    /// Commit this thread's pending flush snapshots to the durable
    /// shadow (the post-wait half of `sfence`, shared with
    /// [`Self::fence_join`]).
    fn commit_pending(&mut self) {
        if self.machine.tracking() && self.machine.domain() == DurabilityDomain::Adr {
            for pf in self.pending.drain(..) {
                let pool = {
                    let idx = pf.pool.0 as usize;
                    Arc::clone(self.pool_cache[idx].as_ref().expect("pool cached at clwb"))
                };
                match &pf.snapshot {
                    Some(snap) => pool.persist_line_snapshot(pf.line, snap, pf.epoch),
                    None => pool.persist_line_now(pf.line),
                }
            }
        } else {
            // NoPowerReserve: the WPQ may be lost; flushed lines get no
            // durability guarantee (the crash adversary decides).
            self.pending.clear();
        }
    }

    /// WPQ-acceptance time of this thread's latest outstanding flush
    /// (what the next `sfence` would wait for). The PTM group-commit
    /// window uses this to decide whether an already-completed fence
    /// covers this thread's flushes.
    #[inline]
    pub fn last_flush_accept(&self) -> u64 {
        self.last_flush_accept
    }

    /// Join a group-commit fence instead of executing a new `sfence`.
    ///
    /// `cover_done` is the virtual time at which the covering fence
    /// completed; the caller guarantees `cover_done >=
    /// last_flush_accept`, i.e. every flush this thread issued had been
    /// accepted by the WPQ when the covering fence drained it. Waits
    /// (if at all) only until `cover_done`, commits the pending
    /// snapshots exactly like `sfence`, but issues no fence of its own:
    /// no `sfences` bump, no `sfence_ns` charge, no `Sfence` trace
    /// event — a `FenceJoin` event records the elision instead, which
    /// keeps the analyzer's trace-vs-counter cross-check exact.
    pub fn fence_join(&mut self, cover_done: u64) {
        if !self.machine.domain().requires_flushes() {
            return;
        }
        self.site(SiteKind::Sfence);
        let now = self.now();
        let target = cover_done.max(self.last_flush_accept);
        let wait = target.saturating_sub(now);
        self.trace_event(trace::EventKind::FenceJoin, wait, cover_done);
        if wait > 0 {
            self.clock.advance(wait);
        }
        self.commit_pending();
    }

    /// Convenience: `clwb` every line covering `words` words from `addr`,
    /// then `sfence`.
    pub fn persist_range(&mut self, addr: PAddr, words: u64) {
        if !self.machine.domain().requires_flushes() {
            return;
        }
        let first = addr.line();
        let last = addr.offset(words.saturating_sub(1)).line();
        for line in first..=last {
            self.clwb(PAddr::new(addr.pool(), line * WORDS_PER_LINE as u64));
        }
        self.sfence();
    }
}

impl Drop for MemSession {
    fn drop(&mut self) {
        if let Some((sink, ring)) = self.ring.take() {
            sink.submit(self.tid as u32, &ring);
        }
        if let Some((sampler, ring)) = self.samples.take() {
            sampler.submit(self.tid as u32, ring);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::DurabilityDomain as DD;

    fn machine(domain: DD, track: bool) -> Arc<Machine> {
        Machine::new(MachineConfig {
            domain,
            track_persistence: track,
            window_ns: u64::MAX,
            ..MachineConfig::default()
        })
    }

    #[test]
    fn store_then_load_roundtrips() {
        let m = machine(DD::Adr, false);
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(3), 77);
        assert_eq!(s.load(p.addr(3)), 77);
    }

    #[test]
    fn second_access_hits_cache_and_is_cheaper() {
        let m = machine(DD::Adr, false);
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let mut s = m.session(0);
        let t0 = s.now();
        s.load(p.addr(0));
        let miss_cost = s.now() - t0;
        let t1 = s.now();
        s.load(p.addr(1)); // same line
        let hit_cost = s.now() - t1;
        assert!(miss_cost > hit_cost, "miss {miss_cost} <= hit {hit_cost}");
        assert_eq!(hit_cost, m.model().l3_hit_ns);
    }

    #[test]
    fn optane_miss_costs_more_than_dram_miss() {
        let m = machine(DD::Adr, false);
        let po = m.alloc_pool("o", 64, MediaKind::Optane);
        let pd = m.alloc_pool("d", 64, MediaKind::Dram);
        let mut s = m.session(0);
        let t0 = s.now();
        s.load(po.addr(0));
        let optane_cost = s.now() - t0;
        let t1 = s.now();
        s.load(pd.addr(0));
        let dram_cost = s.now() - t1;
        assert!(optane_cost > 2 * dram_cost);
    }

    #[test]
    fn pdram_serves_warm_optane_at_dram_speed() {
        // Cold miss: both domains pay Optane latency (PDRAM must pull the
        // page into its DRAM cache). Warm re-miss after L3 churn: PDRAM
        // hits the DRAM cache, ADR goes back to Optane.
        let mp = machine(DD::Pdram, false);
        let ma = machine(DD::Adr, false);
        let pp = mp.alloc_pool("o", 64, MediaKind::Optane);
        let pa = ma.alloc_pool("o", 64, MediaKind::Optane);
        let mut sp = mp.session(0);
        let mut sa = ma.session(0);
        sp.load(pp.addr(0));
        sa.load(pa.addr(0));
        assert_eq!(sp.now(), sa.now(), "cold miss costs the same");
        mp.clear_l3();
        ma.clear_l3();
        let (t0p, t0a) = (sp.now(), sa.now());
        sp.load(pp.addr(0));
        sa.load(pa.addr(0));
        assert!(
            sp.now() - t0p < sa.now() - t0a,
            "warm PDRAM re-miss must be served by the DRAM cache"
        );
    }

    #[test]
    fn clwb_and_sfence_are_free_under_eadr() {
        let m = machine(DD::Eadr, false);
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(0), 1);
        let before = s.now();
        s.clwb(p.addr(0));
        s.sfence();
        assert_eq!(s.now(), before);
        assert_eq!(m.stats.snapshot().clwbs, 0);
    }

    #[test]
    fn clwb_of_dirty_line_then_fence_persists_under_adr() {
        let m = machine(DD::Adr, true);
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(0), 42);
        assert_eq!(p.shadow().unwrap().load(0), 0, "not durable before flush");
        s.clwb(p.addr(0));
        assert_eq!(p.shadow().unwrap().load(0), 0, "not durable before fence");
        s.sfence();
        assert_eq!(p.shadow().unwrap().load(0), 42, "durable after clwb+sfence");
    }

    #[test]
    fn store_without_flush_is_not_durable_under_adr() {
        let m = machine(DD::Adr, true);
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(0), 42);
        s.sfence(); // fence without clwb does nothing for this line
        assert_eq!(p.shadow().unwrap().load(0), 0);
    }

    #[test]
    fn clwb_snapshot_semantics() {
        // A store between clwb and sfence must not retroactively persist.
        let m = machine(DD::Adr, true);
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(0), 1);
        s.clwb(p.addr(0));
        s.store(p.addr(0), 2);
        s.sfence();
        assert_eq!(p.shadow().unwrap().load(0), 1);
        assert_eq!(s.load(p.addr(0)), 2);
    }

    #[test]
    fn fence_waits_for_queue_acceptance_under_backlog() {
        // Zero-cost issue path so back-to-back flushes pile onto the
        // write banks faster than they accept; the fence must then wait
        // for the last line's acceptance (but not for its media write).
        let mut model = crate::LatencyModel::zero();
        model.optane_write_line_ns = 144;
        model.optane_write_banks = 2;
        model.wpq_lines = 1 << 20; // avoid the full-WPQ stall path
        let m = Machine::new(MachineConfig {
            domain: DD::Adr,
            model,
            track_persistence: false,
            window_ns: u64::MAX,
            ..MachineConfig::default()
        });
        let p = m.alloc_pool("h", 1 << 12, MediaKind::Optane);
        let mut s = m.session(0);
        for i in 0..32u64 {
            s.store(p.addr(i * 8), i);
            s.clwb(p.addr(i * 8));
        }
        let before = s.now();
        s.sfence();
        let fence_cost = s.now() - before;
        assert!(fence_cost > 0, "backlogged banks must delay acceptance");
        assert!(m.stats.snapshot().fence_wait_ns > 0);
        // But the wait is for acceptance, not the full drain: strictly
        // less than the total service of all queued lines.
        assert!(fence_cost < 32 * 144);
    }

    #[test]
    fn fence_is_cheap_when_queues_are_idle() {
        let m = machine(DD::Adr, false);
        let p = m.alloc_pool("h", 1024, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(0), 1);
        s.clwb(p.addr(0));
        let before = s.now();
        s.sfence();
        let fence_cost = s.now() - before;
        // Idle WPQ: acceptance is immediate, only the base fence latency.
        assert_eq!(fence_cost, m.model().sfence_ns);
    }

    #[test]
    fn undo_style_fencing_costs_more_than_redo_style() {
        // The paper's central cost asymmetry: W writes with a fence each
        // (undo) vs W writes with one fence (redo).
        let cost_of = |fences_per_write: bool| {
            let m = machine(DD::Adr, false);
            let p = m.alloc_pool("h", 4096, MediaKind::Optane);
            let mut s = m.session(0);
            for i in 0..32u64 {
                s.store(p.addr(i * 8), i);
                s.clwb(p.addr(i * 8));
                if fences_per_write {
                    s.sfence();
                }
            }
            if !fences_per_write {
                s.sfence();
            }
            s.now()
        };
        let undo = cost_of(true);
        let redo = cost_of(false);
        assert!(undo > redo, "undo {undo} <= redo {redo}");
    }

    #[test]
    fn wpq_saturation_stalls_flushers() {
        // Zero base latency so back-to-back flushes arrive faster than the
        // write path drains; only the write service time is non-zero.
        let mut model = crate::LatencyModel::zero();
        model.optane_write_line_ns = 55;
        model.wpq_lines = 4; // tiny WPQ
        let m = Machine::new(MachineConfig {
            domain: DD::Adr,
            model,
            track_persistence: false,
            window_ns: u64::MAX,
            ..MachineConfig::default()
        });
        let p = m.alloc_pool("h", 1 << 16, MediaKind::Optane);
        let mut s = m.session(0);
        for i in 0..512u64 {
            s.store(p.addr(i * 8), i);
            s.clwb(p.addr(i * 8));
        }
        assert!(m.stats.snapshot().wpq_stall_ns > 0);
    }

    /// Regression: DRAM write-path back-pressure used to be charged to
    /// `wpq_stall_ns` (and emitted as a `WpqStall` trace event), so a
    /// DRAM-heavy workload appeared to be stalling on the Optane WPQ it
    /// never touched. The stall time is real — it must still advance the
    /// clock — but it belongs in `dram_write_stall_ns`.
    #[test]
    fn dram_backpressure_is_not_charged_to_the_wpq() {
        let mut model = crate::LatencyModel::zero();
        model.dram_write_line_ns = 55;
        model.wpq_lines = 4;
        let m = Machine::new(MachineConfig {
            domain: DD::Adr,
            model,
            track_persistence: false,
            window_ns: u64::MAX,
            ..MachineConfig::default()
        });
        let p = m.alloc_pool("h", 1 << 16, MediaKind::Dram);
        let mut s = m.session(0);
        for i in 0..512u64 {
            s.store(p.addr(i * 8), i);
            s.clwb(p.addr(i * 8));
        }
        let elapsed = s.now();
        let st = m.stats.snapshot();
        assert!(st.dram_write_stall_ns > 0, "the stall itself must remain");
        assert_eq!(st.wpq_stall_ns, 0, "no Optane line was ever written");
        assert!(
            elapsed >= st.dram_write_stall_ns,
            "stall time is clock time, not a phantom counter"
        );
    }

    /// One physical stall, one attribution: under a mixed DRAM/Optane
    /// flush storm the `WpqStall` trace events must sum to exactly the
    /// `wpq_stall_ns` counter (DRAM back-pressure emits no such event),
    /// so nothing is double-charged across the two paths.
    #[test]
    fn wpq_stall_trace_matches_counter_under_mixed_media() {
        let mut model = crate::LatencyModel::zero();
        model.optane_write_line_ns = 55;
        model.dram_write_line_ns = 40;
        model.wpq_lines = 4;
        let m = Machine::new(MachineConfig {
            domain: DD::Adr,
            model,
            track_persistence: false,
            window_ns: u64::MAX,
            ..MachineConfig::default()
        });
        let sink = trace::TraceSink::new(1 << 14);
        m.attach_tracer(Arc::clone(&sink));
        let po = m.alloc_pool("opt", 1 << 16, MediaKind::Optane);
        let pd = m.alloc_pool("dram", 1 << 16, MediaKind::Dram);
        {
            let mut s = m.session(0);
            for i in 0..256u64 {
                s.store(po.addr(i * 8), i);
                s.clwb(po.addr(i * 8));
                s.store(pd.addr(i * 8), i);
                s.clwb(pd.addr(i * 8));
            }
            s.sfence();
        }
        m.detach_tracer();
        let st = m.stats.snapshot();
        assert!(st.wpq_stall_ns > 0 && st.dram_write_stall_ns > 0);
        let traced: u64 = sink
            .merged()
            .iter()
            .filter(|e| e.kind == trace::EventKind::WpqStall)
            .map(|e| e.a)
            .sum();
        assert_eq!(
            traced, st.wpq_stall_ns,
            "every WpqStall event must correspond to exactly one counter charge"
        );
    }

    /// `fence_join` rides another thread's fence: it waits until the
    /// cover point, commits pending persists, but retires no fence of its
    /// own — the `sfences` counter and `Sfence` trace stream are
    /// untouched, and a `FenceJoin` event records the ride.
    #[test]
    fn fence_join_waits_to_cover_without_retiring_a_fence() {
        let m = machine(DD::Adr, true);
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let sink = trace::TraceSink::new(1 << 12);
        m.attach_tracer(Arc::clone(&sink));
        {
            let mut s = m.session(0);
            s.store(p.addr(0), 7);
            s.clwb(p.addr(0));
            let accept = s.last_flush_accept();
            let cover = s.now() + 500;
            s.fence_join(cover);
            assert!(
                s.now() >= cover.max(accept),
                "join waits to the cover point"
            );
            // The joined line is durable: the pending snapshot committed.
            assert_eq!(p.shadow().unwrap().load(0), 7);
        }
        m.detach_tracer();
        let st = m.stats.snapshot();
        assert_eq!(st.sfences, 0, "a join is not a fence");
        assert_eq!(st.fence_wait_ns, 0, "join waits are not fence waits");
        let merged = sink.merged();
        assert_eq!(
            merged
                .iter()
                .filter(|e| e.kind == trace::EventKind::FenceJoin)
                .count(),
            1
        );
        assert!(!merged.iter().any(|e| e.kind == trace::EventKind::Sfence));
    }

    #[test]
    fn persist_range_covers_all_lines() {
        let m = machine(DD::Adr, true);
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let mut s = m.session(0);
        for i in 0..24u64 {
            s.store(p.addr(i), i + 1);
        }
        s.persist_range(p.addr(0), 24);
        let shadow = p.shadow().unwrap();
        for i in 0..24u64 {
            assert_eq!(shadow.load(i), i + 1, "word {i}");
        }
    }

    #[test]
    fn eadr_store_is_durable_at_crash_time_not_in_shadow() {
        // Under eADR the shadow is not updated eagerly; durability of
        // cache-visible state is applied by the crash simulator instead.
        let m = machine(DD::Eadr, true);
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(0), 9);
        assert_eq!(p.shadow().unwrap().load(0), 0);
        assert!(m
            .domain()
            .preserves_cache_visible(MediaKind::Optane, crate::PersistenceClass::Normal));
    }

    #[test]
    fn clwb_batch_persists_like_individual_clwbs() {
        let m = machine(DD::Adr, true);
        let p = m.alloc_pool("h", 256, MediaKind::Optane);
        let mut s = m.session(0);
        let mut lines = Vec::new();
        for i in 0..8u64 {
            s.store(p.addr(i * 8), i + 1);
            lines.push(p.addr(i * 8));
        }
        s.clwb_batch(&mut lines);
        assert!(lines.is_empty(), "batch drains the scratch buffer");
        s.sfence();
        let st = m.stats.snapshot();
        assert_eq!(st.clwbs, 8);
        assert_eq!(st.clwb_writebacks, 8);
        assert_eq!(st.clwb_batches, 1);
        let shadow = p.shadow().unwrap();
        for i in 0..8u64 {
            assert_eq!(shadow.load(i * 8), i + 1, "line {i}");
        }
    }

    #[test]
    fn clwb_batch_is_free_under_eadr() {
        let m = machine(DD::Eadr, false);
        let p = m.alloc_pool("h", 256, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(0), 1);
        let mut lines = vec![p.addr(0), p.addr(8)];
        let before = s.now();
        s.clwb_batch(&mut lines);
        assert_eq!(s.now(), before);
        assert!(lines.is_empty());
        let st = m.stats.snapshot();
        assert_eq!(st.clwbs, 0);
        assert_eq!(st.clwb_batches, 0);
    }

    #[test]
    fn clwb_batch_interleaves_banks_deterministically() {
        // Same line list, two machines: identical virtual-time outcome —
        // the bank-interleaved schedule is a pure function of the input.
        let run = || {
            let m = machine(DD::Adr, false);
            let p = m.alloc_pool("h", 1 << 12, MediaKind::Optane);
            let mut s = m.session(0);
            let mut lines = Vec::new();
            for i in 0..64u64 {
                s.store(p.addr(i * 8), i);
                lines.push(p.addr(i * 8));
            }
            s.clwb_batch(&mut lines);
            s.sfence();
            s.now()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_count_flush_activity() {
        let m = machine(DD::Adr, false);
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(0), 1);
        s.clwb(p.addr(0));
        s.clwb(p.addr(0)); // second flush: clean
        s.sfence();
        let st = m.stats.snapshot();
        assert_eq!(st.clwbs, 2);
        assert_eq!(st.clwb_writebacks, 1);
        assert_eq!(st.sfences, 1);
    }
}
