//! Word-addressable simulated memory pools.
//!
//! A [`PmemPool`] is a contiguous range of 64-bit words with a backing
//! media kind (DRAM or Optane) and a persistence class. The *current*
//! (cache-visible) contents live in `words`; when persistence tracking is
//! enabled the pool additionally carries a `media` array holding the
//! values that are *guaranteed durable* so far — the crash simulator
//! builds failure images from it (see [`crate::crash`]).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::WORDS_PER_LINE;

/// Identifies a pool within its [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoolId(pub u32);

/// What physically backs the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaKind {
    /// Volatile DRAM: fast, lost on power failure under every domain.
    Dram,
    /// Optane DC media: slower, persistent (subject to the domain rules).
    Optane,
}

/// How the pool participates in the PDRAM-Lite durability domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistenceClass {
    /// Ordinary persistent data.
    Normal,
    /// A page range designated as PDRAM-Lite cacheable (the redo logs):
    /// under [`crate::DurabilityDomain::PdramLite`] it is served at DRAM
    /// latency while remaining durable.
    PdramLite,
}

/// A compact global word address: `pool << 40 | word`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PAddr(pub u64);

impl PAddr {
    const WORD_BITS: u32 = 40;

    /// Compose an address from a pool id and word index.
    #[inline]
    pub fn new(pool: PoolId, word: u64) -> Self {
        debug_assert!(word < 1 << Self::WORD_BITS);
        PAddr(((pool.0 as u64) << Self::WORD_BITS) | word)
    }

    /// The pool component.
    #[inline]
    pub fn pool(self) -> PoolId {
        PoolId((self.0 >> Self::WORD_BITS) as u32)
    }

    /// The word index within the pool.
    #[inline]
    pub fn word(self) -> u64 {
        self.0 & ((1 << Self::WORD_BITS) - 1)
    }

    /// The cache-line index within the pool.
    #[inline]
    pub fn line(self) -> u64 {
        self.word() / WORDS_PER_LINE as u64
    }

    /// Address displaced by `delta` words (same pool).
    #[inline]
    pub fn offset(self, delta: u64) -> PAddr {
        PAddr::new(self.pool(), self.word() + delta)
    }

    /// A sentinel null address (pool 0 word 0 is reserved by convention:
    /// allocators never hand it out).
    pub const NULL: PAddr = PAddr(0);

    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for PAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}+{}", self.pool().0, self.word())
    }
}

/// Durable-so-far shadow of a pool (only allocated when the machine is
/// created with persistence tracking, i.e. for crash tests).
///
/// Applications of line snapshots are ordered by a per-pool **flush
/// epoch**: a snapshot captured at `clwb` time but applied at `sfence`
/// time must not overwrite data that a *later* flush (another thread's
/// writeback or an eviction) already persisted — on real hardware the
/// coherence protocol orders writebacks of a line, so the shadow must be
/// monotone in capture order.
#[derive(Debug)]
pub struct MediaShadow {
    words: Box<[AtomicU64]>,
    /// Last-applied flush epoch per cache line.
    applied: Box<[AtomicU64]>,
    /// Epoch source (incremented at snapshot/persist capture time).
    epoch: AtomicU64,
    /// Serializes shadow applications, striped by line: monotonicity is
    /// a *per-line* invariant (the `applied` epoch check), so two
    /// applications to different lines never needed mutual exclusion —
    /// a single lock merely serialized them, which made concurrent
    /// recovery replay into one pool lock-bound. Same-line applications
    /// still map to the same stripe. Crash capture, which does need a
    /// cross-line cut, takes every stripe (see
    /// [`PmemPool::freeze_applies`]).
    apply_locks: [ApplyStripe; APPLY_STRIPES],
}

/// Stripes of the shadow-apply lock (power of two).
const APPLY_STRIPES: usize = 16;

/// One stripe, padded to its own cache line: bare `Mutex<()>`s are a
/// few bytes each, so an unpadded array packs every stripe into one
/// line and the resulting false sharing re-serializes the very persists
/// the striping is meant to let through in parallel.
#[repr(align(64))]
#[derive(Debug, Default)]
struct ApplyStripe(std::sync::Mutex<()>);

impl MediaShadow {
    fn new(len: usize) -> Self {
        let lines = len / crate::WORDS_PER_LINE;
        MediaShadow {
            words: (0..len).map(|_| AtomicU64::new(0)).collect(),
            applied: (0..lines).map(|_| AtomicU64::new(0)).collect(),
            epoch: AtomicU64::new(0),
            apply_locks: std::array::from_fn(|_| ApplyStripe::default()),
        }
    }

    /// The apply-lock stripe guarding `line`.
    fn stripe(&self, line: u64) -> &std::sync::Mutex<()> {
        &self.apply_locks[line as usize % APPLY_STRIPES].0
    }

    /// Allocate a fresh capture epoch.
    pub fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Persist one word.
    #[inline]
    pub fn store(&self, word: u64, value: u64) {
        self.words[word as usize].store(value, Ordering::Relaxed);
    }

    /// Read the durable value of one word.
    #[inline]
    pub fn load(&self, word: u64) -> u64 {
        self.words[word as usize].load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// A simulated memory pool.
#[derive(Debug)]
pub struct PmemPool {
    id: PoolId,
    name: String,
    words: Box<[AtomicU64]>,
    media_kind: MediaKind,
    class: PersistenceClass,
    shadow: Option<MediaShadow>,
}

impl PmemPool {
    pub(crate) fn new(
        id: PoolId,
        name: &str,
        len_words: usize,
        media_kind: MediaKind,
        class: PersistenceClass,
        track: bool,
    ) -> Self {
        // Round up to whole cache lines so line-granular operations are safe.
        let len = len_words.div_ceil(WORDS_PER_LINE) * WORDS_PER_LINE;
        PmemPool {
            id,
            name: name.to_string(),
            words: (0..len).map(|_| AtomicU64::new(0)).collect(),
            media_kind,
            class,
            shadow: track.then(|| MediaShadow::new(len)),
        }
    }

    pub fn id(&self) -> PoolId {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pool length in words (always a multiple of [`WORDS_PER_LINE`]).
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Pool length in cache lines.
    pub fn len_lines(&self) -> usize {
        self.words.len() / WORDS_PER_LINE
    }

    pub fn media_kind(&self) -> MediaKind {
        self.media_kind
    }

    pub fn class(&self) -> PersistenceClass {
        self.class
    }

    /// Address of word `word` in this pool.
    #[inline]
    pub fn addr(&self, word: u64) -> PAddr {
        debug_assert!((word as usize) < self.words.len());
        PAddr::new(self.id, word)
    }

    /// Untimed raw read of the current (cache-visible) value.
    ///
    /// Sessions use this internally after charging latency; tests and
    /// recovery code (which runs "after reboot", outside measured time)
    /// may use it directly.
    #[inline]
    pub fn raw_load(&self, word: u64) -> u64 {
        self.words[word as usize].load(Ordering::Acquire)
    }

    /// Untimed raw write of the current value.
    #[inline]
    pub fn raw_store(&self, word: u64, value: u64) {
        self.words[word as usize].store(value, Ordering::Release);
    }

    /// Untimed compare-exchange on the current value (sessions charge the
    /// timing separately).
    #[inline]
    pub fn raw_cas(&self, word: u64, expect: u64, new: u64) -> Result<u64, u64> {
        self.words[word as usize].compare_exchange(expect, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// The durable shadow, if tracking is enabled.
    pub fn shadow(&self) -> Option<&MediaShadow> {
        self.shadow.as_ref()
    }

    /// Persist the *current* contents of an entire cache line to the
    /// shadow. Models a line crossing the durability boundary (WPQ drain
    /// or cache eviction). Public for substrate code (e.g. the allocator)
    /// that performs untimed setup-or-under-lock persistence; application
    /// code should use [`crate::MemSession::clwb`]/`sfence` instead.
    pub fn persist_line_now(&self, line: u64) {
        if let Some(shadow) = &self.shadow {
            let _g = shadow.stripe(line).lock().unwrap();
            // Reading the current epoch (not an RMW on the shared
            // counter — that ping-pongs one cache line across every
            // concurrently-persisting thread) is enough: any snapshot
            // captured before this point carries an epoch <= it and
            // must lose to this fresher whole-line data. The max keeps
            // `applied` monotone when a newer snapshot already landed.
            let epoch = shadow.epoch.load(Ordering::Acquire);
            let base = line * WORDS_PER_LINE as u64;
            for i in 0..WORDS_PER_LINE as u64 {
                shadow.store(base + i, self.raw_load(base + i));
            }
            let cur = shadow.applied[line as usize].load(Ordering::Acquire);
            shadow.applied[line as usize].store(cur.max(epoch), Ordering::Release);
        }
    }

    /// Persist a snapshot captured earlier with [`PmemPool::snapshot_line`]
    /// (precise `clwb` semantics: the value that was flushed is the value
    /// at `clwb` time). Skipped if a later-captured flush of the same line
    /// already applied — shadow contents are monotone in capture order.
    pub(crate) fn persist_line_snapshot(
        &self,
        line: u64,
        values: &[u64; WORDS_PER_LINE],
        epoch: u64,
    ) {
        if let Some(shadow) = &self.shadow {
            let _g = shadow.stripe(line).lock().unwrap();
            if shadow.applied[line as usize].load(Ordering::Acquire) >= epoch {
                return;
            }
            let base = line * WORDS_PER_LINE as u64;
            for (i, &v) in values.iter().enumerate() {
                shadow.store(base + i as u64, v);
            }
            shadow.applied[line as usize].store(epoch, Ordering::Release);
        }
    }

    /// Snapshot the words of a line from current contents, with a capture
    /// epoch ordering it against other flushes of the same line.
    pub(crate) fn snapshot_line(&self, line: u64) -> ([u64; WORDS_PER_LINE], u64) {
        let epoch = self.shadow.as_ref().map_or(0, |s| s.next_epoch());
        let base = line * WORDS_PER_LINE as u64;
        (
            std::array::from_fn(|i| self.raw_load(base + i as u64)),
            epoch,
        )
    }

    /// Copy the full current contents out (crash simulation under domains
    /// that preserve cache-visible state).
    /// Freeze this pool's durability pipeline: holds the shadow-apply
    /// lock so no concurrent `persist_line_now` / snapshot application
    /// can land while the guard lives. Pools without a durable shadow
    /// need no freezing (`None`). Crash capture holds every pool's
    /// guard at once so the image is a single cross-pool cut.
    pub(crate) fn freeze_applies(&self) -> Vec<std::sync::MutexGuard<'_, ()>> {
        match &self.shadow {
            // Stripes are acquired in index order; persist paths only
            // ever hold a single stripe and take no further locks under
            // it, so the all-stripes sweep cannot deadlock.
            Some(s) => s.apply_locks.iter().map(|m| m.0.lock().unwrap()).collect(),
            None => Vec::new(),
        }
    }

    pub(crate) fn dump_current(&self) -> Vec<u64> {
        (0..self.words.len() as u64)
            .map(|w| self.raw_load(w))
            .collect()
    }

    /// Copy the durable shadow out.
    pub(crate) fn dump_shadow(&self) -> Option<Vec<u64>> {
        self.shadow
            .as_ref()
            .map(|s| (0..s.len() as u64).map(|w| s.load(w)).collect())
    }

    /// Overwrite current contents from an image (reboot).
    pub(crate) fn load_image(&self, image: &[u64]) {
        assert_eq!(image.len(), self.words.len(), "image length mismatch");
        for (w, &v) in image.iter().enumerate() {
            self.words[w].store(v, Ordering::Relaxed);
            if let Some(shadow) = &self.shadow {
                shadow.store(w as u64, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paddr_roundtrips() {
        let a = PAddr::new(PoolId(7), 123_456);
        assert_eq!(a.pool(), PoolId(7));
        assert_eq!(a.word(), 123_456);
        assert_eq!(a.line(), 123_456 / 8);
        assert_eq!(a.offset(8).word(), 123_464);
        assert!(PAddr::NULL.is_null());
        assert!(!a.is_null());
    }

    #[test]
    fn pool_rounds_to_lines() {
        let p = PmemPool::new(
            PoolId(0),
            "t",
            9,
            MediaKind::Dram,
            PersistenceClass::Normal,
            false,
        );
        assert_eq!(p.len_words(), 16);
        assert_eq!(p.len_lines(), 2);
    }

    #[test]
    fn raw_store_load() {
        let p = PmemPool::new(
            PoolId(0),
            "t",
            64,
            MediaKind::Optane,
            PersistenceClass::Normal,
            false,
        );
        p.raw_store(5, 99);
        assert_eq!(p.raw_load(5), 99);
        assert_eq!(p.raw_load(6), 0);
    }

    #[test]
    fn raw_cas_success_and_failure() {
        let p = PmemPool::new(
            PoolId(0),
            "t",
            8,
            MediaKind::Optane,
            PersistenceClass::Normal,
            false,
        );
        assert_eq!(p.raw_cas(0, 0, 5), Ok(0));
        assert_eq!(p.raw_cas(0, 0, 7), Err(5));
        assert_eq!(p.raw_load(0), 5);
    }

    #[test]
    fn shadow_tracks_persisted_lines_only() {
        let p = PmemPool::new(
            PoolId(0),
            "t",
            16,
            MediaKind::Optane,
            PersistenceClass::Normal,
            true,
        );
        p.raw_store(0, 11);
        p.raw_store(8, 22);
        let s = p.shadow().unwrap();
        assert_eq!(s.load(0), 0); // not yet persisted
        p.persist_line_now(0);
        assert_eq!(s.load(0), 11);
        assert_eq!(s.load(8), 0); // other line untouched
    }

    #[test]
    fn snapshot_persistence_uses_captured_values() {
        let p = PmemPool::new(
            PoolId(0),
            "t",
            8,
            MediaKind::Optane,
            PersistenceClass::Normal,
            true,
        );
        p.raw_store(0, 1);
        let (snap, epoch) = p.snapshot_line(0);
        p.raw_store(0, 2); // modified after the (simulated) clwb
        p.persist_line_snapshot(0, &snap, epoch);
        assert_eq!(p.shadow().unwrap().load(0), 1);
        assert_eq!(p.raw_load(0), 2);
    }

    #[test]
    fn load_image_restores_contents_and_shadow() {
        let p = PmemPool::new(
            PoolId(0),
            "t",
            8,
            MediaKind::Optane,
            PersistenceClass::Normal,
            true,
        );
        let image = vec![7u64; 8];
        p.load_image(&image);
        assert_eq!(p.raw_load(3), 7);
        assert_eq!(p.shadow().unwrap().load(3), 7);
    }

    #[test]
    #[should_panic(expected = "image length mismatch")]
    fn load_image_checks_length() {
        let p = PmemPool::new(
            PoolId(0),
            "t",
            8,
            MediaKind::Optane,
            PersistenceClass::Normal,
            false,
        );
        p.load_image(&[1, 2, 3]);
    }
}
