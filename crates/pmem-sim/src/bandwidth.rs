//! Virtual-time queueing servers modeling shared memory-path bandwidth.
//!
//! Each server is a single FIFO resource with a per-request service time.
//! A request arriving at virtual time `now` begins service at
//! `max(now, next_free)` and finishes `service_ns` later; the gap between
//! `now` and the start is queueing delay. This is how the simulation
//! reproduces the paper's two bandwidth findings:
//!
//! * Optane **write** bandwidth saturates with ~4 writer threads: once the
//!   aggregate line-write arrival rate exceeds `1/optane_write_line_ns`,
//!   backlog grows and writers stall at the WPQ bound;
//! * Optane **read** bandwidth keeps scaling to ~17 threads because its
//!   per-line service time is much smaller.
//!
//! The server is lock-free: `next_free` advances with a CAS loop.

use std::sync::atomic::{AtomicU64, Ordering};

/// A single-queue bandwidth server in virtual time.
#[derive(Debug)]
pub struct BwServer {
    next_free: AtomicU64,
}

/// Outcome of submitting a request to a [`BwServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Virtual time at which the request's service completes.
    pub finish: u64,
    /// Backlog (finish minus the submitter's `now`) observed at submit time.
    pub backlog: u64,
}

impl BwServer {
    pub fn new() -> Self {
        BwServer {
            next_free: AtomicU64::new(0),
        }
    }

    /// Submit a request of `service_ns` at virtual time `now`.
    ///
    /// Returns the finish time and the post-submit backlog. The caller
    /// decides whether (and how much of) the delay is synchronous: a demand
    /// load waits for `finish`, an asynchronous writeback only waits if the
    /// backlog exceeds its queue bound.
    pub fn request(&self, now: u64, service_ns: u64) -> Grant {
        if service_ns == 0 {
            return Grant {
                finish: now,
                backlog: 0,
            };
        }
        let mut cur = self.next_free.load(Ordering::Relaxed);
        loop {
            let start = cur.max(now);
            let finish = start + service_ns;
            match self.next_free.compare_exchange_weak(
                cur,
                finish,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Grant {
                        finish,
                        backlog: finish - now,
                    }
                }
                Err(v) => cur = v,
            }
        }
    }

    /// Current backlog relative to `now` (0 if the server is idle).
    pub fn backlog(&self, now: u64) -> u64 {
        self.next_free.load(Ordering::Acquire).saturating_sub(now)
    }

    /// Reset the server (between benchmark phases).
    pub fn reset(&self) {
        self.next_free.store(0, Ordering::Release);
    }
}

impl Default for BwServer {
    fn default() -> Self {
        Self::new()
    }
}

/// The set of shared memory-path servers of one simulated machine.
///
/// The Optane write path is **banked**: the testbed interleaves its
/// DIMMs, so lines hash to banks and a fence waits only for its own
/// bank's backlog, not a machine-wide queue.
#[derive(Debug)]
pub struct Servers {
    /// Optane media write banks (fed by the WPQ).
    pub optane_write: Vec<BwServer>,
    /// Optane media read path.
    pub optane_read: BwServer,
    /// DRAM write path.
    pub dram_write: BwServer,
    /// DRAM read path.
    pub dram_read: BwServer,
}

impl Servers {
    pub fn new(optane_write_banks: usize) -> Self {
        Servers {
            optane_write: (0..optane_write_banks.max(1))
                .map(|_| BwServer::new())
                .collect(),
            optane_read: BwServer::new(),
            dram_write: BwServer::new(),
            dram_read: BwServer::new(),
        }
    }

    pub fn reset(&self) {
        for b in &self.optane_write {
            b.reset();
        }
        self.optane_read.reset();
        self.dram_write.reset();
        self.dram_read.reset();
    }

    /// Bank index a line key hashes to on the Optane write path.
    ///
    /// Exposed so batched flush planners (`MemSession::clwb_batch`) can
    /// interleave lines across banks with the exact routing `write_for`
    /// will use.
    pub fn optane_bank_of(&self, line_key: u64) -> usize {
        let mut h = line_key;
        h ^= h >> 29;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        (h % self.optane_write.len() as u64) as usize
    }

    /// Pick the write server for a media kind; Optane writes are routed
    /// to a bank by the line key.
    pub fn write_for(&self, optane: bool, line_key: u64) -> &BwServer {
        if optane {
            &self.optane_write[self.optane_bank_of(line_key)]
        } else {
            &self.dram_write
        }
    }

    /// Pick the read server for a media kind.
    pub fn read_for(&self, optane: bool) -> &BwServer {
        if optane {
            &self.optane_read
        } else {
            &self.dram_read
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_serves_immediately() {
        let s = BwServer::new();
        let g = s.request(1_000, 50);
        assert_eq!(g.finish, 1_050);
        assert_eq!(g.backlog, 50);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let s = BwServer::new();
        let g1 = s.request(0, 100);
        let g2 = s.request(0, 100);
        assert_eq!(g1.finish, 100);
        assert_eq!(g2.finish, 200);
        assert_eq!(g2.backlog, 200);
    }

    #[test]
    fn idle_gap_resets_queue() {
        let s = BwServer::new();
        s.request(0, 100);
        // Next request arrives long after the server drained.
        let g = s.request(10_000, 100);
        assert_eq!(g.finish, 10_100);
        assert_eq!(g.backlog, 100);
    }

    #[test]
    fn zero_service_is_free() {
        let s = BwServer::new();
        let g = s.request(42, 0);
        assert_eq!(g.finish, 42);
        assert_eq!(g.backlog, 0);
        assert_eq!(s.backlog(42), 0);
    }

    #[test]
    fn backlog_observed() {
        let s = BwServer::new();
        s.request(0, 500);
        assert_eq!(s.backlog(100), 400);
        assert_eq!(s.backlog(1_000), 0);
    }

    #[test]
    fn reset_clears_backlog() {
        let s = BwServer::new();
        s.request(0, 1_000);
        s.reset();
        assert_eq!(s.backlog(0), 0);
    }

    #[test]
    fn concurrent_requests_serialize_total_service() {
        // N threads each submit K requests of service 10 at now=0; the final
        // next_free must equal N*K*10 exactly (no lost service time).
        let s = BwServer::new();
        let n = 4;
        let k = 1_000;
        std::thread::scope(|scope| {
            for _ in 0..n {
                scope.spawn(|| {
                    for _ in 0..k {
                        s.request(0, 10);
                    }
                });
            }
        });
        assert_eq!(s.backlog(0), (n * k * 10) as u64);
    }

    #[test]
    fn write_saturation_point_is_lower_than_read() {
        // Sanity-check the queueing math that underlies the paper's
        // "writes saturate at ~4 threads, reads at ~17" observation:
        // with per-thread demand of one line per 200ns, a 55ns write
        // service saturates between 3 and 4 threads; a 16ns read service
        // needs ~12.
        let write_ns = 55u64;
        let read_ns = 16u64;
        let demand_period = 200u64;
        let sat = |service: u64| demand_period / service;
        assert!(sat(write_ns) <= 4);
        assert!(sat(read_ns) >= 10);
    }
}
