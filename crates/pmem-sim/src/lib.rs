//! # pmem-sim — a simulated Optane™ DC persistent-memory substrate
//!
//! This crate emulates the memory system of an Intel Optane DC machine well
//! enough to reproduce the *shape* results of Zardoshti et al., "Understanding
//! and Improving Persistent Transactions on Optane DC Memory" (IPDPS 2020).
//!
//! The real machine is replaced by:
//!
//! * a **latency model** ([`LatencyModel`]) with DRAM vs Optane load/store
//!   latencies, `clwb`/`sfence` costs, and read/write bandwidth limits taken
//!   from the paper and its cited measurements (Izraelevitz et al.);
//! * **virtual time**: every simulated memory operation advances a per-thread
//!   virtual clock ([`clock`]); threads run on real OS threads but are kept
//!   within a bounded virtual-time window of each other, so critical-section
//!   *virtual* durations translate into real interleaving exposure (this is
//!   what lets abort rates respond to flush/fence costs, as in the paper's
//!   Tables I and II);
//! * **queueing servers** ([`bandwidth`]) for the Optane read path, the
//!   write path and the bounded Write Pending Queue (WPQ), which reproduce
//!   the paper's observation that Optane write bandwidth saturates with a
//!   handful of writer threads while reads keep scaling;
//! * an **L3 cache model** ([`cache`]) so that workloads with L3-resident
//!   working sets behave differently from streaming ones (paper Fig. 8);
//! * **durability domains** ([`DurabilityDomain`]): ADR, eADR and the paper's
//!   proposed PDRAM and PDRAM-Lite, each defining both the *cost* of
//!   persistence primitives and *what survives a crash*;
//! * **crash simulation** ([`crash`]): a simulated power failure yields a
//!   media image containing exactly what the active durability domain
//!   guarantees (adversarially randomized where the hardware gives no
//!   guarantee), against which recovery code can be exercised;
//! * **crash-site injection** ([`inject`]): every persistence-relevant
//!   event is a numbered crash site; an armed [`CrashInjector`] triggers a
//!   deterministic simulated power failure exactly at the N-th site, which
//!   lets harnesses *enumerate* the crash space instead of sampling it.
//!
//! Memory is exposed as 64-bit words inside [`pool::PmemPool`]s addressed by
//! [`PAddr`]. All timed accesses go through a per-thread [`MemSession`].
//!
//! ```
//! use pmem_sim::{Machine, MachineConfig, MediaKind, DurabilityDomain};
//!
//! let machine = Machine::new(MachineConfig {
//!     domain: DurabilityDomain::Adr,
//!     ..MachineConfig::default()
//! });
//! let pool = machine.alloc_pool("heap", 1024, MediaKind::Optane);
//! let mut s = machine.session(0);
//! let addr = pool.addr(0);
//! s.store(addr, 42);
//! s.clwb(addr);
//! s.sfence();
//! assert_eq!(s.load(addr), 42);
//! assert!(s.now() > 0); // the ops consumed virtual time
//! ```

pub mod bandwidth;
pub mod cache;
pub mod clock;
pub mod crash;
pub mod domain;
pub mod inject;
pub mod latency;
pub mod machine;
pub mod pool;
pub mod session;
pub mod shard;
pub mod stats;

pub use crash::{AdversaryPolicy, CrashImage};
pub use domain::DurabilityDomain;
pub use inject::{
    catch_simulated_crash, silence_simulated_crash_panics, CrashInjector, FiredCrash,
    SimulatedCrash, SiteKind,
};
pub use latency::LatencyModel;
pub use machine::{HtmModel, Machine, MachineConfig};
pub use pool::{MediaKind, PAddr, PersistenceClass, PmemPool, PoolId};
pub use session::MemSession;
pub use shard::MachineSet;
pub use stats::{MachineStats, StatsSnapshot};

/// Bytes per simulated cache line.
pub const LINE_BYTES: usize = 64;
/// 64-bit words per simulated cache line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / 8;
