//! Deterministic crash-site injection.
//!
//! Randomized crash testing (freeze at an arbitrary real-time point, as
//! `crash_fuzz` does) samples the space of failure points; it cannot
//! *enumerate* it. This module adds the missing systematic tool, in the
//! spirit of pmemcheck-style crash-point injection: every
//! persistence-relevant event in a run — timed store, `clwb`, `sfence`,
//! dirty-line eviction, WPQ acceptance, recovery persist — is a numbered
//! **crash site**, and a [`CrashInjector`] armed on the [`crate::Machine`]
//! triggers a simulated power failure immediately *before* the N-th site
//! executes.
//!
//! The trigger captures the crash image synchronously at the site (so
//! unwinding cannot smear the surviving state) and then raises a panic
//! with a [`SimulatedCrash`] payload, which harnesses catch with
//! [`catch_simulated_crash`]. Armed with the same `(site, policy, seed)`
//! triple, a run replays the exact same crash — which is what makes a
//! failing site a minimal, deterministic reproducer.
//!
//! Sites inside a crash-atomic section (see
//! [`crate::clock::ClockHandle::enter_atomic`]) are counted but never
//! fired at; like [`crate::Machine::freeze`], the failure lands at the
//! first eligible site at or after the requested index.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

use crate::crash::{AdversaryPolicy, CrashImage};

/// The kind of persistence-relevant event at a crash site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A timed 64-bit store (or CAS) becoming cache-visible.
    Store,
    /// A `clwb` issuing (snapshot + writeback initiation).
    Clwb,
    /// An `sfence` committing this thread's outstanding flushes.
    Sfence,
    /// A dirty L3 line displaced toward the media.
    Eviction,
    /// The WPQ accepting a flushed line (the ADR durability point).
    WpqAccept,
    /// An untimed persist performed by post-crash recovery code
    /// (log replay/rollback, truncation, state transitions).
    RecoveryPersist,
}

impl SiteKind {
    /// Short label for reproducer lines.
    pub fn label(self) -> &'static str {
        match self {
            SiteKind::Store => "store",
            SiteKind::Clwb => "clwb",
            SiteKind::Sfence => "sfence",
            SiteKind::Eviction => "evict",
            SiteKind::WpqAccept => "wpq-accept",
            SiteKind::RecoveryPersist => "recovery-persist",
        }
    }
}

/// Panic payload used to unwind out of a run when an injected crash
/// fires. Never constructed by application code.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedCrash;

/// What an injector captured when it fired.
#[derive(Debug)]
pub struct FiredCrash {
    /// The surviving memory image, captured synchronously at the site.
    pub image: CrashImage,
    /// The site index the crash actually landed on (== the armed index
    /// unless atomic sections deferred it).
    pub site: u64,
    /// The event kind at that site.
    pub kind: SiteKind,
}

/// A crash trigger armed on a machine via
/// [`crate::Machine::arm_injector`].
///
/// Counting is process-global per injector and thread-safe; deterministic
/// site→state mapping additionally requires the instrumented run itself
/// to be deterministic (single virtual thread, fixed seeds).
#[derive(Debug)]
pub struct CrashInjector {
    /// Fire immediately before the site with this index (0-based).
    /// `u64::MAX` means count-only (dry run).
    trigger_at: u64,
    policy: AdversaryPolicy,
    crash_seed: u64,
    count: AtomicU64,
    fired: AtomicBool,
    outcome: Mutex<Option<FiredCrash>>,
}

impl CrashInjector {
    /// A dry-run injector: counts sites, never fires.
    pub fn count_only() -> Arc<CrashInjector> {
        Self::at_site(u64::MAX, AdversaryPolicy::default(), 0)
    }

    /// An injector that fires just before site `site` executes, building
    /// the failure image with `policy` and `crash_seed`.
    pub fn at_site(site: u64, policy: AdversaryPolicy, crash_seed: u64) -> Arc<CrashInjector> {
        Arc::new(CrashInjector {
            trigger_at: site,
            policy,
            crash_seed,
            count: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            outcome: Mutex::new(None),
        })
    }

    /// The adversary policy the failure image will be built with.
    pub fn policy(&self) -> AdversaryPolicy {
        self.policy
    }

    /// The seed driving the failure image's adversarial choices.
    pub fn crash_seed(&self) -> u64 {
        self.crash_seed
    }

    /// Number of sites observed so far (the dry-run result).
    pub fn sites_counted(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Whether the trigger fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Take the captured crash, if the trigger fired.
    pub fn take_outcome(&self) -> Option<FiredCrash> {
        self.outcome.lock().unwrap().take()
    }

    /// Observe one site; called by the machine's instrumentation hooks.
    /// Fires (captures an image of `machine` and panics with
    /// [`SimulatedCrash`]) when the armed site is reached outside a
    /// crash-atomic section.
    pub(crate) fn note(&self, machine: &crate::Machine, kind: SiteKind, in_atomic: bool) {
        let idx = self.count.fetch_add(1, Ordering::AcqRel);
        if idx < self.trigger_at || in_atomic || self.fired.swap(true, Ordering::AcqRel) {
            return;
        }
        // Capture the image *here*, before any unwinding runs drop glue
        // that could keep mutating simulated memory.
        let image = machine.crash_with(self.crash_seed, self.policy);
        *self.outcome.lock().unwrap() = Some(FiredCrash {
            image,
            site: idx,
            kind,
        });
        std::panic::panic_any(SimulatedCrash);
    }
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report for [`SimulatedCrash`] panics — a crash-site
/// sweep fires hundreds of them by design — while delegating every other
/// panic to the previous hook.
pub fn silence_simulated_crash_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimulatedCrash>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Run `f`, converting a [`SimulatedCrash`] panic into `Err(SimulatedCrash)`.
/// Any other panic is propagated unchanged.
pub fn catch_simulated_crash<R>(f: impl FnOnce() -> R) -> Result<R, SimulatedCrash> {
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast_ref::<SimulatedCrash>() {
            Some(_) => Err(SimulatedCrash),
            None => std::panic::resume_unwind(payload),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};
    use crate::pool::MediaKind;
    use crate::DurabilityDomain as DD;

    fn machine() -> Arc<Machine> {
        Machine::new(MachineConfig::functional(DD::Adr))
    }

    #[test]
    fn dry_run_counts_every_event_kind() {
        let m = machine();
        let p = m.alloc_pool("h", 256, MediaKind::Optane);
        let inj = CrashInjector::count_only();
        m.arm_injector(Arc::clone(&inj));
        let mut s = m.session(0);
        s.store(p.addr(0), 1); // Store
        s.clwb(p.addr(0)); // Clwb + WpqAccept
        s.sfence(); // Sfence
        m.disarm_injector();
        assert_eq!(inj.sites_counted(), 4);
        assert!(!inj.fired());
    }

    #[test]
    fn fires_exactly_before_the_armed_site() {
        // Sites: store(0)=Store#0, store(1)=Store#1, store(2)=Store#2.
        // Arming site 2 must crash before the third store executes.
        let m = machine();
        let p = m.alloc_pool("h", 256, MediaKind::Optane);
        let inj = CrashInjector::at_site(2, AdversaryPolicy::AllNew, 7);
        m.arm_injector(Arc::clone(&inj));
        let crashed = catch_simulated_crash(|| {
            let mut s = m.session(0);
            s.store(p.addr(0), 10);
            s.store(p.addr(1), 11);
            s.store(p.addr(2), 12); // never executes
            s.store(p.addr(3), 13);
        });
        m.disarm_injector();
        assert!(crashed.is_err());
        let fired = inj.take_outcome().expect("must have fired");
        assert_eq!(fired.site, 2);
        assert_eq!(fired.kind, SiteKind::Store);
        let words = &fired.image.pools[0].words;
        assert_eq!(words[0], 10, "first store is in the image (AllNew)");
        assert_eq!(words[1], 11, "second store is in the image (AllNew)");
        assert_eq!(words[2], 0, "third store must not have executed");
    }

    #[test]
    fn replay_is_deterministic() {
        let run = |site: u64| {
            let m = machine();
            let p = m.alloc_pool("h", 256, MediaKind::Optane);
            let inj = CrashInjector::at_site(site, AdversaryPolicy::Biased(0.5), 99);
            m.arm_injector(Arc::clone(&inj));
            let _ = catch_simulated_crash(|| {
                let mut s = m.session(0);
                for i in 0..16u64 {
                    s.store(p.addr(i), i + 100);
                    s.clwb(p.addr(i));
                }
                s.sfence();
            });
            m.disarm_injector();
            inj.take_outcome().expect("fired").image.pools[0]
                .words
                .clone()
        };
        assert_eq!(run(17), run(17));
    }

    #[test]
    fn atomic_sections_defer_the_crash() {
        let m = machine();
        let p = m.alloc_pool("h", 256, MediaKind::Optane);
        let inj = CrashInjector::at_site(1, AdversaryPolicy::AllNew, 0);
        m.arm_injector(Arc::clone(&inj));
        let crashed = catch_simulated_crash(|| {
            let mut s = m.session(0);
            s.enter_atomic();
            s.store(p.addr(0), 1); // site 0
            s.store(p.addr(1), 2); // site 1: armed, but atomic — deferred
            s.store(p.addr(2), 3); // site 2: still atomic
            s.exit_atomic();
            s.store(p.addr(3), 4); // site 3: first eligible — fires here
            s.store(p.addr(4), 5);
        });
        m.disarm_injector();
        assert!(crashed.is_err());
        let fired = inj.take_outcome().expect("fired");
        assert_eq!(fired.site, 3, "crash must land after the atomic section");
        let words = &fired.image.pools[0].words;
        assert_eq!(words[2], 3, "stores inside the section are not split");
        assert_eq!(words[3], 0);
    }

    #[test]
    fn unfired_injector_leaves_the_run_untouched() {
        let m = machine();
        let p = m.alloc_pool("h", 64, MediaKind::Optane);
        let inj = CrashInjector::at_site(1_000, AdversaryPolicy::AllOld, 0);
        m.arm_injector(Arc::clone(&inj));
        let done = catch_simulated_crash(|| {
            let mut s = m.session(0);
            s.store(p.addr(0), 5);
            s.load(p.addr(0))
        });
        m.disarm_injector();
        assert_eq!(done.unwrap(), 5);
        assert!(!inj.fired());
        assert_eq!(inj.sites_counted(), 1, "loads are not persistence sites");
    }

    #[test]
    fn other_panics_pass_through() {
        let r = std::panic::catch_unwind(|| catch_simulated_crash(|| panic!("real bug")));
        assert!(r.is_err(), "non-crash panics must propagate");
    }
}
