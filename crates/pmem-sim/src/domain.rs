//! Durability domains (paper §II-B and §IV).
//!
//! A durability domain defines which components of the memory system are
//! inside the "red box": stores that have reached a component inside the
//! domain survive a power failure. The domain therefore determines both
//!
//! * the **cost** of persistence: whether `clwb`/`sfence` are required
//!   (ADR) or elidable (eADR and beyond), and which latency class a pool's
//!   accesses pay (PDRAM serves persistent pages at DRAM speed);
//! * the **crash semantics**: what the simulated power failure preserves.

use crate::pool::{MediaKind, PersistenceClass};

/// The five durability domains discussed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DurabilityDomain {
    /// Deprecated pre-ADR behaviour: only the Optane DIMMs themselves are
    /// durable; even flushed-and-fenced stores may be lost in the WPQ.
    /// Included for completeness and for adversarial recovery tests.
    NoPowerReserve,
    /// Asynchronous DRAM Refresh: stores that reached the memory
    /// controller's write-pending queues persist. Programs must `clwb` +
    /// `sfence` to guarantee that.
    Adr,
    /// Extended ADR: enough reserve power to flush CPU caches on failure.
    /// Stores to persistent media become durable on reaching L2/L3; no
    /// explicit flushes or fences are needed.
    Eadr,
    /// The paper's proposal (§IV-A): the Memory-Mode directory plus a large
    /// battery make *all* of DRAM a persistent cache of Optane. Persistent
    /// pools are served at DRAM latency and everything cache-visible
    /// survives.
    Pdram,
    /// The paper's lightweight variant (§IV-B): only a bounded set of
    /// DRAM pages (the redo logs) are a persistent cache of Optane; the
    /// rest of the system behaves like eADR.
    PdramLite,
}

impl DurabilityDomain {
    /// All domains, in paper order.
    pub const ALL: [DurabilityDomain; 5] = [
        DurabilityDomain::NoPowerReserve,
        DurabilityDomain::Adr,
        DurabilityDomain::Eadr,
        DurabilityDomain::Pdram,
        DurabilityDomain::PdramLite,
    ];

    /// Whether software must issue `clwb`/`sfence` for durability.
    ///
    /// Under eADR/PDRAM/PDRAM-Lite the flush instructions are elided by
    /// the PTM (the paper transforms the ADR algorithms to eADR exactly
    /// this way, §III-C).
    pub fn requires_flushes(self) -> bool {
        matches!(
            self,
            DurabilityDomain::NoPowerReserve | DurabilityDomain::Adr
        )
    }

    /// Whether a pool with the given media/class is served at DRAM latency
    /// despite being persistent.
    pub fn serves_at_dram_speed(self, media: MediaKind, class: PersistenceClass) -> bool {
        match self {
            DurabilityDomain::Pdram => media == MediaKind::Optane,
            DurabilityDomain::PdramLite => {
                media == MediaKind::Optane && class == PersistenceClass::PdramLite
            }
            _ => false,
        }
    }

    /// Whether a power failure preserves *all* cache-visible contents of a
    /// pool (as opposed to only explicitly persisted lines).
    pub fn preserves_cache_visible(self, media: MediaKind, _class: PersistenceClass) -> bool {
        if media == MediaKind::Dram {
            // Plain DRAM pools are volatile under every domain.
            return false;
        }
        match self {
            DurabilityDomain::NoPowerReserve | DurabilityDomain::Adr => false,
            DurabilityDomain::Eadr | DurabilityDomain::Pdram => true,
            DurabilityDomain::PdramLite => true,
        }
        // Note: `class` currently only matters on the latency side; for
        // crash semantics every Optane-backed pool is preserved by
        // eADR-or-stronger domains. The distinguishing PDRAM-Lite case —
        // a *DRAM*-backed region that persists — is modeled by giving the
        // lite region Optane media with `PersistenceClass::PdramLite`,
        // which the latency model serves at DRAM speed.
        // (`class` intentionally unused here.)
    }

    /// Short label used by the benchmark harness (matches the paper's
    /// curve names).
    pub fn label(self) -> &'static str {
        match self {
            DurabilityDomain::NoPowerReserve => "NoRes",
            DurabilityDomain::Adr => "ADR",
            DurabilityDomain::Eadr => "eADR",
            DurabilityDomain::Pdram => "PDRAM",
            DurabilityDomain::PdramLite => "PDRAM-Lite",
        }
    }
}

impl std::fmt::Display for DurabilityDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{MediaKind, PersistenceClass};

    #[test]
    fn only_adr_class_domains_require_flushes() {
        assert!(DurabilityDomain::NoPowerReserve.requires_flushes());
        assert!(DurabilityDomain::Adr.requires_flushes());
        assert!(!DurabilityDomain::Eadr.requires_flushes());
        assert!(!DurabilityDomain::Pdram.requires_flushes());
        assert!(!DurabilityDomain::PdramLite.requires_flushes());
    }

    #[test]
    fn pdram_serves_all_optane_at_dram_speed() {
        let d = DurabilityDomain::Pdram;
        assert!(d.serves_at_dram_speed(MediaKind::Optane, PersistenceClass::Normal));
        assert!(d.serves_at_dram_speed(MediaKind::Optane, PersistenceClass::PdramLite));
        assert!(!d.serves_at_dram_speed(MediaKind::Dram, PersistenceClass::Normal));
    }

    #[test]
    fn pdram_lite_only_accelerates_lite_pools() {
        let d = DurabilityDomain::PdramLite;
        assert!(!d.serves_at_dram_speed(MediaKind::Optane, PersistenceClass::Normal));
        assert!(d.serves_at_dram_speed(MediaKind::Optane, PersistenceClass::PdramLite));
    }

    #[test]
    fn adr_and_eadr_never_accelerate() {
        for d in [DurabilityDomain::Adr, DurabilityDomain::Eadr] {
            for c in [PersistenceClass::Normal, PersistenceClass::PdramLite] {
                assert!(!d.serves_at_dram_speed(MediaKind::Optane, c));
            }
        }
    }

    #[test]
    fn dram_pools_are_always_volatile() {
        for d in DurabilityDomain::ALL {
            assert!(!d.preserves_cache_visible(MediaKind::Dram, PersistenceClass::Normal));
        }
    }

    #[test]
    fn eadr_and_stronger_preserve_cache_visible_optane() {
        for d in [
            DurabilityDomain::Eadr,
            DurabilityDomain::Pdram,
            DurabilityDomain::PdramLite,
        ] {
            assert!(d.preserves_cache_visible(MediaKind::Optane, PersistenceClass::Normal));
        }
        for d in [DurabilityDomain::NoPowerReserve, DurabilityDomain::Adr] {
            assert!(!d.preserves_cache_visible(MediaKind::Optane, PersistenceClass::Normal));
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = DurabilityDomain::ALL.iter().map(|d| d.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), DurabilityDomain::ALL.len());
    }
}
