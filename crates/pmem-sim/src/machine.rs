//! The simulated machine: pools + cache + bandwidth servers + clocks.

use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::bandwidth::Servers;
use crate::cache::CacheSim;
use crate::clock::ClockDomain;
use crate::domain::DurabilityDomain;
use crate::inject::{CrashInjector, SiteKind};
use crate::latency::LatencyModel;
use crate::pool::{MediaKind, PersistenceClass, PmemPool, PoolId};
use crate::session::MemSession;
use crate::stats::MachineStats;

/// First-class simulated-HTM model: the machine (not the PTM layer)
/// decides whether hardware transactions exist, how many cache lines a
/// section may touch, and what `xbegin`/`xend` cost. Conflict detection
/// is line-granular against a machine-wide table of recently committed
/// lines — the cache-coherence view a real HTM implementation has —
/// so sections abort against *any* concurrent committer that published
/// an overlapping line, exactly like a remote RFO would abort TSX.
#[derive(Clone, Debug)]
pub struct HtmModel {
    /// Whether the machine offers hardware transactions at all. When
    /// off, PTM hybrid paths must fall back to software.
    pub enabled: bool,
    /// Line-granular footprint bound (read set + write set combined),
    /// modeling the L1/L2 capacity a real HTM tracks speculative state
    /// in. Exceeding it is a capacity abort.
    pub capacity_lines: usize,
    /// `xbegin` cost, in virtual ns.
    pub begin_ns: u64,
    /// `xend` cost, in virtual ns.
    pub commit_ns: u64,
}

impl Default for HtmModel {
    fn default() -> Self {
        HtmModel {
            enabled: true,
            capacity_lines: 512,
            // Measured TSX round trips are a few dozen cycles each way
            // (xbegin ~30-45 cycles, xend ~20-40 on Skylake-class parts):
            // cheap enough that even read-only transactions can afford a
            // section, which is what makes the hybrid pay off.
            begin_ns: 12,
            commit_ns: 15,
        }
    }
}

/// Construction parameters for a [`Machine`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// The active durability domain.
    pub domain: DurabilityDomain,
    /// Timing parameters.
    pub model: LatencyModel,
    /// Enable per-pool durable shadows so crashes can be simulated.
    /// Costs 2x memory and some tracking work; off for pure benchmarks.
    pub track_persistence: bool,
    /// Bounded-lag window for multi-threaded runs, in virtual ns.
    pub window_ns: u64,
    /// Hardware-transactional-memory capabilities of this machine.
    pub htm: HtmModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            domain: DurabilityDomain::Adr,
            model: LatencyModel::default(),
            track_persistence: false,
            window_ns: 2_000,
            htm: HtmModel::default(),
        }
    }
}

impl MachineConfig {
    /// A config for functional tests: zero latency, tracking on.
    pub fn functional(domain: DurabilityDomain) -> Self {
        MachineConfig {
            domain,
            model: LatencyModel::zero(),
            track_persistence: true,
            window_ns: u64::MAX,
            htm: HtmModel::default(),
        }
    }
}

/// One simulated Optane-class machine.
///
/// A `Machine` owns its pools, the shared L3 model, the bandwidth servers
/// and the virtual-clock domain of the current run. Threads interact with
/// it through per-thread [`MemSession`]s.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    pools: RwLock<Vec<Arc<PmemPool>>>,
    next_pool: AtomicU32,
    pub(crate) cache: CacheSim,
    /// Second-level model: the DRAM cache of Optane pages backing the
    /// PDRAM / PDRAM-Lite domains (Memory-Mode directory). Only consulted
    /// for pools those domains accelerate.
    pub(crate) dram_cache: CacheSim,
    pub(crate) servers: Servers,
    clocks: RwLock<Arc<ClockDomain>>,
    /// Armed crash-site injector, if any (see [`crate::inject`]).
    injector: Mutex<Option<Arc<CrashInjector>>>,
    /// Fast-path flag mirroring `injector.is_some()`, so un-instrumented
    /// runs pay one relaxed load per persistence event.
    injector_armed: AtomicBool,
    /// Attached flight-recorder sink, if any. Sessions capture a ring
    /// from it at construction; same arming idiom as the injector.
    tracer: Mutex<Option<Arc<trace::TraceSink>>>,
    tracer_armed: AtomicBool,
    /// Attached telemetry sampler, if any. Sessions capture a sample
    /// ring from it at construction; same arming idiom as the tracer.
    sampler: Mutex<Option<Arc<obs::Sampler>>>,
    sampler_armed: AtomicBool,
    /// Monotonic serial stamped on every HTM line publication; sections
    /// sample it at `xbegin` and conflict against later publications.
    htm_serial: AtomicU64,
    /// line key -> serial of the latest HTM-visible commit that wrote
    /// the line (the simulated coherence-conflict directory).
    htm_table: Mutex<HashMap<u64, u64>>,
    pub stats: MachineStats,
}

impl Machine {
    pub fn new(config: MachineConfig) -> Arc<Self> {
        let cache = CacheSim::new(config.model.l3_bytes);
        let dram_cache = CacheSim::new(config.model.dram_cache_bytes);
        let servers = Servers::new(config.model.optane_write_banks);
        let clocks = Arc::new(ClockDomain::new(1, u64::MAX));
        Arc::new(Machine {
            config,
            pools: RwLock::new(Vec::new()),
            next_pool: AtomicU32::new(1), // pool 0 reserved so PAddr::NULL stays invalid
            cache,
            dram_cache,
            servers,
            clocks: RwLock::new(clocks),
            injector: Mutex::new(None),
            injector_armed: AtomicBool::new(false),
            tracer: Mutex::new(None),
            tracer_armed: AtomicBool::new(false),
            sampler: Mutex::new(None),
            sampler_armed: AtomicBool::new(false),
            htm_serial: AtomicU64::new(0),
            htm_table: Mutex::new(HashMap::new()),
            stats: MachineStats::new(),
        })
    }

    /// The machine's HTM capabilities.
    pub fn htm(&self) -> &HtmModel {
        &self.config.htm
    }

    /// Serial to sample at `xbegin`: publications with a larger serial
    /// conflict with the section.
    pub(crate) fn htm_serial_now(&self) -> u64 {
        self.htm_serial.load(Ordering::Acquire)
    }

    /// Atomic conflict-check-and-publish at `xend`: if any line of the
    /// section's footprint was published after `start_serial`, the
    /// section loses (a remote committer invalidated its speculative
    /// state) and nothing is published. Otherwise the section's write
    /// lines are published under a fresh serial.
    pub(crate) fn htm_try_commit(
        &self,
        start_serial: u64,
        footprint: &HashSet<u64>,
        writes: &HashSet<u64>,
    ) -> bool {
        let mut table = self.htm_table.lock().unwrap();
        for key in footprint {
            if let Some(&s) = table.get(key) {
                if s > start_serial {
                    return false;
                }
            }
        }
        let serial = self.htm_serial.fetch_add(1, Ordering::AcqRel) + 1;
        for &key in writes {
            table.insert(key, serial);
        }
        true
    }

    /// Publish committed lines on behalf of a *software* commit so
    /// concurrent HTM sections whose footprints overlap it abort — the
    /// coherence traffic a software writeback generates is conflict
    /// traffic to a hardware section just like another section's commit.
    pub(crate) fn htm_publish(&self, lines: impl Iterator<Item = u64>) {
        let mut table = self.htm_table.lock().unwrap();
        let serial = self.htm_serial.fetch_add(1, Ordering::AcqRel) + 1;
        for key in lines {
            table.insert(key, serial);
        }
    }

    /// Arm a crash-site injector: every subsequent persistence-relevant
    /// event is counted (and may trigger a simulated crash). Replaces any
    /// previously armed injector.
    pub fn arm_injector(&self, injector: Arc<CrashInjector>) {
        *self.injector.lock().unwrap() = Some(injector);
        self.injector_armed.store(true, Ordering::Release);
    }

    /// Disarm and return the current injector.
    pub fn disarm_injector(&self) -> Option<Arc<CrashInjector>> {
        self.injector_armed.store(false, Ordering::Release);
        self.injector.lock().unwrap().take()
    }

    /// Record one persistence-relevant event with the armed injector (a
    /// no-op when none is armed). May unwind with
    /// [`crate::inject::SimulatedCrash`] if the armed site is reached.
    #[inline]
    pub fn note_site(&self, kind: SiteKind, in_atomic: bool) {
        if self.injector_armed.load(Ordering::Relaxed) {
            self.note_site_slow(kind, in_atomic);
        }
    }

    #[cold]
    fn note_site_slow(&self, kind: SiteKind, in_atomic: bool) {
        let injector = self.injector.lock().unwrap().clone();
        if let Some(inj) = injector {
            inj.note(self, kind, in_atomic);
        }
    }

    /// Attach a flight-recorder sink: sessions created *afterwards* record
    /// durability events into per-thread rings submitted to this sink.
    /// Replaces any previously attached sink.
    pub fn attach_tracer(&self, sink: Arc<trace::TraceSink>) {
        *self.tracer.lock().unwrap() = Some(sink);
        self.tracer_armed.store(true, Ordering::Release);
    }

    /// Detach and return the current tracer sink.
    pub fn detach_tracer(&self) -> Option<Arc<trace::TraceSink>> {
        self.tracer_armed.store(false, Ordering::Release);
        self.tracer.lock().unwrap().take()
    }

    /// The attached tracer sink, if any. One relaxed load when none is
    /// attached (the common case).
    #[inline]
    pub fn tracer(&self) -> Option<Arc<trace::TraceSink>> {
        if self.tracer_armed.load(Ordering::Relaxed) {
            self.tracer_slow()
        } else {
            None
        }
    }

    #[cold]
    fn tracer_slow(&self) -> Option<Arc<trace::TraceSink>> {
        self.tracer.lock().unwrap().clone()
    }

    /// Attach a telemetry sampler: sessions created *afterwards* fold
    /// their events into per-thread sample rings submitted back to this
    /// sampler. Sampling never advances virtual time. Replaces any
    /// previously attached sampler.
    pub fn attach_sampler(&self, sampler: Arc<obs::Sampler>) {
        *self.sampler.lock().unwrap() = Some(sampler);
        self.sampler_armed.store(true, Ordering::Release);
    }

    /// Detach and return the current sampler.
    pub fn detach_sampler(&self) -> Option<Arc<obs::Sampler>> {
        self.sampler_armed.store(false, Ordering::Release);
        self.sampler.lock().unwrap().take()
    }

    /// The attached sampler, if any. One relaxed load when none is
    /// attached (the common case).
    #[inline]
    pub fn sampler(&self) -> Option<Arc<obs::Sampler>> {
        if self.sampler_armed.load(Ordering::Relaxed) {
            self.sampler_slow()
        } else {
            None
        }
    }

    #[cold]
    fn sampler_slow(&self) -> Option<Arc<obs::Sampler>> {
        self.sampler.lock().unwrap().clone()
    }

    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    pub fn domain(&self) -> DurabilityDomain {
        self.config.domain
    }

    pub fn model(&self) -> &LatencyModel {
        &self.config.model
    }

    /// Allocate a pool of `len_words` words of ordinary persistence class.
    pub fn alloc_pool(&self, name: &str, len_words: usize, media: MediaKind) -> Arc<PmemPool> {
        self.alloc_pool_with_class(name, len_words, media, PersistenceClass::Normal)
    }

    /// Allocate a pool with an explicit persistence class (used for the
    /// PDRAM-Lite redo-log region).
    pub fn alloc_pool_with_class(
        &self,
        name: &str,
        len_words: usize,
        media: MediaKind,
        class: PersistenceClass,
    ) -> Arc<PmemPool> {
        let id = PoolId(self.next_pool.fetch_add(1, Ordering::Relaxed));
        let pool = Arc::new(PmemPool::new(
            id,
            name,
            len_words,
            media,
            class,
            self.config.track_persistence,
        ));
        let mut pools = self.pools.write().unwrap();
        let idx = id.0 as usize;
        if pools.len() <= idx {
            pools.resize_with(idx + 1, || {
                // Fill gaps (incl. reserved pool 0) with zero-size stubs.
                Arc::new(PmemPool::new(
                    PoolId(0),
                    "reserved",
                    0,
                    MediaKind::Dram,
                    PersistenceClass::Normal,
                    false,
                ))
            });
        }
        pools[idx] = Arc::clone(&pool);
        pool
    }

    /// Look up a pool by id.
    pub fn pool(&self, id: PoolId) -> Arc<PmemPool> {
        let pools = self.pools.read().unwrap();
        Arc::clone(&pools[id.0 as usize])
    }

    /// Fail-soft pool lookup: `None` for ids that were never allocated
    /// (or the reserved id 0). Recovery uses this when chasing pool ids
    /// read from possibly-corrupt persistent headers, where a bogus id
    /// must produce a diagnostic instead of a panic.
    pub fn try_pool(&self, id: PoolId) -> Option<Arc<PmemPool>> {
        if id.0 == 0 {
            return None;
        }
        let pools = self.pools.read().unwrap();
        pools.get(id.0 as usize).filter(|p| p.id() == id).cloned()
    }

    /// All pools, in id order (skipping the reserved stub at index 0).
    pub fn pools(&self) -> Vec<Arc<PmemPool>> {
        let pools = self.pools.read().unwrap();
        pools.iter().skip(1).cloned().collect()
    }

    /// Start a fresh timed run with `threads` virtual threads. Resets the
    /// bandwidth servers and replaces the clock domain; previously created
    /// sessions become stale and must not be used afterwards.
    pub fn begin_run(&self, threads: usize, window_ns: u64) {
        self.servers.reset();
        *self.clocks.write().unwrap() = Arc::new(ClockDomain::new(threads, window_ns));
    }

    /// Obtain a session for virtual thread `tid` in the current run.
    pub fn session(self: &Arc<Self>, tid: usize) -> MemSession {
        let domain = Arc::clone(&self.clocks.read().unwrap());
        MemSession::new(Arc::clone(self), tid, domain.handle(tid))
    }

    /// The makespan of the current run: the largest virtual time reached by
    /// any thread. Throughput = operations / makespan.
    pub fn run_time_ns(&self) -> u64 {
        self.clocks.read().unwrap().max_time()
    }

    /// Whether the machine tracks durable shadows (crash simulation).
    pub fn tracking(&self) -> bool {
        self.config.track_persistence
    }

    /// Stop the world before a concurrent crash snapshot: every session
    /// thread parks at its next publish point (within ~64 memory
    /// operations). A crash taken while threads keep running would
    /// otherwise sample a smeared, non-instantaneous memory state.
    /// Blocks until all threads of the current run are parked or done.
    pub fn freeze(&self) {
        self.clocks.read().unwrap().freeze();
    }

    /// Resume after [`Machine::freeze`].
    pub fn thaw(&self) {
        self.clocks.read().unwrap().thaw();
    }

    /// Drop cached lines (e.g. to cold-start a measurement phase).
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.dram_cache.clear();
    }

    /// Drop only the L3 model, keeping the PDRAM DRAM-cache warm (models
    /// an L3-capacity working set churn without evicting DRAM pages).
    pub fn clear_l3(&self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_get_distinct_ids_and_lookup_works() {
        let m = Machine::new(MachineConfig::default());
        let a = m.alloc_pool("a", 64, MediaKind::Optane);
        let b = m.alloc_pool("b", 64, MediaKind::Dram);
        assert_ne!(a.id(), b.id());
        assert_eq!(m.pool(a.id()).name(), "a");
        assert_eq!(m.pool(b.id()).name(), "b");
        assert_eq!(m.pools().len(), 2);
    }

    #[test]
    fn pool_zero_is_reserved() {
        let m = Machine::new(MachineConfig::default());
        let a = m.alloc_pool("a", 64, MediaKind::Optane);
        assert!(a.id().0 >= 1, "PAddr::NULL must never address a real pool");
    }

    #[test]
    fn begin_run_resets_servers() {
        let m = Machine::new(MachineConfig::default());
        m.servers.write_for(true, 7).request(0, 1_000);
        m.begin_run(2, 1_000);
        for b in &m.servers.optane_write {
            assert_eq!(b.backlog(0), 0);
        }
    }

    #[test]
    fn session_ids_bound_by_run_threads() {
        let m = Machine::new(MachineConfig::default());
        m.begin_run(2, u64::MAX);
        let _s0 = m.session(0);
        let _s1 = m.session(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.session(2)));
        assert!(r.is_err());
    }

    #[test]
    fn functional_config_is_tracked_and_free() {
        let cfg = MachineConfig::functional(DurabilityDomain::Adr);
        assert!(cfg.track_persistence);
        assert_eq!(cfg.model.sfence_ns, 0);
    }
}
