//! Per-thread virtual clocks with bounded-lag coordination.
//!
//! Every simulated memory operation advances the issuing thread's *virtual*
//! clock by the operation's modeled latency. Threads run on real OS threads,
//! but a thread whose virtual clock runs more than `window_ns` ahead of the
//! slowest still-active thread yields until the others catch up. This keeps
//! virtual time roughly aligned with real time, so that a lock held for a
//! long *virtual* interval (e.g. across ADR flushes and fences) is exposed
//! to other threads for a proportionally long *real* interval — which is
//! exactly the mechanism behind the paper's contention-window findings
//! (Tables I/II).
//!
//! The coordination is deliberately approximate: it trades strict
//! discrete-event ordering for scalability, which is the right trade for
//! reproducing throughput *shapes* rather than cycle-exact traces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel virtual time for a thread that has finished its run.
const DONE: u64 = u64::MAX;

/// Yield iterations [`ClockDomain::freeze`] tolerates before concluding
/// the world will never stop and panicking with a per-slot dump. Threads
/// park within ~64 memory operations, so any legitimate wait is orders of
/// magnitude shorter; a thread blocked outside the simulator (a deadlock,
/// a forgotten `publish`/`finish`) is the only way to exhaust this.
const FREEZE_YIELD_BUDGET: u64 = 20_000_000;

/// Shared state for one virtual thread's clock.
#[derive(Debug)]
pub struct ClockSlot {
    vt: AtomicU64,
    /// Final virtual time recorded when the thread finishes (the live
    /// `vt` becomes the DONE sentinel, but the makespan still needs the
    /// real value).
    final_vt: AtomicU64,
    /// Set while the thread is parked at a freeze point.
    parked: std::sync::atomic::AtomicBool,
    /// Mirror of the owner's crash-atomic nesting depth, so freeze-stall
    /// diagnostics can tell "never published" from "stuck inside an
    /// atomic section".
    deferred: std::sync::atomic::AtomicU32,
}

impl ClockSlot {
    fn new() -> Self {
        ClockSlot {
            vt: AtomicU64::new(0),
            final_vt: AtomicU64::new(0),
            parked: std::sync::atomic::AtomicBool::new(false),
            deferred: std::sync::atomic::AtomicU32::new(0),
        }
    }
}

/// The clock domain: one slot per registered virtual thread.
#[derive(Debug)]
pub struct ClockDomain {
    slots: Vec<Arc<ClockSlot>>,
    window_ns: u64,
    /// Cached lower bound of the minimum active clock; refreshed lazily.
    min_cache: AtomicU64,
    /// Stop-the-world flag: threads park at their next publish point.
    /// Used to make a concurrent crash snapshot instantaneous (a real
    /// power failure does not interleave with further execution).
    freeze: std::sync::atomic::AtomicBool,
}

impl ClockDomain {
    /// Create a domain with `n` virtual threads and the given lag window.
    ///
    /// A window of `u64::MAX` disables throttling entirely (single-threaded
    /// use, or functional tests).
    pub fn new(n: usize, window_ns: u64) -> Self {
        ClockDomain {
            slots: (0..n).map(|_| Arc::new(ClockSlot::new())).collect(),
            window_ns,
            min_cache: AtomicU64::new(0),
            freeze: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Stop the world: every thread parks at its next publish point
    /// (within ~64 memory operations). Blocks until all threads are
    /// parked or finished. Call [`ClockDomain::thaw`] to resume.
    ///
    /// # Panics
    /// Panics with a per-slot diagnostic dump if some thread never
    /// reaches a publish point within a large yield budget — a silent
    /// infinite spin here turned harness hangs into undebuggable
    /// timeouts.
    pub fn freeze(&self) {
        self.freeze_with_budget(FREEZE_YIELD_BUDGET);
    }

    /// [`ClockDomain::freeze`] with an explicit yield budget (exposed so
    /// tests can exercise the stall diagnostics quickly).
    pub fn freeze_with_budget(&self, budget: u64) {
        use std::sync::atomic::Ordering as O;
        self.freeze.store(true, O::SeqCst);
        let mut spins = 0u64;
        loop {
            let all_stopped = self
                .slots
                .iter()
                .all(|s| s.parked.load(O::SeqCst) || s.vt.load(O::SeqCst) == DONE);
            if all_stopped {
                return;
            }
            spins += 1;
            if spins > budget {
                // Un-freeze so parked peers are released even if this
                // panic is caught; then report which slot is stuck.
                self.freeze.store(false, O::SeqCst);
                panic!(
                    "ClockDomain::freeze stalled after {budget} yields; \
                     some thread never reached a publish point\n{}",
                    self.dump_slots()
                );
            }
            std::thread::yield_now();
        }
    }

    /// Human-readable per-slot state, for stall diagnostics.
    fn dump_slots(&self) -> String {
        use std::sync::atomic::Ordering as O;
        let mut out = String::new();
        for (i, s) in self.slots.iter().enumerate() {
            let vt = s.vt.load(O::SeqCst);
            let vt = if vt == DONE {
                "DONE".to_string()
            } else {
                vt.to_string()
            };
            out.push_str(&format!(
                "  slot {i}: vt={vt} parked={} deferred={} final_vt={}\n",
                s.parked.load(O::SeqCst),
                s.deferred.load(O::SeqCst),
                s.final_vt.load(O::SeqCst),
            ));
        }
        out
    }

    /// Resume after a [`ClockDomain::freeze`].
    pub fn thaw(&self) {
        self.freeze
            .store(false, std::sync::atomic::Ordering::SeqCst);
    }

    /// Number of registered virtual threads.
    pub fn threads(&self) -> usize {
        self.slots.len()
    }

    /// The configured lag window in virtual nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Obtain a handle for virtual thread `tid`.
    ///
    /// # Panics
    /// Panics if `tid` is out of range.
    pub fn handle(self: &Arc<Self>, tid: usize) -> ClockHandle {
        assert!(tid < self.slots.len(), "thread id {tid} out of range");
        ClockHandle {
            slot: Arc::clone(&self.slots[tid]),
            domain: Arc::clone(self),
            local_vt: 0,
            publish_mask: 0x3f,
            ops_since_publish: 0,
            defer_park: 0,
        }
    }

    /// Recompute and cache the minimum virtual time over active threads.
    /// Returns `DONE` when every thread has finished.
    fn refresh_min(&self) -> u64 {
        let mut min = DONE;
        for s in &self.slots {
            let v = s.vt.load(Ordering::Acquire);
            if v < min {
                min = v;
            }
        }
        self.min_cache.store(min, Ordering::Release);
        min
    }

    /// The largest virtual time any thread has reached (the simulation's
    /// makespan once all threads are done).
    pub fn max_time(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| {
                let v = s.vt.load(Ordering::Acquire);
                let f = s.final_vt.load(Ordering::Acquire);
                if v == DONE {
                    f
                } else {
                    v.max(f)
                }
            })
            .max()
            .unwrap_or(0)
    }
}

/// A per-thread handle: owns a fast local clock, periodically published to
/// the shared slot for lag coordination.
pub struct ClockHandle {
    slot: Arc<ClockSlot>,
    domain: Arc<ClockDomain>,
    local_vt: u64,
    /// Publish (and maybe throttle) every `publish_mask + 1` advances.
    publish_mask: u32,
    ops_since_publish: u32,
    /// While > 0, the handle neither parks for a freeze nor throttles:
    /// the thread is inside a crash-atomic section (e.g. an HTM commit's
    /// write application) that a power failure must not split.
    defer_park: u32,
}

impl ClockHandle {
    /// Current virtual time of this thread, in nanoseconds.
    #[inline]
    pub fn now(&self) -> u64 {
        self.local_vt
    }

    /// Advance this thread's virtual clock by `ns`, throttling if the
    /// thread has run too far ahead of the slowest active peer.
    #[inline]
    pub fn advance(&mut self, ns: u64) {
        self.local_vt += ns;
        self.ops_since_publish = self.ops_since_publish.wrapping_add(1);
        // Publish either periodically or when we may have crossed the
        // window relative to the cached minimum.
        let min = self.domain.min_cache.load(Ordering::Relaxed);
        if self.ops_since_publish & self.publish_mask == 0
            || self.local_vt > min.saturating_add(self.domain.window_ns)
        {
            self.publish_and_throttle();
        }
    }

    /// Set the clock forward to at least `target` (used for stalls that
    /// wait on shared servers). No-op if `target` is in the past.
    #[inline]
    pub fn advance_to(&mut self, target: u64) {
        if target > self.local_vt {
            let delta = target - self.local_vt;
            self.advance(delta);
        }
    }

    /// Park at a freeze point if a stop-the-world is in progress.
    #[cold]
    fn maybe_park(&self) {
        use std::sync::atomic::Ordering as O;
        if self.domain.freeze.load(O::Relaxed) {
            self.slot.parked.store(true, O::SeqCst);
            while self.domain.freeze.load(O::SeqCst) {
                std::thread::yield_now();
            }
            self.slot.parked.store(false, O::SeqCst);
        }
    }

    #[cold]
    fn publish_and_throttle(&mut self) {
        self.slot.vt.store(self.local_vt, Ordering::Release);
        self.ops_since_publish = 0;
        if self.defer_park > 0 {
            // Crash-atomic section: no parking, no throttling (a frozen
            // peer would never advance the minimum, and the freeze itself
            // is waiting for us to reach a park point *after* the
            // section).
            return;
        }
        self.maybe_park();
        if self.domain.window_ns == u64::MAX || self.domain.slots.len() == 1 {
            return;
        }
        loop {
            let min = self.domain.refresh_min();
            if min == DONE || self.local_vt <= min.saturating_add(self.domain.window_ns) {
                break;
            }
            // A freeze can arrive while we are waiting here; without this
            // check the parked peers never advance the minimum and both
            // this loop and the freeze would wait forever.
            self.maybe_park();
            std::thread::yield_now();
        }
    }

    /// Enter a crash-atomic section: until the matching
    /// [`ClockHandle::exit_atomic`], this thread will not park at a
    /// freeze point (a simulated power failure cannot split the section).
    /// Nestable. Keep sections short — the world-stop waits them out.
    pub fn enter_atomic(&mut self) {
        self.defer_park += 1;
        self.slot.deferred.store(self.defer_park, Ordering::Release);
    }

    /// Leave a crash-atomic section (parks immediately if a freeze is
    /// pending).
    pub fn exit_atomic(&mut self) {
        debug_assert!(self.defer_park > 0);
        self.defer_park -= 1;
        self.slot.deferred.store(self.defer_park, Ordering::Release);
        if self.defer_park == 0 {
            self.maybe_park();
        }
    }

    /// Whether this thread is inside a crash-atomic section (a simulated
    /// power failure must not land here).
    #[inline]
    pub fn in_atomic(&self) -> bool {
        self.defer_park > 0
    }

    /// Mark this virtual thread finished: it no longer constrains others.
    pub fn finish(&mut self) {
        self.slot
            .final_vt
            .fetch_max(self.local_vt, Ordering::AcqRel);
        self.slot.vt.store(DONE, Ordering::Release);
        self.domain.refresh_min();
    }

    /// Explicitly publish the local clock (e.g. before blocking on
    /// application-level synchronization) so peers are not held back.
    /// Also a freeze safe-point: a thread that publishes manually on every
    /// iteration (e.g. a backoff loop) would otherwise never reach the
    /// batch-counter publish path and never park, deadlocking
    /// [`ClockDomain::freeze`] against itself.
    pub fn publish(&mut self) {
        self.slot.vt.store(self.local_vt, Ordering::Release);
        self.ops_since_publish = 0;
        self.maybe_park();
    }
}

impl Drop for ClockHandle {
    fn drop(&mut self) {
        // A dropped handle must not stall the rest of the simulation, but
        // its elapsed time still counts toward the makespan.
        self.slot
            .final_vt
            .fetch_max(self.local_vt, Ordering::AcqRel);
        self.slot.vt.store(DONE, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_never_throttles() {
        let d = Arc::new(ClockDomain::new(1, 100));
        let mut h = d.handle(0);
        for _ in 0..10_000 {
            h.advance(50);
        }
        assert_eq!(h.now(), 500_000);
    }

    #[test]
    fn advance_to_is_monotone() {
        let d = Arc::new(ClockDomain::new(1, u64::MAX));
        let mut h = d.handle(0);
        h.advance(100);
        h.advance_to(50); // past: no-op
        assert_eq!(h.now(), 100);
        h.advance_to(250);
        assert_eq!(h.now(), 250);
    }

    #[test]
    fn finished_threads_do_not_block_others() {
        let d = Arc::new(ClockDomain::new(2, 10));
        let mut a = d.handle(0);
        let mut b = d.handle(1);
        b.finish();
        // With b done, a may run arbitrarily far ahead without blocking.
        for _ in 0..1000 {
            a.advance(1_000);
        }
        assert_eq!(a.now(), 1_000_000);
    }

    #[test]
    fn two_threads_stay_within_window() {
        let d = Arc::new(ClockDomain::new(2, 1_000));
        let d2 = Arc::clone(&d);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut h = d2.handle(1);
                for _ in 0..50_000 {
                    h.advance(10);
                }
                h.finish();
            });
            let mut h = d.handle(0);
            for _ in 0..50_000 {
                h.advance(10);
                // Every publish point, check the invariant loosely: we can
                // read the peer's published time and must not be more than
                // window + one publish-batch ahead of it.
                let peer = d.slots[1].vt.load(Ordering::Acquire);
                if peer != DONE {
                    let slack = d.window_ns + 64 * 10 + 10;
                    assert!(
                        h.now() <= peer.saturating_add(slack),
                        "ran ahead: self={} peer={}",
                        h.now(),
                        peer
                    );
                }
            }
            h.finish();
        });
    }

    #[test]
    fn max_time_reports_makespan() {
        let d = Arc::new(ClockDomain::new(2, u64::MAX));
        let mut a = d.handle(0);
        let mut b = d.handle(1);
        a.advance(500);
        a.publish();
        b.advance(900);
        b.publish();
        assert_eq!(d.max_time(), 900);
    }

    #[test]
    fn dropped_handle_releases_peers() {
        let d = Arc::new(ClockDomain::new(2, 10));
        {
            let _h = d.handle(1);
        } // dropped immediately
        let mut a = d.handle(0);
        for _ in 0..1000 {
            a.advance(100);
        }
        assert_eq!(a.now(), 100_000);
    }
}

#[cfg(test)]
mod freeze_tests {
    use super::*;

    #[test]
    fn freeze_blocks_until_all_park_and_thaw_releases() {
        let d = Arc::new(ClockDomain::new(2, u64::MAX));
        let d2 = Arc::clone(&d);
        let progressed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let p2 = Arc::clone(&progressed);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let s2 = Arc::clone(&stop);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut h = d2.handle(1);
                while !s2.load(std::sync::atomic::Ordering::Relaxed) {
                    h.advance(10);
                    p2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                h.finish();
            });
            let mut h0 = d.handle(0);
            h0.finish(); // main's slot must not block the freeze
            d.freeze();
            // World stopped: the worker makes (almost) no progress while
            // frozen — allow the <=64-op publish batch in flight.
            let at_freeze = progressed.load(std::sync::atomic::Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            let later = progressed.load(std::sync::atomic::Ordering::SeqCst);
            assert!(
                later - at_freeze <= 64,
                "worker ran while frozen: {}",
                later - at_freeze
            );
            d.thaw();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        // After the scope, the worker resumed and exited: progress resumed.
        assert!(progressed.load(std::sync::atomic::Ordering::SeqCst) > 0);
    }

    #[test]
    fn stalled_freeze_panics_with_slot_dump() {
        // Slot 1's thread never publishes or finishes: before the yield
        // budget, freeze() would spin forever with no diagnostics.
        let d = Arc::new(ClockDomain::new(2, u64::MAX));
        let mut h0 = d.handle(0);
        h0.finish();
        let _h1 = d.handle(1); // alive, never parks
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.freeze_with_budget(5_000)))
                .expect_err("freeze must give up");
        let msg = err.downcast_ref::<String>().expect("panic message").clone();
        assert!(msg.contains("freeze stalled"), "got: {msg}");
        assert!(msg.contains("slot 0: vt=DONE"), "got: {msg}");
        assert!(msg.contains("slot 1: vt=0 parked=false"), "got: {msg}");
        // The failed freeze must not leave the world frozen.
        assert!(!d.freeze.load(Ordering::SeqCst));
    }

    #[test]
    fn slot_mirrors_atomic_section_depth() {
        let d = Arc::new(ClockDomain::new(1, u64::MAX));
        let mut h = d.handle(0);
        assert!(!h.in_atomic());
        h.enter_atomic();
        h.enter_atomic();
        assert!(h.in_atomic());
        assert_eq!(d.slots[0].deferred.load(Ordering::SeqCst), 2);
        h.exit_atomic();
        h.exit_atomic();
        assert!(!h.in_atomic());
        assert_eq!(d.slots[0].deferred.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn freeze_returns_immediately_when_all_done() {
        let d = Arc::new(ClockDomain::new(3, 100));
        for tid in 0..3 {
            let mut h = d.handle(tid);
            h.advance(5);
            h.finish();
        }
        d.freeze(); // must not hang
        d.thaw();
    }
}
