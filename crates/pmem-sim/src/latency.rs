//! The calibrated latency/bandwidth parameters of the simulated machine.
//!
//! Defaults follow the paper (§III-A) and its reference \[46\]
//! (Izraelevitz et al., "Basic Performance Measurements of the Intel Optane
//! DC Persistent Memory Module"): `clwb` costs 86 ns to DRAM and 94 ns to
//! Optane, Optane L3-miss loads are roughly 3x DRAM, Optane write bandwidth
//! saturates with ~4 writer threads while read bandwidth keeps scaling to
//! ~17 threads.

/// All timing parameters, in simulated nanoseconds (or derived units).
///
/// Every field is public so experiments can perturb individual parameters
/// (ablations in `bench/`); [`LatencyModel::default`] is the Optane-class
/// machine of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyModel {
    /// Latency of a load that hits in the (shared) L3.
    pub l3_hit_ns: u64,
    /// Latency of an L3-miss load served by DRAM.
    pub dram_load_ns: u64,
    /// Latency of an L3-miss load served by Optane media.
    pub optane_load_ns: u64,
    /// Latency of a store that hits in cache (store-buffer absorbed).
    pub store_hit_ns: u64,
    /// Extra latency of a store miss (read-for-ownership) beyond the fill.
    pub store_rfo_extra_ns: u64,
    /// Issue cost of `clwb` when the destination is DRAM.
    pub clwb_dram_ns: u64,
    /// Issue cost of `clwb` when the destination is Optane.
    pub clwb_optane_ns: u64,
    /// Issue cost of `clwb` on a clean or absent line (nothing to write back).
    pub clwb_clean_ns: u64,
    /// Base cost of `sfence` (the wait for outstanding flushes is added on
    /// top, see [`crate::MemSession::sfence`]).
    pub sfence_ns: u64,

    /// Service time per cache line on one Optane write bank (WPQ drain).
    /// Aggregate write bandwidth is `optane_write_banks /
    /// optane_write_line_ns` lines per ns; with the default transaction
    /// mix this saturates around 4 streaming writer threads, as in the
    /// paper.
    pub optane_write_line_ns: u64,
    /// Parallel write banks (the testbed interleaves 6 DIMMs per socket).
    /// Lines hash to banks, so a fence waits only for its own bank's
    /// backlog rather than the machine-wide write queue.
    pub optane_write_banks: usize,
    /// Service time per cache line on the DRAM write path.
    pub dram_write_line_ns: u64,
    /// Service time per line of Optane read bandwidth (used only for misses;
    /// large enough pools of readers will queue here, ~17 threads to
    /// saturate).
    pub optane_read_line_ns: u64,
    /// Service time per line of DRAM read bandwidth.
    pub dram_read_line_ns: u64,

    /// WPQ capacity expressed in lines; when the write-path backlog exceeds
    /// `wpq_lines * optane_write_line_ns` of work, flushing threads stall
    /// (the paper's "WPQ saturation").
    pub wpq_lines: u64,
    /// Backlog bound, in lines, for PDRAM's asynchronous DRAM-to-Optane
    /// writeback. Larger than the WPQ because all of DRAM buffers writes,
    /// but still finite: PDRAM eventually hits the same Optane write
    /// bandwidth wall (paper §IV-D).
    pub pdram_backlog_lines: u64,

    /// Simulated L3 capacity in bytes (Fig. 8's first regime boundary).
    pub l3_bytes: usize,
    /// Simulated capacity of the DRAM cache of Optane pages used by the
    /// PDRAM / PDRAM-Lite domains (and Memory Mode). Working sets beyond
    /// it fall back to Optane latency — Fig. 8's second regime boundary.
    pub dram_cache_bytes: usize,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l3_hit_ns: 20,
            dram_load_ns: 81,
            optane_load_ns: 305,
            store_hit_ns: 2,
            store_rfo_extra_ns: 10,
            clwb_dram_ns: 86,
            clwb_optane_ns: 94,
            clwb_clean_ns: 12,
            sfence_ns: 30,
            optane_write_line_ns: 144,
            optane_write_banks: 6,
            dram_write_line_ns: 3,
            optane_read_line_ns: 6,
            dram_read_line_ns: 2,
            wpq_lines: 64,
            pdram_backlog_lines: 4096,
            l3_bytes: 4 << 20,
            dram_cache_bytes: 64 << 20,
        }
    }
}

impl LatencyModel {
    /// The paper's experimental platform (alias of `default`).
    pub fn optane_dc() -> Self {
        Self::default()
    }

    /// A hypothetical machine where persistent media is as fast as DRAM.
    /// Useful in tests to isolate algorithmic costs from media costs.
    pub fn uniform_dram() -> Self {
        LatencyModel {
            optane_load_ns: 81,
            optane_write_line_ns: 18,
            optane_read_line_ns: 2,
            clwb_optane_ns: 86,
            ..Self::default()
        }
    }

    /// A zero-latency model: every operation is free. Only for functional
    /// tests where virtual time is irrelevant.
    pub fn zero() -> Self {
        LatencyModel {
            l3_hit_ns: 0,
            dram_load_ns: 0,
            optane_load_ns: 0,
            store_hit_ns: 0,
            store_rfo_extra_ns: 0,
            clwb_dram_ns: 0,
            clwb_optane_ns: 0,
            clwb_clean_ns: 0,
            sfence_ns: 0,
            optane_write_line_ns: 0,
            optane_write_banks: 6,
            dram_write_line_ns: 0,
            optane_read_line_ns: 0,
            dram_read_line_ns: 0,
            wpq_lines: u64::MAX / 2,
            pdram_backlog_lines: u64::MAX / 2,
            l3_bytes: 4 << 20,
            dram_cache_bytes: 64 << 20,
        }
    }

    /// L3-miss load latency for the given backing media.
    pub fn load_miss_ns(&self, optane: bool) -> u64 {
        if optane {
            self.optane_load_ns
        } else {
            self.dram_load_ns
        }
    }

    /// `clwb` issue cost for the given backing media.
    pub fn clwb_ns(&self, optane: bool) -> u64 {
        if optane {
            self.clwb_optane_ns
        } else {
            self.clwb_dram_ns
        }
    }

    /// Per-line service time on the write path for the given media.
    pub fn write_line_ns(&self, optane: bool) -> u64 {
        if optane {
            self.optane_write_line_ns
        } else {
            self.dram_write_line_ns
        }
    }

    /// Per-line service time on the read path for the given media.
    pub fn read_line_ns(&self, optane: bool) -> u64 {
        if optane {
            self.optane_read_line_ns
        } else {
            self.dram_read_line_ns
        }
    }

    /// Virtual-ns of *per-bank* write backlog at which flushers stall
    /// (the machine-wide WPQ capacity split across banks).
    pub fn wpq_backlog_ns(&self) -> u64 {
        self.wpq_lines.saturating_mul(self.optane_write_line_ns)
            / self.optane_write_banks.max(1) as u64
    }

    /// Virtual-ns of per-bank backlog at which PDRAM writeback stalls
    /// producers.
    pub fn pdram_backlog_ns(&self) -> u64 {
        self.pdram_backlog_lines
            .saturating_mul(self.optane_write_line_ns)
            / self.optane_write_banks.max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optane_loads_slower_than_dram() {
        let m = LatencyModel::default();
        assert!(m.optane_load_ns > 2 * m.dram_load_ns);
        assert!(m.optane_load_ns < 5 * m.dram_load_ns);
    }

    #[test]
    fn clwb_cost_close_between_media() {
        // Paper: clwb latency is similar whether the line routes to DRAM or
        // Optane (86 vs 94 ns).
        let m = LatencyModel::default();
        let diff = m.clwb_optane_ns.abs_diff(m.clwb_dram_ns);
        assert!(diff * 10 < m.clwb_optane_ns);
    }

    #[test]
    fn write_bandwidth_saturates_before_read() {
        // Writes must hit their wall at fewer threads than reads, so the
        // effective (per-bank-adjusted) write service time must exceed
        // the read service time.
        let m = LatencyModel::default();
        let effective_write = m.optane_write_line_ns / m.optane_write_banks as u64;
        assert!(effective_write > 2 * m.optane_read_line_ns);
    }

    #[test]
    fn selectors_match_fields() {
        let m = LatencyModel::default();
        assert_eq!(m.load_miss_ns(true), m.optane_load_ns);
        assert_eq!(m.load_miss_ns(false), m.dram_load_ns);
        assert_eq!(m.clwb_ns(true), m.clwb_optane_ns);
        assert_eq!(m.write_line_ns(false), m.dram_write_line_ns);
        assert_eq!(m.read_line_ns(true), m.optane_read_line_ns);
    }

    #[test]
    fn zero_model_is_free() {
        let m = LatencyModel::zero();
        assert_eq!(m.load_miss_ns(true) + m.clwb_ns(true) + m.sfence_ns, 0);
    }
}
