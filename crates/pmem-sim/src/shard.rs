//! Multi-machine construction: N independent shards under one roof.
//!
//! A [`MachineSet`] builds N identically configured [`Machine`]s, each
//! with its own pools, L3, bandwidth servers, WPQ banks and clock
//! domain. Shards share *nothing* — that is the point: aggregate write
//! throughput scales with shards because each shard drains its own
//! commit pipeline (the paper's single-WPQ saturation wall, multiplied
//! out). Cross-shard coordination lives a layer up (`ptm`'s
//! `ShardedEngine`), which also enforces that no transaction ever
//! touches two shards.

use std::sync::Arc;

use crate::crash::CrashImage;
use crate::machine::{Machine, MachineConfig};
use crate::stats::StatsSnapshot;

/// N independent simulated machines with identical configuration.
#[derive(Debug)]
pub struct MachineSet {
    machines: Vec<Arc<Machine>>,
}

impl MachineSet {
    /// Build `shards` machines, each from a clone of `config`.
    pub fn new(shards: usize, config: MachineConfig) -> MachineSet {
        assert!(shards >= 1, "a machine set needs at least one shard");
        MachineSet {
            machines: (0..shards).map(|_| Machine::new(config.clone())).collect(),
        }
    }

    /// Wrap pre-built machines (e.g. per-shard reboots after a crash).
    pub fn from_machines(machines: Vec<Arc<Machine>>) -> MachineSet {
        assert!(!machines.is_empty());
        MachineSet { machines }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Shard `i`'s machine.
    pub fn get(&self, i: usize) -> &Arc<Machine> {
        &self.machines[i]
    }

    /// All shards, in index order.
    pub fn machines(&self) -> &[Arc<Machine>] {
        &self.machines
    }

    /// Start a fresh timed run on every shard: `threads` virtual threads
    /// per shard, bounded-lag window `window_ns`. Each shard gets its own
    /// clock domain — shards do not lag-couple to each other.
    pub fn begin_run_all(&self, threads: usize, window_ns: u64) {
        for m in &self.machines {
            m.begin_run(threads, window_ns);
        }
    }

    /// Attach one flight-recorder sink per shard, each tagging its
    /// thread ids with the shard index (see `trace::SHARD_SHIFT`), so a
    /// later merge of all sinks' threads keeps per-shard attribution.
    pub fn attach_tracers(&self, ring_capacity: usize) -> Vec<Arc<trace::TraceSink>> {
        self.machines
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let sink = trace::TraceSink::new_for_shard(ring_capacity, i as u32);
                m.attach_tracer(Arc::clone(&sink));
                sink
            })
            .collect()
    }

    /// Stop the world on every shard (crash snapshots of a live run).
    pub fn freeze_all(&self) {
        for m in &self.machines {
            m.freeze();
        }
    }

    /// Resume every shard after [`MachineSet::freeze_all`].
    pub fn thaw_all(&self) {
        for m in &self.machines {
            m.thaw();
        }
    }

    /// Simulated power failure across all shards: each shard yields its
    /// own media image under a per-shard derived seed (the adversary's
    /// choices stay independent and deterministic per shard).
    pub fn crash_all(&self, seed: u64) -> Vec<CrashImage> {
        self.machines
            .iter()
            .enumerate()
            .map(|(i, m)| m.crash(seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1))))
            .collect()
    }

    /// Sum of all shards' counters.
    pub fn aggregate_stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for m in &self.machines {
            total.merge(&m.stats.snapshot());
        }
        total
    }

    /// Zero every shard's counters (between benchmark phases).
    pub fn reset_stats(&self) {
        for m in &self.machines {
            m.stats.reset();
        }
    }

    /// The aggregate makespan: the largest virtual time reached by any
    /// thread on any shard. Open-loop aggregate throughput = total ops /
    /// this.
    pub fn max_run_time_ns(&self) -> u64 {
        self.machines
            .iter()
            .map(|m| m.run_time_ns())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DurabilityDomain, MediaKind};

    #[test]
    fn shards_are_independent_machines() {
        let set = MachineSet::new(4, MachineConfig::default());
        assert_eq!(set.len(), 4);
        // Pools allocated on one shard are invisible to the others.
        let p = set.get(0).alloc_pool("h", 64, MediaKind::Optane);
        assert_eq!(set.get(0).pools().len(), 1);
        assert_eq!(set.get(1).pools().len(), 0);
        // Timed work on shard 0 does not move shard 1's clocks or stats.
        set.begin_run_all(1, u64::MAX);
        {
            let mut s = set.get(0).session(0);
            s.store(p.addr(0), 7);
            s.clwb(p.addr(0));
            s.sfence();
            s.finish();
        }
        assert!(set.get(0).run_time_ns() > 0);
        assert_eq!(set.get(1).run_time_ns(), 0);
        assert_eq!(set.get(1).stats.snapshot().stores, 0);
    }

    #[test]
    fn aggregate_stats_sum_across_shards() {
        let set = MachineSet::new(2, MachineConfig::default());
        let p0 = set.get(0).alloc_pool("a", 64, MediaKind::Optane);
        let p1 = set.get(1).alloc_pool("b", 64, MediaKind::Optane);
        set.begin_run_all(1, u64::MAX);
        let mut s0 = set.get(0).session(0);
        let mut s1 = set.get(1).session(0);
        s0.store(p0.addr(0), 1);
        s1.store(p1.addr(0), 2);
        s1.store(p1.addr(8), 3);
        let agg = set.aggregate_stats();
        assert_eq!(agg.stores, 3);
        set.reset_stats();
        assert_eq!(set.aggregate_stats().stores, 0);
    }

    #[test]
    fn crash_all_yields_one_image_per_shard() {
        let set = MachineSet::new(3, MachineConfig::functional(DurabilityDomain::Adr));
        for i in 0..3 {
            set.get(i).alloc_pool("h", 64, MediaKind::Optane);
        }
        let images = set.crash_all(42);
        assert_eq!(images.len(), 3);
    }

    #[test]
    fn shard_tracers_tag_thread_ids() {
        let set = MachineSet::new(2, MachineConfig::functional(DurabilityDomain::Adr));
        let sinks = set.attach_tracers(1 << 10);
        let p = set.get(1).alloc_pool("h", 64, MediaKind::Optane);
        set.begin_run_all(1, u64::MAX);
        {
            let mut s = set.get(1).session(0);
            s.store(p.addr(0), 1);
            s.clwb(p.addr(0));
            s.sfence();
        } // session drop submits the ring
        let threads = sinks[1].threads();
        assert_eq!(threads.len(), 1);
        assert_eq!(trace::shard_of_tid(threads[0].tid), 1);
        assert_eq!(trace::local_tid(threads[0].tid), 0);
    }
}
