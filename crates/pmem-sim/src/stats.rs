//! Machine-wide event counters.
//!
//! Counters are relaxed atomics updated on the access fast paths; they feed
//! the paper's secondary measurements (flush/fence counts, writeback
//! volume, WPQ stalls) and many shape assertions in tests.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters (shared, relaxed).
#[derive(Debug, Default)]
pub struct MachineStats {
    pub loads: AtomicU64,
    pub stores: AtomicU64,
    pub l3_hits: AtomicU64,
    pub l3_misses: AtomicU64,
    pub clwbs: AtomicU64,
    /// `clwb`s that actually wrote a dirty line back.
    pub clwb_writebacks: AtomicU64,
    /// Batched flush drains issued via `clwb_batch`.
    pub clwb_batches: AtomicU64,
    pub sfences: AtomicU64,
    /// Dirty lines displaced by capacity/conflict evictions.
    pub evictions: AtomicU64,
    /// Lines written to Optane media (flushes + evictions + PDRAM writeback).
    pub optane_lines_written: AtomicU64,
    /// Lines written to DRAM.
    pub dram_lines_written: AtomicU64,
    /// Virtual ns spent stalled on a full WPQ / writeback backlog
    /// (Optane write path only).
    pub wpq_stall_ns: AtomicU64,
    /// Virtual ns spent stalled on DRAM write-server backlog (e.g. L3
    /// victims of DRAM-backed or PDRAM-accelerated pools). Kept apart
    /// from `wpq_stall_ns` so the WPQ counter means exactly "Optane
    /// write-pending-queue pressure", the paper's saturation signal.
    pub dram_write_stall_ns: AtomicU64,
    /// Virtual ns spent waiting in `sfence` for outstanding flushes.
    pub fence_wait_ns: AtomicU64,
}

/// A plain-value snapshot of [`MachineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub loads: u64,
    pub stores: u64,
    pub l3_hits: u64,
    pub l3_misses: u64,
    pub clwbs: u64,
    pub clwb_writebacks: u64,
    pub clwb_batches: u64,
    pub sfences: u64,
    pub evictions: u64,
    pub optane_lines_written: u64,
    pub dram_lines_written: u64,
    pub wpq_stall_ns: u64,
    pub dram_write_stall_ns: u64,
    pub fence_wait_ns: u64,
}

impl MachineStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture the current values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            loads: self.loads.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            l3_hits: self.l3_hits.load(Ordering::Relaxed),
            l3_misses: self.l3_misses.load(Ordering::Relaxed),
            clwbs: self.clwbs.load(Ordering::Relaxed),
            clwb_writebacks: self.clwb_writebacks.load(Ordering::Relaxed),
            clwb_batches: self.clwb_batches.load(Ordering::Relaxed),
            sfences: self.sfences.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            optane_lines_written: self.optane_lines_written.load(Ordering::Relaxed),
            dram_lines_written: self.dram_lines_written.load(Ordering::Relaxed),
            wpq_stall_ns: self.wpq_stall_ns.load(Ordering::Relaxed),
            dram_write_stall_ns: self.dram_write_stall_ns.load(Ordering::Relaxed),
            fence_wait_ns: self.fence_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters (between benchmark phases).
    pub fn reset(&self) {
        for c in [
            &self.loads,
            &self.stores,
            &self.l3_hits,
            &self.l3_misses,
            &self.clwbs,
            &self.clwb_writebacks,
            &self.clwb_batches,
            &self.sfences,
            &self.evictions,
            &self.optane_lines_written,
            &self.dram_lines_written,
            &self.wpq_stall_ns,
            &self.dram_write_stall_ns,
            &self.fence_wait_ns,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl StatsSnapshot {
    /// Difference against an earlier snapshot (per-phase deltas).
    /// Saturating: a `reset` racing between the two snapshots must not
    /// panic the reporter.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            loads: self.loads.saturating_sub(earlier.loads),
            stores: self.stores.saturating_sub(earlier.stores),
            l3_hits: self.l3_hits.saturating_sub(earlier.l3_hits),
            l3_misses: self.l3_misses.saturating_sub(earlier.l3_misses),
            clwbs: self.clwbs.saturating_sub(earlier.clwbs),
            clwb_writebacks: self.clwb_writebacks.saturating_sub(earlier.clwb_writebacks),
            clwb_batches: self.clwb_batches.saturating_sub(earlier.clwb_batches),
            sfences: self.sfences.saturating_sub(earlier.sfences),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            optane_lines_written: self
                .optane_lines_written
                .saturating_sub(earlier.optane_lines_written),
            dram_lines_written: self
                .dram_lines_written
                .saturating_sub(earlier.dram_lines_written),
            wpq_stall_ns: self.wpq_stall_ns.saturating_sub(earlier.wpq_stall_ns),
            dram_write_stall_ns: self
                .dram_write_stall_ns
                .saturating_sub(earlier.dram_write_stall_ns),
            fence_wait_ns: self.fence_wait_ns.saturating_sub(earlier.fence_wait_ns),
        }
    }

    /// Accumulate another machine's counters into this snapshot (shard
    /// aggregation: all fields are event counts or stall totals, so a
    /// plain sum is the right combination everywhere).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.l3_hits += other.l3_hits;
        self.l3_misses += other.l3_misses;
        self.clwbs += other.clwbs;
        self.clwb_writebacks += other.clwb_writebacks;
        self.clwb_batches += other.clwb_batches;
        self.sfences += other.sfences;
        self.evictions += other.evictions;
        self.optane_lines_written += other.optane_lines_written;
        self.dram_lines_written += other.dram_lines_written;
        self.wpq_stall_ns += other.wpq_stall_ns;
        self.dram_write_stall_ns += other.dram_write_stall_ns;
        self.fence_wait_ns += other.fence_wait_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = MachineStats::new();
        MachineStats::bump(&s.loads, 3);
        MachineStats::bump(&s.sfences, 1);
        let snap = s.snapshot();
        assert_eq!(snap.loads, 3);
        assert_eq!(snap.sfences, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    /// A reset between snapshots used to underflow-panic `delta_since`.
    #[test]
    fn delta_saturates_across_reset() {
        let s = MachineStats::new();
        MachineStats::bump(&s.stores, 10);
        let a = s.snapshot();
        s.reset();
        let d = s.snapshot().delta_since(&a);
        assert_eq!(d.stores, 0);
        assert_eq!(d, StatsSnapshot::default());
    }

    #[test]
    fn delta_subtracts() {
        let s = MachineStats::new();
        MachineStats::bump(&s.stores, 10);
        let a = s.snapshot();
        MachineStats::bump(&s.stores, 5);
        let b = s.snapshot();
        assert_eq!(b.delta_since(&a).stores, 5);
    }
}
