//! Power-failure simulation.
//!
//! [`Machine::crash`] produces a [`CrashImage`]: the memory contents that
//! survive a power failure under the active durability domain.
//!
//! * DRAM-backed pools are always lost (zeroed).
//! * Under eADR / PDRAM / PDRAM-Lite, Optane-backed pools survive with
//!   their full cache-visible contents (the reserve power flushes caches).
//! * Under ADR (and the deprecated NoPowerReserve), a pool survives with
//!   its durable shadow — the lines committed by `clwb`+`sfence` or
//!   displaced by evictions — **plus an adversarially random subset of the
//!   words that were dirty but unflushed**. Real hardware gives no
//!   guarantee either way for such words (they may have been evicted
//!   moments before the failure), so recovery code must be correct for
//!   every subset; randomizing over seeds gives property tests teeth.
//!
//! [`Machine::reboot`] rebuilds a machine from an image, preserving pool
//! ids so persistent offsets ([`crate::PAddr`]) remain meaningful across
//! the crash — exactly like re-mapping a DAX file at the same base.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::domain::DurabilityDomain;
use crate::machine::{Machine, MachineConfig};
use crate::pool::{MediaKind, PersistenceClass};
use crate::WORDS_PER_LINE;

/// How the crash adversary decides the fate of each word that was dirty
/// but unflushed at failure time (ADR-class domains only).
///
/// The original simulator hardcoded an independent fair coin per word
/// ([`AdversaryPolicy::PerWord`]). That distribution almost never
/// produces the extreme images — *no* dirty word drained, *every* dirty
/// word drained — nor the cache-line-granular tearing that real Optane
/// produces (the media drains whole 64-byte lines; see Izraelevitz et
/// al.'s device measurements), so recovery bugs that only manifest under
/// those images escape randomized testing entirely. Crash-site sweeps
/// run all of [`AdversaryPolicy::SWEEP`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AdversaryPolicy {
    /// No unflushed dirty word reaches media: the most forgetful
    /// allowed failure.
    AllOld,
    /// Every unflushed dirty word reaches media: the maximally drained
    /// failure (cache-visible state, as if the WPQ flushed everything).
    AllNew,
    /// Each unflushed dirty word independently survives with
    /// probability `p`.
    Biased(f64),
    /// Whole cache lines drain or are lost atomically (fair coin per
    /// line) — the granularity hardware actually evicts at. Words of
    /// one line never tear against each other, but lines tear against
    /// other lines.
    PerLine,
    /// The legacy fair coin per word (`Biased(0.5)`); the default.
    #[default]
    PerWord,
}

impl AdversaryPolicy {
    /// The policies a crash-site sweep exercises, in severity order.
    pub const SWEEP: [AdversaryPolicy; 4] = [
        AdversaryPolicy::PerWord,
        AdversaryPolicy::AllOld,
        AdversaryPolicy::AllNew,
        AdversaryPolicy::PerLine,
    ];

    /// Parse the reproducer-line spelling produced by [`std::fmt::Display`].
    pub fn parse(s: &str) -> Option<AdversaryPolicy> {
        match s {
            "all-old" => Some(AdversaryPolicy::AllOld),
            "all-new" => Some(AdversaryPolicy::AllNew),
            "per-line" => Some(AdversaryPolicy::PerLine),
            "per-word" => Some(AdversaryPolicy::PerWord),
            _ => {
                let p: f64 = s.strip_prefix("biased:")?.parse().ok()?;
                (0.0..=1.0)
                    .contains(&p)
                    .then_some(AdversaryPolicy::Biased(p))
            }
        }
    }
}

impl std::fmt::Display for AdversaryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdversaryPolicy::AllOld => write!(f, "all-old"),
            AdversaryPolicy::AllNew => write!(f, "all-new"),
            AdversaryPolicy::Biased(p) => write!(f, "biased:{p}"),
            AdversaryPolicy::PerLine => write!(f, "per-line"),
            AdversaryPolicy::PerWord => write!(f, "per-word"),
        }
    }
}

/// Surviving contents of one pool.
#[derive(Debug, Clone)]
pub struct PoolImage {
    pub name: String,
    pub media: MediaKind,
    pub class: PersistenceClass,
    pub words: Vec<u64>,
}

/// Surviving contents of the whole machine.
#[derive(Debug, Clone)]
pub struct CrashImage {
    pub domain: DurabilityDomain,
    /// Pool images in pool-id order (id 1 first).
    pub pools: Vec<PoolImage>,
}

impl Machine {
    /// Simulate a power failure and return what survives.
    ///
    /// `seed` drives the adversarial choices (ADR-class domains only);
    /// running recovery over many seeds explores the space of possible
    /// failure images.
    ///
    /// # Panics
    /// Panics if the machine was built without `track_persistence` and the
    /// domain needs a durable shadow (ADR / NoPowerReserve).
    pub fn crash(&self, seed: u64) -> CrashImage {
        self.crash_with(seed, AdversaryPolicy::default())
    }

    /// Like [`Machine::crash`], with an explicit adversary policy for the
    /// fate of unflushed dirty words.
    pub fn crash_with(&self, seed: u64, policy: AdversaryPolicy) -> CrashImage {
        let mut rng = SmallRng::seed_from_u64(seed);
        let domain = self.domain();
        // An instantaneous power cut is one cross-pool cut: freeze every
        // pool's durability pipeline for the whole capture, so a persist
        // racing on a sibling thread (e.g. a parallel-recovery worker
        // mid-repair when an injector fires) lands either entirely
        // before the cut or entirely after it — never a torn image where
        // a later persist is included but an earlier one is not.
        let all = self.pools();
        let _frozen: Vec<_> = all.iter().map(|p| p.freeze_applies()).collect();
        let mut pools = Vec::new();
        for pool in &all {
            let words = if pool.media_kind() == MediaKind::Dram {
                vec![0u64; pool.len_words()]
            } else if domain.preserves_cache_visible(pool.media_kind(), pool.class()) {
                pool.dump_current()
            } else {
                let mut base = pool.dump_shadow().unwrap_or_else(|| {
                    panic!(
                        "crash under {domain:?} requires track_persistence \
                         (pool `{}` has no durable shadow)",
                        pool.name()
                    )
                });
                // Adversary: each unflushed dirty word may or may not have
                // reached media, per the policy.
                let current = pool.dump_current();
                match policy {
                    AdversaryPolicy::AllOld => {}
                    AdversaryPolicy::AllNew => base.copy_from_slice(&current),
                    AdversaryPolicy::Biased(p) => {
                        for (w, slot) in base.iter_mut().enumerate() {
                            if *slot != current[w] && rng.gen_bool(p) {
                                *slot = current[w];
                            }
                        }
                    }
                    AdversaryPolicy::PerWord => {
                        for (w, slot) in base.iter_mut().enumerate() {
                            if *slot != current[w] && rng.gen_bool(0.5) {
                                *slot = current[w];
                            }
                        }
                    }
                    AdversaryPolicy::PerLine => {
                        for (line, chunk) in base.chunks_mut(WORDS_PER_LINE).enumerate() {
                            let cur = &current[line * WORDS_PER_LINE..];
                            let dirty = chunk.iter().zip(cur).any(|(s, c)| s != c);
                            if dirty && rng.gen_bool(0.5) {
                                chunk.copy_from_slice(&cur[..chunk.len()]);
                            }
                        }
                    }
                }
                base
            };
            pools.push(PoolImage {
                name: pool.name().to_string(),
                media: pool.media_kind(),
                class: pool.class(),
                words,
            });
        }
        CrashImage { domain, pools }
    }

    /// Build a fresh machine whose pools are reconstructed from `image`,
    /// with identical pool ids (so persisted [`crate::PAddr`]s stay valid).
    pub fn reboot(image: &CrashImage, config: MachineConfig) -> Arc<Machine> {
        let machine = Machine::new(config);
        for pi in &image.pools {
            let pool = machine.alloc_pool_with_class(&pi.name, pi.words.len(), pi.media, pi.class);
            assert_eq!(
                pool.len_words(),
                pi.words.len(),
                "pool `{}` image not line-aligned",
                pi.name
            );
            pool.load_image(&pi.words);
        }
        machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::pool::PAddr;
    use crate::DurabilityDomain as DD;

    fn tracked(domain: DD) -> Arc<Machine> {
        Machine::new(MachineConfig {
            domain,
            track_persistence: true,
            window_ns: u64::MAX,
            ..MachineConfig::default()
        })
    }

    #[test]
    fn dram_pool_is_lost() {
        let m = tracked(DD::Eadr);
        let p = m.alloc_pool("d", 64, MediaKind::Dram);
        let mut s = m.session(0);
        s.store(p.addr(0), 123);
        let img = m.crash(0);
        assert_eq!(img.pools[0].words[0], 0);
    }

    #[test]
    fn eadr_preserves_unflushed_stores() {
        let m = tracked(DD::Eadr);
        let p = m.alloc_pool("o", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(5), 99); // never flushed
        let img = m.crash(0);
        assert_eq!(img.pools[0].words[5], 99);
    }

    #[test]
    fn adr_preserves_flushed_stores_always() {
        let m = tracked(DD::Adr);
        let p = m.alloc_pool("o", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(2), 7);
        s.clwb(p.addr(2));
        s.sfence();
        for seed in 0..32 {
            let img = m.crash(seed);
            assert_eq!(img.pools[0].words[2], 7, "seed {seed}");
        }
    }

    #[test]
    fn adr_unflushed_store_sometimes_lost_sometimes_kept() {
        let m = tracked(DD::Adr);
        let p = m.alloc_pool("o", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(0), 55); // dirty, unflushed
        let mut kept = 0;
        let mut lost = 0;
        for seed in 0..64 {
            let img = m.crash(seed);
            match img.pools[0].words[0] {
                55 => kept += 1,
                0 => lost += 1,
                other => panic!("impossible survivor value {other}"),
            }
        }
        assert!(kept > 0, "adversary must sometimes persist dirty words");
        assert!(lost > 0, "adversary must sometimes drop dirty words");
    }

    #[test]
    fn pdram_preserves_everything_optane_backed() {
        let m = tracked(DD::Pdram);
        let p = m.alloc_pool("o", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(1), 1);
        s.store(p.addr(9), 2);
        let img = m.crash(3);
        assert_eq!(img.pools[0].words[1], 1);
        assert_eq!(img.pools[0].words[9], 2);
    }

    #[test]
    fn pdram_lite_preserves_lite_pool_and_normal_pool() {
        let m = tracked(DD::PdramLite);
        let log =
            m.alloc_pool_with_class("log", 64, MediaKind::Optane, PersistenceClass::PdramLite);
        let heap = m.alloc_pool("heap", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(log.addr(0), 10);
        s.store(heap.addr(0), 20);
        let img = m.crash(0);
        assert_eq!(img.pools[0].words[0], 10, "lite pool survives");
        assert_eq!(img.pools[1].words[0], 20, "eADR semantics for the rest");
    }

    #[test]
    fn reboot_restores_pool_ids_and_contents() {
        let m = tracked(DD::Eadr);
        let a = m.alloc_pool("a", 64, MediaKind::Optane);
        let b = m.alloc_pool("b", 128, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(a.addr(3), 30);
        s.store(b.addr(7), 70);
        // A persisted cross-pool pointer.
        let ptr = b.addr(7);
        s.store(a.addr(0), ptr.0);
        let img = m.crash(0);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DD::Eadr));
        let a2 = m2.pool(a.id());
        assert_eq!(a2.name(), "a");
        assert_eq!(a2.raw_load(3), 30);
        // The persisted pointer still resolves.
        let restored = PAddr(a2.raw_load(0));
        assert_eq!(m2.pool(restored.pool()).raw_load(restored.word()), 70);
    }

    #[test]
    #[should_panic(expected = "requires track_persistence")]
    fn adr_crash_without_tracking_panics() {
        let m = Machine::new(MachineConfig {
            domain: DD::Adr,
            track_persistence: false,
            window_ns: u64::MAX,
            ..MachineConfig::default()
        });
        m.alloc_pool("o", 64, MediaKind::Optane);
        let _ = m.crash(0);
    }

    /// Regression for the hardcoded `gen_bool(0.5)` adversary: with 32
    /// independent fair coins the all-old and all-new images each occur
    /// with probability 2^-32 — effectively never — yet recovery must be
    /// correct for them. The policy enum makes them first-class.
    #[test]
    fn extreme_images_are_reachable_by_policy() {
        let m = tracked(DD::Adr);
        let p = m.alloc_pool("o", 256, MediaKind::Optane);
        let mut s = m.session(0);
        for i in 0..32 {
            s.store(p.addr(i), i + 1); // all dirty, none flushed
        }
        let old = m.crash_with(0, AdversaryPolicy::AllOld);
        let new = m.crash_with(0, AdversaryPolicy::AllNew);
        for i in 0..32 {
            assert_eq!(old.pools[0].words[i as usize], 0, "all-old word {i}");
            assert_eq!(new.pools[0].words[i as usize], i + 1, "all-new word {i}");
        }
        // The fair per-word coin mixes both (sanity that the default
        // remains adversarial at all).
        let mixed = m.crash_with(3, AdversaryPolicy::PerWord);
        let kept = (0..32).filter(|&i| mixed.pools[0].words[i] != 0).count();
        assert!(kept > 0 && kept < 32, "per-word must mix: kept {kept}/32");
    }

    #[test]
    fn per_line_policy_never_tears_within_a_line() {
        let m = tracked(DD::Adr);
        let p = m.alloc_pool("o", 256, MediaKind::Optane);
        let mut s = m.session(0);
        // Two dirty words in each of four lines.
        for line in 0..4u64 {
            s.store(p.addr(line * 8), 100 + line);
            s.store(p.addr(line * 8 + 1), 200 + line);
        }
        let mut seen_kept = false;
        let mut seen_lost = false;
        let mut seen_mixed_lines = false;
        for seed in 0..64 {
            let img = m.crash_with(seed, AdversaryPolicy::PerLine);
            let mut fates = Vec::new();
            for line in 0..4u64 {
                let a = img.pools[0].words[(line * 8) as usize];
                let b = img.pools[0].words[(line * 8 + 1) as usize];
                match (a, b) {
                    (0, 0) => {
                        seen_lost = true;
                        fates.push(false);
                    }
                    (x, y) if x == 100 + line && y == 200 + line => {
                        seen_kept = true;
                        fates.push(true);
                    }
                    other => panic!("seed {seed} line {line}: intra-line tear {other:?}"),
                }
            }
            if fates.iter().any(|&f| f) && fates.iter().any(|&f| !f) {
                seen_mixed_lines = true;
            }
        }
        assert!(seen_kept, "some lines must drain");
        assert!(seen_lost, "some lines must be lost");
        assert!(seen_mixed_lines, "lines must tear against each other");
    }

    #[test]
    fn biased_policy_skews_survival() {
        let m = tracked(DD::Adr);
        let p = m.alloc_pool("o", 1024, MediaKind::Optane);
        let mut s = m.session(0);
        for i in 0..128 {
            s.store(p.addr(i), 1);
        }
        let survivors = |policy| -> usize {
            (0..8)
                .map(|seed| {
                    let img = m.crash_with(seed, policy);
                    (0..128).filter(|&i| img.pools[0].words[i] == 1).count()
                })
                .sum()
        };
        let low = survivors(AdversaryPolicy::Biased(0.05));
        let high = survivors(AdversaryPolicy::Biased(0.95));
        assert!(low * 4 < high, "bias must matter: low {low} high {high}");
    }

    #[test]
    fn policy_display_parse_roundtrip() {
        for p in [
            AdversaryPolicy::AllOld,
            AdversaryPolicy::AllNew,
            AdversaryPolicy::PerLine,
            AdversaryPolicy::PerWord,
            AdversaryPolicy::Biased(0.25),
        ] {
            assert_eq!(AdversaryPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(AdversaryPolicy::parse("biased:1.5"), None);
        assert_eq!(AdversaryPolicy::parse("junk"), None);
    }

    #[test]
    fn crash_is_deterministic_per_seed() {
        let m = tracked(DD::Adr);
        let p = m.alloc_pool("o", 256, MediaKind::Optane);
        let mut s = m.session(0);
        for i in 0..32 {
            s.store(p.addr(i), i + 1);
        }
        let x = m.crash(42);
        let y = m.crash(42);
        assert_eq!(x.pools[0].words, y.pools[0].words);
    }
}

#[cfg(test)]
mod no_power_reserve_tests {
    use crate::machine::{Machine, MachineConfig};
    use crate::pool::MediaKind;
    use crate::DurabilityDomain as DD;

    /// The deprecated pre-ADR domain: even flushed-and-fenced stores have
    /// no guarantee (the WPQ itself may be lost) — which is exactly why
    /// it was "too cumbersome and slow" to program against and was
    /// deprecated (paper §II-B).
    #[test]
    fn flushed_stores_may_still_be_lost() {
        let m = Machine::new(MachineConfig::functional(DD::NoPowerReserve));
        let p = m.alloc_pool("o", 64, MediaKind::Optane);
        let mut s = m.session(0);
        s.store(p.addr(0), 77);
        s.clwb(p.addr(0));
        s.sfence();
        let mut lost = 0;
        let mut kept = 0;
        for seed in 0..64 {
            match m.crash(seed).pools[0].words[0] {
                0 => lost += 1,
                77 => kept += 1,
                other => panic!("impossible value {other}"),
            }
        }
        assert!(lost > 0, "NoPowerReserve gives no flush+fence guarantee");
        assert!(kept > 0, "...but the write often drains anyway");
    }
}
