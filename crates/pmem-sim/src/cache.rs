//! A lightweight shared-L3 model: direct-mapped tag array with dirty bits.
//!
//! The model answers exactly two questions the simulation needs:
//!
//! 1. does this access hit in the L3 (cheap) or go to media (expensive)?
//! 2. does this access or `clwb` push a dirty line toward the media
//!    (consuming write bandwidth / WPQ slots)?
//!
//! It is deliberately direct-mapped and racy under concurrency: tag-slot
//! updates are plain atomic stores, so two threads can both observe a miss
//! on the same line. That imprecision is noise at the throughput-shape
//! level and keeps the per-access cost to a couple of atomic operations.

use std::sync::atomic::{AtomicU64, Ordering};

/// A line identity: `(pool_id << 44) | line_index`. Pool ids are small and
/// pools are far below 2^44 lines, so the packing is collision-free.
pub type LineKey = u64;

/// Build a [`LineKey`].
#[inline]
pub fn line_key(pool_id: u32, line: u64) -> LineKey {
    debug_assert!(line < 1 << 44, "pool too large for line key packing");
    ((pool_id as u64) << 44) | line
}

const VALID: u64 = 0b01;
const DIRTY: u64 = 0b10;

/// What happened on a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; fetched from media. If a dirty victim was displaced its
    /// key is returned so the caller can charge the writeback.
    Miss { dirty_victim: Option<LineKey> },
}

/// Direct-mapped tag array.
#[derive(Debug)]
pub struct CacheSim {
    slots: Box<[AtomicU64]>,
    mask: u64,
}

impl CacheSim {
    /// A cache of `capacity_bytes / 64` lines, rounded up to a power of two.
    pub fn new(capacity_bytes: usize) -> Self {
        let lines = (capacity_bytes / crate::LINE_BYTES)
            .max(64)
            .next_power_of_two();
        let slots = (0..lines).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        CacheSim {
            slots: slots.into_boxed_slice(),
            mask: lines as u64 - 1,
        }
    }

    /// Number of line slots.
    pub fn lines(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot(&self, key: LineKey) -> &AtomicU64 {
        // Full-avalanche mix (murmur3 finalizer): every input bit —
        // including the pool id in the high bits — influences the slot. A
        // plain multiplicative hash here aliased all pools line-for-line,
        // which made the per-thread log pools thrash each other.
        let mut h = key;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        &self.slots[(h & self.mask) as usize]
    }

    /// Simulate a load or store touch of `key`.
    #[inline]
    pub fn access(&self, key: LineKey, store: bool) -> Access {
        let slot = self.slot(key);
        let cur = slot.load(Ordering::Relaxed);
        let tagged = key << 2;
        if cur & VALID != 0 && cur >> 2 == key {
            if store && cur & DIRTY == 0 {
                slot.store(tagged | VALID | DIRTY, Ordering::Relaxed);
            }
            return Access::Hit;
        }
        let dirty_victim = if cur & VALID != 0 && cur & DIRTY != 0 {
            Some(cur >> 2)
        } else {
            None
        };
        let new = tagged | VALID | if store { DIRTY } else { 0 };
        slot.store(new, Ordering::Relaxed);
        Access::Miss { dirty_victim }
    }

    /// Simulate `clwb key`: returns `true` iff the line was present and
    /// dirty (a writeback is actually issued). The line stays resident but
    /// becomes clean — `clwb`, unlike `clflush`, retains the line.
    #[inline]
    pub fn clwb(&self, key: LineKey) -> bool {
        let slot = self.slot(key);
        let cur = slot.load(Ordering::Relaxed);
        if cur & VALID != 0 && cur >> 2 == key && cur & DIRTY != 0 {
            slot.store((key << 2) | VALID, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Whether `key` is currently resident (for tests and introspection).
    pub fn present(&self, key: LineKey) -> bool {
        let cur = self.slot(key).load(Ordering::Relaxed);
        cur & VALID != 0 && cur >> 2 == key
    }

    /// Whether `key` is resident and dirty.
    pub fn dirty(&self, key: LineKey) -> bool {
        let cur = self.slot(key).load(Ordering::Relaxed);
        cur & VALID != 0 && cur >> 2 == key && cur & DIRTY != 0
    }

    /// Drop all contents (between benchmark phases).
    pub fn clear(&self) {
        for s in self.slots.iter() {
            s.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let c = CacheSim::new(1 << 16);
        let k = line_key(1, 7);
        assert_eq!(c.access(k, false), Access::Miss { dirty_victim: None });
        assert_eq!(c.access(k, false), Access::Hit);
        assert!(c.present(k));
        assert!(!c.dirty(k));
    }

    #[test]
    fn store_marks_dirty_and_clwb_cleans() {
        let c = CacheSim::new(1 << 16);
        let k = line_key(0, 3);
        c.access(k, true);
        assert!(c.dirty(k));
        assert!(c.clwb(k)); // dirty -> writeback issued
        assert!(!c.dirty(k));
        assert!(c.present(k)); // clwb retains the line
        assert!(!c.clwb(k)); // now clean -> nothing to do
    }

    #[test]
    fn clwb_on_absent_line_is_noop() {
        let c = CacheSim::new(1 << 16);
        assert!(!c.clwb(line_key(9, 9)));
    }

    #[test]
    fn conflicting_lines_evict_dirty_victim() {
        let c = CacheSim::new(64 * 64); // 64 lines
                                        // Find two keys mapping to the same slot.
        let base = line_key(0, 0);
        c.access(base, true);
        let mut other = None;
        for i in 1..100_000u64 {
            let k = line_key(0, i);
            if std::ptr::eq(c.slot(k), c.slot(base)) {
                other = Some(k);
                break;
            }
        }
        let other = other.expect("a conflicting line must exist");
        match c.access(other, false) {
            Access::Miss { dirty_victim } => assert_eq!(dirty_victim, Some(base)),
            Access::Hit => panic!("conflicting line cannot hit"),
        }
        assert!(!c.present(base));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let c = CacheSim::new(100 * 64);
        assert_eq!(c.lines(), 128);
    }

    #[test]
    fn distinct_pools_do_not_alias() {
        assert_ne!(line_key(1, 5), line_key(2, 5));
    }

    #[test]
    fn working_set_smaller_than_cache_mostly_hits() {
        let c = CacheSim::new(1 << 20); // 16384 lines
        let keys: Vec<_> = (0..1_000).map(|i| line_key(0, i)).collect();
        for &k in &keys {
            c.access(k, false);
        }
        let hits = keys
            .iter()
            .filter(|&&k| c.access(k, false) == Access::Hit)
            .count();
        // Direct-mapped conflicts can lose a few (including second-pass
        // eviction cascades), but the bulk must hit.
        assert!(hits > 850, "only {hits}/1000 hits");
    }

    #[test]
    fn clear_empties_cache() {
        let c = CacheSim::new(1 << 16);
        let k = line_key(0, 1);
        c.access(k, true);
        c.clear();
        assert!(!c.present(k));
    }
}
