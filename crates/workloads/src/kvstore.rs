//! A memcached-like key/value store (paper §IV-E, Fig. 8).
//!
//! The paper drives memcached with memaslap: one server worker thread, a
//! 50/50 get/set mix over random keys, 128 B keys and 1 KB values, and a
//! working-set size swept from L3-resident to far-beyond-DRAM. Random
//! keys defeat locality, so every request is served by the smallest level
//! of the hierarchy that holds the whole working set — which is exactly
//! what the experiment isolates.
//!
//! Here the store is in-process: a persistent hash index maps the key's
//! 64-bit digest to a 1 KB value block. Gets and sets touch one word per
//! cache line of the value (the memory system works at line granularity,
//! so this preserves the traffic while trimming instrumentation).

use pmem_sim::PAddr;
use pstructs::PHashMap;
use ptm::TxThread;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::driver::Workload;

/// Value size: 1 KB = 128 words = 16 cache lines.
pub const VALUE_WORDS: u64 = 128;
const LINE_STRIDE: u64 = 8;

/// The KV workload; `items` scales the working set (`items` KB of
/// values).
pub struct KvStore {
    items: u64,
    index: Option<PHashMap>,
}

impl KvStore {
    pub fn new(items: u64) -> Self {
        KvStore { items, index: None }
    }

    /// Working-set size in bytes (values only; the index adds ~6%).
    pub fn working_set_bytes(&self) -> u64 {
        self.items * VALUE_WORDS * 8
    }
}

impl Workload for KvStore {
    fn name(&self) -> String {
        format!("kvstore-{}MB", self.working_set_bytes() >> 20)
    }

    fn heap_words(&self) -> usize {
        ((self.items * (VALUE_WORDS + 16)) as usize + (1 << 16)).next_power_of_two()
    }

    fn setup(&mut self, th: &mut TxThread) {
        let index = th.run(|tx| PHashMap::create(tx, self.items as usize));
        for k in 0..self.items {
            th.run(|tx| {
                let block = tx.alloc(VALUE_WORDS as usize);
                let mut w = 0;
                while w < VALUE_WORDS {
                    tx.write_at(block, w, k ^ w)?;
                    w += LINE_STRIDE;
                }
                index.insert(tx, k, block.0)?;
                Ok(())
            });
        }
        self.index = Some(index);
    }

    fn op(&self, th: &mut TxThread, rng: &mut SmallRng, _tid: usize, _i: u64) {
        let index = self.index.expect("setup");
        let key = rng.gen_range(0..self.items);
        if rng.gen_bool(0.5) {
            // GET: read the whole value.
            th.run(|tx| {
                if let Some(block) = index.get(tx, key)? {
                    let block = PAddr(block);
                    let mut sum = 0u64;
                    let mut w = 0;
                    while w < VALUE_WORDS {
                        sum = sum.wrapping_add(tx.read_at(block, w)?);
                        w += LINE_STRIDE;
                    }
                    return Ok(sum);
                }
                Ok(0)
            });
        } else {
            // SET: overwrite the whole value.
            let stamp = rng.gen::<u64>();
            th.run(|tx| {
                if let Some(block) = index.get(tx, key)? {
                    let block = PAddr(block);
                    let mut w = 0;
                    while w < VALUE_WORDS {
                        tx.write_at(block, w, stamp ^ w)?;
                        w += LINE_STRIDE;
                    }
                }
                Ok(())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_scenario, RunConfig, Scenario};
    use pmem_sim::{DurabilityDomain, LatencyModel, MediaKind};
    use ptm::Algo;

    #[test]
    fn kvstore_runs() {
        let mut w = KvStore::new(64);
        let sc = Scenario::new(
            "kv",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            Algo::RedoLazy,
        );
        let rc = RunConfig {
            threads: 1,
            ops_per_thread: 100,
            ..RunConfig::default()
        };
        let r = run_scenario(&mut w, &sc, &rc);
        assert_eq!(r.ops, 100);
        assert!(r.ptm.commits >= 100);
    }

    #[test]
    fn larger_working_sets_run_slower() {
        // Fig. 8's first cliff: an L3-resident working set vs one that
        // spills to media.
        let model = LatencyModel {
            l3_bytes: 1 << 20, // 1 MB L3 for a quick test
            ..LatencyModel::default()
        };
        let run = |items: u64| {
            let mut w = KvStore::new(items);
            let sc = Scenario::new(
                "kv",
                MediaKind::Optane,
                DurabilityDomain::Eadr,
                Algo::RedoLazy,
            );
            let rc = RunConfig {
                threads: 1,
                ops_per_thread: 300,
                model: model.clone(),
                ..RunConfig::default()
            };
            run_scenario(&mut w, &sc, &rc).throughput_mops()
        };
        let small = run(256); // 256 KB: fits the 1 MB L3
        let large = run(8_192); // 8 MB: far beyond it
        assert!(
            small > 1.5 * large,
            "L3-resident {small} should beat spilled {large} clearly"
        );
    }
}
