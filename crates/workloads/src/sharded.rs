//! Open-loop sharded front-end: a simulated client population drives a
//! [`ShardedEngine`] through per-shard request queues.
//!
//! The single-machine driver ([`crate::driver`]) is closed-loop: each
//! thread issues its next operation the instant the previous one
//! finishes, so latency under load is invisible. This front-end is
//! open-loop: requests *arrive* on a virtual-time schedule (bursty
//! inter-arrival gaps, Zipfian keys — the shape memcached sees from
//! memaslap), are routed to their home shard by key, and queue there
//! until a shard worker picks them up. The reported latency is the
//! **sojourn** time (arrival → completion), which is what a client
//! observes and what a p99-under-load claim must be measured against.
//!
//! Routing is single-shard for the open-loop front-ends: each request
//! names one key, each key is homed on one shard, and the worker
//! executing it asserts the homing before touching the heap
//! ([`ShardedEngine::assert_routed`]). The closed-loop
//! [`run_cross_shard_transfer`] workload additionally exercises
//! cross-shard atomicity: a tunable fraction of its transfers/multi-gets
//! spans two shards via [`ptm::CrossShardTx`] (2PC over the per-shard
//! logs).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pmem_sim::{DurabilityDomain, LatencyModel, MachineConfig, PAddr, StatsSnapshot};
use pstructs::PHashMap;
use ptm::{CrossShardTx, PtmConfig, PtmStatsSnapshot, ShardedEngine};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::hist::LatencyHistogram;
use crate::tpcc::{IndexKind, Tpcc};
use crate::Workload;

/// YCSB-style Zipfian key generator (Gray et al. rejection-free form):
/// key 0 is the hottest, skew grows with `theta` (0 = uniform, 0.99 =
/// YCSB default).
#[derive(Debug, Clone)]
pub struct ZipfGen {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfGen {
    pub fn new(n: u64, theta: f64) -> ZipfGen {
        assert!(n >= 1, "zipf needs a non-empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        ZipfGen {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    pub fn next(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }
}

/// One client request in the open-loop stream.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Virtual time at which the client issues the request.
    pub arrival_ns: u64,
    /// Application key (routes the request to its home shard).
    pub key: u64,
    /// Operation selector (workload-interpreted: kv get/set, tpcc op id).
    pub kind: u64,
}

/// Shape of the simulated client population.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Total requests across all shards.
    pub total_ops: u64,
    /// Key population (keys are `0..keys`).
    pub keys: u64,
    /// Zipfian skew over the key population (0 = uniform).
    pub zipf_theta: f64,
    /// Mean virtual-time gap between arrival *instants*.
    pub mean_gap_ns: u64,
    /// Maximum burst size: each arrival instant carries 1..=burst
    /// requests (open-loop bursts; 1 = smooth arrivals).
    pub burst: u64,
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            total_ops: 4_000,
            keys: 1 << 14,
            zipf_theta: 0.9,
            mean_gap_ns: 300,
            burst: 8,
            seed: 42,
        }
    }
}

/// Generate the arrival-ordered open-loop request stream.
pub fn gen_open_loop(cfg: &StreamConfig) -> Vec<Request> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5157_4f52_4b4c_4f41);
    let zipf = ZipfGen::new(cfg.keys, cfg.zipf_theta);
    let mut out = Vec::with_capacity(cfg.total_ops as usize);
    let mut now = 0u64;
    while (out.len() as u64) < cfg.total_ops {
        // Bursty arrivals: a uniform gap (same mean as exponential)
        // followed by a burst of simultaneous requests.
        now += rng.gen_range(0..=2 * cfg.mean_gap_ns.max(1));
        let burst = rng.gen_range(1..=cfg.burst.max(1));
        for _ in 0..burst {
            if out.len() as u64 >= cfg.total_ops {
                break;
            }
            out.push(Request {
                arrival_ns: now,
                key: zipf.next(&mut rng),
                kind: rng.gen(),
            });
        }
    }
    out
}

/// Execution parameters for one sharded measurement point.
#[derive(Debug, Clone)]
pub struct ShardedRunConfig {
    pub shards: usize,
    pub threads_per_shard: usize,
    /// Bounded-lag window within each shard's clock domain.
    pub window_ns: u64,
    pub model: LatencyModel,
    pub domain: DurabilityDomain,
    /// PTM template: algorithm, group-commit knobs, heap media.
    pub ptm: PtmConfig,
    pub stream: StreamConfig,
    /// Per-shard flight-recorder sinks (`trace[i]` → shard `i`'s
    /// machine, attached for the measured phase only). Empty = off.
    /// Build them with `TraceSink::new_for_shard` so merged tids stay
    /// shard-attributable. `PtmConfig::tracing` is forced on while any
    /// sink or sampler is present.
    pub trace: Vec<Arc<trace::TraceSink>>,
    /// Per-shard telemetry samplers, mirroring `trace`. Build with
    /// `obs::Sampler::new_for_shard`. Sampling never advances virtual
    /// time.
    pub obs: Vec<Arc<obs::Sampler>>,
}

impl Default for ShardedRunConfig {
    fn default() -> Self {
        ShardedRunConfig {
            shards: 1,
            threads_per_shard: 4,
            window_ns: 1_000,
            model: LatencyModel::default(),
            domain: DurabilityDomain::Adr,
            ptm: PtmConfig::default(),
            stream: StreamConfig::default(),
            trace: Vec::new(),
            obs: Vec::new(),
        }
    }
}

/// Result of one sharded measurement point.
#[derive(Debug, Clone)]
pub struct ShardedRunResult {
    pub label: String,
    pub shards: usize,
    pub threads_per_shard: usize,
    pub ops: u64,
    /// Aggregate makespan: the largest virtual time on any shard.
    pub elapsed_virtual_ns: u64,
    /// Sum of all shards' PTM counters.
    pub ptm: PtmStatsSnapshot,
    /// Sum of all shards' memory-system counters.
    pub mem: StatsSnapshot,
    /// Per-shard memory-system counters (WPQ-stall attribution).
    pub per_shard_mem: Vec<StatsSnapshot>,
    /// Sojourn time (request arrival → completion) distribution.
    pub sojourn: LatencyHistogram,
}

impl ShardedRunResult {
    /// Aggregate throughput in millions of operations per virtual second.
    pub fn throughput_mops(&self) -> f64 {
        if self.elapsed_virtual_ns == 0 {
            return 0.0;
        }
        self.ops as f64 * 1_000.0 / self.elapsed_virtual_ns as f64
    }

    /// Fences retired per committed transaction — the group-commit
    /// headline metric.
    pub fn sfences_per_commit(&self) -> f64 {
        self.mem.sfences as f64 / self.ptm.commits.max(1) as f64
    }
}

/// PTM template with tracing forced on while telemetry is armed, so
/// transaction lifecycle events reach the sinks/samplers.
fn ptm_config(rc: &ShardedRunConfig) -> PtmConfig {
    PtmConfig {
        tracing: rc.ptm.tracing || !rc.trace.is_empty() || !rc.obs.is_empty(),
        ..rc.ptm.clone()
    }
}

fn machine_config(rc: &ShardedRunConfig) -> MachineConfig {
    MachineConfig {
        domain: rc.domain,
        model: rc.model.clone(),
        track_persistence: false,
        window_ns: rc.window_ns,
        ..MachineConfig::default()
    }
}

/// Partition an arrival-ordered stream into per-shard queues (stable, so
/// each queue stays arrival-ordered).
fn partition<F: Fn(u64) -> usize>(reqs: &[Request], shards: usize, route: F) -> Vec<Vec<Request>> {
    let mut queues = vec![Vec::new(); shards];
    for r in reqs {
        queues[route(r.key)].push(*r);
    }
    queues
}

/// Drive pre-partitioned queues through the engine: `threads_per_shard`
/// workers per shard claim requests in arrival order, idle until each
/// request's arrival instant, execute `exec`, and record sojourn times.
fn drive<F>(
    engine: &ShardedEngine,
    queues: &[Vec<Request>],
    rc: &ShardedRunConfig,
    exec: F,
) -> (u64, LatencyHistogram)
where
    F: Fn(usize, &mut ptm::TxThread, &mut SmallRng, &Request) + Sync,
{
    // Arm telemetry for the measured phase only: worker sessions below
    // capture their rings at construction.
    for (i, sink) in rc.trace.iter().enumerate() {
        engine.machine(i).attach_tracer(Arc::clone(sink));
    }
    for (i, sampler) in rc.obs.iter().enumerate() {
        engine.machine(i).attach_sampler(Arc::clone(sampler));
    }
    engine.begin_run_all(rc.threads_per_shard, rc.window_ns);
    let heads: Vec<AtomicUsize> = (0..rc.shards).map(|_| AtomicUsize::new(0)).collect();
    let sojourn = Mutex::new(LatencyHistogram::new());
    std::thread::scope(|scope| {
        for shard in 0..rc.shards {
            for tid in 0..rc.threads_per_shard {
                let engine = &engine;
                let queue = &queues[shard];
                let head = &heads[shard];
                let sojourn = &sojourn;
                let exec = &exec;
                let seed = rc.stream.seed;
                scope.spawn(move || {
                    let mut th = engine.thread(shard, tid);
                    let mut rng = SmallRng::seed_from_u64(
                        seed ^ ((shard as u64) << 32 | tid as u64).wrapping_mul(0x9E37_79B9),
                    );
                    let mut local = LatencyHistogram::new();
                    loop {
                        let idx = head.fetch_add(1, Ordering::Relaxed);
                        if idx >= queue.len() {
                            break;
                        }
                        let req = &queue[idx];
                        if th.session_mut().now() < req.arrival_ns {
                            th.session_mut().advance_to(req.arrival_ns);
                        }
                        {
                            // Queue wait observed at dequeue: how long
                            // the request sat before this worker picked
                            // it up (0 when the worker idled for it).
                            let s = th.session_mut();
                            if s.tracing() {
                                let wait = s.now().saturating_sub(req.arrival_ns);
                                s.trace_event(trace::EventKind::QueueWait, wait, req.arrival_ns);
                            }
                        }
                        exec(shard, &mut th, &mut rng, req);
                        let done = th.session_mut().now();
                        local.record(done.saturating_sub(req.arrival_ns));
                    }
                    th.session_mut().finish();
                    sojourn.lock().unwrap().merge(&local);
                });
            }
        }
    });
    // Worker sessions have dropped (submitting their rings); disarm.
    for (i, _) in rc.trace.iter().enumerate() {
        engine.machine(i).detach_tracer();
    }
    for (i, _) in rc.obs.iter().enumerate() {
        engine.machine(i).detach_sampler();
    }
    (engine.max_run_time_ns(), sojourn.into_inner().unwrap())
}

// ---------------------------------------------------------------------
// Sharded key/value store
// ---------------------------------------------------------------------

/// Value size for the sharded KV store: 16 words = 2 cache lines (small
/// values, so the population can scale to many keys per shard).
pub const SHARDED_KV_VALUE_WORDS: u64 = 16;

/// Run the memcached-like store across `rc.shards` shards: Zipfian keys
/// are homed by [`ShardedEngine::shard_of`], a 50/50 get/set mix runs
/// against each shard's private hash index.
pub fn run_sharded_kv(rc: &ShardedRunConfig) -> ShardedRunResult {
    const VW: u64 = SHARDED_KV_VALUE_WORDS;
    let reqs = gen_open_loop(&rc.stream);
    // Home every key, size each shard's heap for its population.
    let mut per_shard_keys = vec![Vec::new(); rc.shards];
    {
        // Routing must match the engine's; build a throwaway hash of the
        // same shape before the engine exists.
        let probe = |key: u64| {
            ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % rc.shards as u64) as usize
        };
        for k in 0..rc.stream.keys {
            per_shard_keys[probe(k)].push(k);
        }
    }
    let max_keys = per_shard_keys.iter().map(Vec::len).max().unwrap_or(0) as u64;
    let heap_words = ((max_keys * (VW + 16)) as usize + (1 << 15)).next_power_of_two();
    let engine =
        ShardedEngine::create(rc.shards, machine_config(rc), ptm_config(rc), heap_words, 4);
    for (shard, keys) in per_shard_keys.iter().enumerate() {
        for &k in keys {
            engine.assert_routed(shard, k);
        }
    }

    // Parallel per-shard setup (each shard is an independent machine),
    // single-threaded and unthrottled within a shard.
    engine.begin_run_all(1, u64::MAX);
    let indexes: Vec<PHashMap> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..rc.shards)
            .map(|shard| {
                let engine = &engine;
                let keys = &per_shard_keys[shard];
                scope.spawn(move || {
                    let mut th = engine.thread(shard, 0);
                    let index = th.run(|tx| PHashMap::create(tx, keys.len().max(64)));
                    for &k in keys {
                        th.run(|tx| {
                            let block = tx.alloc(VW as usize);
                            let mut w = 0;
                            while w < VW {
                                tx.write_at(block, w, k ^ w)?;
                                w += pmem_sim::WORDS_PER_LINE as u64;
                            }
                            index.insert(tx, k, block.0)?;
                            Ok(())
                        });
                    }
                    th.session_mut().finish();
                    index
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    engine.reset_stats();

    let queues = partition(&reqs, rc.shards, |key| engine.shard_of(key));
    let (elapsed, sojourn) = drive(&engine, &queues, rc, |shard, th, _rng, req| {
        engine.assert_routed(shard, req.key);
        let index = indexes[shard];
        if req.kind & 1 == 0 {
            // GET: read the whole value.
            th.run(|tx| {
                if let Some(block) = index.get(tx, req.key)? {
                    let block = PAddr(block);
                    let mut sum = 0u64;
                    let mut w = 0;
                    while w < VW {
                        sum = sum.wrapping_add(tx.read_at(block, w)?);
                        w += pmem_sim::WORDS_PER_LINE as u64;
                    }
                    return Ok(sum);
                }
                Ok(0)
            });
        } else {
            // SET: overwrite the whole value.
            let stamp = req.kind;
            th.run(|tx| {
                if let Some(block) = index.get(tx, req.key)? {
                    let block = PAddr(block);
                    let mut w = 0;
                    while w < VW {
                        tx.write_at(block, w, stamp ^ w)?;
                        w += pmem_sim::WORDS_PER_LINE as u64;
                    }
                }
                Ok(())
            });
        }
    });

    ShardedRunResult {
        label: format!("sharded-kv-{}x{}", rc.shards, rc.threads_per_shard),
        shards: rc.shards,
        threads_per_shard: rc.threads_per_shard,
        ops: reqs.len() as u64,
        elapsed_virtual_ns: elapsed,
        ptm: engine.aggregate_ptm_stats(),
        mem: engine.aggregate_mem_stats(),
        per_shard_mem: engine.per_shard_mem_stats(),
        sojourn,
    }
}

// ---------------------------------------------------------------------
// Sharded TPCC
// ---------------------------------------------------------------------

/// Run TPCC across shards, routed by **home warehouse**: global warehouse
/// `gw` lives on shard `gw % shards` as that shard's local warehouse
/// `gw / shards`. Every transaction touches exactly one warehouse's data,
/// so the partitioning is exact — this is the classic shardable slice of
/// TPCC (cross-warehouse payments would need 2PC, which is out of scope).
pub fn run_sharded_tpcc(rc: &ShardedRunConfig, kind: IndexKind) -> ShardedRunResult {
    let warehouses = rc.stream.keys;
    assert!(
        warehouses >= rc.shards as u64,
        "need at least one warehouse per shard"
    );
    let reqs = gen_open_loop(&rc.stream);
    let route = |gw: u64| (gw % rc.shards as u64) as usize;
    let local_of = |gw: u64| gw / rc.shards as u64;
    let wh_per_shard = |shard: usize| {
        (warehouses / rc.shards as u64) + u64::from((warehouses % rc.shards as u64) > shard as u64)
    };

    // Per-shard TPCC instances sized for that shard's warehouse count and
    // expected order share.
    let expected_per_shard = (rc.stream.total_ops / rc.shards as u64).max(256);
    let mut insts: Vec<Tpcc> = (0..rc.shards)
        .map(|s| Tpcc::new(kind, wh_per_shard(s), expected_per_shard))
        .collect();
    let heap_words = insts.iter().map(|t| t.heap_words()).max().unwrap();
    let engine =
        ShardedEngine::create(rc.shards, machine_config(rc), ptm_config(rc), heap_words, 4);

    engine.begin_run_all(1, u64::MAX);
    std::thread::scope(|scope| {
        for (shard, inst) in insts.iter_mut().enumerate() {
            let engine = &engine;
            scope.spawn(move || {
                let mut th = engine.thread(shard, 0);
                inst.setup(&mut th);
                th.session_mut().finish();
            });
        }
    });
    engine.reset_stats();

    let queues = partition(&reqs, rc.shards, route);
    let insts = &insts;
    let (elapsed, sojourn) = drive(&engine, &queues, rc, |shard, th, rng, req| {
        debug_assert_eq!(route(req.key), shard, "warehouse routed to wrong shard");
        insts[shard].op_at_warehouse(th, rng, local_of(req.key), req.kind);
    });

    ShardedRunResult {
        label: format!("sharded-tpcc-{}x{}", rc.shards, rc.threads_per_shard),
        shards: rc.shards,
        threads_per_shard: rc.threads_per_shard,
        ops: reqs.len() as u64,
        elapsed_virtual_ns: elapsed,
        ptm: engine.aggregate_ptm_stats(),
        mem: engine.aggregate_mem_stats(),
        per_shard_mem: engine.per_shard_mem_stats(),
        sojourn,
    }
}

// ---------------------------------------------------------------------
// Cross-shard transfer / multi-get (2PC)
// ---------------------------------------------------------------------

/// Initial balance of every account in [`run_cross_shard_transfer`].
pub const TRANSFER_INITIAL_BALANCE: u64 = 1_000;

/// Closed-loop account-transfer workload over a [`ShardedEngine`] with a
/// tunable cross-shard fraction.
///
/// `rc.stream.keys` accounts (one word each) are homed across shards by
/// [`ShardedEngine::shard_of`]. `rc.threads_per_shard * rc.shards`
/// roaming workers each drive a [`CrossShardTx`]; every operation picks
/// an account pair — spanning two shards with probability `cross_frac`,
/// homed on one shard otherwise — and runs either a balance transfer
/// (odd ops) or a multi-get (even ops) as **one atomic transaction**.
/// Single-shard pairs take the ordinary single-shard commit path;
/// cross-shard pairs pay the 2PC prepare/decide protocol, so sweeping
/// `cross_frac` traces out exactly the seam cost the fence-budget table
/// documents.
///
/// Workers roam every shard, so the run uses an unbounded lag window
/// regardless of `rc.window_ns` (see `ptm::twopc` module docs on why a
/// bounded window would deadlock idle cross-shard sessions).
pub fn run_cross_shard_transfer(rc: &ShardedRunConfig, cross_frac: f64) -> ShardedRunResult {
    assert!((0.0..=1.0).contains(&cross_frac), "cross_frac in [0, 1]");
    let keys = rc.stream.keys;
    assert!(keys >= 4, "transfer workload needs at least 4 accounts");
    let heap_words = ((keys as usize * 8) + (1 << 14)).next_power_of_two();
    let engine =
        ShardedEngine::create(rc.shards, machine_config(rc), ptm_config(rc), heap_words, 4);

    // Per-shard parallel setup: allocate this shard's accounts and seed
    // the initial balance; accounts are reported back into one global
    // key-indexed table.
    engine.begin_run_all(1, u64::MAX);
    let mut accounts: Vec<PAddr> = vec![PAddr(0); keys as usize];
    let per_shard: Vec<Vec<(u64, PAddr)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..rc.shards)
            .map(|shard| {
                let engine = &engine;
                scope.spawn(move || {
                    let mut th = engine.thread(shard, 0);
                    let mut out = Vec::new();
                    for k in 0..keys {
                        if engine.shard_of(k) != shard {
                            continue;
                        }
                        let c = th.run(|tx| {
                            let c = tx.alloc(1);
                            tx.write(c, TRANSFER_INITIAL_BALANCE)?;
                            Ok(c)
                        });
                        out.push((k, c));
                    }
                    th.session_mut().finish();
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (shard, pairs) in per_shard.iter().enumerate() {
        for &(k, c) in pairs {
            engine.assert_routed(shard, k);
            accounts[k as usize] = c;
        }
    }
    engine.reset_stats();

    for (i, sink) in rc.trace.iter().enumerate() {
        engine.machine(i).attach_tracer(Arc::clone(sink));
    }
    for (i, sampler) in rc.obs.iter().enumerate() {
        engine.machine(i).attach_sampler(Arc::clone(sampler));
    }
    let workers = (rc.threads_per_shard * rc.shards).max(1);
    engine.begin_run_all(workers, u64::MAX);
    let total_ops = rc.stream.total_ops;
    let accounts = &accounts;
    let latency = Mutex::new(LatencyHistogram::new());
    // Cross-shard probability as a 32-bit threshold (exact for the
    // fractions the benches sweep; avoids per-op float draws).
    let cross_threshold = (cross_frac * u32::MAX as f64) as u32;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let engine = &engine;
            let latency = &latency;
            let seed = rc.stream.seed;
            let zipf = ZipfGen::new(keys, rc.stream.zipf_theta);
            scope.spawn(move || {
                let mut cx = CrossShardTx::new(engine, w);
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut local = LatencyHistogram::new();
                let my_ops =
                    total_ops / workers as u64 + u64::from((total_ops % workers as u64) > w as u64);
                for op in 0..my_ops {
                    let k1 = zipf.next(&mut rng);
                    let s1 = engine.shard_of(k1);
                    let want_cross = rc.shards > 1 && rng.gen::<u32>() < cross_threshold;
                    let (k2, s2) = loop {
                        let k = zipf.next(&mut rng);
                        if k == k1 {
                            continue;
                        }
                        let s = engine.shard_of(k);
                        if (s != s1) == want_cross {
                            break (k, s);
                        }
                    };
                    engine.assert_routed(s1, k1);
                    engine.assert_routed(s2, k2);
                    let (a1, a2) = (accounts[k1 as usize], accounts[k2 as usize]);
                    let t0 = cx.frontier();
                    if op & 1 == 1 {
                        // Transfer: move one unit k1 -> k2 (skip when
                        // k1 is broke, keeping balances non-negative).
                        cx.run(|tx| {
                            let b1 = tx.read(s1, a1)?;
                            if b1 == 0 {
                                return Ok(());
                            }
                            let b2 = tx.read(s2, a2)?;
                            tx.write(s1, a1, b1 - 1)?;
                            tx.write(s2, a2, b2 + 1)
                        });
                    } else {
                        // Multi-get: one consistent read of both.
                        cx.run(|tx| {
                            let b1 = tx.read(s1, a1)?;
                            let b2 = tx.read(s2, a2)?;
                            Ok(b1.wrapping_add(b2))
                        });
                    }
                    local.record(cx.frontier().saturating_sub(t0));
                }
                cx.finish();
                latency.lock().unwrap().merge(&local);
            });
        }
    });
    for (i, _) in rc.trace.iter().enumerate() {
        engine.machine(i).detach_tracer();
    }
    for (i, _) in rc.obs.iter().enumerate() {
        engine.machine(i).detach_sampler();
    }

    // Workload invariant: transfers conserve the total balance. A 2PC
    // bug that commits one leg of a transfer and drops the other shows
    // up here immediately, even without a crash.
    let total: u64 = accounts
        .iter()
        .enumerate()
        .map(|(k, a)| {
            engine
                .machine(engine.shard_of(k as u64))
                .pool(a.pool())
                .raw_load(a.word())
        })
        .sum();
    assert_eq!(
        total,
        keys * TRANSFER_INITIAL_BALANCE,
        "transfer workload lost or minted balance"
    );

    ShardedRunResult {
        label: format!(
            "xshard-transfer-{}x{}-f{:.2}",
            rc.shards, rc.threads_per_shard, cross_frac
        ),
        shards: rc.shards,
        threads_per_shard: rc.threads_per_shard,
        ops: total_ops,
        elapsed_virtual_ns: engine.max_run_time_ns(),
        ptm: engine.aggregate_ptm_stats(),
        mem: engine.aggregate_mem_stats(),
        per_shard_mem: engine.per_shard_mem_stats(),
        sojourn: latency.into_inner().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm::Algo;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = ZipfGen::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u64; 1000];
        for _ in 0..20_000 {
            let k = z.next(&mut rng);
            assert!(k < 1000);
            counts[k as usize] += 1;
        }
        // Hot head: the top key alone draws far more than uniform share.
        assert!(counts[0] > 20_000 / 1000 * 10, "head count {}", counts[0]);
        // But the tail is still reachable.
        assert!(counts[500..].iter().sum::<u64>() > 0);
        // theta=0 is uniform-ish: head is not wildly hot.
        let u = ZipfGen::new(1000, 0.0);
        let mut cu = vec![0u64; 1000];
        for _ in 0..20_000 {
            cu[u.next(&mut rng) as usize] += 1;
        }
        assert!(cu[0] < 200, "uniform head count {}", cu[0]);
    }

    #[test]
    fn stream_is_arrival_ordered_and_sized() {
        let cfg = StreamConfig {
            total_ops: 500,
            ..StreamConfig::default()
        };
        let reqs = gen_open_loop(&cfg);
        assert_eq!(reqs.len(), 500);
        for w in reqs.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
        }
        // Bursts exist: some consecutive requests share an arrival.
        assert!(reqs.windows(2).any(|w| w[0].arrival_ns == w[1].arrival_ns));
        // Determinism.
        let again = gen_open_loop(&cfg);
        assert_eq!(reqs.len(), again.len());
        assert!(reqs
            .iter()
            .zip(&again)
            .all(|(a, b)| a.arrival_ns == b.arrival_ns && a.key == b.key && a.kind == b.kind));
    }

    fn quick_rc(shards: usize) -> ShardedRunConfig {
        ShardedRunConfig {
            shards,
            threads_per_shard: 2,
            ptm: PtmConfig {
                algo: Algo::RedoLazy,
                ..PtmConfig::default()
            },
            stream: StreamConfig {
                total_ops: 400,
                keys: 512,
                ..StreamConfig::default()
            },
            ..ShardedRunConfig::default()
        }
    }

    #[test]
    fn sharded_kv_runs_and_counts() {
        let r = run_sharded_kv(&quick_rc(2));
        assert_eq!(r.ops, 400);
        assert!(r.elapsed_virtual_ns > 0);
        assert!(r.ptm.commits >= 400, "commits {}", r.ptm.commits);
        assert_eq!(r.per_shard_mem.len(), 2);
        assert_eq!(r.sojourn.count(), 400);
        assert!(r.throughput_mops() > 0.0);
    }

    #[test]
    fn sharded_tpcc_runs_and_counts() {
        let mut rc = quick_rc(2);
        rc.stream.keys = 4; // 4 warehouses over 2 shards
        rc.stream.total_ops = 200;
        let r = run_sharded_tpcc(&rc, IndexKind::Hash);
        assert_eq!(r.ops, 200);
        assert!(r.ptm.commits >= 200);
        assert_eq!(r.sojourn.count(), 200);
    }

    #[test]
    fn cross_shard_transfer_runs_and_counts_2pc() {
        let mut rc = quick_rc(2);
        rc.stream.total_ops = 300;
        rc.stream.keys = 64;
        let r = run_cross_shard_transfer(&rc, 0.5);
        assert_eq!(r.ops, 300);
        assert!(r.ptm.commits >= 300);
        assert!(r.ptm.coordinator_commits > 0, "no cross-shard commits");
        assert_eq!(
            r.ptm.prepares,
            2 * r.ptm.coordinator_commits,
            "every 2PC transfer has exactly two writer participants"
        );
        assert_eq!(r.sojourn.count(), 300);

        // frac=0 never engages the 2PC machinery.
        let r0 = run_cross_shard_transfer(&rc, 0.0);
        assert_eq!(r0.ptm.prepares, 0);
        assert_eq!(r0.ptm.coordinator_commits, 0);
    }

    #[test]
    fn group_commit_elides_fences_on_sharded_kv() {
        let mut base = quick_rc(1);
        base.threads_per_shard = 4;
        base.stream.total_ops = 600;
        let plain = run_sharded_kv(&base);
        let mut grouped = base.clone();
        grouped.ptm.group_commit = true;
        let g = run_sharded_kv(&grouped);
        assert!(g.ptm.sfences_elided > 0, "no joins happened");
        assert!(
            g.sfences_per_commit() < plain.sfences_per_commit(),
            "group commit must reduce fences/commit: {} vs {}",
            g.sfences_per_commit(),
            plain.sfences_per_commit()
        );
    }
}
