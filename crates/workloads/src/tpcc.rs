//! Write-only TPCC (paper Fig. 3 middle row, Tables I–III), after the
//! DudeTM port: the write-heavy NEW-ORDER and PAYMENT transactions over a
//! small warehouse count, with the order index either a B+Tree or a Hash
//! Table — the paper's two TPCC variants.
//!
//! Contention structure matches real TPCC: the per-district `next_o_id`
//! counter and the per-warehouse YTD fields are the hot spots, which is
//! what drives the commit/abort ratios of Tables I and II.

use pmem_sim::PAddr;
use pstructs::{BpTree, PHashMap, PSkipList};
use ptm::{Tx, TxResult, TxThread};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::driver::Workload;

/// Which structure indexes orders. The paper evaluates the first two;
/// the skip list is this repository's extension (smaller index write
/// sets, no split cascades).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    BTree,
    Hash,
    SkipList,
}

/// Order index dispatch.
#[derive(Clone, Copy)]
enum OrderIndex {
    BTree(BpTree),
    Hash(PHashMap),
    SkipList(PSkipList),
}

impl OrderIndex {
    fn insert(&self, tx: &mut Tx<'_>, key: u64, val: u64) -> TxResult<()> {
        match self {
            OrderIndex::BTree(t) => t.insert(tx, key, val).map(|_| ()),
            OrderIndex::Hash(h) => h.insert(tx, key, val).map(|_| ()),
            OrderIndex::SkipList(s) => s.insert(tx, key, val).map(|_| ()),
        }
    }

    fn get(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        match self {
            OrderIndex::BTree(t) => t.get(tx, key),
            OrderIndex::Hash(h) => h.get(tx, key),
            OrderIndex::SkipList(s) => s.get(tx, key),
        }
    }
}

/// Flat record geometry (words).
const WH_WORDS: u64 = 4; // [ytd, tax, ..]
const WH_YTD: u64 = 0;
const WH_TAX: u64 = 1;
const DIST_WORDS: u64 = 8; // [next_o_id, ytd, tax, ..]
const D_NEXT_O_ID: u64 = 0;
const D_YTD: u64 = 1;
const CUST_WORDS: u64 = 8; // [balance, ytd_payment, payment_cnt, discount, ..]
const C_BALANCE: u64 = 0;
const C_YTD: u64 = 1;
const C_CNT: u64 = 2;
const C_DISCOUNT: u64 = 3;
const ITEM_WORDS: u64 = 4; // [price, ..]
const I_PRICE: u64 = 0;
const STOCK_WORDS: u64 = 4; // [quantity, ytd, order_cnt, ..]
const S_QTY: u64 = 0;
const S_YTD: u64 = 1;
const S_CNT: u64 = 2;

const DISTRICTS: u64 = 10;

/// The TPCC workload.
pub struct Tpcc {
    warehouses: u64,
    customers_per_district: u64,
    items: u64,
    kind: IndexKind,
    expected_orders: u64,
    /// Percentage of read transactions (ORDER-STATUS / STOCK-LEVEL);
    /// 0 = the paper's write-only configuration.
    read_pct: u64,

    wh: Option<PAddr>,
    dist: Option<PAddr>,
    cust: Option<PAddr>,
    item: Option<PAddr>,
    stock: Option<PAddr>,
    index: Option<OrderIndex>,
}

impl Tpcc {
    /// `expected_orders` sizes the heap for inserted orders (pass the
    /// planned total operation count).
    pub fn new(kind: IndexKind, warehouses: u64, expected_orders: u64) -> Self {
        Tpcc {
            warehouses,
            customers_per_district: 384,
            items: 1024,
            kind,
            expected_orders,
            read_pct: 0,
            wh: None,
            dist: None,
            cust: None,
            item: None,
            stock: None,
            index: None,
        }
    }

    /// Enable the standard mix's read transactions (the paper runs 0%).
    pub fn with_reads(
        kind: IndexKind,
        warehouses: u64,
        expected_orders: u64,
        read_pct: u64,
    ) -> Self {
        assert!(read_pct <= 100);
        Tpcc {
            read_pct,
            ..Self::new(kind, warehouses, expected_orders)
        }
    }

    fn order_key(&self, w: u64, d: u64, o_id: u64) -> u64 {
        ((w * DISTRICTS + d) << 32) | o_id
    }
}

impl Workload for Tpcc {
    fn name(&self) -> String {
        match self.kind {
            IndexKind::BTree => "tpcc-btree".into(),
            IndexKind::Hash => "tpcc-hash".into(),
            IndexKind::SkipList => "tpcc-skiplist".into(),
        }
    }

    fn heap_words(&self) -> usize {
        let w = self.warehouses;
        let fixed = w * WH_WORDS
            + w * DISTRICTS * DIST_WORDS
            + w * DISTRICTS * self.customers_per_district * CUST_WORDS
            + self.items * ITEM_WORDS
            + w * self.items * STOCK_WORDS;
        // order block ~ 8 + 15*4 words + index node.
        let per_order = 96u64;
        ((fixed + self.expected_orders * per_order) as usize + (1 << 16)).next_power_of_two()
    }

    fn setup(&mut self, th: &mut TxThread) {
        let w = self.warehouses;
        let cust_n = w * DISTRICTS * self.customers_per_district;
        // Fixed tables as flat arrays (one alloc each, initialized
        // transactionally in chunks to keep redo logs bounded).
        let heap = std::sync::Arc::clone(th.heap());
        let wh = heap.alloc(th.session_mut(), (w * WH_WORDS) as usize);
        let dist = heap.alloc(th.session_mut(), (w * DISTRICTS * DIST_WORDS) as usize);
        let cust = heap.alloc(th.session_mut(), (cust_n * CUST_WORDS) as usize);
        let item = heap.alloc(th.session_mut(), (self.items * ITEM_WORDS) as usize);
        let stock = heap.alloc(th.session_mut(), (w * self.items * STOCK_WORDS) as usize);
        for wi in 0..w {
            th.run(|tx| {
                tx.write_at(wh, wi * WH_WORDS + WH_YTD, 0)?;
                tx.write_at(wh, wi * WH_WORDS + WH_TAX, 7)?;
                for d in 0..DISTRICTS {
                    let b = (wi * DISTRICTS + d) * DIST_WORDS;
                    tx.write_at(dist, b + D_NEXT_O_ID, 1)?;
                    tx.write_at(dist, b + D_YTD, 0)?;
                }
                Ok(())
            });
        }
        for chunk in 0..cust_n.div_ceil(64) {
            th.run(|tx| {
                for c in chunk * 64..((chunk + 1) * 64).min(cust_n) {
                    let b = c * CUST_WORDS;
                    tx.write_at(cust, b + C_BALANCE, 1_000)?;
                    tx.write_at(cust, b + C_DISCOUNT, c % 50)?;
                }
                Ok(())
            });
        }
        for chunk in 0..self.items.div_ceil(64) {
            th.run(|tx| {
                for i in chunk * 64..((chunk + 1) * 64).min(self.items) {
                    tx.write_at(item, i * ITEM_WORDS + I_PRICE, 100 + i % 900)?;
                }
                Ok(())
            });
        }
        let stock_n = w * self.items;
        for chunk in 0..stock_n.div_ceil(64) {
            th.run(|tx| {
                for s in chunk * 64..((chunk + 1) * 64).min(stock_n) {
                    tx.write_at(stock, s * STOCK_WORDS + S_QTY, 100)?;
                }
                Ok(())
            });
        }
        let index = match self.kind {
            IndexKind::BTree => OrderIndex::BTree(th.run(BpTree::create)),
            IndexKind::Hash => OrderIndex::Hash(
                th.run(|tx| PHashMap::create(tx, (self.expected_orders / 2).max(1024) as usize)),
            ),
            IndexKind::SkipList => OrderIndex::SkipList(th.run(PSkipList::create)),
        };
        self.wh = Some(wh);
        self.dist = Some(dist);
        self.cust = Some(cust);
        self.item = Some(item);
        self.stock = Some(stock);
        self.index = Some(index);
    }

    fn op(&self, th: &mut TxThread, rng: &mut SmallRng, tid: usize, i: u64) {
        // Warehouse selection is uniform (like the DudeTM port), so some
        // cross-thread conflict exists at every thread count — the paper's
        // Tables I/II show finite ratios even at 2 threads.
        let _ = tid;
        let w = rng.gen_range(0..self.warehouses);
        self.op_at_warehouse(th, rng, w, i);
    }
}

impl Tpcc {
    /// One TPCC operation with the home warehouse pinned to `w` — the
    /// sharded driver routes requests by home warehouse, so the warehouse
    /// is an input there, not a random draw.
    pub fn op_at_warehouse(&self, th: &mut TxThread, rng: &mut SmallRng, w: u64, i: u64) {
        let wh = self.wh.expect("setup");
        let dist = self.dist.expect("setup");
        let cust = self.cust.expect("setup");
        let item = self.item.expect("setup");
        let stock = self.stock.expect("setup");
        let index = self.index.expect("setup");
        assert!(w < self.warehouses, "warehouse {w} out of range");
        let d = rng.gen_range(0..DISTRICTS);
        let c = rng.gen_range(0..self.warehouses * DISTRICTS * self.customers_per_district);
        if rng.gen_range(0..100) < self.read_pct {
            if rng.gen_bool(0.5) {
                // ORDER-STATUS: look up a recent order and read its lines.
                th.run(|tx| {
                    let db = (w * DISTRICTS + d) * DIST_WORDS;
                    let next = tx.read_at(dist, db + D_NEXT_O_ID)?;
                    if next <= 1 {
                        return Ok(0);
                    }
                    let o_id = 1 + (c % (next - 1));
                    let mut sum = 0;
                    if let Some(order) = index.get(tx, self.order_key(w, d, o_id))? {
                        let order = PAddr(order);
                        let ol_cnt = tx.read_at(order, 3)?;
                        sum += tx.read_at(order, 4)?;
                        for l in 0..ol_cnt {
                            sum += tx.read_at(order, 8 + l * 4 + 2)?;
                        }
                    }
                    Ok(sum)
                });
            } else {
                // STOCK-LEVEL: count low-stock items in the district.
                let base_item = rng.gen_range(0..self.items.saturating_sub(20).max(1));
                th.run(|tx| {
                    let mut low = 0;
                    for it in base_item..(base_item + 20).min(self.items) {
                        let sb = (w * self.items + it) * STOCK_WORDS;
                        if tx.read_at(stock, sb + S_QTY)? < 25 {
                            low += 1;
                        }
                    }
                    Ok(low)
                });
            }
            return;
        }
        if i.is_multiple_of(2) {
            // NEW-ORDER.
            let ol_cnt = rng.gen_range(5..=15u64);
            let item_ids: Vec<u64> = (0..ol_cnt).map(|_| rng.gen_range(0..self.items)).collect();
            th.run(|tx| {
                let tax = tx.read_at(wh, w * WH_WORDS + WH_TAX)?;
                let db = (w * DISTRICTS + d) * DIST_WORDS;
                let o_id = tx.read_at(dist, db + D_NEXT_O_ID)?;
                tx.write_at(dist, db + D_NEXT_O_ID, o_id + 1)?;
                let discount = tx.read_at(cust, c * CUST_WORDS + C_DISCOUNT)?;
                let order = tx.alloc((8 + ol_cnt * 4) as usize);
                tx.write_at(order, 0, o_id)?;
                tx.write_at(order, 1, (w << 8) | d)?;
                tx.write_at(order, 2, c)?;
                tx.write_at(order, 3, ol_cnt)?;
                let mut total = 0u64;
                for (l, &i_id) in item_ids.iter().enumerate() {
                    let price = tx.read_at(item, i_id * ITEM_WORDS + I_PRICE)?;
                    let sb = (w * self.items + i_id) * STOCK_WORDS;
                    let q = tx.read_at(stock, sb + S_QTY)?;
                    let nq = if q > 10 { q - 5 } else { q + 91 };
                    tx.write_at(stock, sb + S_QTY, nq)?;
                    let sy = tx.read_at(stock, sb + S_YTD)?;
                    tx.write_at(stock, sb + S_YTD, sy + 5)?;
                    let sc = tx.read_at(stock, sb + S_CNT)?;
                    tx.write_at(stock, sb + S_CNT, sc + 1)?;
                    let lb = 8 + l as u64 * 4;
                    let amount = 5 * price;
                    tx.write_at(order, lb, i_id)?;
                    tx.write_at(order, lb + 1, 5)?;
                    tx.write_at(order, lb + 2, amount)?;
                    total += amount;
                }
                let _ = (tax, discount);
                tx.write_at(order, 4, total)?;
                index.insert(tx, self.order_key(w, d, o_id), order.0)
            });
        } else {
            // PAYMENT.
            let amount = rng.gen_range(1..=500u64);
            th.run(|tx| {
                let wb = w * WH_WORDS;
                let ytd = tx.read_at(wh, wb + WH_YTD)?;
                tx.write_at(wh, wb + WH_YTD, ytd + amount)?;
                let db = (w * DISTRICTS + d) * DIST_WORDS;
                let dy = tx.read_at(dist, db + D_YTD)?;
                tx.write_at(dist, db + D_YTD, dy + amount)?;
                let cb = c * CUST_WORDS;
                let bal = tx.read_at(cust, cb + C_BALANCE)?;
                tx.write_at(cust, cb + C_BALANCE, bal.wrapping_sub(amount))?;
                let cy = tx.read_at(cust, cb + C_YTD)?;
                tx.write_at(cust, cb + C_YTD, cy + amount)?;
                let cc = tx.read_at(cust, cb + C_CNT)?;
                tx.write_at(cust, cb + C_CNT, cc + 1)?;
                Ok(())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_scenario, RunConfig, Scenario};
    use pmem_sim::{DurabilityDomain, MediaKind};
    use ptm::Algo;

    fn rc(threads: usize, ops: u64) -> RunConfig {
        RunConfig {
            threads,
            ops_per_thread: ops,
            ..RunConfig::default()
        }
    }

    #[test]
    fn both_index_kinds_run() {
        for kind in [IndexKind::BTree, IndexKind::Hash, IndexKind::SkipList] {
            let mut w = Tpcc::new(kind, 2, 300);
            let sc = Scenario::new(
                "t",
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::RedoLazy,
            );
            let r = run_scenario(&mut w, &sc, &rc(2, 150));
            assert_eq!(r.ops, 300);
            assert!(r.ptm.commits >= 300, "{kind:?}");
        }
    }

    #[test]
    fn contention_generates_aborts_at_scale() {
        // Single warehouse + several threads: district counters collide.
        let mut w = Tpcc::new(IndexKind::Hash, 1, 1200);
        let sc = Scenario::new(
            "t",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            Algo::RedoLazy,
        );
        let r = run_scenario(&mut w, &sc, &rc(4, 300));
        assert!(
            r.ptm.aborts > 0,
            "expected contention aborts, got commits={} aborts={}",
            r.ptm.commits,
            r.ptm.aborts
        );
    }

    #[test]
    fn read_mix_runs_and_lightens_fencing() {
        let fences = |read_pct| {
            let mut w = Tpcc::with_reads(IndexKind::Hash, 2, 400, read_pct);
            let sc = Scenario::new(
                "t",
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::RedoLazy,
            );
            let r = run_scenario(&mut w, &sc, &rc(2, 200));
            r.mem.sfences as f64 / r.ptm.commits.max(1) as f64
        };
        let write_only = fences(0);
        let half_reads = fences(50);
        assert!(
            half_reads < write_only,
            "read transactions must fence less: {half_reads:.2} vs {write_only:.2}"
        );
    }

    #[test]
    fn undo_variant_is_correct_too() {
        let mut w = Tpcc::new(IndexKind::BTree, 2, 200);
        let sc = Scenario::new(
            "t",
            MediaKind::Optane,
            DurabilityDomain::Eadr,
            Algo::UndoEager,
        );
        let r = run_scenario(&mut w, &sc, &rc(2, 100));
        assert!(r.ptm.commits >= 200);
    }
}
