//! # workloads — the paper's benchmark applications and measurement driver
//!
//! Every application the paper evaluates (§III-A), rebuilt on the PTM:
//!
//! * [`tatp::Tatp`] — write-only TATP (Fig. 4 / Fig. 7);
//! * [`btree_bench::BTreeInsertOnly`] / [`btree_bench::BTreeMixed`] — the
//!   DudeTM B+Tree microbenchmarks (Fig. 3 / Fig. 6, top row);
//! * [`tpcc::Tpcc`] — write-only TPCC with a B+Tree or Hash-Table order
//!   index (Fig. 3 / Fig. 6 middle row, Tables I–III);
//! * [`vacation::Vacation`] — STAMP Vacation at low/high contention
//!   (Fig. 3 / Fig. 6 bottom row);
//! * [`kvstore::KvStore`] — the memcached-like store for the working-set
//!   sweep (Fig. 8).
//!
//! [`driver::run_scenario`] executes one (workload, scenario, threads)
//! measurement on a fresh simulated machine and reports virtual-time
//! throughput, commit/abort ratios and memory-system counters.

pub mod btree_bench;
pub mod driver;
pub mod hist;
pub mod kvstore;
pub mod sharded;
pub mod tatp;
pub mod tpcc;
pub mod vacation;

pub use btree_bench::{BTreeInsertOnly, BTreeMixed};
pub use driver::{run_scenario, RunConfig, RunResult, Scenario, Workload, PAPER_THREADS};
pub use hist::{LatencyHistogram, LatencySummary};
pub use kvstore::KvStore;
pub use sharded::{
    gen_open_loop, run_cross_shard_transfer, run_sharded_kv, run_sharded_tpcc, Request,
    ShardedRunConfig, ShardedRunResult, StreamConfig, ZipfGen, TRANSFER_INITIAL_BALANCE,
};
pub use tatp::Tatp;
pub use tpcc::{IndexKind, Tpcc};
pub use vacation::{Vacation, VacationCfg};
