//! The STAMP Vacation travel-reservation benchmark (paper Fig. 3 bottom
//! row), at the paper's two contention levels.
//!
//! A manager maintains three resource tables (cars, flights, rooms) and a
//! customer table. Client transactions are reservation queries (the
//! read-mostly majority), customer deletions, and table updates. Unlike
//! the other workloads, Vacation performs *non-trivial work between
//! transactions*, which is why the paper finds eADR's gains muted here —
//! the inter-transaction think time is modeled explicitly.

use pmem_sim::PAddr;
use pstructs::{BpTree, PHashMap};
use ptm::TxThread;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::driver::Workload;

/// Resource record: `[available, price, total, pad]`.
const R_AVAIL: u64 = 0;
const R_PRICE: u64 = 1;
const R_TOTAL: u64 = 2;
const R_WORDS: usize = 4;

/// Customer record: `[spent, reservations, pad, pad]`.
const C_SPENT: u64 = 0;
const C_COUNT: u64 = 1;
const C_WORDS: usize = 4;

/// Contention configuration, mirroring STAMP's `-n -q -u` knobs.
#[derive(Debug, Clone, Copy)]
pub struct VacationCfg {
    /// Rows per resource table (STAMP `-r`).
    pub relations: u64,
    /// Queries per reservation transaction (STAMP `-n`).
    pub queries_per_tx: u64,
    /// Percentage of the table the queries span (STAMP `-q`); smaller
    /// span = hotter rows.
    pub query_range_pct: u64,
    /// Percentage of transactions that are reservations (STAMP `-u`).
    pub user_pct: u64,
    /// Modeled non-transactional think time between transactions (ns).
    pub inter_tx_ns: u64,
}

impl VacationCfg {
    /// STAMP "low contention" shape: few queries, wide span.
    pub fn low(relations: u64) -> Self {
        VacationCfg {
            relations,
            queries_per_tx: 2,
            query_range_pct: 90,
            user_pct: 98,
            inter_tx_ns: 3_000,
        }
    }

    /// STAMP "high contention" shape: more queries, narrow span.
    pub fn high(relations: u64) -> Self {
        VacationCfg {
            relations,
            queries_per_tx: 4,
            query_range_pct: 10,
            user_pct: 90,
            inter_tx_ns: 3_000,
        }
    }
}

/// The Vacation workload.
pub struct Vacation {
    cfg: VacationCfg,
    customers: u64,
    tables: Option<[BpTree; 3]>,
    cust: Option<PHashMap>,
}

impl Vacation {
    pub fn new(cfg: VacationCfg) -> Self {
        Vacation {
            customers: cfg.relations / 4,
            cfg,
            tables: None,
            cust: None,
        }
    }

    pub fn cfg(&self) -> &VacationCfg {
        &self.cfg
    }

    fn query_range(&self) -> u64 {
        (self.cfg.relations * self.cfg.query_range_pct / 100).max(1)
    }
}

impl Workload for Vacation {
    fn name(&self) -> String {
        format!(
            "vacation-{}",
            if self.cfg.query_range_pct <= 50 {
                "high"
            } else {
                "low"
            }
        )
    }

    fn heap_words(&self) -> usize {
        let rows = self.cfg.relations as usize;
        (rows * 3 * (R_WORDS + 16) + self.customers as usize * (C_WORDS + 8) + (1 << 16))
            .next_power_of_two()
    }

    fn setup(&mut self, th: &mut TxThread) {
        let tables = [
            th.run(BpTree::create),
            th.run(BpTree::create),
            th.run(BpTree::create),
        ];
        let cust = th.run(|tx| PHashMap::create(tx, self.customers as usize));
        for (ti, t) in tables.iter().enumerate() {
            for chunk in 0..self.cfg.relations.div_ceil(32) {
                th.run(|tx| {
                    for id in chunk * 32..((chunk + 1) * 32).min(self.cfg.relations) {
                        let rec = tx.alloc(R_WORDS);
                        tx.write_at(rec, R_AVAIL, 100)?;
                        tx.write_at(rec, R_PRICE, 50 + (id * 7 + ti as u64 * 13) % 450)?;
                        tx.write_at(rec, R_TOTAL, 100)?;
                        t.insert(tx, id, rec.0)?;
                    }
                    Ok(())
                });
            }
        }
        for chunk in 0..self.customers.div_ceil(32) {
            th.run(|tx| {
                for c in chunk * 32..((chunk + 1) * 32).min(self.customers) {
                    let rec = tx.alloc(C_WORDS);
                    tx.write_at(rec, C_SPENT, 0)?;
                    tx.write_at(rec, C_COUNT, 0)?;
                    cust.insert(tx, c, rec.0)?;
                }
                Ok(())
            });
        }
        self.tables = Some(tables);
        self.cust = Some(cust);
    }

    fn op(&self, th: &mut TxThread, rng: &mut SmallRng, _tid: usize, _i: u64) {
        let tables = self.tables.as_ref().expect("setup");
        let cust = self.cust.expect("setup");
        let roll = rng.gen_range(0..100);
        let range = self.query_range();
        if roll < self.cfg.user_pct {
            // MAKE-RESERVATION: scan queries, reserve the cheapest
            // available, bill the customer.
            let queries: Vec<(usize, u64)> = (0..self.cfg.queries_per_tx)
                .map(|_| (rng.gen_range(0..3usize), rng.gen_range(0..range)))
                .collect();
            let c = rng.gen_range(0..self.customers);
            th.run(|tx| {
                let mut best: Option<(PAddr, u64)> = None;
                for &(t, id) in &queries {
                    if let Some(rec) = tables[t].get(tx, id)? {
                        let rec = PAddr(rec);
                        let avail = tx.read_at(rec, R_AVAIL)?;
                        let price = tx.read_at(rec, R_PRICE)?;
                        if avail > 0 && best.is_none_or(|(_, bp)| price < bp) {
                            best = Some((rec, price));
                        }
                    }
                }
                if let Some((rec, price)) = best {
                    let avail = tx.read_at(rec, R_AVAIL)?;
                    if avail > 0 {
                        tx.write_at(rec, R_AVAIL, avail - 1)?;
                        if let Some(crec) = cust.get(tx, c)? {
                            let crec = PAddr(crec);
                            let spent = tx.read_at(crec, C_SPENT)?;
                            let cnt = tx.read_at(crec, C_COUNT)?;
                            tx.write_at(crec, C_SPENT, spent + price)?;
                            tx.write_at(crec, C_COUNT, cnt + 1)?;
                        }
                    }
                }
                Ok(())
            });
        } else if roll < self.cfg.user_pct + (100 - self.cfg.user_pct) / 2 {
            // DELETE-CUSTOMER: zero the account.
            let c = rng.gen_range(0..self.customers);
            th.run(|tx| {
                if let Some(crec) = cust.get(tx, c)? {
                    let crec = PAddr(crec);
                    tx.write_at(crec, C_SPENT, 0)?;
                    tx.write_at(crec, C_COUNT, 0)?;
                }
                Ok(())
            });
        } else {
            // UPDATE-TABLES: price/stock maintenance.
            let updates: Vec<(usize, u64, bool)> = (0..self.cfg.queries_per_tx)
                .map(|_| {
                    (
                        rng.gen_range(0..3usize),
                        rng.gen_range(0..range),
                        rng.gen_bool(0.5),
                    )
                })
                .collect();
            th.run(|tx| {
                for &(t, id, add) in &updates {
                    if let Some(rec) = tables[t].get(tx, id)? {
                        let rec = PAddr(rec);
                        if add {
                            let avail = tx.read_at(rec, R_AVAIL)?;
                            tx.write_at(rec, R_AVAIL, avail + 100)?;
                        } else {
                            let price = tx.read_at(rec, R_PRICE)?;
                            tx.write_at(rec, R_PRICE, 50 + (price + 37) % 450)?;
                        }
                    }
                }
                Ok(())
            });
        }
        // The non-transactional slice of Vacation's loop.
        th.session_mut().advance(self.cfg.inter_tx_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_scenario, RunConfig, Scenario};
    use pmem_sim::{DurabilityDomain, MediaKind};
    use ptm::Algo;

    #[test]
    fn low_and_high_contention_run() {
        for cfg in [VacationCfg::low(512), VacationCfg::high(512)] {
            let mut w = Vacation::new(cfg);
            let sc = Scenario::new(
                "v",
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::RedoLazy,
            );
            let rc = RunConfig {
                threads: 2,
                ops_per_thread: 100,
                ..RunConfig::default()
            };
            let r = run_scenario(&mut w, &sc, &rc);
            assert_eq!(r.ops, 200);
            assert!(r.ptm.commits >= 200);
        }
    }

    #[test]
    fn reservations_never_oversell() {
        // With 100% reservation transactions, the books must balance:
        // units removed from resource tables == units billed to customers.
        let mut cfg = VacationCfg::high(128);
        cfg.user_pct = 100;
        let mut w = Vacation::new(cfg);
        let sc = Scenario::new(
            "v",
            MediaKind::Optane,
            DurabilityDomain::Eadr,
            Algo::RedoLazy,
        );
        let rc = RunConfig {
            threads: 3,
            ops_per_thread: 120,
            ..RunConfig::default()
        };
        // Drive through the public driver, then inspect state.
        // (run_scenario owns the machine, so re-derive the invariant via a
        // dedicated manual run instead.)
        let machine = pmem_sim::Machine::new(pmem_sim::MachineConfig {
            domain: sc.domain,
            model: rc.model.clone(),
            track_persistence: false,
            window_ns: rc.window_ns,
            ..pmem_sim::MachineConfig::default()
        });
        let heap = palloc::PHeap::format(&machine, "heap", w.heap_words(), 16);
        let ptm = ptm::Ptm::new(ptm::PtmConfig {
            algo: sc.algo,
            heap_media: sc.heap_media,
            ..ptm::PtmConfig::default()
        });
        machine.begin_run(1, u64::MAX);
        {
            let mut th = TxThread::new(ptm.clone(), heap.clone(), machine.session(0));
            w.setup(&mut th);
        }
        machine.begin_run(rc.threads, u64::MAX);
        std::thread::scope(|scope| {
            for tid in 0..rc.threads {
                let machine = std::sync::Arc::clone(&machine);
                let ptm = std::sync::Arc::clone(&ptm);
                let heap = std::sync::Arc::clone(&heap);
                let w = &w;
                scope.spawn(move || {
                    use rand::SeedableRng;
                    let mut th = TxThread::new(ptm, heap, machine.session(tid));
                    let mut rng = SmallRng::seed_from_u64(tid as u64);
                    for i in 0..120 {
                        w.op(&mut th, &mut rng, tid, i);
                    }
                });
            }
        });
        machine.begin_run(1, u64::MAX);
        let mut th = TxThread::new(ptm, heap, machine.session(0));
        let tables = *w.tables.as_ref().unwrap();
        let cust = w.cust.unwrap();
        let reserved: u64 = th.run(|tx| {
            let mut sum = 0;
            for t in &tables {
                for (_, rec) in t.scan_all(tx)? {
                    let rec = PAddr(rec);
                    let avail = tx.read_at(rec, R_AVAIL)?;
                    let total = tx.read_at(rec, R_TOTAL)?;
                    assert!(avail <= total, "oversold: avail {avail} > total {total}");
                    sum += total - avail;
                }
            }
            Ok(sum)
        });
        let customer_side: u64 = th.run(|tx| {
            let mut sum = 0;
            for c in 0..w.customers {
                if let Some(crec) = cust.get(tx, c)? {
                    sum += tx.read_at(PAddr(crec), C_COUNT)?;
                }
            }
            Ok(sum)
        });
        assert_eq!(
            customer_side, reserved,
            "units reserved in tables must equal units billed to customers"
        );
    }
}
