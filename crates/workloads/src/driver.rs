//! The measurement driver: runs a workload over N virtual threads on a
//! fresh simulated machine and reports virtual-time throughput plus
//! commit/abort and memory-system statistics.
//!
//! One `run_scenario` call corresponds to one point of one curve in the
//! paper's figures: a (workload, scenario, thread-count) triple.

use std::sync::Arc;

use palloc::PHeap;
use pmem_sim::{DurabilityDomain, LatencyModel, Machine, MachineConfig, MediaKind, StatsSnapshot};
use ptm::{Algo, PhaseSnapshot, Ptm, PtmConfig, PtmStatsSnapshot, TxThread};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::hist::LatencyHistogram;

/// One curve of the paper: where the heap lives, which durability domain
/// is active, which algorithm runs, and whether fences are (incorrectly)
/// elided (Table III).
#[derive(Debug, Clone)]
pub struct Scenario {
    pub label: String,
    pub heap_media: MediaKind,
    pub domain: DurabilityDomain,
    pub algo: Algo,
    pub elide_fences: bool,
}

impl Scenario {
    pub fn new(
        label: impl Into<String>,
        heap_media: MediaKind,
        domain: DurabilityDomain,
        algo: Algo,
    ) -> Scenario {
        Scenario {
            label: label.into(),
            heap_media,
            domain,
            algo,
            elide_fences: false,
        }
    }

    /// The eight curves of Figures 3 and 4:
    /// {DRAM, Optane} x {ADR, eADR} x {undo, redo}.
    pub fn fig3_grid() -> Vec<Scenario> {
        let mut out = Vec::new();
        for (media, mname) in [(MediaKind::Dram, "DRAM"), (MediaKind::Optane, "Optane")] {
            for (domain, dname) in [
                (DurabilityDomain::Adr, "ADR"),
                (DurabilityDomain::Eadr, "eADR"),
            ] {
                for algo in [Algo::UndoEager, Algo::RedoLazy] {
                    out.push(Scenario::new(
                        format!("{mname}_{dname}_{}", algo.label()),
                        media,
                        domain,
                        algo,
                    ));
                }
            }
        }
        out
    }

    /// The curves of Figures 6 and 7: DRAM best case, eADR (both
    /// algorithms), PDRAM (both), and PDRAM-Lite (redo only — its whole
    /// point is the redo log's placement).
    pub fn fig6_grid() -> Vec<Scenario> {
        vec![
            Scenario::new(
                "DRAM_R",
                MediaKind::Dram,
                DurabilityDomain::Eadr,
                Algo::RedoLazy,
            ),
            Scenario::new(
                "DRAM_U",
                MediaKind::Dram,
                DurabilityDomain::Eadr,
                Algo::UndoEager,
            ),
            Scenario::new(
                "eADR_R",
                MediaKind::Optane,
                DurabilityDomain::Eadr,
                Algo::RedoLazy,
            ),
            Scenario::new(
                "eADR_U",
                MediaKind::Optane,
                DurabilityDomain::Eadr,
                Algo::UndoEager,
            ),
            Scenario::new(
                "PDRAM_R",
                MediaKind::Optane,
                DurabilityDomain::Pdram,
                Algo::RedoLazy,
            ),
            Scenario::new(
                "PDRAM_U",
                MediaKind::Optane,
                DurabilityDomain::Pdram,
                Algo::UndoEager,
            ),
            Scenario::new(
                "PDRAM-Lite",
                MediaKind::Optane,
                DurabilityDomain::PdramLite,
                Algo::RedoLazy,
            ),
        ]
    }

    /// Table III's pair for a given algorithm: correct ADR vs
    /// fence-elided ADR, both on Optane.
    pub fn fence_elision_pair(algo: Algo) -> (Scenario, Scenario) {
        let base = Scenario::new(
            format!("Optane_ADR_{}", algo.label()),
            MediaKind::Optane,
            DurabilityDomain::Adr,
            algo,
        );
        let mut elided = base.clone();
        elided.label = format!("Optane_ADR_{}_nofence", algo.label());
        elided.elide_fences = true;
        (base, elided)
    }
}

/// Execution parameters shared by all scenarios of an experiment.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub threads: usize,
    pub ops_per_thread: u64,
    /// Bounded-lag window; ~a fraction of one transaction's virtual time.
    pub window_ns: u64,
    pub model: LatencyModel,
    pub seed: u64,
    /// Template for the PTM configuration; the scenario's algorithm,
    /// fence-elision flag and heap media are overlaid onto it. Ablations
    /// perturb the other knobs (split log, flush timing, orec count,
    /// PDRAM-Lite budget) here.
    pub ptm: PtmConfig,
    /// Flight-recorder sink: when set, it is attached to the machine for
    /// the measured phase only (setup is excluded, matching the stats
    /// resets) and `PtmConfig::tracing` is forced on, so every thread's
    /// transaction and durability events land in the sink.
    pub trace: Option<Arc<trace::TraceSink>>,
    /// Telemetry sampler: when set, it is attached to the machine for
    /// the measured phase only (like `trace`) and `PtmConfig::tracing`
    /// is forced on so transaction lifecycle events reach the sampler.
    /// Sampling never advances virtual time.
    pub obs: Option<Arc<obs::Sampler>>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 1,
            ops_per_thread: 2_000,
            window_ns: 1_000,
            model: LatencyModel::default(),
            seed: 42,
            ptm: PtmConfig::default(),
            trace: None,
            obs: None,
        }
    }
}

/// Result of one (workload, scenario, threads) measurement.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub label: String,
    pub threads: usize,
    pub ops: u64,
    pub elapsed_virtual_ns: u64,
    pub ptm: PtmStatsSnapshot,
    pub mem: StatsSnapshot,
    /// Per-operation virtual latency distribution (O(buckets) memory; see
    /// [`crate::hist`]).
    pub latency: LatencyHistogram,
    /// Where the transactions' virtual time went, by phase.
    pub phases: PhaseSnapshot,
}

impl RunResult {
    /// Operations per virtual second, in millions — the paper's Y axis.
    pub fn throughput_mops(&self) -> f64 {
        if self.elapsed_virtual_ns == 0 {
            return 0.0;
        }
        self.ops as f64 * 1_000.0 / self.elapsed_virtual_ns as f64
    }

    /// Tables I/II metric.
    pub fn commit_abort_ratio(&self) -> f64 {
        self.ptm.commit_abort_ratio()
    }
}

/// A benchmark application: sized at construction, populated once in
/// `setup`, then driven by per-thread `op` calls.
pub trait Workload: Send + Sync {
    fn name(&self) -> String;
    /// Persistent heap words the workload needs for its configured size.
    fn heap_words(&self) -> usize;
    /// Populate on a single thread (excluded from measurement).
    fn setup(&mut self, th: &mut TxThread);
    /// Execute one application operation.
    fn op(&self, th: &mut TxThread, rng: &mut SmallRng, tid: usize, i: u64);
}

/// Run one measurement point.
pub fn run_scenario<W: Workload>(w: &mut W, sc: &Scenario, rc: &RunConfig) -> RunResult {
    let machine = Machine::new(MachineConfig {
        domain: sc.domain,
        model: rc.model.clone(),
        track_persistence: false,
        window_ns: rc.window_ns,
        ..MachineConfig::default()
    });
    let heap = PHeap::format_with_media(&machine, "heap", w.heap_words(), 16, sc.heap_media);
    let ptm = Ptm::new(PtmConfig {
        algo: sc.algo,
        elide_fences: sc.elide_fences,
        heap_media: sc.heap_media,
        tracing: rc.ptm.tracing || rc.trace.is_some() || rc.obs.is_some(),
        ..rc.ptm.clone()
    });
    // Setup phase: one thread, unthrottled.
    machine.begin_run(1, u64::MAX);
    {
        let mut th = TxThread::new(Arc::clone(&ptm), Arc::clone(&heap), machine.session(0));
        w.setup(&mut th);
    }
    ptm.stats.reset();
    ptm.phases.reset();
    machine.stats.reset();
    // Attach the flight recorder after setup and the stats resets, so
    // the trace covers exactly what the counters cover: sessions capture
    // their rings at construction, and the measured sessions below are
    // created after this point.
    if let Some(sink) = &rc.trace {
        machine.attach_tracer(Arc::clone(sink));
    }
    if let Some(sampler) = &rc.obs {
        machine.attach_sampler(Arc::clone(sampler));
    }
    // Measured phase. Latencies go into per-thread log₂ histograms merged
    // at thread exit: memory stays O(buckets), not O(ops).
    machine.begin_run(rc.threads, rc.window_ns);
    let latency = std::sync::Mutex::new(LatencyHistogram::new());
    std::thread::scope(|scope| {
        for tid in 0..rc.threads {
            let machine = Arc::clone(&machine);
            let ptm = Arc::clone(&ptm);
            let heap = Arc::clone(&heap);
            let w = &*w;
            let rc = rc.clone();
            let latency = &latency;
            scope.spawn(move || {
                let mut th = TxThread::new(ptm, heap, machine.session(tid));
                let mut rng =
                    SmallRng::seed_from_u64(rc.seed ^ (tid as u64).wrapping_mul(0x9E37_79B9));
                let mut local = LatencyHistogram::new();
                for i in 0..rc.ops_per_thread {
                    let t0 = th.session_mut().now();
                    w.op(&mut th, &mut rng, tid, i);
                    local.record(th.session_mut().now() - t0);
                }
                th.session_mut().finish();
                latency.lock().unwrap().merge(&local);
            });
        }
    });
    let elapsed = machine.run_time_ns();
    // All measured sessions have dropped (submitting their rings); the
    // sink now holds the complete run.
    if rc.trace.is_some() {
        machine.detach_tracer();
    }
    if rc.obs.is_some() {
        machine.detach_sampler();
    }
    RunResult {
        label: sc.label.clone(),
        threads: rc.threads,
        ops: rc.threads as u64 * rc.ops_per_thread,
        elapsed_virtual_ns: elapsed,
        ptm: ptm.stats_snapshot(),
        mem: machine.stats.snapshot(),
        latency: latency.into_inner().unwrap(),
        phases: ptm.phases_snapshot(),
    }
}

/// The paper's thread sweep (single socket, 32 hyperthreads).
pub const PAPER_THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial counter-increment workload for driver tests.
    struct CounterWorkload {
        ctr: std::sync::Mutex<Option<pmem_sim::PAddr>>,
    }

    impl CounterWorkload {
        fn new() -> Self {
            CounterWorkload {
                ctr: std::sync::Mutex::new(None),
            }
        }
    }

    impl Workload for CounterWorkload {
        fn name(&self) -> String {
            "counter".into()
        }
        fn heap_words(&self) -> usize {
            1 << 12
        }
        fn setup(&mut self, th: &mut TxThread) {
            let heap = Arc::clone(th.heap());
            let a = heap.alloc(th.session_mut(), 1);
            th.run(|tx| tx.write(a, 0));
            *self.ctr.lock().unwrap() = Some(a);
        }
        fn op(&self, th: &mut TxThread, _rng: &mut SmallRng, _tid: usize, _i: u64) {
            let a = self.ctr.lock().unwrap().unwrap();
            th.run(|tx| {
                let v = tx.read(a)?;
                tx.write(a, v + 1)
            });
        }
    }

    #[test]
    fn driver_counts_ops_and_time() {
        let mut w = CounterWorkload::new();
        let sc = Scenario::new(
            "t",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            Algo::RedoLazy,
        );
        let rc = RunConfig {
            threads: 2,
            ops_per_thread: 100,
            ..RunConfig::default()
        };
        let r = run_scenario(&mut w, &sc, &rc);
        assert_eq!(r.ops, 200);
        assert!(r.elapsed_virtual_ns > 0);
        assert!(r.throughput_mops() > 0.0);
        assert!(r.ptm.commits >= 200, "commits {}", r.ptm.commits);
    }

    #[test]
    fn fig3_grid_has_eight_distinct_curves() {
        let g = Scenario::fig3_grid();
        assert_eq!(g.len(), 8);
        let labels: std::collections::HashSet<_> = g.iter().map(|s| s.label.clone()).collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn fig6_grid_shape() {
        let g = Scenario::fig6_grid();
        assert_eq!(g.len(), 7);
        assert!(g.iter().any(|s| s.domain == DurabilityDomain::PdramLite));
    }

    /// Same seed and config ⇒ bit-identical virtual time, phase totals
    /// and latency distribution.
    #[test]
    fn runs_are_deterministic_for_fixed_seed() {
        let sc = Scenario::new(
            "det",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            Algo::RedoLazy,
        );
        let rc = RunConfig {
            threads: 1,
            ops_per_thread: 300,
            seed: 7,
            ..RunConfig::default()
        };
        let r1 = run_scenario(&mut CounterWorkload::new(), &sc, &rc);
        let r2 = run_scenario(&mut CounterWorkload::new(), &sc, &rc);
        assert_eq!(r1.elapsed_virtual_ns, r2.elapsed_virtual_ns);
        assert_eq!(r1.phases.ns, r2.phases.ns);
        assert_eq!(r1.latency.summary(), r2.latency.summary());
        assert_eq!(r1.ptm.commits, r2.ptm.commits);
    }

    /// Phase accounting is complete: on a single thread, every virtual
    /// nanosecond spent inside `run` is charged to some phase, so the
    /// phase sum equals the session's elapsed time within 1%.
    #[test]
    fn single_thread_phase_sum_matches_elapsed() {
        for algo in Algo::ALL {
            let mut w = CounterWorkload::new();
            let machine = Machine::new(MachineConfig {
                domain: DurabilityDomain::Adr,
                model: LatencyModel::default(),
                track_persistence: false,
                window_ns: u64::MAX,
                ..MachineConfig::default()
            });
            let heap =
                PHeap::format_with_media(&machine, "heap", w.heap_words(), 16, MediaKind::Optane);
            let ptm = Ptm::new(PtmConfig {
                algo,
                heap_media: MediaKind::Optane,
                ..PtmConfig::default()
            });
            machine.begin_run(1, u64::MAX);
            let mut th = TxThread::new(Arc::clone(&ptm), Arc::clone(&heap), machine.session(0));
            w.setup(&mut th);
            ptm.phases.reset();
            let t0 = th.session_mut().now();
            let mut rng = SmallRng::seed_from_u64(1);
            for i in 0..500 {
                w.op(&mut th, &mut rng, 0, i);
            }
            let elapsed = th.session_mut().now() - t0;
            let phases = ptm.phases_snapshot();
            let total = phases.total_ns();
            assert!(
                elapsed.abs_diff(total) as f64 <= elapsed as f64 * 0.01,
                "{algo:?}: phase sum {total} vs elapsed {elapsed}"
            );
            // ADR on Optane must spend observable time persisting.
            assert!(phases.get(ptm::Phase::Flush) > 0, "{algo:?}: no flush time");
            assert!(
                phases.get(ptm::Phase::FenceWait) > 0,
                "{algo:?}: no fence-wait time"
            );
        }
    }

    #[test]
    fn adr_is_slower_than_eadr_on_counter() {
        let rc = RunConfig {
            threads: 1,
            ops_per_thread: 500,
            ..RunConfig::default()
        };
        let mut w1 = CounterWorkload::new();
        let adr = run_scenario(
            &mut w1,
            &Scenario::new(
                "adr",
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::RedoLazy,
            ),
            &rc,
        );
        let mut w2 = CounterWorkload::new();
        let eadr = run_scenario(
            &mut w2,
            &Scenario::new(
                "eadr",
                MediaKind::Optane,
                DurabilityDomain::Eadr,
                Algo::RedoLazy,
            ),
            &rc,
        );
        assert!(
            eadr.throughput_mops() > adr.throughput_mops(),
            "eADR {} <= ADR {}",
            eadr.throughput_mops(),
            adr.throughput_mops()
        );
    }
}
