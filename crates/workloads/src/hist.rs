//! Fixed-bucket log₂ latency histogram.
//!
//! Replaces the driver's per-operation latency vector: memory is
//! O(buckets) regardless of operation count, per-thread histograms merge
//! by bucket-wise addition, and percentiles come from the cumulative
//! bucket counts.
//!
//! Layout: two sub-buckets per power-of-two octave over the full `u64`
//! range (HDR-histogram style with one bit of sub-bucket precision), so a
//! reported percentile is at worst ~25% below the true value. Values 0
//! and 1 get exact buckets; the overall maximum is tracked exactly and
//! reported for the top of the distribution.

/// Number of buckets: 2 per octave × 64 octaves (buckets 0 and 1 are the
/// exact values 0 and 1).
pub const BUCKETS: usize = 128;

/// Bucket index for a value: `v < 2` maps to bucket `v`; otherwise
/// `2·msb + second-most-significant bit`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 2 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        2 * msb + ((v >> (msb - 1)) & 1) as usize
    }
}

/// Smallest value that maps to bucket `b` (the value a percentile in this
/// bucket reports).
#[inline]
pub fn bucket_lower_bound(b: usize) -> u64 {
    if b < 2 {
        b as u64
    } else {
        let msb = b / 2;
        let sub = (b % 2) as u64;
        (1u64 << msb) + sub * (1u64 << (msb - 1))
    }
}

/// A mergeable latency histogram with log₂ buckets.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Bucket-wise addition (thread-local → shared).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `p` ∈ [0, 1].
    ///
    /// Rank selection is round-half-up: the 0-based rank is
    /// `min(count − 1, ⌊p·count + 0.5⌋)`. The seed driver truncated the
    /// rank (`(len−1)·p as usize`), which under-reports tail percentiles —
    /// with 200 samples its p99 landed on the 198th smallest sample
    /// instead of the 199th. Reports the bucket's lower bound, or the
    /// exact maximum when the rank falls in the top bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank0 = ((p * self.count as f64 + 0.5).floor() as u64).min(self.count - 1);
        // 1-based rank: walk cumulative counts until covered. The very
        // last rank reports the exact maximum instead of a bucket bound.
        let target = rank0 + 1;
        if target >= self.count {
            return self.max;
        }
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_lower_bound(b);
            }
        }
        self.max
    }

    /// The standard reporting tuple.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ns: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            max: self.max,
        }
    }

    /// Non-empty buckets as `(lower_bound, count)`, for serialization.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| (bucket_lower_bound(b), c))
    }
}

/// Percentile digest of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_ns: f64,
    pub p50: u64,
    pub p90: u64,
    pub p95: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        for b in 0..BUCKETS {
            let lb = bucket_lower_bound(b);
            assert_eq!(bucket_index(lb), b, "lower bound of bucket {b}");
        }
        // Values inside a bucket map to it.
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(5), 4);
        assert_eq!(bucket_index(6), 5);
        assert_eq!(bucket_index(7), 5);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn zero_samples_report_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentiles_exact_at_bucket_boundaries() {
        // All samples are exact bucket lower bounds, so every percentile
        // is exact.
        let mut h = LatencyHistogram::new();
        for _ in 0..50 {
            h.record(16);
        }
        for _ in 0..30 {
            h.record(64);
        }
        for _ in 0..20 {
            h.record(256);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.25), 16);
        assert_eq!(h.percentile(0.50), 64); // rank 51 falls in the 64s
        assert_eq!(h.percentile(0.79), 64);
        assert_eq!(h.percentile(0.85), 256);
        assert_eq!(h.percentile(1.0), 256);
        assert_eq!(h.max(), 256);
        assert_eq!(h.sum(), 50 * 16 + 30 * 64 + 20 * 256);
    }

    /// The seed's `percentiles()` truncated the rank index
    /// (`(len-1) as f64 * p) as usize`), which under-reported p99 of this
    /// exact distribution as 16. Round-half-up rank selection must report
    /// the 199th smallest sample (1024) instead.
    #[test]
    fn p99_rank_regression_200_samples() {
        let mut h = LatencyHistogram::new();
        for _ in 0..198 {
            h.record(16);
        }
        h.record(1024);
        h.record(4096);
        assert_eq!(h.count(), 200);
        // Old convention: idx = (199 * 0.99) as usize = 197 -> 16. New:
        // rank0 = round_half_up(0.99 * 200) = 198 -> the 199th smallest.
        assert_eq!(h.percentile(0.99), 1024);
        // The very top reports the exact maximum.
        assert_eq!(h.percentile(0.999), 4096);
        assert_eq!(h.percentile(0.50), 16);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [3u64, 16, 16, 900] {
            a.record(v);
        }
        for v in [5u64, 16, 4096] {
            b.record(v);
        }
        let mut whole = LatencyHistogram::new();
        for v in [3u64, 16, 16, 900, 5, 16, 4096] {
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.max(), whole.max());
        for p in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p={p}");
        }
    }

    #[test]
    fn nonzero_buckets_roundtrip() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 1, 300, 300, 300] {
            h.record(v);
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 2));
        assert_eq!(buckets[2], (bucket_lower_bound(bucket_index(300)), 3));
    }
}
