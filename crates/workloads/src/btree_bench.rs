//! The two DudeTM B+Tree microbenchmarks (paper Fig. 3, top row).
//!
//! * **insert-only**: unique random keys into an initially empty tree;
//! * **mixed**: an equal mix of inserts, lookups and removes over a key
//!   range of 2^21 (prepopulated to half full).
//!
//! Sizes are configurable so the harness can run scaled-down versions
//! with the same shape.

use pstructs::BpTree;
use ptm::TxThread;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::driver::Workload;

/// Insert-only: every operation inserts a fresh random key.
pub struct BTreeInsertOnly {
    expected_inserts: u64,
    tree: Option<BpTree>,
}

impl BTreeInsertOnly {
    /// `expected_inserts`: total inserts across all threads (sizes the
    /// heap; the paper uses 2M).
    pub fn new(expected_inserts: u64) -> Self {
        BTreeInsertOnly {
            expected_inserts,
            tree: None,
        }
    }
}

impl Workload for BTreeInsertOnly {
    fn name(&self) -> String {
        "btree-insert".into()
    }

    fn heap_words(&self) -> usize {
        // ~ (36-word leaf per 8 live keys) + internals + headroom.
        ((self.expected_inserts as usize) * 12 + (1 << 16)).next_power_of_two()
    }

    fn setup(&mut self, th: &mut TxThread) {
        self.tree = Some(th.run(BpTree::create));
    }

    fn op(&self, th: &mut TxThread, rng: &mut SmallRng, _tid: usize, _i: u64) {
        let tree = self.tree.expect("setup ran");
        let key = rng.gen::<u64>(); // 64-bit random: collisions negligible
        th.run(|tx| tree.insert(tx, key, key).map(|_| ()));
    }
}

/// Mixed: equal thirds insert / lookup / remove over a bounded key range.
pub struct BTreeMixed {
    key_range: u64,
    prepopulate: u64,
    tree: Option<BpTree>,
}

impl BTreeMixed {
    /// The paper uses `key_range = 2^21`; prepopulation fills half.
    pub fn new(key_range: u64) -> Self {
        BTreeMixed {
            key_range,
            prepopulate: key_range / 2,
            tree: None,
        }
    }
}

impl Workload for BTreeMixed {
    fn name(&self) -> String {
        "btree-mixed".into()
    }

    fn heap_words(&self) -> usize {
        ((self.key_range as usize) * 8 + (1 << 16)).next_power_of_two()
    }

    fn setup(&mut self, th: &mut TxThread) {
        let tree = th.run(BpTree::create);
        let mut rng = seeded_rng(12_648_430);
        for _ in 0..self.prepopulate {
            let key = rng.gen_range(0..self.key_range);
            th.run(|tx| tree.insert(tx, key, key).map(|_| ()));
        }
        self.tree = Some(tree);
    }

    fn op(&self, th: &mut TxThread, rng: &mut SmallRng, _tid: usize, i: u64) {
        let tree = self.tree.expect("setup ran");
        let key = rng.gen_range(0..self.key_range);
        match i % 3 {
            0 => {
                th.run(|tx| tree.insert(tx, key, key).map(|_| ()));
            }
            1 => {
                th.run(|tx| tree.get(tx, key).map(|_| ()));
            }
            _ => {
                th.run(|tx| tree.remove(tx, key).map(|_| ()));
            }
        }
    }
}

fn seeded_rng(seed: u64) -> SmallRng {
    use rand::SeedableRng;
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_scenario, RunConfig, Scenario};
    use pmem_sim::{DurabilityDomain, LatencyModel, MediaKind};
    use ptm::Algo;

    fn quick_rc(threads: usize, ops: u64) -> RunConfig {
        RunConfig {
            threads,
            ops_per_thread: ops,
            window_ns: 2_000,
            model: LatencyModel::default(),
            seed: 7,
            ..RunConfig::default()
        }
    }

    #[test]
    fn insert_only_runs_and_counts() {
        let mut w = BTreeInsertOnly::new(400);
        let sc = Scenario::new(
            "x",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            Algo::RedoLazy,
        );
        let r = run_scenario(&mut w, &sc, &quick_rc(2, 200));
        assert_eq!(r.ops, 400);
        assert!(r.ptm.commits >= 400);
        assert!(r.elapsed_virtual_ns > 0);
    }

    #[test]
    fn mixed_runs_under_undo_too() {
        let mut w = BTreeMixed::new(1 << 12);
        let sc = Scenario::new(
            "x",
            MediaKind::Optane,
            DurabilityDomain::Eadr,
            Algo::UndoEager,
        );
        let r = run_scenario(&mut w, &sc, &quick_rc(2, 150));
        assert_eq!(r.ops, 300);
        assert!(r.ptm.commits >= 300);
    }

    #[test]
    fn redo_beats_undo_on_inserts_under_adr() {
        // The paper's central §III-B finding, at microbenchmark scale.
        let rc = quick_rc(1, 400);
        let mut w1 = BTreeInsertOnly::new(400);
        let redo = run_scenario(
            &mut w1,
            &Scenario::new(
                "r",
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::RedoLazy,
            ),
            &rc,
        );
        let mut w2 = BTreeInsertOnly::new(400);
        let undo = run_scenario(
            &mut w2,
            &Scenario::new(
                "u",
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::UndoEager,
            ),
            &rc,
        );
        assert!(
            redo.throughput_mops() > undo.throughput_mops(),
            "redo {} <= undo {}",
            redo.throughput_mops(),
            undo.throughput_mops()
        );
    }
}
