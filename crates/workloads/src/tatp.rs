//! The write-only TATP telecom benchmark (paper Fig. 4), following the
//! DudeTM configuration: only the update transactions run, so every
//! transaction performs a *small number of writes* — the property that
//! makes TATP the paper's outlier where undo logging stays competitive
//! (few writes ⇒ few undo fences).
//!
//! Schema (scaled): `SUBSCRIBER(s_id → record)` and
//! `SPECIAL_FACILITY((s_id, sf_type) → record)`, both persistent hash
//! maps over heap-allocated records.

use pmem_sim::PAddr;
use pstructs::PHashMap;
use ptm::TxThread;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::driver::Workload;

/// Subscriber record fields (8-word block).
const SUB_BIT_1: u64 = 0;
const SUB_VLR_LOCATION: u64 = 1;
const SUB_MSC_LOCATION: u64 = 2;
const SUB_WORDS: usize = 8;

/// Special-facility record fields (4-word block).
const SF_DATA_A: u64 = 0;
const SF_IS_ACTIVE: u64 = 1;
const SF_WORDS: usize = 4;

/// Special-facility types per subscriber.
const SF_TYPES: u64 = 4;

/// The TATP workload. The paper runs the DudeTM *write-only* variant
/// (only the update transactions); [`Tatp::with_reads`] enables the
/// standard benchmark's read transactions too (GET_SUBSCRIBER_DATA /
/// GET_ACCESS_DATA) for read-mix experiments.
pub struct Tatp {
    subscribers: u64,
    /// Percentage of operations that are read transactions (0 = the
    /// paper's write-only configuration).
    read_pct: u64,
    sub: Option<PHashMap>,
    sf: Option<PHashMap>,
}

impl Tatp {
    /// Standard scale is 100k subscribers; benchmarks scale down.
    pub fn new(subscribers: u64) -> Self {
        Tatp {
            subscribers,
            read_pct: 0,
            sub: None,
            sf: None,
        }
    }

    /// The standard TATP mix is 80% reads; the paper's is 0%.
    pub fn with_reads(subscribers: u64, read_pct: u64) -> Self {
        assert!(read_pct <= 100);
        Tatp {
            subscribers,
            read_pct,
            sub: None,
            sf: None,
        }
    }

    fn sf_key(s_id: u64, sf_type: u64) -> u64 {
        s_id * SF_TYPES + sf_type
    }
}

impl Workload for Tatp {
    fn name(&self) -> String {
        "tatp".into()
    }

    fn heap_words(&self) -> usize {
        // sub record + hash node, SF_TYPES sf records + nodes, bucket
        // arrays, headroom.
        ((self.subscribers as usize) * (SUB_WORDS + 8 + SF_TYPES as usize * (SF_WORDS + 8))
            + (1 << 16))
            .next_power_of_two()
    }

    fn setup(&mut self, th: &mut TxThread) {
        let n = self.subscribers;
        let (sub, sf) = th.run(|tx| {
            Ok((
                PHashMap::create(tx, n as usize)?,
                PHashMap::create(tx, (n * SF_TYPES) as usize)?,
            ))
        });
        for s in 0..n {
            th.run(|tx| {
                let rec = tx.alloc(SUB_WORDS);
                tx.write_at(rec, SUB_BIT_1, s & 1)?;
                tx.write_at(rec, SUB_VLR_LOCATION, s)?;
                tx.write_at(rec, SUB_MSC_LOCATION, s)?;
                sub.insert(tx, s, rec.0)?;
                for t in 0..SF_TYPES {
                    let sfr = tx.alloc(SF_WORDS);
                    tx.write_at(sfr, SF_DATA_A, 0)?;
                    tx.write_at(sfr, SF_IS_ACTIVE, 1)?;
                    sf.insert(tx, Self::sf_key(s, t), sfr.0)?;
                }
                Ok(())
            });
        }
        self.sub = Some(sub);
        self.sf = Some(sf);
    }

    fn op(&self, th: &mut TxThread, rng: &mut SmallRng, _tid: usize, _i: u64) {
        let sub = self.sub.expect("setup ran");
        let sf = self.sf.expect("setup ran");
        let s_id = rng.gen_range(0..self.subscribers);
        if rng.gen_range(0..100) < self.read_pct {
            // GET_SUBSCRIBER_DATA / GET_ACCESS_DATA: read-only.
            let sf_type = rng.gen_range(0..SF_TYPES);
            th.run(|tx| {
                let mut sum = 0;
                if let Some(rec) = sub.get(tx, s_id)? {
                    sum += tx.read_at(PAddr(rec), SUB_BIT_1)?;
                    sum += tx.read_at(PAddr(rec), SUB_VLR_LOCATION)?;
                    sum += tx.read_at(PAddr(rec), SUB_MSC_LOCATION)?;
                }
                if let Some(rec) = sf.get(tx, Tatp::sf_key(s_id, sf_type))? {
                    sum += tx.read_at(PAddr(rec), SF_IS_ACTIVE)?;
                }
                Ok(sum)
            });
            return;
        }
        if rng.gen_bool(0.5) {
            // UPDATE_SUBSCRIBER_DATA: sub.bit_1 and one sf.data_a.
            let sf_type = rng.gen_range(0..SF_TYPES);
            let bit = rng.gen_range(0..2u64);
            let data_a = rng.gen_range(0..256u64);
            th.run(|tx| {
                if let Some(rec) = sub.get(tx, s_id)? {
                    tx.write_at(PAddr(rec), SUB_BIT_1, bit)?;
                }
                if let Some(rec) = sf.get(tx, Tatp::sf_key(s_id, sf_type))? {
                    tx.write_at(PAddr(rec), SF_DATA_A, data_a)?;
                }
                Ok(())
            });
        } else {
            // UPDATE_LOCATION: sub.vlr_location.
            let loc = rng.gen::<u32>() as u64;
            th.run(|tx| {
                if let Some(rec) = sub.get(tx, s_id)? {
                    tx.write_at(PAddr(rec), SUB_VLR_LOCATION, loc)?;
                }
                Ok(())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_scenario, RunConfig, Scenario};
    use pmem_sim::{DurabilityDomain, MediaKind};
    use ptm::Algo;

    #[test]
    fn tatp_runs_and_mutates_state() {
        let mut w = Tatp::new(200);
        let sc = Scenario::new(
            "t",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            Algo::RedoLazy,
        );
        let rc = RunConfig {
            threads: 2,
            ops_per_thread: 150,
            ..RunConfig::default()
        };
        let r = run_scenario(&mut w, &sc, &rc);
        assert_eq!(r.ops, 300);
        assert!(r.ptm.commits >= 300);
        assert!(r.mem.stores > 0);
    }

    #[test]
    fn read_mix_produces_read_only_transactions() {
        // With reads enabled, a good fraction of transactions must commit
        // without touching the clock (read-only fast path) — observable
        // as fewer fences per commit than the write-only configuration.
        let fences_per_commit = |read_pct| {
            let mut w = Tatp::with_reads(200, read_pct);
            let sc = Scenario::new(
                "t",
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::RedoLazy,
            );
            let rc = RunConfig {
                threads: 1,
                ops_per_thread: 300,
                ..RunConfig::default()
            };
            let r = run_scenario(&mut w, &sc, &rc);
            r.mem.sfences as f64 / r.ptm.commits as f64
        };
        let write_only = fences_per_commit(0);
        let read_heavy = fences_per_commit(80);
        assert!(
            read_heavy < 0.5 * write_only,
            "80% reads must fence far less: {read_heavy:.2} vs {write_only:.2}"
        );
    }

    #[test]
    fn tatp_transactions_write_little() {
        // The paper's explanation for TATP's outlier behaviour: each
        // transaction performs only a handful of writes, so the undo
        // fencing penalty is small. Check fences/tx for undo is bounded.
        let mut w = Tatp::new(200);
        let sc = Scenario::new(
            "t",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            Algo::UndoEager,
        );
        let rc = RunConfig {
            threads: 1,
            ops_per_thread: 200,
            ..RunConfig::default()
        };
        let r = run_scenario(&mut w, &sc, &rc);
        let fences_per_tx = r.mem.sfences as f64 / r.ptm.commits as f64;
        assert!(
            fences_per_tx < 8.0,
            "TATP undo should fence rarely, got {fences_per_tx:.1}/tx"
        );
    }
}
