//! The persistent heap: allocation fast paths and the root table.
//!
//! Concurrency note: the volatile bookkeeping (bump pointer, free lists)
//! is guarded by a mutex, but **no simulated-time operation happens while
//! the mutex is held** — a thread throttled by the virtual-clock window
//! must never hold a lock that a behind-schedule thread needs. Fresh-block
//! headers are therefore persisted with untimed pool operations inside the
//! critical section (preserving the crash-ordering invariant: a header is
//! durable before its block can be reused or reached), and the modeled
//! cost of the header store + `clwb` + `sfence` is charged to the caller's
//! clock after the lock is released.

use std::sync::{Arc, Condvar, Mutex};

use pmem_sim::{Machine, MemSession, PAddr, PmemPool};

use crate::classes::{class_index, class_words, NUM_CLASSES};
use crate::gc::{self, GcReport};
use crate::layout::{
    decode_header, encode_header, heap_start, HEAP_MAGIC, OFF_LEN, OFF_MAGIC, OFF_ROOTS,
    OFF_ROOTS_LEN, TAG_FREE, TAG_LIVE,
};

/// Why [`PHeap::attach`] refused a pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttachError {
    /// The pool does not begin with [`HEAP_MAGIC`].
    BadMagic(u64),
    /// The recorded length does not match the pool.
    LengthMismatch { recorded: u64, actual: u64 },
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::BadMagic(m) => write!(f, "bad heap magic {m:#x}"),
            AttachError::LengthMismatch { recorded, actual } => {
                write!(
                    f,
                    "heap length mismatch: header says {recorded}, pool has {actual}"
                )
            }
        }
    }
}

impl std::error::Error for AttachError {}

pub(crate) struct Inner {
    /// Next unallocated word (a header position).
    pub bump: u64,
    /// Per-class stacks of reusable data-word offsets.
    pub free: Vec<Vec<u64>>,
}

/// A persistent heap inside one pool.
///
/// ```
/// use pmem_sim::{Machine, MachineConfig, DurabilityDomain};
/// use palloc::PHeap;
///
/// let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
/// let heap = PHeap::format(&m, "heap", 1 << 14, 4);
/// let mut s = m.session(0);
///
/// let block = heap.alloc(&mut s, 10);
/// s.store(block, 42);
/// heap.set_root(&mut s, 0, block);         // anchor it for recovery
///
/// // After a crash: reboot, re-attach (GC reclaims anything unrooted).
/// let image = m.crash(0);
/// let m2 = Machine::reboot(&image, MachineConfig::functional(DurabilityDomain::Eadr));
/// let (heap2, report) = PHeap::attach(m2.pool(heap.pool().id())).unwrap();
/// assert_eq!(report.live_blocks, 1);
/// assert_eq!(heap2.pool().raw_load(heap2.root_raw(0).word()), 42);
/// ```
pub struct PHeap {
    pool: Arc<PmemPool>,
    start: u64,
    roots: usize,
    inner: Mutex<Inner>,
    /// Epoch fence for online restart GC (see [`PHeap::attach_online`]):
    /// closed while a background mark-sweep is still rebuilding the free
    /// lists. Read-only operations never touch it; every allocator
    /// *mutation* waits on it.
    gate: GcGate,
}

/// The online-GC epoch fence: `ready == false` until the background
/// sweep has installed the rebuilt [`Inner`].
struct GcGate {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl GcGate {
    fn new(ready: bool) -> GcGate {
        GcGate {
            ready: Mutex::new(ready),
            cv: Condvar::new(),
        }
    }
}

/// Handle on a background restart GC started by [`PHeap::attach_online`].
/// Joining returns the sweep's [`GcReport`]; dropping without joining
/// leaves the sweep running to completion on its own.
pub struct OnlineGc {
    handle: std::thread::JoinHandle<GcReport>,
}

impl OnlineGc {
    /// Block until the background sweep finishes and take its report.
    pub fn join(self) -> GcReport {
        self.handle.join().expect("online GC thread panicked")
    }

    /// Whether the sweep has finished (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

impl PHeap {
    /// Create and format a fresh heap of `len_words` with `roots` root
    /// slots. Formatting is a setup-time operation and is untimed.
    pub fn format(
        machine: &Arc<Machine>,
        name: &str,
        len_words: usize,
        roots: usize,
    ) -> Arc<PHeap> {
        Self::format_with_media(machine, name, len_words, roots, pmem_sim::MediaKind::Optane)
    }

    /// Like [`PHeap::format`] but with an explicit backing media — the
    /// paper's DRAM-ramdisk baseline places the "persistent" heap in DRAM.
    pub fn format_with_media(
        machine: &Arc<Machine>,
        name: &str,
        len_words: usize,
        roots: usize,
        media: pmem_sim::MediaKind,
    ) -> Arc<PHeap> {
        let pool = machine.alloc_pool(name, len_words, media);
        let start = heap_start(roots);
        assert!(
            (start as usize) < pool.len_words(),
            "heap too small for its root table"
        );
        pool.raw_store(OFF_MAGIC, HEAP_MAGIC);
        pool.raw_store(OFF_LEN, pool.len_words() as u64);
        pool.raw_store(OFF_ROOTS_LEN, roots as u64);
        for line in 0..start / pmem_sim::WORDS_PER_LINE as u64 {
            pool.persist_line_now(line);
        }
        Arc::new(PHeap {
            pool,
            start,
            roots,
            inner: Mutex::new(Inner {
                bump: start,
                free: vec![Vec::new(); NUM_CLASSES],
            }),
            gate: GcGate::new(true),
        })
    }

    /// Attach to (recover) a previously formatted heap, typically after
    /// [`Machine::reboot`]. Runs the conservative mark-sweep GC to rebuild
    /// the volatile free lists and reclaim leaked blocks. Untimed: recovery
    /// happens outside measured execution.
    pub fn attach(pool: Arc<PmemPool>) -> Result<(Arc<PHeap>, GcReport), AttachError> {
        Self::attach_with(pool, 1)
    }

    /// [`PHeap::attach`] with an explicit worker-thread count for the GC's
    /// scan and mark phases. Observationally identical to the serial
    /// attach (marking is confluent and the sweep order is fixed), just
    /// faster on large pools.
    pub fn attach_with(
        pool: Arc<PmemPool>,
        workers: usize,
    ) -> Result<(Arc<PHeap>, GcReport), AttachError> {
        let (start, roots) = Self::check_header(&pool)?;
        let (inner, report) = gc::recover_with(&pool, start, roots, workers);
        Ok((
            Arc::new(PHeap {
                pool,
                start,
                roots,
                inner: Mutex::new(inner),
                gate: GcGate::new(true),
            }),
            report,
        ))
    }

    /// Attach with the restart GC running in the *background*: returns
    /// immediately after header validation, so read-only traffic (root
    /// reads, raw pool loads, read-only transactions over already-durable
    /// data) can be served while the mark-sweep is still running —
    /// time-to-first-read beats time-to-full-restart.
    ///
    /// The epoch-fence rule: operations that only read persistent state
    /// never wait; every operation that could *mutate* allocator state
    /// (`alloc`, `free`, `set_root`) or observe the volatile bookkeeping
    /// (`validate`, `stats`, `high_water_words`, `free_blocks`) blocks
    /// until the sweep has installed the rebuilt free lists. This is
    /// sound because GC writes nothing persistent: the durable image a
    /// reader sees is exactly the post-recovery image, independent of GC
    /// progress.
    pub fn attach_online(
        pool: Arc<PmemPool>,
        workers: usize,
    ) -> Result<(Arc<PHeap>, OnlineGc), AttachError> {
        let (start, roots) = Self::check_header(&pool)?;
        let heap = Arc::new(PHeap {
            pool,
            start,
            roots,
            inner: Mutex::new(Inner {
                bump: start,
                free: vec![Vec::new(); NUM_CLASSES],
            }),
            gate: GcGate::new(false),
        });
        let h = Arc::clone(&heap);
        let handle = std::thread::spawn(move || {
            let (inner, report) = gc::recover_with(h.pool(), h.start, h.roots, workers);
            *h.inner.lock().unwrap() = inner;
            let mut ready = h.gate.ready.lock().unwrap();
            *ready = true;
            h.gate.cv.notify_all();
            report
        });
        Ok((heap, OnlineGc { handle }))
    }

    fn check_header(pool: &Arc<PmemPool>) -> Result<(u64, usize), AttachError> {
        let magic = pool.raw_load(OFF_MAGIC);
        if magic != HEAP_MAGIC {
            return Err(AttachError::BadMagic(magic));
        }
        let recorded = pool.raw_load(OFF_LEN);
        if recorded != pool.len_words() as u64 {
            return Err(AttachError::LengthMismatch {
                recorded,
                actual: pool.len_words() as u64,
            });
        }
        let roots = pool.raw_load(OFF_ROOTS_LEN) as usize;
        Ok((heap_start(roots), roots))
    }

    /// Block until any background restart GC ([`PHeap::attach_online`])
    /// has installed the rebuilt free lists. No-op on fully-attached
    /// heaps.
    fn wait_gc(&self) {
        let mut ready = self.gate.ready.lock().unwrap();
        while !*ready {
            ready = self.gate.cv.wait(ready).unwrap();
        }
    }

    /// Whether a background restart GC is still running (reads are being
    /// served ahead of the sweep).
    pub fn gc_pending(&self) -> bool {
        !*self.gate.ready.lock().unwrap()
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// First allocatable word.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of root slots.
    pub fn root_slots(&self) -> usize {
        self.roots
    }

    /// Allocate `words` data words; returns the address of the first data
    /// word. Contents of reused blocks are unspecified (see
    /// [`PHeap::alloc_zeroed`]).
    ///
    /// # Panics
    /// Panics when the heap is exhausted.
    pub fn alloc(&self, s: &mut MemSession, words: usize) -> PAddr {
        self.wait_gc();
        let class = class_words(words);
        let idx = class_index(class);
        enum Got {
            Reused(u64),
            Fresh(u64),
        }
        let got = {
            let mut inner = self.inner.lock().unwrap();
            if let Some(data) = inner.free[idx].pop() {
                Got::Reused(data)
            } else {
                let hdr = inner.bump;
                let end = hdr + 1 + class as u64;
                assert!(
                    (end as usize) <= self.pool.len_words(),
                    "persistent heap `{}` exhausted ({} words requested)",
                    self.pool.name(),
                    class
                );
                // Untimed header persist inside the lock: durable before
                // the block can become reachable (see module docs).
                self.pool.raw_store(hdr, encode_header(TAG_LIVE, class));
                self.pool
                    .persist_line_now(hdr / pmem_sim::WORDS_PER_LINE as u64);
                inner.bump = end;
                Got::Fresh(hdr + 1)
            }
        };
        match got {
            Got::Reused(data) => {
                // Reused block: flip the tag back to live (timed; no fence
                // needed — GC liveness is reachability, the tag is advisory).
                s.store(self.pool.addr(data - 1), encode_header(TAG_LIVE, class));
                self.pool.addr(data)
            }
            Got::Fresh(data) => {
                // Charge the modeled cost of the header store+clwb+sfence
                // performed under the lock.
                let m = s.machine().model();
                let cost = m.store_hit_ns + m.clwb_optane_ns + m.sfence_ns;
                s.advance(cost);
                self.pool.addr(data)
            }
        }
    }

    /// Allocate and zero `words` data words (timed stores).
    pub fn alloc_zeroed(&self, s: &mut MemSession, words: usize) -> PAddr {
        let addr = self.alloc(s, words);
        for i in 0..words as u64 {
            s.store(addr.offset(i), 0);
        }
        addr
    }

    /// Return a block to the allocator.
    ///
    /// # Panics
    /// Panics on double free or on an address that is not a block start.
    pub fn free(&self, s: &mut MemSession, addr: PAddr) {
        self.wait_gc();
        assert_eq!(addr.pool(), self.pool.id(), "free of foreign address");
        let hdr_word = addr.word() - 1;
        let (tag, class) = decode_header(self.pool.raw_load(hdr_word))
            .unwrap_or_else(|| panic!("free({addr}): not a block start"));
        assert_eq!(tag, TAG_LIVE, "double free of {addr}");
        s.store(self.pool.addr(hdr_word), encode_header(TAG_FREE, class));
        let mut inner = self.inner.lock().unwrap();
        inner.free[class_index(class)].push(addr.word());
    }

    /// Data size class of the block at `addr`, in words.
    pub fn block_words(&self, addr: PAddr) -> usize {
        decode_header(self.pool.raw_load(addr.word() - 1))
            .unwrap_or_else(|| panic!("block_words({addr}): not a block start"))
            .1
    }

    /// Store a persistent root pointer (flushed and fenced: roots are the
    /// GC's anchor and must always be durable).
    pub fn set_root(&self, s: &mut MemSession, slot: usize, value: PAddr) {
        // Re-rooting changes the reachability the concurrent mark is
        // computing: it must fence behind the sweep like other mutations.
        self.wait_gc();
        assert!(slot < self.roots, "root slot {slot} out of range");
        let addr = self.pool.addr(OFF_ROOTS + slot as u64);
        s.store(addr, value.0);
        s.clwb(addr);
        s.sfence();
    }

    /// Load a persistent root pointer (timed).
    pub fn root(&self, s: &mut MemSession, slot: usize) -> PAddr {
        assert!(slot < self.roots, "root slot {slot} out of range");
        PAddr(s.load(self.pool.addr(OFF_ROOTS + slot as u64)))
    }

    /// Untimed root read (recovery / assertions).
    pub fn root_raw(&self, slot: usize) -> PAddr {
        assert!(slot < self.roots, "root slot {slot} out of range");
        PAddr(self.pool.raw_load(OFF_ROOTS + slot as u64))
    }

    /// Exhaustive consistency check of the persistent header chain
    /// against the volatile bookkeeping. O(heap); meant for crash
    /// harnesses and tests, not hot paths.
    ///
    /// Checks that headers parse cleanly from the heap start up to the
    /// bump pointer, and that every free-list entry is the data start of
    /// a scanned block of the matching size class, with no duplicates.
    /// (Free-list entries may still carry a live tag: the restart GC
    /// reclaims leaked blocks without rewriting their headers.)
    pub fn validate(&self) -> Result<(), String> {
        self.wait_gc();
        let inner = self.inner.lock().unwrap();
        let len = self.pool.len_words() as u64;
        let mut classes = std::collections::HashMap::new();
        let mut cursor = self.start;
        while cursor < inner.bump {
            let word = self.pool.raw_load(cursor);
            let Some((_tag, class)) = decode_header(word) else {
                return Err(format!(
                    "word {cursor} below bump {} is not a block header ({word:#x})",
                    inner.bump
                ));
            };
            if cursor + 1 + class as u64 > len {
                // The overrun that used to panic the mark phase: a
                // corrupted class word claiming words past the pool end.
                return Err(format!(
                    "block header at {cursor} (class {class}) overruns the pool ({len} words)"
                ));
            }
            classes.insert(cursor + 1, class);
            cursor = cursor + 1 + class as u64;
        }
        if cursor != inner.bump {
            return Err(format!(
                "header chain ends at {cursor}, bump pointer says {} \
                 (a class word overrunning into a neighbouring block skews the chain)",
                inner.bump
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for (idx, list) in inner.free.iter().enumerate() {
            for &data in list {
                if !seen.insert(data) {
                    return Err(format!("block {data} appears twice on free lists"));
                }
                match classes.get(&data) {
                    None => return Err(format!("free-list entry {data} is not a block start")),
                    Some(&class) if class_index(class) != idx => {
                        return Err(format!(
                            "free-list entry {data} has class {class}, filed under index {idx}"
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }

    /// Total words currently consumed from the bump region.
    pub fn high_water_words(&self) -> u64 {
        self.wait_gc();
        self.inner.lock().unwrap().bump - self.start
    }

    /// Number of blocks currently on free lists (tests/introspection).
    pub fn free_blocks(&self) -> usize {
        self.wait_gc();
        self.inner.lock().unwrap().free.iter().map(Vec::len).sum()
    }

    /// Occupancy snapshot: bump watermark, free-list totals, and the
    /// per-class free counts (fragmentation diagnosis).
    pub fn stats(&self) -> HeapStats {
        self.wait_gc();
        let inner = self.inner.lock().unwrap();
        let mut per_class = Vec::new();
        let mut free_words = 0u64;
        for (idx, list) in inner.free.iter().enumerate() {
            if !list.is_empty() {
                let class = crate::classes::index_class(idx);
                per_class.push((class, list.len()));
                free_words += (class * list.len()) as u64;
            }
        }
        HeapStats {
            total_words: self.pool.len_words() as u64,
            high_water_words: inner.bump - self.start,
            free_blocks: per_class.iter().map(|&(_, n)| n as u64).sum(),
            free_words,
            per_class,
        }
    }
}

/// Snapshot of a heap's occupancy (see [`PHeap::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Pool size in words.
    pub total_words: u64,
    /// Words ever carved from the bump region (headers included).
    pub high_water_words: u64,
    /// Blocks currently reusable.
    pub free_blocks: u64,
    /// Data words currently reusable.
    pub free_words: u64,
    /// (class size, count) for each non-empty free list.
    pub per_class: Vec<(usize, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{DurabilityDomain, MachineConfig};

    fn setup() -> (Arc<Machine>, Arc<PHeap>) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let h = PHeap::format(&m, "heap", 1 << 16, 8);
        (m, h)
    }

    #[test]
    fn alloc_returns_distinct_in_bounds_blocks() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 10);
        let b = h.alloc(&mut s, 10);
        assert_ne!(a, b);
        assert!(a.word() >= h.start());
        assert_eq!(h.block_words(a), 12); // class-rounded
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 16);
        h.free(&mut s, a);
        let b = h.alloc(&mut s, 16);
        assert_eq!(a, b, "same class must reuse the freed block");
    }

    #[test]
    fn different_classes_do_not_reuse() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 4);
        h.free(&mut s, a);
        let b = h.alloc(&mut s, 64);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        h.free(&mut s, a);
        h.free(&mut s, a);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let h = PHeap::format(&m, "tiny", 256, 4);
        let mut s = m.session(0);
        loop {
            h.alloc(&mut s, 32);
        }
    }

    #[test]
    fn alloc_zeroed_zeroes_reused_contents() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        for i in 0..8 {
            s.store(a.offset(i), 0xDEAD);
        }
        h.free(&mut s, a);
        let b = h.alloc_zeroed(&mut s, 8);
        assert_eq!(b, a);
        for i in 0..8 {
            assert_eq!(s.load(b.offset(i)), 0);
        }
    }

    #[test]
    fn roots_roundtrip_and_persist() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        h.set_root(&mut s, 3, a);
        assert_eq!(h.root(&mut s, 3), a);
        assert_eq!(h.root_raw(3), a);
        // Durable: present in the shadow.
        let shadow = h.pool().shadow().unwrap();
        assert_eq!(shadow.load(OFF_ROOTS + 3), a.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn root_slot_bounds_checked() {
        let (m, h) = setup();
        let mut s = m.session(0);
        h.set_root(&mut s, 99, PAddr::NULL);
    }

    #[test]
    fn header_is_durable_before_block_use() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        let shadow = h.pool().shadow().unwrap();
        let hdr = shadow.load(a.word() - 1);
        assert_eq!(decode_header(hdr).map(|(_, w)| w), Some(8));
    }

    #[test]
    fn concurrent_allocations_are_disjoint() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let h = PHeap::format(&m, "heap", 1 << 18, 4);
        m.begin_run(4, u64::MAX);
        let addrs: Vec<Vec<PAddr>> = std::thread::scope(|scope| {
            (0..4)
                .map(|tid| {
                    let m = Arc::clone(&m);
                    let h = Arc::clone(&h);
                    scope.spawn(move || {
                        let mut s = m.session(tid);
                        (0..500).map(|i| h.alloc(&mut s, 1 + i % 20)).collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut all: Vec<u64> = addrs.iter().flatten().map(|a| a.word()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "no block handed out twice");
    }

    #[test]
    fn stats_reflect_occupancy() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 10); // class 12
        let b = h.alloc(&mut s, 30); // class 32
        h.free(&mut s, a);
        let st = h.stats();
        assert_eq!(st.high_water_words, (12 + 1) + (32 + 1));
        assert_eq!(st.free_blocks, 1);
        assert_eq!(st.free_words, 12);
        assert_eq!(st.per_class, vec![(12, 1)]);
        let _ = b;
    }

    #[test]
    fn validate_accepts_live_and_attached_heaps() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 10);
        let b = h.alloc(&mut s, 30);
        h.free(&mut s, a);
        h.set_root(&mut s, 0, b);
        h.validate().unwrap();
        // After crash + GC attach (which leaves stale tags on reclaimed
        // blocks) the heap must still validate.
        let img = m.crash(0);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let (h2, _) = PHeap::attach(m2.pool(h.pool().id())).unwrap();
        h2.validate().unwrap();
    }

    #[test]
    fn validate_rejects_corrupted_headers() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 10);
        h.pool().raw_store(a.word() - 1, u64::MAX); // smash the header
        let err = h.validate().unwrap_err();
        assert!(err.contains("not a block header"), "{err}");
    }

    #[test]
    fn validate_rejects_overrunning_class() {
        // A corrupted class word overrunning the pool used to index out
        // of bounds in the GC; validate must now name the overrun.
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 10);
        h.pool().raw_store(
            a.word() - 1,
            crate::layout::encode_header(TAG_LIVE, h.pool().len_words()),
        );
        let err = h.validate().unwrap_err();
        assert!(err.contains("overruns the pool"), "{err}");
    }

    #[test]
    fn validate_rejects_overlap_into_next_block() {
        // A class word overrunning *into the next block* skews the chain
        // off the bump pointer; validate must catch the mismatch.
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        let _b = h.alloc(&mut s, 8);
        h.pool()
            .raw_store(a.word() - 1, crate::layout::encode_header(TAG_LIVE, 8 + 2));
        let err = h.validate().unwrap_err();
        assert!(
            err.contains("not a block header") || err.contains("skews the chain"),
            "{err}"
        );
    }

    #[test]
    fn online_attach_serves_reads_before_alloc_unblocks() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let kept = h.alloc(&mut s, 8);
        s.store(kept.offset(0), 4242);
        s.clwb(kept.offset(0));
        s.sfence();
        h.set_root(&mut s, 0, kept);
        let _leak = h.alloc(&mut s, 8);
        let img = m.crash(6);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let pool = m2.pool(h.pool().id());
        let (h2, gc) = PHeap::attach_online(pool, 2).expect("online attach");
        // Reads are served immediately — no fence (regardless of whether
        // the background sweep has finished yet).
        let root = h2.root_raw(0);
        assert_eq!(root, kept);
        assert_eq!(h2.pool().raw_load(root.word()), 4242);
        // The report arrives when the sweep does; allocation fences.
        let report = gc.join();
        assert_eq!(report.live_blocks, 1);
        assert_eq!(report.leaked_blocks, 1);
        let mut s2 = m2.session(0);
        let d = h2.alloc(&mut s2, 8);
        assert_eq!(d, _leak, "post-sweep alloc must reuse the leak");
        h2.validate().unwrap();
    }

    #[test]
    fn online_attach_alloc_blocks_until_sweep_installs_state() {
        // Even when the caller races alloc against the background sweep,
        // the epoch fence makes the outcome identical to a full attach.
        let (m, h) = setup();
        let mut s = m.session(0);
        let kept = h.alloc(&mut s, 8);
        h.set_root(&mut s, 0, kept);
        let leak = h.alloc(&mut s, 8);
        let img = m.crash(7);
        for workers in [1, 4] {
            let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
            let pool = m2.pool(h.pool().id());
            let (h2, gc) = PHeap::attach_online(pool, workers).expect("online attach");
            let mut s2 = m2.session(0);
            // No join before alloc: wait_gc inside alloc is the fence.
            let d = h2.alloc(&mut s2, 8);
            assert_eq!(d, leak, "workers={workers}");
            let report = gc.join();
            assert_eq!(report.gc_workers, workers);
            h2.validate().unwrap();
        }
    }

    #[test]
    fn free_blocks_counter() {
        let (m, h) = setup();
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        let b = h.alloc(&mut s, 8);
        assert_eq!(h.free_blocks(), 0);
        h.free(&mut s, a);
        h.free(&mut s, b);
        assert_eq!(h.free_blocks(), 2);
    }
}
