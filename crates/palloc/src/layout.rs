//! Persistent on-media layout of a heap pool.
//!
//! ```text
//! word 0              HEAP_MAGIC
//! word 1              pool length in words
//! word 2              number of root slots R
//! word 3              reserved
//! words 4 .. 4+R      root table (PAddr bits, 0 = empty)
//! words start ..      block, block, block, ...
//! ```
//!
//! Every block is `1 + class_words` long: a one-word header followed by
//! the data. The header encodes a tag byte and the *size class* in data
//! words; the tag distinguishes live and freed blocks for assertions (GC
//! decides liveness by reachability, not by the tag).

/// "PMHEAP01" in a single u64.
pub const HEAP_MAGIC: u64 = 0x504d_4845_4150_3031;

/// Header word offsets.
pub const OFF_MAGIC: u64 = 0;
pub const OFF_LEN: u64 = 1;
pub const OFF_ROOTS_LEN: u64 = 2;
pub const OFF_ROOTS: u64 = 4;

/// Tag byte of a live (allocated) block header.
pub const TAG_LIVE: u64 = 0xA5;
/// Tag byte of a freed block header.
pub const TAG_FREE: u64 = 0x5A;

/// Encode a block header word.
#[inline]
pub fn encode_header(tag: u64, class_words: usize) -> u64 {
    debug_assert!(tag == TAG_LIVE || tag == TAG_FREE);
    ((class_words as u64) << 8) | tag
}

/// Decode a block header word into `(tag, class_words)`, or `None` if the
/// word is not a plausible header.
#[inline]
pub fn decode_header(word: u64) -> Option<(u64, usize)> {
    let tag = word & 0xFF;
    if tag != TAG_LIVE && tag != TAG_FREE {
        return None;
    }
    let words = (word >> 8) as usize;
    if words == 0 || words > (1 << 32) {
        return None;
    }
    Some((tag, words))
}

/// First allocatable word for a heap with `roots` root slots, rounded up
/// to a cache line so blocks start line-aligned relative to the table.
pub fn heap_start(roots: usize) -> u64 {
    let raw = OFF_ROOTS + roots as u64;
    raw.div_ceil(pmem_sim::WORDS_PER_LINE as u64) * pmem_sim::WORDS_PER_LINE as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = encode_header(TAG_LIVE, 48);
        assert_eq!(decode_header(h), Some((TAG_LIVE, 48)));
        let f = encode_header(TAG_FREE, 4);
        assert_eq!(decode_header(f), Some((TAG_FREE, 4)));
    }

    #[test]
    fn zero_is_not_a_header() {
        assert_eq!(decode_header(0), None);
    }

    #[test]
    fn junk_tags_rejected() {
        assert_eq!(decode_header(0x1234_5600), None);
        assert_eq!(decode_header((10 << 8) | 0x77), None);
    }

    #[test]
    fn zero_size_rejected() {
        assert_eq!(decode_header(TAG_LIVE), None);
    }

    #[test]
    fn heap_start_is_line_aligned_and_clears_roots() {
        for roots in [0usize, 1, 4, 60, 61, 64, 100] {
            let s = heap_start(roots);
            assert_eq!(s % pmem_sim::WORDS_PER_LINE as u64, 0);
            assert!(s >= OFF_ROOTS + roots as u64);
        }
    }
}
