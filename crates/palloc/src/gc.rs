//! Offline conservative mark-sweep recovery (Makalu's restart GC).
//!
//! After a crash, the volatile free lists are gone and some blocks may
//! have leaked (allocated but never linked before the failure). Recovery
//!
//! 1. **scans** the heap's block headers sequentially from `start`
//!    (headers are persisted before their block can be referenced, so a
//!    zero word terminates the allocated region);
//! 2. **marks** conservatively from the root table: any word inside a
//!    reachable block whose bit pattern equals the address of a block's
//!    first data word is treated as a pointer;
//! 3. **sweeps** every unmarked block onto the volatile free lists.
//!
//! Conservatism can only over-retain (an integer that happens to look
//! like a block address keeps that block alive) — never reclaim live
//! data.

use std::collections::HashMap;

use pmem_sim::{PAddr, PmemPool};

use crate::classes::{class_index, NUM_CLASSES};
use crate::heap::Inner;
use crate::layout::{decode_header, TAG_LIVE};

/// What recovery found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Blocks discovered in the header scan.
    pub blocks_scanned: usize,
    /// Blocks reachable from roots (kept allocated).
    pub live_blocks: usize,
    /// Blocks swept to the free lists.
    pub reclaimed_blocks: usize,
    /// Of the reclaimed, how many still carried a live tag — i.e. leaks
    /// (allocated but unreachable at crash time, or freed-tag lost).
    pub leaked_blocks: usize,
    /// Words reclaimed (data words, headers excluded).
    pub reclaimed_words: u64,
}

/// Scan + mark + sweep; returns the rebuilt volatile state and a report.
pub(crate) fn recover(pool: &PmemPool, start: u64, roots: usize) -> (Inner, GcReport) {
    // ---- scan ----
    // data start word -> (class words, tag)
    let mut blocks: HashMap<u64, (usize, u64)> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut cursor = start;
    let len = pool.len_words() as u64;
    while cursor < len {
        let word = pool.raw_load(cursor);
        let Some((tag, class)) = decode_header(word) else {
            break; // first non-header word terminates the allocated region
        };
        let data = cursor + 1;
        blocks.insert(data, (class, tag));
        order.push(data);
        cursor = data + class as u64;
    }
    let bump = cursor;

    // ---- mark ----
    let mut marked: HashMap<u64, bool> = blocks.keys().map(|&d| (d, false)).collect();
    let mut worklist: Vec<u64> = Vec::new();
    for slot in 0..roots {
        let v = pool.raw_load(crate::layout::OFF_ROOTS + slot as u64);
        let p = PAddr(v);
        if p.pool() == pool.id() && blocks.contains_key(&p.word()) {
            if let Some(m) = marked.get_mut(&p.word()) {
                if !*m {
                    *m = true;
                    worklist.push(p.word());
                }
            }
        }
    }
    while let Some(data) = worklist.pop() {
        let (class, _) = blocks[&data];
        for w in data..data + class as u64 {
            let v = pool.raw_load(w);
            let p = PAddr(v);
            if p.pool() == pool.id() {
                if let Some(m) = marked.get_mut(&p.word()) {
                    if !*m {
                        *m = true;
                        worklist.push(p.word());
                    }
                }
            }
        }
    }

    // ---- sweep ----
    let mut free = vec![Vec::new(); NUM_CLASSES];
    let mut report = GcReport {
        blocks_scanned: order.len(),
        ..GcReport::default()
    };
    for &data in &order {
        let (class, tag) = blocks[&data];
        if marked[&data] {
            report.live_blocks += 1;
        } else {
            report.reclaimed_blocks += 1;
            report.reclaimed_words += class as u64;
            if tag == TAG_LIVE {
                report.leaked_blocks += 1;
            }
            free[class_index(class)].push(data);
        }
    }
    (Inner { bump, free }, report)
}

#[cfg(test)]
mod tests {
    use crate::heap::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig, PAddr};
    use std::sync::Arc;

    fn machine() -> Arc<Machine> {
        Machine::new(MachineConfig::functional(DurabilityDomain::Eadr))
    }

    /// Crash the machine and re-attach to the surviving heap.
    fn crash_and_attach(
        m: &Arc<Machine>,
        h: &Arc<PHeap>,
        seed: u64,
    ) -> (Arc<Machine>, Arc<PHeap>, super::GcReport) {
        let img = m.crash(seed);
        let m2 = Machine::reboot(&img, MachineConfig::functional(m.domain()));
        let pool = m2.pool(h.pool().id());
        let (h2, report) = PHeap::attach(pool).expect("attach");
        (m2, h2, report)
    }

    #[test]
    fn empty_heap_recovers_empty() {
        let m = machine();
        let h = PHeap::format(&m, "h", 4096, 4);
        let (_m2, h2, r) = crash_and_attach(&m, &h, 0);
        assert_eq!(r.blocks_scanned, 0);
        assert_eq!(h2.high_water_words(), 0);
    }

    #[test]
    fn rooted_chain_survives_and_leak_is_reclaimed() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        // Build root -> a -> b; leak c.
        let a = h.alloc(&mut s, 8);
        let b = h.alloc(&mut s, 8);
        let c = h.alloc(&mut s, 8);
        s.store(a.offset(0), b.0); // a points to b
        s.store(b.offset(0), 1234);
        s.store(c.offset(0), 5678); // never linked: leaks
        h.set_root(&mut s, 0, a);
        let (_m2, h2, r) = crash_and_attach(&m, &h, 7);
        assert_eq!(r.blocks_scanned, 3);
        assert_eq!(r.live_blocks, 2);
        assert_eq!(r.reclaimed_blocks, 1);
        assert_eq!(r.leaked_blocks, 1);
        // The survivors kept their contents and identity.
        let root = h2.root_raw(0);
        assert_eq!(root, a);
        assert_eq!(h2.pool().raw_load(root.word()), b.0);
        assert_eq!(
            h2.pool()
                .raw_load(PAddr(h2.pool().raw_load(root.word())).word()),
            1234
        );
        // The leak is reusable.
        let mut s2 = _m2.session(0);
        let d = h2.alloc(&mut s2, 8);
        assert_eq!(d, c, "leaked block must be recycled first");
    }

    #[test]
    fn freed_blocks_are_rebuilt_onto_free_lists() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 16);
        let b = h.alloc(&mut s, 16);
        h.set_root(&mut s, 0, b);
        h.free(&mut s, a);
        let (_m2, h2, r) = crash_and_attach(&m, &h, 1);
        assert_eq!(r.reclaimed_blocks, 1);
        assert_eq!(h2.free_blocks(), 1);
    }

    #[test]
    fn cyclic_structures_stay_live() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 4);
        let b = h.alloc(&mut s, 4);
        s.store(a.offset(0), b.0);
        s.store(b.offset(0), a.0); // cycle
        h.set_root(&mut s, 1, a);
        let (_m2, _h2, r) = crash_and_attach(&m, &h, 2);
        assert_eq!(r.live_blocks, 2);
        assert_eq!(r.reclaimed_blocks, 0);
    }

    #[test]
    fn null_and_foreign_roots_are_ignored() {
        let m = machine();
        let other = m.alloc_pool("other", 64, pmem_sim::MediaKind::Optane);
        let h = PHeap::format(&m, "h", 1 << 12, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 4);
        h.set_root(&mut s, 0, PAddr::NULL);
        h.set_root(&mut s, 1, other.addr(8)); // foreign pool
        h.set_root(&mut s, 2, PAddr::new(h.pool().id(), 999_999)); // junk
        let _ = a;
        let (_m2, _h2, r) = crash_and_attach(&m, &h, 3);
        assert_eq!(r.live_blocks, 0);
        assert_eq!(r.reclaimed_blocks, 1);
    }

    #[test]
    fn interior_pointers_do_not_mark() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 12, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        let b = h.alloc(&mut s, 8);
        // Root block holds a pointer *into the middle* of b: conservative
        // marking only honors exact data-start pointers.
        s.store(a.offset(0), b.offset(3).0);
        h.set_root(&mut s, 0, a);
        let (_m2, _h2, r) = crash_and_attach(&m, &h, 4);
        assert_eq!(r.live_blocks, 1);
        assert_eq!(r.reclaimed_blocks, 1);
    }

    #[test]
    fn bump_pointer_recovers_past_last_block() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        for _ in 0..10 {
            let x = h.alloc(&mut s, 8);
            let _ = x;
        }
        let hw = h.high_water_words();
        let (_m2, h2, _r) = crash_and_attach(&m, &h, 5);
        assert_eq!(h2.high_water_words(), hw);
    }

    #[test]
    fn adr_crash_leaked_unflushed_header_truncates_safely() {
        // Under ADR with an unflushed header, the scan may stop early; the
        // blocks beyond are by construction unreachable, so attach must
        // still succeed and the reachable prefix must be intact.
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        s.store(a.offset(0), 42);
        s.clwb(a.offset(0));
        s.sfence();
        h.set_root(&mut s, 0, a);
        for seed in 0..16 {
            let img = m.crash(seed);
            let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
            let (h2, _r) = PHeap::attach(m2.pool(h.pool().id())).expect("attach");
            let root = h2.root_raw(0);
            assert_eq!(root, a);
            assert_eq!(h2.pool().raw_load(root.word()), 42);
        }
    }
}
