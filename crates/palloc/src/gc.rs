//! Restart conservative mark-sweep (Makalu's recovery GC), parallel and
//! instrumented.
//!
//! After a crash, the volatile free lists are gone and some blocks may
//! have leaked (allocated but never linked before the failure). Recovery
//!
//! 1. **scans** the heap's block headers from `start` (headers are
//!    persisted before their block can be referenced, so a zero word
//!    terminates the allocated region);
//! 2. **marks** conservatively from the root table: any word inside a
//!    reachable block whose bit pattern equals the address of a block's
//!    first data word is treated as a pointer;
//! 3. **sweeps** every unmarked block onto the volatile free lists.
//!
//! Conservatism can only over-retain (an integer that happens to look
//! like a block address keeps that block alive) — never reclaim live
//! data.
//!
//! # Parallelism
//!
//! With `workers > 1` the two O(heap) phases split across OS threads:
//!
//! * **Scan** is parallel over address ranges with a speculative stitch.
//!   The header chain is a linked hop (each header's class word names the
//!   next header position), so a worker cannot know where the chain
//!   enters its range. Each worker instead scans *speculatively* from the
//!   first word in its range that decodes as a header; a serial stitch
//!   pass then adopts a range's chain wholesale iff its speculative
//!   origin equals the authoritative chain's entry point into that range
//!   (the common case — data words rarely fake-decode), and re-walks the
//!   range serially otherwise. Adoption is sound: the hop from a given
//!   position is a pure function of the pool image, so equal origins
//!   imply equal chains.
//! * **Mark** runs a shared-worklist traversal: block marks are
//!   `AtomicBool`s, so marking is idempotent and confluent — the marked
//!   set is the reachable set regardless of traversal order, which keeps
//!   the report and the rebuilt free lists deterministic.
//! * **Sweep** stays serial and in discovery (address) order: free lists
//!   are stacks, and allocation determinism after restart (tests pin
//!   "leaked block must be recycled first") requires a stable push order.
//!
//! GC writes nothing persistent — all three phases only rebuild volatile
//! state — so a parallel run is trivially crash-equivalent to a serial
//! one.
//!
//! # Corruption defense
//!
//! A corrupted header whose class word overruns the pool used to panic
//! the mark phase (out-of-bounds load); one that overruns into a
//! neighbouring block silently skewed the chain. The scan now detects
//! both: a block extent past the pool end, and a chain terminating on a
//! *nonzero* non-header word (header slots only ever hold zero or an
//! encoded header, so a nonzero terminator means the hop walked into
//! block data). Both increment [`GcReport::corrupt_headers`] and
//! quarantine the tail — the bump pointer is pinned to the pool end so
//! no future allocation can land on memory the chain no longer accounts
//! for (fail toward leak, never toward corruption).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use pmem_sim::{PAddr, PmemPool};

use crate::classes::{class_index, NUM_CLASSES};
use crate::heap::Inner;
use crate::layout::{decode_header, TAG_LIVE};

/// What recovery found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Blocks discovered in the header scan.
    pub blocks_scanned: usize,
    /// Blocks reachable from roots (kept allocated).
    pub live_blocks: usize,
    /// Blocks swept to the free lists.
    pub reclaimed_blocks: usize,
    /// Of the reclaimed, how many still carried a live tag — i.e. leaks
    /// (allocated but unreachable at crash time, or freed-tag lost).
    pub leaked_blocks: usize,
    /// Words reclaimed (data words, headers excluded).
    pub reclaimed_words: u64,
    /// Corrupted headers detected during the scan: a class word whose
    /// extent overruns the pool, or a chain terminating on a nonzero
    /// non-header word (overlap into block data). Nonzero means the
    /// unscanned tail was quarantined — see the module docs.
    pub corrupt_headers: usize,
    /// Wall-clock nanoseconds spent in the header scan.
    pub gc_scan_ns: u64,
    /// Wall-clock nanoseconds spent in the conservative mark.
    pub gc_mark_ns: u64,
    /// Wall-clock nanoseconds spent rebuilding the free lists.
    pub gc_sweep_ns: u64,
    /// Worker threads the phases ran on.
    pub gc_workers: usize,
}

impl GcReport {
    /// Fold another shard's (or phase's) report into this one. Counters
    /// add saturating (a merged report must never wrap into nonsense —
    /// mirror of the `delta_since` fix); wall-clock phase times take the
    /// max, since per-shard GCs run concurrently and the restart clock
    /// is the slowest shard; `gc_workers` takes the max.
    pub fn merge(&mut self, other: &GcReport) {
        self.blocks_scanned = self.blocks_scanned.saturating_add(other.blocks_scanned);
        self.live_blocks = self.live_blocks.saturating_add(other.live_blocks);
        self.reclaimed_blocks = self.reclaimed_blocks.saturating_add(other.reclaimed_blocks);
        self.leaked_blocks = self.leaked_blocks.saturating_add(other.leaked_blocks);
        self.reclaimed_words = self.reclaimed_words.saturating_add(other.reclaimed_words);
        self.corrupt_headers = self.corrupt_headers.saturating_add(other.corrupt_headers);
        self.gc_scan_ns = self.gc_scan_ns.max(other.gc_scan_ns);
        self.gc_mark_ns = self.gc_mark_ns.max(other.gc_mark_ns);
        self.gc_sweep_ns = self.gc_sweep_ns.max(other.gc_sweep_ns);
        self.gc_workers = self.gc_workers.max(other.gc_workers);
    }
}

/// One discovered block: data-start word, data words, header tag.
type Block = (u64, usize, u64);

/// How a hop over `[from, limit)` ended.
enum HopEnd {
    /// The chain crossed `limit`; the next header position is given.
    Crossed(u64),
    /// The chain terminated inside the range at the given header
    /// position; `corrupt` is set when the terminator was a nonzero
    /// non-header word or an extent overrun (see module docs).
    Terminated { at: u64, corrupt: bool },
}

/// Walk the header chain from `from` until it leaves `[from, limit)` or
/// terminates. Pure function of the pool image.
fn hop(pool: &PmemPool, from: u64, limit: u64, len: u64, out: &mut Vec<Block>) -> HopEnd {
    let mut cursor = from;
    while cursor < limit {
        let word = pool.raw_load(cursor);
        let Some((tag, class)) = decode_header(word) else {
            return HopEnd::Terminated {
                at: cursor,
                corrupt: word != 0,
            };
        };
        let data = cursor + 1;
        if data + class as u64 > len {
            return HopEnd::Terminated {
                at: cursor,
                corrupt: true,
            };
        }
        out.push((data, class, tag));
        cursor = data + class as u64;
    }
    HopEnd::Crossed(cursor)
}

/// One worker's speculative scan of `[lo, hi)`: the chain from the first
/// word in the range that decodes as an in-bounds header.
struct RangeScan {
    hi: u64,
    /// Speculative chain origin, `u64::MAX` when no word in the range
    /// decodes as a header.
    origin: u64,
    entries: Vec<Block>,
    end: Option<HopEnd>,
}

fn scan_range(pool: &PmemPool, lo: u64, hi: u64, len: u64) -> RangeScan {
    let mut origin = u64::MAX;
    for w in lo..hi {
        if let Some((_tag, class)) = decode_header(pool.raw_load(w)) {
            if w + 1 + class as u64 <= len {
                origin = w;
                break;
            }
        }
    }
    let mut entries = Vec::new();
    let end = (origin != u64::MAX).then(|| hop(pool, origin, hi, len, &mut entries));
    RangeScan {
        hi,
        origin,
        entries,
        end,
    }
}

/// Parallel header scan: speculative per-range hops stitched serially.
/// Returns the discovered blocks (address order), the recovered bump
/// pointer, and the corrupt-header count.
fn scan(pool: &PmemPool, start: u64, workers: usize) -> (Vec<Block>, u64, usize) {
    let len = pool.len_words() as u64;
    let span = len.saturating_sub(start);
    let ranges: Vec<RangeScan> = if workers <= 1 || span < 4096 {
        vec![scan_range(pool, start, len, len)]
    } else {
        let chunk = span.div_ceil(workers as u64);
        std::thread::scope(|s| {
            (0..workers as u64)
                .map(|w| {
                    let lo = start + w * chunk;
                    let hi = (lo + chunk).min(len);
                    s.spawn(move || scan_range(pool, lo, hi, len))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().expect("gc scan worker"))
                .collect()
        })
    };

    // Serial stitch: walk ranges left to right, adopting each range's
    // speculative chain when its origin equals the authoritative entry
    // point, re-walking the range otherwise.
    let mut blocks: Vec<Block> = Vec::new();
    let mut corrupt = 0usize;
    let mut auth = start;
    let mut ended = None;
    for r in &ranges {
        if ended.is_some() {
            break;
        }
        if auth >= r.hi {
            continue; // a block from an earlier range spans past this one
        }
        let rewalk;
        let end = if r.origin == auth {
            blocks.extend_from_slice(&r.entries);
            r.end.as_ref().expect("origin implies a hop end")
        } else {
            // Speculation missed (fake header before the true entry, or
            // no decodable word found): authoritative re-walk.
            rewalk = hop(pool, auth, r.hi, len, &mut blocks);
            &rewalk
        };
        match *end {
            HopEnd::Crossed(next) => auth = next,
            HopEnd::Terminated { at, corrupt: c } => {
                if c {
                    corrupt += 1;
                }
                ended = Some((at, c));
            }
        }
    }
    let bump = match ended {
        // Corruption: quarantine the tail (never re-allocate over words
        // the chain no longer accounts for).
        Some((_, true)) => len,
        Some((at, false)) => at,
        None => auth,
    };
    (blocks, bump, corrupt)
}

/// Shared-worklist state for the parallel mark.
struct MarkQueue {
    queue: Mutex<Vec<usize>>,
    cv: Condvar,
    /// Items queued or in flight; 0 means the traversal is complete.
    pending: AtomicUsize,
}

impl MarkQueue {
    fn push(&self, item: usize) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().unwrap().push(item);
        self.cv.notify_one();
    }

    /// Pop one item, or `None` once the traversal has drained.
    fn pop(&self) -> Option<usize> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(item) = q.pop() {
                return Some(item);
            }
            if self.pending.load(Ordering::SeqCst) == 0 {
                return None;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Mark one popped item fully processed (its children are pushed).
    fn done(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Traversal drained: wake every waiter so they can exit.
            let _q = self.queue.lock().unwrap();
            self.cv.notify_all();
        }
    }
}

/// Scan one block's words for pointers into other blocks, marking and
/// enqueueing newly reached ones.
fn mark_block(
    pool: &PmemPool,
    blocks: &[Block],
    marked: &[AtomicBool],
    idx: usize,
    enqueue: &mut impl FnMut(usize),
) {
    let (data, class, _) = blocks[idx];
    for w in data..data + class as u64 {
        let p = PAddr(pool.raw_load(w));
        if p.pool() != pool.id() {
            continue;
        }
        if let Ok(i) = blocks.binary_search_by_key(&p.word(), |b| b.0) {
            if !marked[i].swap(true, Ordering::Relaxed) {
                enqueue(i);
            }
        }
    }
}

/// Conservative mark from the root table. Returns the per-block mark
/// bits, index-aligned with `blocks`.
fn mark(pool: &PmemPool, blocks: &[Block], roots: usize, workers: usize) -> Vec<AtomicBool> {
    let marked: Vec<AtomicBool> = (0..blocks.len()).map(|_| AtomicBool::new(false)).collect();
    let mut seeds = Vec::new();
    for slot in 0..roots {
        let p = PAddr(pool.raw_load(crate::layout::OFF_ROOTS + slot as u64));
        if p.pool() != pool.id() {
            continue;
        }
        if let Ok(i) = blocks.binary_search_by_key(&p.word(), |b| b.0) {
            if !marked[i].swap(true, Ordering::Relaxed) {
                seeds.push(i);
            }
        }
    }
    // Thread spawns only pay off past a few cache lines of blocks; the
    // serial fallback is observationally identical (marking is
    // confluent), so callers may pass any worker count unconditionally.
    if workers <= 1 || blocks.len() < 64 {
        let mut worklist = seeds;
        while let Some(i) = worklist.pop() {
            mark_block(pool, blocks, &marked, i, &mut |j| worklist.push(j));
        }
    } else {
        let mq = MarkQueue {
            queue: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            pending: AtomicUsize::new(0),
        };
        for i in seeds {
            mq.push(i);
        }
        std::thread::scope(|s| {
            for _ in 0..workers {
                let mq = &mq;
                let marked = &marked;
                s.spawn(move || {
                    while let Some(i) = mq.pop() {
                        mark_block(pool, blocks, marked, i, &mut |j| mq.push(j));
                        mq.done();
                    }
                });
            }
        });
    }
    marked
}

/// Scan + mark + sweep with an explicit worker-thread count for the scan
/// and mark phases (sweep stays serial for free-list order determinism);
/// returns the rebuilt volatile state and a report.
pub(crate) fn recover_with(
    pool: &PmemPool,
    start: u64,
    roots: usize,
    workers: usize,
) -> (Inner, GcReport) {
    let workers = workers.max(1);
    let t0 = Instant::now();
    let (blocks, bump, corrupt_headers) = scan(pool, start, workers);
    let gc_scan_ns = t0.elapsed().as_nanos() as u64;

    let t1 = Instant::now();
    let marked = mark(pool, &blocks, roots, workers);
    let gc_mark_ns = t1.elapsed().as_nanos() as u64;

    // Sweep: serial, in address order — free lists are stacks, and
    // restart allocation determinism depends on a stable push order.
    let t2 = Instant::now();
    let mut free = vec![Vec::new(); NUM_CLASSES];
    let mut report = GcReport {
        blocks_scanned: blocks.len(),
        corrupt_headers,
        gc_scan_ns,
        gc_mark_ns,
        gc_workers: workers,
        ..GcReport::default()
    };
    for (i, &(data, class, tag)) in blocks.iter().enumerate() {
        if marked[i].load(Ordering::Relaxed) {
            report.live_blocks += 1;
        } else {
            report.reclaimed_blocks += 1;
            report.reclaimed_words += class as u64;
            if tag == TAG_LIVE {
                report.leaked_blocks += 1;
            }
            free[class_index(class)].push(data);
        }
    }
    report.gc_sweep_ns = t2.elapsed().as_nanos() as u64;
    (Inner { bump, free }, report)
}

#[cfg(test)]
mod tests {
    use crate::heap::PHeap;
    use crate::layout::{encode_header, TAG_LIVE};
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig, PAddr};
    use std::sync::Arc;

    fn machine() -> Arc<Machine> {
        Machine::new(MachineConfig::functional(DurabilityDomain::Eadr))
    }

    /// Crash the machine and re-attach to the surviving heap.
    fn crash_and_attach(
        m: &Arc<Machine>,
        h: &Arc<PHeap>,
        seed: u64,
    ) -> (Arc<Machine>, Arc<PHeap>, super::GcReport) {
        let img = m.crash(seed);
        let m2 = Machine::reboot(&img, MachineConfig::functional(m.domain()));
        let pool = m2.pool(h.pool().id());
        let (h2, report) = PHeap::attach(pool).expect("attach");
        (m2, h2, report)
    }

    #[test]
    fn empty_heap_recovers_empty() {
        let m = machine();
        let h = PHeap::format(&m, "h", 4096, 4);
        let (_m2, h2, r) = crash_and_attach(&m, &h, 0);
        assert_eq!(r.blocks_scanned, 0);
        assert_eq!(h2.high_water_words(), 0);
    }

    #[test]
    fn rooted_chain_survives_and_leak_is_reclaimed() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        // Build root -> a -> b; leak c.
        let a = h.alloc(&mut s, 8);
        let b = h.alloc(&mut s, 8);
        let c = h.alloc(&mut s, 8);
        s.store(a.offset(0), b.0); // a points to b
        s.store(b.offset(0), 1234);
        s.store(c.offset(0), 5678); // never linked: leaks
        h.set_root(&mut s, 0, a);
        let (_m2, h2, r) = crash_and_attach(&m, &h, 7);
        assert_eq!(r.blocks_scanned, 3);
        assert_eq!(r.live_blocks, 2);
        assert_eq!(r.reclaimed_blocks, 1);
        assert_eq!(r.leaked_blocks, 1);
        assert_eq!(r.corrupt_headers, 0);
        // The survivors kept their contents and identity.
        let root = h2.root_raw(0);
        assert_eq!(root, a);
        assert_eq!(h2.pool().raw_load(root.word()), b.0);
        assert_eq!(
            h2.pool()
                .raw_load(PAddr(h2.pool().raw_load(root.word())).word()),
            1234
        );
        // The leak is reusable.
        let mut s2 = _m2.session(0);
        let d = h2.alloc(&mut s2, 8);
        assert_eq!(d, c, "leaked block must be recycled first");
    }

    #[test]
    fn freed_blocks_are_rebuilt_onto_free_lists() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 16);
        let b = h.alloc(&mut s, 16);
        h.set_root(&mut s, 0, b);
        h.free(&mut s, a);
        let (_m2, h2, r) = crash_and_attach(&m, &h, 1);
        assert_eq!(r.reclaimed_blocks, 1);
        assert_eq!(h2.free_blocks(), 1);
    }

    #[test]
    fn cyclic_structures_stay_live() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 4);
        let b = h.alloc(&mut s, 4);
        s.store(a.offset(0), b.0);
        s.store(b.offset(0), a.0); // cycle
        h.set_root(&mut s, 1, a);
        let (_m2, _h2, r) = crash_and_attach(&m, &h, 2);
        assert_eq!(r.live_blocks, 2);
        assert_eq!(r.reclaimed_blocks, 0);
    }

    #[test]
    fn null_and_foreign_roots_are_ignored() {
        let m = machine();
        let other = m.alloc_pool("other", 64, pmem_sim::MediaKind::Optane);
        let h = PHeap::format(&m, "h", 1 << 12, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 4);
        h.set_root(&mut s, 0, PAddr::NULL);
        h.set_root(&mut s, 1, other.addr(8)); // foreign pool
        h.set_root(&mut s, 2, PAddr::new(h.pool().id(), 999_999)); // junk
        let _ = a;
        let (_m2, _h2, r) = crash_and_attach(&m, &h, 3);
        assert_eq!(r.live_blocks, 0);
        assert_eq!(r.reclaimed_blocks, 1);
    }

    #[test]
    fn interior_pointers_do_not_mark() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 12, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        let b = h.alloc(&mut s, 8);
        // Root block holds a pointer *into the middle* of b: conservative
        // marking only honors exact data-start pointers.
        s.store(a.offset(0), b.offset(3).0);
        h.set_root(&mut s, 0, a);
        let (_m2, _h2, r) = crash_and_attach(&m, &h, 4);
        assert_eq!(r.live_blocks, 1);
        assert_eq!(r.reclaimed_blocks, 1);
    }

    #[test]
    fn bump_pointer_recovers_past_last_block() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        for _ in 0..10 {
            let x = h.alloc(&mut s, 8);
            let _ = x;
        }
        let hw = h.high_water_words();
        let (_m2, h2, _r) = crash_and_attach(&m, &h, 5);
        assert_eq!(h2.high_water_words(), hw);
    }

    #[test]
    fn adr_crash_leaked_unflushed_header_truncates_safely() {
        // Under ADR with an unflushed header, the scan may stop early; the
        // blocks beyond are by construction unreachable, so attach must
        // still succeed and the reachable prefix must be intact.
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        s.store(a.offset(0), 42);
        s.clwb(a.offset(0));
        s.sfence();
        h.set_root(&mut s, 0, a);
        for seed in 0..16 {
            let img = m.crash(seed);
            let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
            let (h2, r) = PHeap::attach(m2.pool(h.pool().id())).expect("attach");
            let root = h2.root_raw(0);
            assert_eq!(root, a);
            assert_eq!(h2.pool().raw_load(root.word()), 42);
            assert_eq!(r.corrupt_headers, 0, "truncation is not corruption");
        }
    }

    /// Build a heap whose live graph is a wide rooted tree plus leaks,
    /// and return (machine, heap, expected live, expected reclaimed).
    fn populated_heap(blocks: usize) -> (Arc<Machine>, Arc<PHeap>) {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 18, 8);
        let mut s = m.session(0);
        let spine = h.alloc(&mut s, blocks);
        for i in 0..blocks {
            let leaf = h.alloc(&mut s, 1 + i % 17);
            s.store(leaf.offset(0), (i as u64) << 16);
            if i % 3 != 0 {
                s.store(spine.offset(i as u64), leaf.0); // live
            } // else: leaked
        }
        h.set_root(&mut s, 0, spine);
        (m, h)
    }

    /// Parallel GC must produce exactly the serial result: same report
    /// counts, same bump, same per-class free lists in the same order.
    #[test]
    fn parallel_gc_equals_serial() {
        let (m, h) = populated_heap(200);
        let img = m.crash(9);
        let m2 = Machine::reboot(&img, MachineConfig::functional(m.domain()));
        let pool = m2.pool(h.pool().id());
        let start = h.start();
        let (serial, rs) = super::recover_with(&pool, start, 8, 1);
        for workers in [2, 4, 8] {
            let (par, rp) = super::recover_with(&pool, start, 8, workers);
            assert_eq!(par.bump, serial.bump, "workers={workers}");
            assert_eq!(par.free, serial.free, "workers={workers}");
            assert_eq!(rp.blocks_scanned, rs.blocks_scanned, "workers={workers}");
            assert_eq!(rp.live_blocks, rs.live_blocks, "workers={workers}");
            assert_eq!(rp.reclaimed_blocks, rs.reclaimed_blocks);
            assert_eq!(rp.leaked_blocks, rs.leaked_blocks);
            assert_eq!(rp.reclaimed_words, rs.reclaimed_words);
            assert_eq!(rp.corrupt_headers, 0);
            assert_eq!(rp.gc_workers, workers);
        }
    }

    /// A class word smashed to overrun the pool end must be detected and
    /// quarantined, not panic the mark phase.
    #[test]
    fn overrunning_header_is_detected_not_panicking() {
        let (m, h) = populated_heap(20);
        let mut s = m.session(0);
        let victim = h.alloc(&mut s, 8);
        // Class claims more words than the pool holds.
        h.pool().raw_store(
            victim.word() - 1,
            encode_header(TAG_LIVE, h.pool().len_words()),
        );
        h.pool()
            .persist_line_now((victim.word() - 1) / pmem_sim::WORDS_PER_LINE as u64);
        let img = m.crash(1);
        let m2 = Machine::reboot(&img, MachineConfig::functional(m.domain()));
        let (h2, r) = PHeap::attach(m2.pool(h.pool().id())).expect("attach must fail soft");
        assert_eq!(r.corrupt_headers, 1);
        // Quarantine: the tail is never handed out again.
        assert_eq!(
            h2.high_water_words(),
            h2.pool().len_words() as u64 - h2.start()
        );
    }

    /// A class word smashed to overrun *into the next block* lands the
    /// chain on nonzero block data: detected as corruption (the old code
    /// silently skipped the remaining blocks).
    #[test]
    fn overlapping_header_is_detected() {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 14, 4);
        let mut s = m.session(0);
        let a = h.alloc(&mut s, 8);
        let b = h.alloc(&mut s, 8);
        for i in 0..8 {
            // Nonzero non-header data everywhere the skewed chain can
            // land (0xEF is not a valid header tag).
            s.store(b.offset(i), 0xDEAD_BEEF);
        }
        h.set_root(&mut s, 0, b);
        // a's class now claims 3 extra words: the hop from a's header
        // lands inside b's data.
        h.pool()
            .raw_store(a.word() - 1, encode_header(TAG_LIVE, 8 + 3));
        h.pool()
            .persist_line_now((a.word() - 1) / pmem_sim::WORDS_PER_LINE as u64);
        let img = m.crash(2);
        let m2 = Machine::reboot(&img, MachineConfig::functional(m.domain()));
        let (_h2, r) = PHeap::attach(m2.pool(h.pool().id())).expect("attach must fail soft");
        assert_eq!(r.corrupt_headers, 1, "skewed chain must be flagged");
    }
}
