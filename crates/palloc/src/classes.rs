//! Allocation size classes.
//!
//! Requests are rounded up to a class so freed blocks are reusable by
//! later allocations of similar size: multiples of 4 words up to 64, then
//! powers of two up to 4 Mi words (32 MiB). This mirrors the shape of
//! Makalu's segregated fits without reproducing its page internals.

/// Number of distinct size classes.
pub const NUM_CLASSES: usize = 16 + 16;

/// Round a request of `words` data words up to its class size.
///
/// # Panics
/// Panics on zero-size or oversized (> 4 Mi words) requests.
#[inline]
pub fn class_words(words: usize) -> usize {
    assert!(words > 0, "zero-size allocation");
    if words <= 64 {
        words.div_ceil(4) * 4
    } else {
        let c = words.next_power_of_two();
        assert!(c <= 1 << 22, "allocation of {words} words exceeds 32 MiB");
        c
    }
}

/// Map a class size (as returned by [`class_words`]) to its index.
#[inline]
pub fn class_index(class: usize) -> usize {
    if class <= 64 {
        class / 4 - 1
    } else {
        // 128 -> 16, 256 -> 17, ..., 2^22 -> 31
        16 + (class.trailing_zeros() as usize - 7)
    }
}

/// Inverse of [`class_index`] (for tests and introspection).
#[inline]
pub fn index_class(index: usize) -> usize {
    if index < 16 {
        (index + 1) * 4
    } else {
        1 << (index - 16 + 7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sizes_round_to_multiples_of_four() {
        assert_eq!(class_words(1), 4);
        assert_eq!(class_words(4), 4);
        assert_eq!(class_words(5), 8);
        assert_eq!(class_words(63), 64);
        assert_eq!(class_words(64), 64);
    }

    #[test]
    fn large_sizes_round_to_powers_of_two() {
        assert_eq!(class_words(65), 128);
        assert_eq!(class_words(128), 128);
        assert_eq!(class_words(129), 256);
        assert_eq!(class_words(1 << 22), 1 << 22);
    }

    #[test]
    #[should_panic(expected = "exceeds 32 MiB")]
    fn oversized_panics() {
        class_words((1 << 22) + 1);
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_panics() {
        class_words(0);
    }

    #[test]
    fn index_is_a_bijection_over_classes() {
        let mut seen = std::collections::HashSet::new();
        for idx in 0..NUM_CLASSES {
            let class = index_class(idx);
            assert_eq!(class_index(class), idx);
            assert_eq!(class_words(class), class, "class sizes are fixpoints");
            assert!(seen.insert(class));
        }
    }

    #[test]
    fn every_request_maps_into_range() {
        for words in 1..=200usize {
            let c = class_words(words);
            assert!(c >= words);
            assert!(class_index(c) < NUM_CLASSES);
        }
    }
}
