//! # palloc — a Makalu-style persistent allocator
//!
//! The paper's experiments manage the persistent heap with the Makalu
//! allocator (Bhandari et al., OOPSLA 2016). Makalu's defining property is
//! *crash-robust allocation without per-allocation logging*: allocation
//! metadata (free lists) is volatile, and after a failure a conservative
//! mark-sweep garbage collection from a persistent **root table** rebuilds
//! it, reclaiming every block that leaked when the crash struck between an
//! allocation and the store that would have linked it into a structure.
//!
//! This crate reproduces that design on top of [`pmem_sim`]:
//!
//! * each heap lives in one Optane-backed pool with a persistent header
//!   and root table ([`layout`]);
//! * blocks carry a persistent one-word header (tag + size class) written
//!   and flushed **before** the block becomes reachable ([`heap`]);
//! * free lists are volatile size-class stacks ([`classes`], [`heap`]);
//! * [`PHeap::attach`] recovers a heap after a crash: it scans the block
//!   headers, conservatively marks everything reachable from the roots,
//!   and sweeps the rest back onto the free lists ([`gc`]).

pub mod classes;
pub mod gc;
pub mod heap;
pub mod layout;

pub use gc::GcReport;
pub use heap::{AttachError, HeapStats, OnlineGc, PHeap};
