//! Property-based tests of the persistent allocator.

use palloc::classes::{class_index, class_words, index_class, NUM_CLASSES};
use palloc::PHeap;
use pmem_sim::{DurabilityDomain, Machine, MachineConfig, PAddr};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn machine() -> Arc<Machine> {
    Machine::new(MachineConfig::functional(DurabilityDomain::Eadr))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Size classes: monotone covers, fixpoints, index bijection.
    #[test]
    fn classes_are_well_formed(words in 1usize..5_000) {
        let c = class_words(words);
        prop_assert!(c >= words);
        prop_assert_eq!(class_words(c), c);
        let idx = class_index(c);
        prop_assert!(idx < NUM_CLASSES);
        prop_assert_eq!(index_class(idx), c);
    }

    /// Random alloc/free interleavings: live blocks never overlap, frees
    /// are reusable, and block_words reports the class.
    #[test]
    fn alloc_free_no_overlap(ops in prop::collection::vec((0u8..3, 1usize..200), 1..120)) {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 18, 4);
        let mut s = m.session(0);
        let mut live: Vec<(PAddr, usize)> = Vec::new();
        for &(op, words) in &ops {
            match op {
                0 | 1 => {
                    let a = h.alloc(&mut s, words);
                    let cls = h.block_words(a);
                    prop_assert!(cls >= words);
                    // No overlap with any live block (incl. headers).
                    let lo = a.word() - 1;
                    let hi = a.word() + cls as u64;
                    for &(b, bcls) in &live {
                        let blo = b.word() - 1;
                        let bhi = b.word() + bcls as u64;
                        prop_assert!(hi <= blo || bhi <= lo,
                            "overlap: [{},{}) vs [{},{})", lo, hi, blo, bhi);
                    }
                    live.push((a, cls));
                }
                _ => {
                    if let Some((a, _)) = live.pop() {
                        h.free(&mut s, a);
                    }
                }
            }
        }
    }

    /// Crash + attach preserves every rooted chain and reclaims
    /// everything else; the allocator keeps working afterwards.
    #[test]
    fn gc_preserves_rooted_chains(
        chain_lens in prop::collection::vec(1usize..8, 1..4),
        leaks in 0usize..6,
        seed in any::<u64>(),
    ) {
        let m = machine();
        let h = PHeap::format(&m, "h", 1 << 16, 8);
        let mut s = m.session(0);
        // Build one linked chain per root; node payload word 1 = id.
        let mut expected: HashMap<usize, Vec<u64>> = HashMap::new();
        for (slot, &len) in chain_lens.iter().enumerate() {
            let mut head = PAddr::NULL;
            let mut ids = Vec::new();
            for i in 0..len {
                let n = h.alloc(&mut s, 2);
                let id = (slot * 100 + i) as u64;
                s.store(n.offset(0), head.0);
                s.store(n.offset(1), id);
                head = n;
                ids.push(id);
            }
            h.set_root(&mut s, slot, head);
            expected.insert(slot, ids);
        }
        for _ in 0..leaks {
            let _ = h.alloc(&mut s, 3);
        }
        let total_blocks: usize = chain_lens.iter().sum::<usize>() + leaks;
        let img = m.crash(seed);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Eadr));
        let (h2, gc) = PHeap::attach(m2.pool(h.pool().id())).unwrap();
        prop_assert_eq!(gc.blocks_scanned, total_blocks);
        prop_assert_eq!(gc.reclaimed_blocks, leaks);
        // Walk each chain; ids must come back in reverse insertion order.
        for (slot, ids) in &expected {
            let mut cur = h2.root_raw(*slot);
            let mut got = Vec::new();
            while !cur.is_null() {
                got.push(h2.pool().raw_load(cur.word() + 1));
                cur = PAddr(h2.pool().raw_load(cur.word()));
            }
            let mut want = ids.clone();
            want.reverse();
            prop_assert_eq!(got, want);
        }
        // Allocator still functional.
        let mut s2 = m2.session(0);
        let fresh = h2.alloc(&mut s2, 5);
        prop_assert!(fresh.word() > 0);
    }
}
