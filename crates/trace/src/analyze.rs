//! Trace analysis: re-derive aggregate totals from the raw event stream
//! and cross-check them against the live counters, attribute aborts to
//! contended orecs, reconstruct the WPQ occupancy timeline with stall
//! intervals, and count flushes per fence window.
//!
//! Everything here consumes the *merged* timeline (or per-thread traces
//! where ordering within a thread matters) and is pure data-in/data-out —
//! rendering lives in the `trace_analyze` binary.

use crate::export::ExpectedTotals;
use crate::{AbortCause, EventKind, HtmAbortCause, MergedEvent, ThreadTrace};

/// Aggregate totals independently re-derived from trace events alone.
///
/// When no events were dropped, each field must equal the corresponding
/// live counter (`ptm::PtmStats` / `pmem_sim::MachineStats`) — see
/// [`crosscheck`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTotals {
    pub commits: u64,
    pub aborts: u64,
    pub aborts_by_cause: [u64; AbortCause::COUNT],
    pub htm_commits: u64,
    /// Hardware commits that went through the `HtmLogged` aliased
    /// back-end-logging path (`TxCommit` with `b == 2`; also counted in
    /// `htm_commits`).
    pub htm_logged_commits: u64,
    /// Commits issued through the cross-shard handle (`TxCommit` with
    /// `b == 3`; also counted in `commits`). Single-shard fast-path
    /// commits and 2PC commits alike — the 2PC subset is the engine's
    /// `coordinator_commits` counter.
    pub twopc_commits: u64,
    pub htm_aborts: u64,
    pub htm_aborts_by_cause: [u64; HtmAbortCause::COUNT],
    pub htm_fallbacks: u64,
    pub clwbs: u64,
    pub clwb_writebacks: u64,
    pub clwb_batches: u64,
    pub sfences: u64,
    pub fence_wait_ns: u64,
    pub wpq_stall_ns: u64,
    /// Group-commit fence joins (each elides one `sfence`).
    pub fence_joins: u64,
    /// Virtual ns join sites waited for their covering fence. Derived
    /// only — joins charge no machine counter (the wait belongs to the
    /// covering fence's timeline), so this has no cross-check partner.
    pub join_wait_ns: u64,
}

impl TraceTotals {
    /// Derive totals from a merged timeline.
    pub fn from_events(events: &[MergedEvent]) -> TraceTotals {
        let mut t = TraceTotals::default();
        for ev in events {
            match ev.kind {
                EventKind::TxCommit => {
                    t.commits += 1;
                    if ev.b == 1 || ev.b == 2 {
                        t.htm_commits += 1;
                    }
                    if ev.b == 2 {
                        t.htm_logged_commits += 1;
                    }
                    if ev.b == 3 {
                        t.twopc_commits += 1;
                    }
                }
                EventKind::TxAbort => {
                    t.aborts += 1;
                    if let Some(c) = AbortCause::from_code(ev.a) {
                        t.aborts_by_cause[c as usize] += 1;
                    }
                }
                EventKind::HtmAbort => {
                    t.htm_aborts += 1;
                    if let Some(c) = HtmAbortCause::from_code(ev.a) {
                        t.htm_aborts_by_cause[c as usize] += 1;
                    }
                }
                EventKind::HtmFallback => t.htm_fallbacks += 1,
                EventKind::Clwb => {
                    t.clwbs += 1;
                    if ev.b == 1 {
                        t.clwb_writebacks += 1;
                    }
                }
                EventKind::ClwbBatch => t.clwb_batches += 1,
                EventKind::Sfence => {
                    t.sfences += 1;
                    t.fence_wait_ns += ev.a;
                }
                EventKind::WpqStall => t.wpq_stall_ns += ev.a,
                EventKind::FenceJoin => {
                    t.fence_joins += 1;
                    t.join_wait_ns += ev.a;
                }
                _ => {}
            }
        }
        t
    }

    fn cause(&self, c: AbortCause) -> u64 {
        self.aborts_by_cause[c as usize]
    }

    fn htm_cause(&self, c: HtmAbortCause) -> u64 {
        self.htm_aborts_by_cause[c as usize]
    }
}

/// Compare trace-derived totals against the live counters.
///
/// Returns one human-readable line per divergent field; empty means the
/// trace and the counters agree exactly. With `dropped_events > 0` the
/// trace is lossy and equality cannot be expected — callers should report
/// the loss instead of treating divergence as an error.
pub fn crosscheck(derived: &TraceTotals, expected: &ExpectedTotals) -> Vec<String> {
    let pairs = [
        ("commits", derived.commits, expected.commits),
        ("aborts", derived.aborts, expected.aborts),
        (
            "aborts_read_locked",
            derived.cause(AbortCause::ReadLocked),
            expected.aborts_read_locked,
        ),
        (
            "aborts_read_version",
            derived.cause(AbortCause::ReadVersion),
            expected.aborts_read_version,
        ),
        (
            "aborts_acquire",
            derived.cause(AbortCause::Acquire),
            expected.aborts_acquire,
        ),
        (
            "aborts_validation",
            derived.cause(AbortCause::Validation),
            expected.aborts_validation,
        ),
        ("htm_commits", derived.htm_commits, expected.htm_commits),
        (
            "htm_logged_commits",
            derived.htm_logged_commits,
            expected.htm_logged_commits,
        ),
        ("htm_aborts", derived.htm_aborts, expected.htm_aborts),
        (
            "htm_capacity_aborts",
            derived.htm_cause(HtmAbortCause::Capacity),
            expected.htm_capacity_aborts,
        ),
        (
            "htm_conflict_aborts",
            derived.htm_cause(HtmAbortCause::Conflict),
            expected.htm_conflict_aborts,
        ),
        (
            "htm_explicit_aborts",
            derived.htm_cause(HtmAbortCause::Explicit),
            expected.htm_explicit_aborts,
        ),
        (
            "htm_fallbacks",
            derived.htm_fallbacks,
            expected.htm_fallbacks,
        ),
        ("clwbs", derived.clwbs, expected.clwbs),
        (
            "clwb_writebacks",
            derived.clwb_writebacks,
            expected.clwb_writebacks,
        ),
        ("clwb_batches", derived.clwb_batches, expected.clwb_batches),
        ("sfences", derived.sfences, expected.sfences),
        (
            "fence_wait_ns",
            derived.fence_wait_ns,
            expected.fence_wait_ns,
        ),
        ("wpq_stall_ns", derived.wpq_stall_ns, expected.wpq_stall_ns),
        ("fence_joins", derived.fence_joins, expected.fence_joins),
    ];
    pairs
        .iter()
        .filter(|(_, d, e)| d != e)
        .map(|(name, d, e)| format!("{name}: trace-derived {d} != counter {e}"))
        .collect()
}

/// Abort attribution for one orec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrecAborts {
    pub orec: u64,
    pub total: u64,
    pub by_cause: [u64; AbortCause::COUNT],
}

/// Top-N contended orecs by abort count, with per-cause breakdown.
///
/// Only orec-attributable aborts participate (cause != `User`; user
/// aborts carry no contended orec). Sorted by total descending, orec id
/// ascending on ties — deterministic.
pub fn abort_heatmap(events: &[MergedEvent], top_n: usize) -> Vec<OrecAborts> {
    let mut map: std::collections::BTreeMap<u64, OrecAborts> = std::collections::BTreeMap::new();
    for ev in events {
        if ev.kind != EventKind::TxAbort {
            continue;
        }
        let Some(cause) = AbortCause::from_code(ev.a) else {
            continue;
        };
        if cause == AbortCause::User {
            continue;
        }
        let e = map.entry(ev.b).or_insert(OrecAborts {
            orec: ev.b,
            ..OrecAborts::default()
        });
        e.total += 1;
        e.by_cause[cause as usize] += 1;
    }
    let mut v: Vec<OrecAborts> = map.into_values().collect();
    v.sort_by_key(|o| (std::cmp::Reverse(o.total), o.orec));
    v.truncate(top_n);
    v
}

/// One WPQ backlog observation (an acceptance or a stall records the
/// accepting bank's backlog in virtual ns — an occupancy proxy: backlog
/// divided by the per-line write service time is queued lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySample {
    pub ts: u64,
    pub backlog_ns: u64,
    /// True when this observation exceeded the backlog bound and stalled
    /// the issuing thread.
    pub stalled: bool,
}

/// A maximal interval of virtual time during which at least one thread
/// was stalled on the WPQ backlog bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallInterval {
    pub start: u64,
    pub end: u64,
    /// Stall events merged into this interval.
    pub events: u64,
    /// Summed per-thread stall ns in this interval (≥ end-start when
    /// stalls overlap across threads).
    pub stall_ns: u64,
}

/// The reconstructed WPQ view: every backlog observation in timeline
/// order plus merged stall intervals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WpqTimeline {
    pub samples: Vec<OccupancySample>,
    pub stalls: Vec<StallInterval>,
    pub max_backlog_ns: u64,
    pub total_stall_ns: u64,
}

/// Reconstruct the WPQ occupancy timeline from `WpqAccept`/`WpqStall`
/// events. Stall events span `[ts, ts + a]`; overlapping or abutting
/// spans are merged into maximal [`StallInterval`]s.
pub fn wpq_timeline(events: &[MergedEvent]) -> WpqTimeline {
    let mut t = WpqTimeline::default();
    let mut spans: Vec<(u64, u64, u64)> = Vec::new(); // (start, end, stall_ns)
    for ev in events {
        match ev.kind {
            EventKind::WpqAccept => {
                t.samples.push(OccupancySample {
                    ts: ev.ts,
                    backlog_ns: ev.a,
                    stalled: false,
                });
                t.max_backlog_ns = t.max_backlog_ns.max(ev.a);
            }
            EventKind::WpqStall => {
                t.samples.push(OccupancySample {
                    ts: ev.ts,
                    backlog_ns: ev.b,
                    stalled: true,
                });
                t.max_backlog_ns = t.max_backlog_ns.max(ev.b);
                t.total_stall_ns += ev.a;
                spans.push((ev.ts, ev.ts + ev.a, ev.a));
            }
            _ => {}
        }
    }
    spans.sort_unstable();
    for (start, end, ns) in spans {
        match t.stalls.last_mut() {
            Some(last) if start <= last.end => {
                last.end = last.end.max(end);
                last.events += 1;
                last.stall_ns += ns;
            }
            _ => t.stalls.push(StallInterval {
                start,
                end,
                events: 1,
                stall_ns: ns,
            }),
        }
    }
    t
}

/// Flush activity between two successive fences on one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FenceWindow {
    pub tid: u32,
    /// Timestamp of the previous fence (or the thread's first event).
    pub start: u64,
    /// Timestamp of the fence closing this window.
    pub end: u64,
    /// `clwb` events issued inside the window.
    pub clwbs: u64,
    /// Virtual ns the closing fence waited for WPQ acceptance.
    pub wait_ns: u64,
}

/// Per-fence-window flush counts, per thread (ordering within a thread is
/// what defines a window, so this consumes per-thread traces rather than
/// the merged timeline). Trailing flushes not yet closed by a fence are
/// not reported.
pub fn fence_windows(threads: &[ThreadTrace]) -> Vec<FenceWindow> {
    let mut out = Vec::new();
    for t in threads {
        let mut window_start = t.events.first().map_or(0, |e| e.ts);
        let mut clwbs = 0u64;
        for ev in &t.events {
            match ev.kind {
                EventKind::Clwb => clwbs += 1,
                EventKind::Sfence => {
                    out.push(FenceWindow {
                        tid: t.tid,
                        start: window_start,
                        end: ev.ts,
                        clwbs,
                        wait_ns: ev.a,
                    });
                    window_start = ev.ts;
                    clwbs = 0;
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{merge_threads, TraceRing};

    fn mk(tid: u32, evs: &[(u64, EventKind, u64, u64)]) -> ThreadTrace {
        let mut r = TraceRing::new(evs.len().max(1));
        for &(ts, k, a, b) in evs {
            r.record(ts, k, a, b);
        }
        ThreadTrace {
            tid,
            events: r.ordered(),
            dropped: r.dropped(),
        }
    }

    #[test]
    fn totals_match_hand_count_and_crosscheck_is_exact() {
        let threads = vec![mk(
            0,
            &[
                (10, EventKind::TxBegin, 0, 0),
                (20, EventKind::Clwb, 5, 1),
                (25, EventKind::Clwb, 6, 0),
                (30, EventKind::Sfence, 40, 0),
                (80, EventKind::TxCommit, 2, 0),
                (90, EventKind::TxBegin, 0, 0),
                (95, EventKind::TxAbort, AbortCause::Acquire as u64, 7),
                (99, EventKind::WpqStall, 100, 9000),
            ],
        )];
        let m = merge_threads(&threads);
        let t = TraceTotals::from_events(&m);
        assert_eq!(t.commits, 1);
        assert_eq!(t.aborts, 1);
        assert_eq!(t.cause(AbortCause::Acquire), 1);
        assert_eq!(t.clwbs, 2);
        assert_eq!(t.clwb_writebacks, 1);
        assert_eq!(t.sfences, 1);
        assert_eq!(t.fence_wait_ns, 40);
        assert_eq!(t.wpq_stall_ns, 100);
        let expected = ExpectedTotals {
            commits: 1,
            aborts: 1,
            aborts_acquire: 1,
            clwbs: 2,
            clwb_writebacks: 1,
            sfences: 1,
            fence_wait_ns: 40,
            wpq_stall_ns: 100,
            ..ExpectedTotals::default()
        };
        assert!(crosscheck(&t, &expected).is_empty());
        let divergent = ExpectedTotals {
            commits: 2,
            ..expected
        };
        let d = crosscheck(&t, &divergent);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("commits"));
    }

    #[test]
    fn heatmap_ranks_orecs_and_breaks_down_causes() {
        let acq = AbortCause::Acquire as u64;
        let val = AbortCause::Validation as u64;
        let user = AbortCause::User as u64;
        let threads = vec![mk(
            0,
            &[
                (1, EventKind::TxAbort, acq, 9),
                (2, EventKind::TxAbort, val, 9),
                (3, EventKind::TxAbort, acq, 9),
                (4, EventKind::TxAbort, acq, 4),
                (5, EventKind::TxAbort, user, 0), // not orec-attributable
            ],
        )];
        let m = merge_threads(&threads);
        let h = abort_heatmap(&m, 10);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].orec, 9);
        assert_eq!(h[0].total, 3);
        assert_eq!(h[0].by_cause[AbortCause::Acquire as usize], 2);
        assert_eq!(h[0].by_cause[AbortCause::Validation as usize], 1);
        assert_eq!(h[1].orec, 4);
        assert_eq!(abort_heatmap(&m, 1).len(), 1, "top_n truncates");
    }

    #[test]
    fn wpq_timeline_merges_overlapping_stalls() {
        let threads = vec![
            mk(
                0,
                &[
                    (10, EventKind::WpqAccept, 500, 10),
                    (100, EventKind::WpqStall, 50, 9000),
                ],
            ),
            mk(
                1,
                &[
                    (120, EventKind::WpqStall, 80, 9500), // overlaps [100,150]
                    (400, EventKind::WpqStall, 10, 9100), // disjoint
                ],
            ),
        ];
        let m = merge_threads(&threads);
        let t = wpq_timeline(&m);
        assert_eq!(t.samples.len(), 4);
        assert_eq!(t.max_backlog_ns, 9500);
        assert_eq!(t.total_stall_ns, 140);
        assert_eq!(t.stalls.len(), 2);
        assert_eq!((t.stalls[0].start, t.stalls[0].end), (100, 200));
        assert_eq!(t.stalls[0].events, 2);
        assert_eq!(t.stalls[0].stall_ns, 130);
        assert_eq!((t.stalls[1].start, t.stalls[1].end), (400, 410));
    }

    #[test]
    fn fence_windows_count_flushes_per_thread() {
        let threads = vec![mk(
            0,
            &[
                (5, EventKind::TxBegin, 0, 0),
                (10, EventKind::Clwb, 1, 1),
                (20, EventKind::Clwb, 2, 1),
                (30, EventKind::Sfence, 15, 0),
                (40, EventKind::Clwb, 3, 1),
                (50, EventKind::Sfence, 0, 0),
                (60, EventKind::Clwb, 4, 1), // trailing, no closing fence
            ],
        )];
        let w = fence_windows(&threads);
        assert_eq!(w.len(), 2);
        assert_eq!(
            (w[0].start, w[0].end, w[0].clwbs, w[0].wait_ns),
            (5, 30, 2, 15)
        );
        assert_eq!(
            (w[1].start, w[1].end, w[1].clwbs, w[1].wait_ns),
            (30, 50, 1, 0)
        );
    }
}
