//! # trace — a virtual-time flight recorder
//!
//! The paper's core findings are *temporal*: fence stalls inside critical
//! sections (§III-B), WPQ saturation under write bursts, and
//! contention-driven aborts all depend on *when* events happen. The
//! aggregate counters (`ptm::PtmStats`, `pmem_sim::MachineStats`) can say
//! ADR spends 36–65% of commit time persisting; they cannot say *which*
//! fence windows stall or *which* orecs thrash. This crate records the
//! event stream itself:
//!
//! * every virtual thread owns a fixed-capacity [`TraceRing`] — recording
//!   is a plain array store with no synchronization (the ring is owned by
//!   exactly one thread; "lock-free" by ownership, not by atomics);
//! * events are stamped in **virtual nanoseconds**, so tracing perturbs
//!   the measured timeline by *zero* virtual time by construction;
//! * overflow overwrites the oldest events and is **loss-accounted**: the
//!   ring knows exactly how many events it dropped, and every export
//!   surfaces the count (no silent caps);
//! * a shared [`TraceSink`] collects the rings when their threads finish
//!   and merges them into one timeline ordered by `(ts, tid, seq)` —
//!   deterministic for deterministic runs;
//! * [`export`] renders the merged timeline as Chrome trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`) or as a compact binary
//!   dump with an embedded counter block for offline cross-checking;
//! * [`analyze`] derives an orec abort-attribution heatmap, a WPQ
//!   occupancy timeline with stall intervals, and per-fence-window flush
//!   counts — and cross-checks every derived total against the live
//!   counters so the trace and the counters can never silently disagree.
//!
//! The crate is dependency-free; `pmem-sim` and `ptm` embed it behind a
//! one-relaxed-load-when-off gate (same idiom as `pmem_sim::inject`).

pub mod analyze;
pub mod export;

use std::sync::{Arc, Mutex};

/// What happened. The `a`/`b` payload words of a [`TraceEvent`] are
/// interpreted per kind — see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Transaction attempt started. `a` = attempt number (0-based within
    /// this `run` call), `b` = start timestamp sampled from the global
    /// clock.
    TxBegin = 0,
    /// Transactional read validated and added to the read set.
    /// `a` = orec index, `b` = address bits.
    TxRead = 1,
    /// Transactional write recorded (redo-buffered or in-place).
    /// `a` = orec index, `b` = address bits.
    TxWrite = 2,
    /// Write orec acquired (encounter-time for undo, commit-time for
    /// redo). `a` = orec index, `b` = the pre-lock orec version.
    TxAcquire = 3,
    /// Commit-time read-set validation ran. `a` = read-set size in
    /// entries, `b` = commit timestamp.
    TxValidate = 4,
    /// Transaction committed. `a` = write-set size in log entries,
    /// `b` = 0 for software commits, 1 for plain hardware-path commits,
    /// 2 for `HtmLogged` hardware commits (aliased back-end logging).
    TxCommit = 5,
    /// Transaction attempt aborted. `a` = [`AbortCause`] code,
    /// `b` = the orec that caused it (0 when not orec-attributable).
    TxAbort = 6,
    /// Hardware-path attempt aborted. `a` = [`HtmAbortCause`] code,
    /// `b` = attempt number (0-based within this `run` call).
    HtmAbort = 7,
    /// Hardware retries exhausted; falling back to software.
    /// `a` = configured retry budget.
    HtmFallback = 8,
    /// `clwb` issued. `a` = global line key, `b` = 1 if the line was
    /// dirty (a writeback was issued), else 0.
    Clwb = 9,
    /// Batched flush drain started. `a` = lines in the batch.
    ClwbBatch = 10,
    /// `sfence` executed. `a` = virtual ns waited for WPQ acceptance of
    /// outstanding flushes (0 when the queue was idle). Timestamped at
    /// fence start, so `[ts, ts+a]` is the fence-wait interval.
    Sfence = 11,
    /// A flush was accepted by the WPQ. `a` = the accepting bank's
    /// backlog in virtual ns at acceptance (occupancy proxy),
    /// `b` = acceptance timestamp.
    WpqAccept = 12,
    /// The WPQ backlog bound was exceeded; the thread stalled
    /// synchronously. `a` = stall ns, `b` = backlog ns at issue.
    /// Timestamped at stall start, so `[ts, ts+a]` is the stall interval.
    WpqStall = 13,
    /// Recovery pass started. `a` = candidate pools to scan.
    RecoveryBegin = 14,
    /// Recovery persisted one word. `a` = address bits, `b` = value.
    RecoveryApply = 15,
    /// Recovery pass finished. `a` = redo logs replayed, `b` = undo logs
    /// rolled back.
    RecoveryEnd = 16,
    /// A committing transaction joined an already-completed group-commit
    /// fence instead of executing its own `sfence`. `a` = virtual ns
    /// waited for the covering fence (0 when it already lay in the
    /// past), `b` = the covering fence's completion timestamp. Distinct
    /// from [`EventKind::Sfence`] so the analyzer's trace-vs-counter
    /// cross-check of `sfences`/`fence_wait_ns` stays exact.
    FenceJoin = 17,
    /// Recovery dispatched one discovered log to its policy's
    /// `recover_apply`. `a` = the log's primary pool id, `b` = the
    /// recovery worker index that replayed it (0 on the serial path).
    RecoveryLog = 18,
    /// One restart-GC phase completed. `a` = phase code (0 = scan,
    /// 1 = mark, 2 = sweep), `b` = wall-clock duration in ns. Recovery
    /// events are untimed (`ts` 0); the duration rides in `b`.
    GcPhase = 19,
    /// The simulated hardware section retired (HTM commit succeeded).
    /// Everything between the attempt's [`EventKind::TxBegin`] and this
    /// event executed *inside* the section, so no [`EventKind::Clwb`] or
    /// [`EventKind::Sfence`] may appear in that window. `a` = footprint
    /// in distinct cache lines, `b` = write-set size in log entries.
    HtmRetire = 20,
    /// Contention backoff started (STM retry or HTM inter-attempt
    /// pause). `a` = backoff duration in virtual ns, `b` = the failed
    /// attempt number. Timestamped at backoff start, so `[ts, ts+a]`
    /// is the backoff interval.
    Backoff = 21,
    /// An open-loop front-end request waited in the arrival queue
    /// before its worker picked it up. `a` = queue wait in virtual ns
    /// (0 when the worker was already behind the arrival), `b` = the
    /// request's arrival timestamp. Emitted at dequeue, timestamped at
    /// service start.
    QueueWait = 22,
}

impl EventKind {
    pub const COUNT: usize = 23;

    /// All kinds, in code order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::TxBegin,
        EventKind::TxRead,
        EventKind::TxWrite,
        EventKind::TxAcquire,
        EventKind::TxValidate,
        EventKind::TxCommit,
        EventKind::TxAbort,
        EventKind::HtmAbort,
        EventKind::HtmFallback,
        EventKind::Clwb,
        EventKind::ClwbBatch,
        EventKind::Sfence,
        EventKind::WpqAccept,
        EventKind::WpqStall,
        EventKind::RecoveryBegin,
        EventKind::RecoveryApply,
        EventKind::RecoveryEnd,
        EventKind::FenceJoin,
        EventKind::RecoveryLog,
        EventKind::GcPhase,
        EventKind::HtmRetire,
        EventKind::Backoff,
        EventKind::QueueWait,
    ];

    /// Stable wire/display name.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::TxBegin => "tx_begin",
            EventKind::TxRead => "tx_read",
            EventKind::TxWrite => "tx_write",
            EventKind::TxAcquire => "tx_acquire",
            EventKind::TxValidate => "tx_validate",
            EventKind::TxCommit => "tx_commit",
            EventKind::TxAbort => "tx_abort",
            EventKind::HtmAbort => "htm_abort",
            EventKind::HtmFallback => "htm_fallback",
            EventKind::Clwb => "clwb",
            EventKind::ClwbBatch => "clwb_batch",
            EventKind::Sfence => "sfence",
            EventKind::WpqAccept => "wpq_accept",
            EventKind::WpqStall => "wpq_stall",
            EventKind::RecoveryBegin => "recovery_begin",
            EventKind::RecoveryApply => "recovery_apply",
            EventKind::RecoveryEnd => "recovery_end",
            EventKind::FenceJoin => "fence_join",
            EventKind::RecoveryLog => "recovery_log",
            EventKind::GcPhase => "gc_phase",
            EventKind::HtmRetire => "htm_retire",
            EventKind::Backoff => "backoff",
            EventKind::QueueWait => "queue_wait",
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Option<EventKind> {
        EventKind::ALL.get(code as usize).copied()
    }
}

/// Why a transaction attempt aborted (the `a` word of a
/// [`EventKind::TxAbort`] event). Mirrors the per-cause counters in
/// `ptm::PtmStats` plus `User` for `Err(Abort)` escaping the closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AbortCause {
    /// User code returned `Err(Abort)` (explicit retry).
    User = 0,
    /// A read found the orec locked past the spin budget.
    ReadLocked = 1,
    /// A read observed a too-new or unstable orec version.
    ReadVersion = 2,
    /// A write-orec acquisition failed (locked or too new).
    Acquire = 3,
    /// Commit-time read-set validation failed.
    Validation = 4,
}

impl AbortCause {
    pub const COUNT: usize = 5;
    pub const ALL: [AbortCause; AbortCause::COUNT] = [
        AbortCause::User,
        AbortCause::ReadLocked,
        AbortCause::ReadVersion,
        AbortCause::Acquire,
        AbortCause::Validation,
    ];

    pub fn label(self) -> &'static str {
        match self {
            AbortCause::User => "user",
            AbortCause::ReadLocked => "read_locked",
            AbortCause::ReadVersion => "read_version",
            AbortCause::Acquire => "acquire",
            AbortCause::Validation => "validation",
        }
    }

    pub fn from_code(code: u64) -> Option<AbortCause> {
        AbortCause::ALL.get(code as usize).copied()
    }
}

/// Why a hardware-path attempt aborted (the `a` word of an
/// [`EventKind::HtmAbort`] event). Mirrors the per-cause
/// `htm_*_aborts` counters in `ptm::PtmStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum HtmAbortCause {
    /// The section's line footprint exceeded the model's capacity.
    Capacity = 0,
    /// A concurrent committer touched a line in the section's footprint
    /// (coherence conflict), or a read saw a locked/too-new orec.
    Conflict = 1,
    /// The policy aborted the section explicitly (e.g. the back-end log
    /// ring was full and needed a reset outside the section).
    Explicit = 2,
}

impl HtmAbortCause {
    pub const COUNT: usize = 3;
    pub const ALL: [HtmAbortCause; HtmAbortCause::COUNT] = [
        HtmAbortCause::Capacity,
        HtmAbortCause::Conflict,
        HtmAbortCause::Explicit,
    ];

    pub fn label(self) -> &'static str {
        match self {
            HtmAbortCause::Capacity => "capacity",
            HtmAbortCause::Conflict => "conflict",
            HtmAbortCause::Explicit => "explicit",
        }
    }

    pub fn from_code(code: u64) -> Option<HtmAbortCause> {
        HtmAbortCause::ALL.get(code as usize).copied()
    }
}

/// One recorded event: a virtual timestamp, a kind, and two payload words
/// interpreted per [`EventKind`]. 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub ts: u64,
    pub kind: EventKind,
    pub a: u64,
    pub b: u64,
}

/// A fixed-capacity, single-owner ring buffer of [`TraceEvent`]s.
///
/// Owned by exactly one virtual thread, so recording is a plain indexed
/// store — no atomics, no locks, no allocation after construction.
/// Overflow overwrites the oldest events; the total recorded count keeps
/// running, so [`TraceRing::dropped`] is exact.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Total events ever recorded (monotonic; `head % cap` is the next
    /// write slot once the ring has wrapped).
    head: u64,
}

impl TraceRing {
    /// A ring holding at most `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> TraceRing {
        let cap = cap.max(1);
        TraceRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
        }
    }

    /// Record one event. O(1), never fails; overwrites the oldest event
    /// when full (accounted by [`TraceRing::dropped`]).
    #[inline]
    pub fn record(&mut self, ts: u64, kind: EventKind, a: u64, b: u64) {
        let ev = TraceEvent { ts, kind, a, b };
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            let slot = (self.head % self.cap as u64) as usize;
            self.buf[slot] = ev;
        }
        self.head += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.head
    }

    /// Events lost to overflow (oldest-first overwrites).
    pub fn dropped(&self) -> u64 {
        self.head - self.buf.len() as u64
    }

    /// The surviving events, oldest first.
    pub fn ordered(&self) -> Vec<TraceEvent> {
        if self.head <= self.cap as u64 {
            return self.buf.clone();
        }
        // Wrapped: the oldest surviving event sits at the next write slot.
        let split = (self.head % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[split..]);
        out.extend_from_slice(&self.buf[..split]);
        out
    }
}

/// One finished thread's contribution to a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadTrace {
    pub tid: u32,
    /// Surviving events, oldest first (timestamps non-decreasing: each
    /// virtual thread's clock is monotonic).
    pub events: Vec<TraceEvent>,
    /// Events this thread's ring overwrote (loss accounting).
    pub dropped: u64,
}

/// An event in the merged, cross-thread timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedEvent {
    pub ts: u64,
    pub tid: u32,
    pub kind: EventKind,
    pub a: u64,
    pub b: u64,
}

/// The reserved thread id used for machine-level (sessionless) events —
/// recovery runs outside any timed session.
pub const RECOVERY_TID: u32 = u32::MAX;

/// Width of the reserved recovery-tid band: parallel recovery workers
/// submit their rings under `RECOVERY_TID - 1 - worker`, so up to
/// `RECOVERY_TID_BAND - 1` workers get distinct, deterministically
/// ordered streams that — like [`RECOVERY_TID`] itself — are exempt
/// from shard tagging.
pub const RECOVERY_TID_BAND: u32 = 64;

/// The thread id a parallel recovery worker submits under.
#[inline]
pub fn recovery_worker_tid(worker: usize) -> u32 {
    debug_assert!((worker as u32) < RECOVERY_TID_BAND - 1);
    RECOVERY_TID - 1 - worker as u32
}

/// Whether `tid` lies in the reserved recovery band (the machine-level
/// recovery stream or one of its workers).
#[inline]
pub fn is_recovery_tid(tid: u32) -> bool {
    tid >= RECOVERY_TID - RECOVERY_TID_BAND
}

/// Shard attribution: a sink created with [`TraceSink::new_for_shard`]
/// packs its shard index into the high bits of every submitted thread
/// id, so a merged multi-shard timeline keeps per-shard attribution
/// without widening the event format.
pub const SHARD_SHIFT: u32 = 20;

/// The shard a (possibly tagged) thread id belongs to.
#[inline]
pub fn shard_of_tid(tid: u32) -> u32 {
    if is_recovery_tid(tid) {
        0
    } else {
        tid >> SHARD_SHIFT
    }
}

/// The within-shard thread id of a (possibly tagged) thread id.
#[inline]
pub fn local_tid(tid: u32) -> u32 {
    if is_recovery_tid(tid) {
        tid
    } else {
        tid & ((1 << SHARD_SHIFT) - 1)
    }
}

/// Collects per-thread rings and merges them by virtual timestamp.
///
/// Threads record into their own [`TraceRing`]s without synchronization;
/// the sink's mutex is only taken when a finished thread submits its ring
/// (once per thread per run) and at export time.
#[derive(Debug)]
pub struct TraceSink {
    ring_capacity: usize,
    /// `shard << SHARD_SHIFT`, OR-ed onto submitted thread ids (0 for
    /// unsharded sinks, leaving ids untouched).
    shard_tag: u32,
    threads: Mutex<Vec<ThreadTrace>>,
}

impl TraceSink {
    /// A sink handing out rings of `ring_capacity` events each.
    pub fn new(ring_capacity: usize) -> Arc<TraceSink> {
        TraceSink::new_for_shard(ring_capacity, 0)
    }

    /// A sink for shard `shard` of a sharded engine: submitted thread
    /// ids are tagged with the shard index (see [`SHARD_SHIFT`]).
    pub fn new_for_shard(ring_capacity: usize, shard: u32) -> Arc<TraceSink> {
        debug_assert!(shard < (RECOVERY_TID >> SHARD_SHIFT));
        Arc::new(TraceSink {
            ring_capacity: ring_capacity.max(1),
            shard_tag: shard << SHARD_SHIFT,
            threads: Mutex::new(Vec::new()),
        })
    }

    /// The shard index this sink tags its threads with.
    pub fn shard(&self) -> u32 {
        self.shard_tag >> SHARD_SHIFT
    }

    /// Default per-thread capacity: large enough that the analyzer runs
    /// and CI smokes are lossless at their op counts (~32 events per
    /// small transaction), small enough to stay cheap (2 MiB/thread).
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

    /// A fresh ring for one thread.
    pub fn ring(&self) -> TraceRing {
        TraceRing::new(self.ring_capacity)
    }

    /// Submit a finished thread's ring. Called once per thread at session
    /// teardown (or explicitly for machine-level event streams).
    pub fn submit(&self, tid: u32, ring: &TraceRing) {
        if ring.recorded() == 0 {
            return;
        }
        let tid = if is_recovery_tid(tid) {
            tid
        } else {
            tid | self.shard_tag
        };
        self.threads.lock().unwrap().push(ThreadTrace {
            tid,
            events: ring.ordered(),
            dropped: ring.dropped(),
        });
    }

    /// Per-thread traces submitted so far, sorted by thread id (stable
    /// across submission races).
    pub fn threads(&self) -> Vec<ThreadTrace> {
        let mut v = self.threads.lock().unwrap().clone();
        v.sort_by_key(|t| t.tid);
        v
    }

    /// Total events dropped across all threads.
    pub fn dropped_events(&self) -> u64 {
        self.threads.lock().unwrap().iter().map(|t| t.dropped).sum()
    }

    /// The merged timeline: all threads' events ordered by
    /// `(ts, tid, per-thread sequence)`. Deterministic for deterministic
    /// runs; timestamps are non-decreasing.
    pub fn merged(&self) -> Vec<MergedEvent> {
        merge_threads(&self.threads())
    }

    /// Drop all submitted traces (reuse the sink for another run).
    pub fn clear(&self) {
        self.threads.lock().unwrap().clear();
    }
}

/// Merge per-thread traces into one `(ts, tid, seq)`-ordered timeline.
pub fn merge_threads(threads: &[ThreadTrace]) -> Vec<MergedEvent> {
    let total = threads.iter().map(|t| t.events.len()).sum();
    let mut out: Vec<(u64, u32, u32, MergedEvent)> = Vec::with_capacity(total);
    for t in threads {
        for (seq, ev) in t.events.iter().enumerate() {
            out.push((
                ev.ts,
                t.tid,
                seq as u32,
                MergedEvent {
                    ts: ev.ts,
                    tid: t.tid,
                    kind: ev.kind,
                    a: ev.a,
                    b: ev.b,
                },
            ));
        }
    }
    out.sort_unstable_by_key(|&(ts, tid, seq, _)| (ts, tid, seq));
    out.into_iter().map(|(_, _, _, ev)| ev).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_records_in_order_below_capacity() {
        let mut r = TraceRing::new(8);
        for i in 0..5u64 {
            r.record(i * 10, EventKind::Clwb, i, 0);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 0);
        let ev = r.ordered();
        assert_eq!(ev.len(), 5);
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.a, i as u64);
        }
    }

    #[test]
    fn ring_wraps_overwriting_oldest_and_accounts_drops() {
        let mut r = TraceRing::new(4);
        for i in 0..11u64 {
            r.record(i, EventKind::TxCommit, i, 0);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 11);
        assert_eq!(r.dropped(), 7, "11 recorded - 4 held");
        // Survivors are the newest four, oldest first.
        let ev = r.ordered();
        let seq: Vec<u64> = ev.iter().map(|e| e.a).collect();
        assert_eq!(seq, vec![7, 8, 9, 10]);
        // Timestamps non-decreasing.
        assert!(ev.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn ring_wrap_exactly_at_capacity_boundary() {
        let mut r = TraceRing::new(3);
        for i in 0..3u64 {
            r.record(i, EventKind::Sfence, i, 0);
        }
        assert_eq!(r.dropped(), 0);
        let seq: Vec<u64> = r.ordered().iter().map(|e| e.a).collect();
        assert_eq!(seq, vec![0, 1, 2]);
        r.record(3, EventKind::Sfence, 3, 0);
        assert_eq!(r.dropped(), 1);
        let seq: Vec<u64> = r.ordered().iter().map(|e| e.a).collect();
        assert_eq!(seq, vec![1, 2, 3]);
    }

    #[test]
    fn merged_timestamps_are_non_decreasing_across_threads() {
        let sink = TraceSink::new(64);
        // Thread 0: ts 0, 10, 20, ... ; thread 1: ts 5, 15, 25, ...
        let mut r0 = sink.ring();
        let mut r1 = sink.ring();
        for i in 0..10u64 {
            r0.record(i * 10, EventKind::Clwb, i, 0);
            r1.record(i * 10 + 5, EventKind::Sfence, i, 0);
        }
        sink.submit(1, &r1); // submission order must not matter
        sink.submit(0, &r0);
        let merged = sink.merged();
        assert_eq!(merged.len(), 20);
        assert!(
            merged.windows(2).all(|w| w[0].ts <= w[1].ts),
            "merged timestamps must be non-decreasing"
        );
        // Equal-ts ties (none here) aside, the interleave alternates.
        let tids: Vec<u32> = merged.iter().take(4).map(|e| e.tid).collect();
        assert_eq!(tids, vec![0, 1, 0, 1]);
    }

    #[test]
    fn merge_breaks_ties_by_tid_then_sequence() {
        let sink = TraceSink::new(8);
        let mut r0 = sink.ring();
        let mut r1 = sink.ring();
        // Same timestamp everywhere: order must be (tid, seq).
        r1.record(7, EventKind::TxBegin, 100, 0);
        r1.record(7, EventKind::TxCommit, 101, 0);
        r0.record(7, EventKind::TxBegin, 200, 0);
        sink.submit(1, &r1);
        sink.submit(0, &r0);
        let m = sink.merged();
        let key: Vec<(u32, u64)> = m.iter().map(|e| (e.tid, e.a)).collect();
        assert_eq!(key, vec![(0, 200), (1, 100), (1, 101)]);
    }

    #[test]
    fn sink_accounts_dropped_events() {
        let sink = TraceSink::new(2);
        let mut r = sink.ring();
        for i in 0..5u64 {
            r.record(i, EventKind::Clwb, i, 0);
        }
        sink.submit(3, &r);
        assert_eq!(sink.dropped_events(), 3);
        let t = sink.threads();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].tid, 3);
        assert_eq!(t[0].dropped, 3);
    }

    #[test]
    fn empty_rings_are_not_submitted() {
        let sink = TraceSink::new(4);
        let r = sink.ring();
        sink.submit(0, &r);
        assert!(sink.threads().is_empty());
    }

    #[test]
    fn kind_codes_roundtrip() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(EventKind::from_code(i as u8), Some(*k));
            assert_eq!(*k as u8, i as u8);
        }
        assert_eq!(EventKind::from_code(EventKind::COUNT as u8), None);
        for (i, c) in AbortCause::ALL.iter().enumerate() {
            assert_eq!(AbortCause::from_code(i as u64), Some(*c));
        }
        assert_eq!(AbortCause::from_code(AbortCause::COUNT as u64), None);
        for (i, c) in HtmAbortCause::ALL.iter().enumerate() {
            assert_eq!(HtmAbortCause::from_code(i as u64), Some(*c));
        }
        assert_eq!(HtmAbortCause::from_code(HtmAbortCause::COUNT as u64), None);
    }
}
