//! Trace export: Chrome trace-event JSON (Perfetto-loadable) and a
//! compact binary dump with an embedded counter block.
//!
//! Both formats surface per-thread `dropped_events` loss accounting. The
//! binary dump additionally embeds the live counter totals
//! ([`ExpectedTotals`], captured from `PtmStats`/`MachineStats` at export
//! time) so an *offline* analyzer can re-derive totals from the events
//! alone and cross-check them against what the counters said — the trace
//! and the counters can never silently disagree.

use crate::{EventKind, ThreadTrace, TraceEvent, TraceSink};

/// Magic prefix of the binary dump format, version 1.
pub const BINARY_MAGIC: &[u8; 8] = b"PTMTRC01";

/// Counter totals captured at export time, in a fixed serialization
/// order. Field-for-field these mirror the subset of
/// `ptm::PtmStatsSnapshot` / `pmem_sim::StatsSnapshot` that the trace can
/// independently re-derive (see [`crate::analyze::TraceTotals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpectedTotals {
    pub commits: u64,
    pub aborts: u64,
    pub aborts_read_locked: u64,
    pub aborts_read_version: u64,
    pub aborts_acquire: u64,
    pub aborts_validation: u64,
    pub htm_commits: u64,
    pub htm_logged_commits: u64,
    pub htm_aborts: u64,
    pub htm_capacity_aborts: u64,
    pub htm_conflict_aborts: u64,
    pub htm_explicit_aborts: u64,
    pub htm_fallbacks: u64,
    pub clwbs: u64,
    pub clwb_writebacks: u64,
    pub clwb_batches: u64,
    pub sfences: u64,
    pub fence_wait_ns: u64,
    pub wpq_stall_ns: u64,
    /// Group-commit fence joins (`PtmStats::sfences_elided`).
    pub fence_joins: u64,
}

impl ExpectedTotals {
    /// `(name, value)` pairs in serialization order.
    pub fn fields(&self) -> [(&'static str, u64); 20] {
        [
            ("commits", self.commits),
            ("aborts", self.aborts),
            ("aborts_read_locked", self.aborts_read_locked),
            ("aborts_read_version", self.aborts_read_version),
            ("aborts_acquire", self.aborts_acquire),
            ("aborts_validation", self.aborts_validation),
            ("htm_commits", self.htm_commits),
            ("htm_logged_commits", self.htm_logged_commits),
            ("htm_aborts", self.htm_aborts),
            ("htm_capacity_aborts", self.htm_capacity_aborts),
            ("htm_conflict_aborts", self.htm_conflict_aborts),
            ("htm_explicit_aborts", self.htm_explicit_aborts),
            ("htm_fallbacks", self.htm_fallbacks),
            ("clwbs", self.clwbs),
            ("clwb_writebacks", self.clwb_writebacks),
            ("clwb_batches", self.clwb_batches),
            ("sfences", self.sfences),
            ("fence_wait_ns", self.fence_wait_ns),
            ("wpq_stall_ns", self.wpq_stall_ns),
            ("fence_joins", self.fence_joins),
        ]
    }

    fn from_values(v: &[u64]) -> ExpectedTotals {
        ExpectedTotals {
            commits: v[0],
            aborts: v[1],
            aborts_read_locked: v[2],
            aborts_read_version: v[3],
            aborts_acquire: v[4],
            aborts_validation: v[5],
            htm_commits: v[6],
            htm_logged_commits: v[7],
            htm_aborts: v[8],
            htm_capacity_aborts: v[9],
            htm_conflict_aborts: v[10],
            htm_explicit_aborts: v[11],
            htm_fallbacks: v[12],
            clwbs: v[13],
            clwb_writebacks: v[14],
            clwb_batches: v[15],
            sfences: v[16],
            fence_wait_ns: v[17],
            wpq_stall_ns: v[18],
            fence_joins: v[19],
        }
    }
}

/// A parsed binary dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDump {
    pub expected: ExpectedTotals,
    pub threads: Vec<ThreadTrace>,
}

impl TraceDump {
    /// Total dropped events across threads.
    pub fn dropped_events(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// The `(ts, tid, seq)`-merged timeline.
    pub fn merged(&self) -> Vec<crate::MergedEvent> {
        crate::merge_threads(&self.threads)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "truncated dump: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
}

/// Serialize per-thread traces plus the counter block into the compact
/// binary format. Deterministic: identical traces and totals produce
/// byte-identical output (threads are written in tid order).
pub fn write_binary(threads: &[ThreadTrace], expected: &ExpectedTotals) -> Vec<u8> {
    let mut threads: Vec<&ThreadTrace> = threads.iter().collect();
    threads.sort_by_key(|t| t.tid);
    let events: usize = threads.iter().map(|t| t.events.len()).sum();
    let mut out = Vec::with_capacity(32 + 16 * 16 + events * 25 + threads.len() * 20);
    out.extend_from_slice(BINARY_MAGIC);
    let fields = expected.fields();
    put_u32(&mut out, fields.len() as u32);
    for (_, v) in fields {
        put_u64(&mut out, v);
    }
    put_u32(&mut out, threads.len() as u32);
    for t in threads {
        put_u32(&mut out, t.tid);
        put_u64(&mut out, t.dropped);
        put_u64(&mut out, t.events.len() as u64);
        for ev in &t.events {
            put_u64(&mut out, ev.ts);
            out.push(ev.kind as u8);
            put_u64(&mut out, ev.a);
            put_u64(&mut out, ev.b);
        }
    }
    out
}

/// Convenience: serialize everything a sink has collected.
pub fn write_binary_from_sink(sink: &TraceSink, expected: &ExpectedTotals) -> Vec<u8> {
    write_binary(&sink.threads(), expected)
}

/// Parse a binary dump, validating structure, magic and event codes.
pub fn read_binary(buf: &[u8]) -> Result<TraceDump, String> {
    let mut r = Reader { buf, pos: 0 };
    let magic = r.take(8)?;
    if magic != BINARY_MAGIC {
        return Err(format!("bad magic {magic:?} (expected {BINARY_MAGIC:?})"));
    }
    let n_counters = r.u32()? as usize;
    if n_counters != 20 {
        return Err(format!("unsupported counter-block size {n_counters}"));
    }
    let mut vals = Vec::with_capacity(n_counters);
    for _ in 0..n_counters {
        vals.push(r.u64()?);
    }
    let expected = ExpectedTotals::from_values(&vals);
    let n_threads = r.u32()? as usize;
    let mut threads = Vec::with_capacity(n_threads);
    for _ in 0..n_threads {
        let tid = r.u32()?;
        let dropped = r.u64()?;
        let count = r.u64()? as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        let mut prev_ts = 0u64;
        for i in 0..count {
            let ts = r.u64()?;
            let code = r.u8()?;
            let kind = EventKind::from_code(code)
                .ok_or_else(|| format!("thread {tid} event {i}: bad kind code {code}"))?;
            let a = r.u64()?;
            let b = r.u64()?;
            if ts < prev_ts {
                return Err(format!(
                    "thread {tid} event {i}: timestamp {ts} < predecessor {prev_ts}"
                ));
            }
            prev_ts = ts;
            events.push(TraceEvent { ts, kind, a, b });
        }
        threads.push(ThreadTrace {
            tid,
            events,
            dropped,
        });
    }
    if r.pos != buf.len() {
        return Err(format!("{} trailing bytes after dump", buf.len() - r.pos));
    }
    Ok(TraceDump { expected, threads })
}

/// Append a virtual-ns timestamp as fractional Chrome microseconds
/// (ns-exact: 3 decimal places).
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1000, ns % 1000));
}

/// Render per-thread traces as Chrome trace-event JSON.
///
/// Load the output in [Perfetto](https://ui.perfetto.dev) ("Open trace
/// file") or `chrome://tracing`. Durationful events (`sfence` waits, WPQ
/// stalls) become complete events (`"ph":"X"`) spanning their wait; all
/// other events are instants (`"ph":"i"`). Per-thread dropped-event
/// counts are surfaced in `otherData.dropped_by_thread` and as metadata
/// on each thread.
pub fn chrome_trace_json(threads: &[ThreadTrace]) -> String {
    let mut threads: Vec<&ThreadTrace> = threads.iter().collect();
    threads.sort_by_key(|t| t.tid);
    let dropped_total: u64 = threads.iter().map(|t| t.dropped).sum();
    let mut out = String::with_capacity(threads.iter().map(|t| t.events.len()).sum::<usize>() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":");
    out.push_str(&dropped_total.to_string());
    out.push_str(",\"dropped_by_thread\":{");
    for (i, t) in threads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", t.tid, t.dropped));
    }
    out.push_str("}},\"traceEvents\":[");
    let mut first = true;
    for t in &threads {
        if !first {
            out.push(',');
        }
        first = false;
        let name = if t.tid == crate::RECOVERY_TID {
            "recovery".to_string()
        } else {
            format!("vthread {}", t.tid)
        };
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"{name}\",\"dropped_events\":{}}}}}",
            t.tid, t.dropped
        ));
        for ev in &t.events {
            out.push(',');
            out.push_str("{\"name\":\"");
            out.push_str(ev.kind.label());
            out.push_str("\",\"ph\":\"");
            let durationful = matches!(
                ev.kind,
                EventKind::Sfence
                    | EventKind::WpqStall
                    | EventKind::FenceJoin
                    | EventKind::Backoff
                    | EventKind::QueueWait
            );
            if durationful {
                out.push_str("X\",\"dur\":");
                push_us(&mut out, ev.a);
            } else {
                out.push_str("i\",\"s\":\"t\"");
            }
            out.push_str(",\"ts\":");
            push_us(&mut out, ev.ts);
            out.push_str(&format!(",\"pid\":0,\"tid\":{}", t.tid));
            out.push_str(&format!(",\"args\":{{\"a\":{},\"b\":{}}}}}", ev.a, ev.b));
        }
    }
    out.push_str("]}");
    out
}

/// Structural JSON validation without a parser: non-empty object with
/// balanced braces/brackets outside string literals and correctly
/// terminated strings/escapes. Used by `trace_analyze`'s CI smoke to
/// reject malformed exports.
pub fn validate_json_structure(s: &str) -> Result<(), String> {
    let t = s.trim();
    if !t.starts_with('{') || !t.ends_with('}') {
        return Err("not a JSON object".into());
    }
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escape = false;
    for c in t.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced close delimiter".into());
                }
            }
            _ => {}
        }
    }
    if in_str {
        return Err("unterminated string".into());
    }
    if depth != 0 {
        return Err(format!("unbalanced delimiters (depth {depth})"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRing;

    fn sample_threads() -> Vec<ThreadTrace> {
        let mut r0 = TraceRing::new(16);
        r0.record(100, EventKind::TxBegin, 0, 0);
        r0.record(150, EventKind::Clwb, 77, 1);
        r0.record(200, EventKind::Sfence, 50, 0);
        r0.record(300, EventKind::TxCommit, 2, 0);
        let mut r1 = TraceRing::new(2);
        r1.record(110, EventKind::TxBegin, 0, 0);
        r1.record(140, EventKind::TxAbort, 2, 9);
        r1.record(180, EventKind::WpqStall, 40, 9000);
        vec![
            ThreadTrace {
                tid: 0,
                events: r0.ordered(),
                dropped: r0.dropped(),
            },
            ThreadTrace {
                tid: 1,
                events: r1.ordered(),
                dropped: r1.dropped(),
            },
        ]
    }

    #[test]
    fn binary_roundtrips_exactly() {
        let threads = sample_threads();
        let expected = ExpectedTotals {
            commits: 1,
            aborts: 1,
            clwbs: 1,
            sfences: 1,
            fence_wait_ns: 50,
            wpq_stall_ns: 40,
            ..ExpectedTotals::default()
        };
        let bytes = write_binary(&threads, &expected);
        let dump = read_binary(&bytes).expect("roundtrip");
        assert_eq!(dump.expected, expected);
        assert_eq!(dump.threads, threads);
        assert_eq!(dump.dropped_events(), 1, "thread 1's ring dropped one");
        // Re-serializing the parse is byte-identical (determinism).
        assert_eq!(write_binary(&dump.threads, &dump.expected), bytes);
    }

    #[test]
    fn binary_is_deterministic_regardless_of_thread_order() {
        let threads = sample_threads();
        let rev: Vec<ThreadTrace> = threads.iter().rev().cloned().collect();
        let e = ExpectedTotals::default();
        assert_eq!(write_binary(&threads, &e), write_binary(&rev, &e));
    }

    #[test]
    fn reader_rejects_corruption() {
        let bytes = write_binary(&sample_threads(), &ExpectedTotals::default());
        assert!(read_binary(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(read_binary(&bad_magic).is_err(), "magic");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(read_binary(&trailing).is_err(), "trailing bytes");
        // Corrupt an event kind code (first event of thread 0 sits after
        // magic + counter block + thread count + tid/dropped/count + ts).
        let kind_off = 8 + 4 + 20 * 8 + 4 + (4 + 8 + 8) + 8;
        let mut bad_kind = bytes.clone();
        bad_kind[kind_off] = 200;
        assert!(read_binary(&bad_kind).is_err(), "kind code");
    }

    #[test]
    fn chrome_json_is_structurally_valid_and_loss_accounted() {
        let threads = sample_threads();
        let j = chrome_trace_json(&threads);
        validate_json_structure(&j).expect("well-formed");
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"dropped_events\":1"));
        assert!(j.contains("\"dropped_by_thread\":{\"0\":0,\"1\":1}"));
        // The sfence is a complete event with its wait as the duration.
        assert!(j.contains("\"name\":\"sfence\",\"ph\":\"X\",\"dur\":0.050"));
        // Instants carry the scope field.
        assert!(j.contains("\"name\":\"clwb\",\"ph\":\"i\",\"s\":\"t\""));
        // ns-exact fractional microseconds.
        assert!(j.contains("\"ts\":0.100"));
    }

    #[test]
    fn json_validator_rejects_malformed() {
        assert!(validate_json_structure("{\"a\":1}").is_ok());
        assert!(validate_json_structure("").is_err());
        assert!(validate_json_structure("[1,2]").is_err());
        assert!(validate_json_structure("{\"a\":[1,2}").is_err());
        assert!(validate_json_structure("{\"a\":\"unterminated}").is_err());
        assert!(validate_json_structure("{}}").is_err());
    }
}
