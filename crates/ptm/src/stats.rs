//! Commit/abort accounting (Tables I and II report commit-to-abort ratios).

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared transaction outcome counters.
#[derive(Debug, Default)]
pub struct PtmStats {
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    /// Aborts broken out by cause, for diagnosis and ablations.
    pub aborts_read_locked: AtomicU64,
    pub aborts_read_version: AtomicU64,
    pub aborts_acquire: AtomicU64,
    pub aborts_validation: AtomicU64,
    /// Successful timestamp extensions (reads salvaged).
    pub extensions: AtomicU64,
    /// Transactions committed on the hardware path.
    pub htm_commits: AtomicU64,
    /// Hardware-path aborts (conflict/validation).
    pub htm_aborts: AtomicU64,
    /// Transactions that exhausted hardware retries and took the
    /// software path.
    pub htm_fallbacks: AtomicU64,
    /// Hardware commits that went through the `HtmLogged` aliased
    /// back-end-logging path (also counted in `htm_commits`).
    pub htm_logged_commits: AtomicU64,
    /// Hardware aborts by cause: the section's line footprint exceeded
    /// the model's capacity.
    pub htm_capacity_aborts: AtomicU64,
    /// Hardware aborts by cause: coherence conflict with a concurrent
    /// committer (or a locked/too-new orec seen inside the section).
    pub htm_conflict_aborts: AtomicU64,
    /// Hardware aborts by cause: the policy aborted the section
    /// explicitly (e.g. back-end log ring full).
    pub htm_explicit_aborts: AtomicU64,
    /// `HtmLogged`: bytes appended to back-end redo logs.
    pub backend_log_bytes: AtomicU64,
    /// Largest write set observed, in log entries (the paper's §IV-B
    /// sizing argument for PDRAM-Lite: Vacation <= 37 log cache lines,
    /// TPCC <= 36).
    pub max_write_entries: AtomicU64,
    /// Flushes the write-combining planner skipped because the line was
    /// already planned in the same fence window (offers minus unique).
    pub flushes_elided: AtomicU64,
    /// Unique lines the planner actually drained through `clwb_batch`.
    pub lines_planned: AtomicU64,
    /// Largest duplicate-filtered read set observed, in unique orecs.
    pub max_read_set_unique: AtomicU64,
    /// Largest write-back footprint observed, in unique data lines.
    pub max_write_lines: AtomicU64,
    /// CowShadow: shadow lines allocated from the persistent heap.
    pub shadow_lines_allocated: AtomicU64,
    /// CowShadow: shadow lines returned to the allocator after a publish
    /// or an abort (crashed transactions leave theirs to the restart GC).
    pub shadow_lines_reclaimed: AtomicU64,
    /// CowShadow: ordering points issued while publishing shadow lines
    /// to their home locations (two per committed writer transaction).
    pub publish_fences: AtomicU64,
    /// Group commit: fence windows opened (lead fences that later
    /// commits could join).
    pub group_commit_windows: AtomicU64,
    /// Group commit: `sfence`s elided because the committing transaction
    /// joined an already-completed window fence.
    pub sfences_elided: AtomicU64,
    /// Largest single contention-backoff delay issued, in virtual ns
    /// (high-water; bounded by `PtmConfig::max_backoff_ns`).
    pub max_backoff_ns: AtomicU64,
    /// 2PC: participant-shard prepares made durable.
    pub prepares: AtomicU64,
    /// 2PC: coordinator commit records written (one per committed
    /// cross-shard transaction).
    pub coordinator_commits: AtomicU64,
    /// 2PC recovery: in-doubt participants resolved to commit by the
    /// coordinator record.
    pub indoubt_resolved_commit: AtomicU64,
    /// 2PC recovery: in-doubt participants resolved to abort (no
    /// coordinator record — presumed abort).
    pub indoubt_resolved_abort: AtomicU64,
    /// 2PC: virtual ns spent in the prepare phase (per-participant
    /// `make_prepared` flush+fence work), the ADR-vs-eADR knee.
    pub prepare_fence_ns: AtomicU64,
    /// Hardware retries skipped by contention-aware fallback pacing
    /// (`PtmConfig::htm_fastpath_threshold`): transactions that jumped
    /// to the software path early (also counted in `htm_fallbacks`).
    pub htm_fallback_fastpathed: AtomicU64,
}

/// Plain-value snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PtmStatsSnapshot {
    pub commits: u64,
    pub aborts: u64,
    pub aborts_read_locked: u64,
    pub aborts_read_version: u64,
    pub aborts_acquire: u64,
    pub aborts_validation: u64,
    pub extensions: u64,
    pub htm_commits: u64,
    pub htm_aborts: u64,
    pub htm_fallbacks: u64,
    pub htm_logged_commits: u64,
    pub htm_capacity_aborts: u64,
    pub htm_conflict_aborts: u64,
    pub htm_explicit_aborts: u64,
    pub backend_log_bytes: u64,
    pub max_write_entries: u64,
    pub flushes_elided: u64,
    pub lines_planned: u64,
    pub max_read_set_unique: u64,
    pub max_write_lines: u64,
    pub shadow_lines_allocated: u64,
    pub shadow_lines_reclaimed: u64,
    pub publish_fences: u64,
    pub group_commit_windows: u64,
    pub sfences_elided: u64,
    pub max_backoff_ns: u64,
    pub prepares: u64,
    pub coordinator_commits: u64,
    pub indoubt_resolved_commit: u64,
    pub indoubt_resolved_abort: u64,
    pub prepare_fence_ns: u64,
    pub htm_fallback_fastpathed: u64,
}

impl PtmStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a committed transaction's write-set size.
    #[inline]
    pub fn note_write_set(&self, entries: u64) {
        self.max_write_entries.fetch_max(entries, Ordering::Relaxed);
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n` to a plain counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a high-water mark (keeps the larger value).
    #[inline]
    pub fn high_water(counter: &AtomicU64, v: u64) {
        counter.fetch_max(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> PtmStatsSnapshot {
        PtmStatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            aborts_read_locked: self.aborts_read_locked.load(Ordering::Relaxed),
            aborts_read_version: self.aborts_read_version.load(Ordering::Relaxed),
            aborts_acquire: self.aborts_acquire.load(Ordering::Relaxed),
            aborts_validation: self.aborts_validation.load(Ordering::Relaxed),
            extensions: self.extensions.load(Ordering::Relaxed),
            htm_commits: self.htm_commits.load(Ordering::Relaxed),
            htm_aborts: self.htm_aborts.load(Ordering::Relaxed),
            htm_fallbacks: self.htm_fallbacks.load(Ordering::Relaxed),
            htm_logged_commits: self.htm_logged_commits.load(Ordering::Relaxed),
            htm_capacity_aborts: self.htm_capacity_aborts.load(Ordering::Relaxed),
            htm_conflict_aborts: self.htm_conflict_aborts.load(Ordering::Relaxed),
            htm_explicit_aborts: self.htm_explicit_aborts.load(Ordering::Relaxed),
            backend_log_bytes: self.backend_log_bytes.load(Ordering::Relaxed),
            max_write_entries: self.max_write_entries.load(Ordering::Relaxed),
            flushes_elided: self.flushes_elided.load(Ordering::Relaxed),
            lines_planned: self.lines_planned.load(Ordering::Relaxed),
            max_read_set_unique: self.max_read_set_unique.load(Ordering::Relaxed),
            max_write_lines: self.max_write_lines.load(Ordering::Relaxed),
            shadow_lines_allocated: self.shadow_lines_allocated.load(Ordering::Relaxed),
            shadow_lines_reclaimed: self.shadow_lines_reclaimed.load(Ordering::Relaxed),
            publish_fences: self.publish_fences.load(Ordering::Relaxed),
            group_commit_windows: self.group_commit_windows.load(Ordering::Relaxed),
            sfences_elided: self.sfences_elided.load(Ordering::Relaxed),
            max_backoff_ns: self.max_backoff_ns.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            coordinator_commits: self.coordinator_commits.load(Ordering::Relaxed),
            indoubt_resolved_commit: self.indoubt_resolved_commit.load(Ordering::Relaxed),
            indoubt_resolved_abort: self.indoubt_resolved_abort.load(Ordering::Relaxed),
            prepare_fence_ns: self.prepare_fence_ns.load(Ordering::Relaxed),
            htm_fallback_fastpathed: self.htm_fallback_fastpathed.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        for c in [
            &self.commits,
            &self.aborts,
            &self.aborts_read_locked,
            &self.aborts_read_version,
            &self.aborts_acquire,
            &self.aborts_validation,
            &self.extensions,
            &self.htm_commits,
            &self.htm_aborts,
            &self.htm_fallbacks,
            &self.htm_logged_commits,
            &self.htm_capacity_aborts,
            &self.htm_conflict_aborts,
            &self.htm_explicit_aborts,
            &self.backend_log_bytes,
            &self.max_write_entries,
            &self.flushes_elided,
            &self.lines_planned,
            &self.max_read_set_unique,
            &self.max_write_lines,
            &self.shadow_lines_allocated,
            &self.shadow_lines_reclaimed,
            &self.publish_fences,
            &self.group_commit_windows,
            &self.sfences_elided,
            &self.max_backoff_ns,
            &self.prepares,
            &self.coordinator_commits,
            &self.indoubt_resolved_commit,
            &self.indoubt_resolved_abort,
            &self.prepare_fence_ns,
            &self.htm_fallback_fastpathed,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl PtmStatsSnapshot {
    /// The paper's Tables I/II metric: committed transactions per abort.
    /// Returns `f64::INFINITY` when no aborts occurred.
    pub fn commit_abort_ratio(&self) -> f64 {
        if self.aborts == 0 {
            f64::INFINITY
        } else {
            self.commits as f64 / self.aborts as f64
        }
    }

    /// Difference against an earlier snapshot. Saturating: a `reset`
    /// racing between the two snapshots must not panic the reporter.
    /// `max_write_entries` is a high-water mark, not a counter — the
    /// delta keeps the larger of the two values.
    pub fn delta_since(&self, earlier: &PtmStatsSnapshot) -> PtmStatsSnapshot {
        PtmStatsSnapshot {
            commits: self.commits.saturating_sub(earlier.commits),
            aborts: self.aborts.saturating_sub(earlier.aborts),
            aborts_read_locked: self
                .aborts_read_locked
                .saturating_sub(earlier.aborts_read_locked),
            aborts_read_version: self
                .aborts_read_version
                .saturating_sub(earlier.aborts_read_version),
            aborts_acquire: self.aborts_acquire.saturating_sub(earlier.aborts_acquire),
            aborts_validation: self
                .aborts_validation
                .saturating_sub(earlier.aborts_validation),
            extensions: self.extensions.saturating_sub(earlier.extensions),
            htm_commits: self.htm_commits.saturating_sub(earlier.htm_commits),
            htm_aborts: self.htm_aborts.saturating_sub(earlier.htm_aborts),
            htm_fallbacks: self.htm_fallbacks.saturating_sub(earlier.htm_fallbacks),
            htm_logged_commits: self
                .htm_logged_commits
                .saturating_sub(earlier.htm_logged_commits),
            htm_capacity_aborts: self
                .htm_capacity_aborts
                .saturating_sub(earlier.htm_capacity_aborts),
            htm_conflict_aborts: self
                .htm_conflict_aborts
                .saturating_sub(earlier.htm_conflict_aborts),
            htm_explicit_aborts: self
                .htm_explicit_aborts
                .saturating_sub(earlier.htm_explicit_aborts),
            backend_log_bytes: self
                .backend_log_bytes
                .saturating_sub(earlier.backend_log_bytes),
            max_write_entries: self.max_write_entries.max(earlier.max_write_entries),
            flushes_elided: self.flushes_elided.saturating_sub(earlier.flushes_elided),
            lines_planned: self.lines_planned.saturating_sub(earlier.lines_planned),
            max_read_set_unique: self.max_read_set_unique.max(earlier.max_read_set_unique),
            max_write_lines: self.max_write_lines.max(earlier.max_write_lines),
            shadow_lines_allocated: self
                .shadow_lines_allocated
                .saturating_sub(earlier.shadow_lines_allocated),
            shadow_lines_reclaimed: self
                .shadow_lines_reclaimed
                .saturating_sub(earlier.shadow_lines_reclaimed),
            publish_fences: self.publish_fences.saturating_sub(earlier.publish_fences),
            group_commit_windows: self
                .group_commit_windows
                .saturating_sub(earlier.group_commit_windows),
            sfences_elided: self.sfences_elided.saturating_sub(earlier.sfences_elided),
            max_backoff_ns: self.max_backoff_ns.max(earlier.max_backoff_ns),
            prepares: self.prepares.saturating_sub(earlier.prepares),
            coordinator_commits: self
                .coordinator_commits
                .saturating_sub(earlier.coordinator_commits),
            indoubt_resolved_commit: self
                .indoubt_resolved_commit
                .saturating_sub(earlier.indoubt_resolved_commit),
            indoubt_resolved_abort: self
                .indoubt_resolved_abort
                .saturating_sub(earlier.indoubt_resolved_abort),
            prepare_fence_ns: self
                .prepare_fence_ns
                .saturating_sub(earlier.prepare_fence_ns),
            htm_fallback_fastpathed: self
                .htm_fallback_fastpathed
                .saturating_sub(earlier.htm_fallback_fastpathed),
        }
    }

    /// Accumulate another engine's counters into this snapshot (shard
    /// aggregation): plain counters sum, high-water marks keep the max.
    pub fn merge(&mut self, other: &PtmStatsSnapshot) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.aborts_read_locked += other.aborts_read_locked;
        self.aborts_read_version += other.aborts_read_version;
        self.aborts_acquire += other.aborts_acquire;
        self.aborts_validation += other.aborts_validation;
        self.extensions += other.extensions;
        self.htm_commits += other.htm_commits;
        self.htm_aborts += other.htm_aborts;
        self.htm_fallbacks += other.htm_fallbacks;
        self.htm_logged_commits += other.htm_logged_commits;
        self.htm_capacity_aborts += other.htm_capacity_aborts;
        self.htm_conflict_aborts += other.htm_conflict_aborts;
        self.htm_explicit_aborts += other.htm_explicit_aborts;
        self.backend_log_bytes += other.backend_log_bytes;
        self.max_write_entries = self.max_write_entries.max(other.max_write_entries);
        self.flushes_elided += other.flushes_elided;
        self.lines_planned += other.lines_planned;
        self.max_read_set_unique = self.max_read_set_unique.max(other.max_read_set_unique);
        self.max_write_lines = self.max_write_lines.max(other.max_write_lines);
        self.shadow_lines_allocated += other.shadow_lines_allocated;
        self.shadow_lines_reclaimed += other.shadow_lines_reclaimed;
        self.publish_fences += other.publish_fences;
        self.group_commit_windows += other.group_commit_windows;
        self.sfences_elided += other.sfences_elided;
        self.max_backoff_ns = self.max_backoff_ns.max(other.max_backoff_ns);
        self.prepares += other.prepares;
        self.coordinator_commits += other.coordinator_commits;
        self.indoubt_resolved_commit += other.indoubt_resolved_commit;
        self.indoubt_resolved_abort += other.indoubt_resolved_abort;
        self.prepare_fence_ns += other.prepare_fence_ns;
        self.htm_fallback_fastpathed += other.htm_fallback_fastpathed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_aborts() {
        let s = PtmStats::new();
        PtmStats::bump(&s.commits);
        assert_eq!(s.snapshot().commit_abort_ratio(), f64::INFINITY);
        PtmStats::bump(&s.aborts);
        PtmStats::bump(&s.commits);
        assert_eq!(s.snapshot().commit_abort_ratio(), 2.0);
    }

    /// A reset between snapshots used to underflow-panic `delta_since`.
    #[test]
    fn delta_saturates_across_reset() {
        let s = PtmStats::new();
        PtmStats::bump(&s.commits);
        PtmStats::bump(&s.aborts);
        s.note_write_set(9);
        let a = s.snapshot();
        s.reset();
        let d = s.snapshot().delta_since(&a);
        assert_eq!(d.commits, 0);
        assert_eq!(d.aborts, 0);
        // High-water mark semantics: the larger value survives.
        assert_eq!(d.max_write_entries, 9);
    }

    #[test]
    fn planner_counters_and_high_water_marks() {
        let s = PtmStats::new();
        PtmStats::add(&s.flushes_elided, 5);
        PtmStats::add(&s.lines_planned, 3);
        PtmStats::high_water(&s.max_read_set_unique, 7);
        PtmStats::high_water(&s.max_read_set_unique, 4); // smaller: ignored
        PtmStats::high_water(&s.max_write_lines, 2);
        let a = s.snapshot();
        assert_eq!(a.flushes_elided, 5);
        assert_eq!(a.lines_planned, 3);
        assert_eq!(a.max_read_set_unique, 7);
        PtmStats::add(&s.flushes_elided, 1);
        let d = s.snapshot().delta_since(&a);
        assert_eq!(d.flushes_elided, 1, "plain counter: subtract");
        assert_eq!(d.max_read_set_unique, 7, "high-water: keep the max");
        assert_eq!(d.max_write_lines, 2);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = PtmStats::new();
        PtmStats::bump(&s.commits);
        PtmStats::bump(&s.extensions);
        s.reset();
        assert_eq!(s.snapshot(), PtmStatsSnapshot::default());
    }
}
