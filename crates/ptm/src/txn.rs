//! The transaction driver: retry/backoff loop, commit sequencing, and
//! the hardware-TM fast path.
//!
//! Algorithm-specific behavior (redo / undo / cow shadow) lives behind
//! [`crate::algo::LogPolicy`]; the shared per-attempt machinery (read
//! set, write-set structures, orec protocol, phase charging, trace
//! emission) lives in [`crate::access::TxAccess`]. This module never
//! matches on [`crate::config::Algo`] — it resolves the policy once via
//! the `crate::algo` registry and drives it.
//!
//! All algorithms follow TL2-style timestamp validation against the
//! global clock, with every optimization the paper enables:
//!
//! * **timestamp extension** — a read that observes a too-new version
//!   revalidates the read set and moves the start time forward instead of
//!   aborting;
//! * **read-only fast path** — transactions with no writes commit without
//!   touching the clock or any orec;
//! * **split log** — the log's hash index is a DRAM structure
//!   ([`crate::umap::U64Map`]); only the entry payloads occupy persistent
//!   memory;
//! * **commit-time validation elision** — if the commit timestamp is
//!   exactly `start_time + 2`, no other writer committed in between and
//!   the read set is valid by construction.
//!
//! The persistence choreography is the part the paper measures:
//!
//! * **orec-lazy** flushes its redo-log lines and issues **O(1)** fences:
//!   one after the log, one with the COMMITTED marker, one after
//!   writeback, one with the IDLE marker;
//! * **orec-eager** issues **O(W)** fences: every first write to a
//!   location persists an undo entry (`clwb` + `sfence`) *before* the
//!   in-place store;
//! * **cow shadow** is O(1)-fenced like redo, trading the log payload
//!   for shadow lines published home at commit;
//! * **htm-logged** commits in a hardware section whose contention
//!   window contains *no* `clwb` or `sfence` — persistence moves to a
//!   back-end log sealed after the section retires (two fences,
//!   amortized ring retirement; see `crate::algo::htm`).
//!
//! Under eADR-class durability domains the `clwb`/`sfence` calls are
//! free ([`pmem_sim::MemSession`] elides them), which is precisely the
//! paper's ADR→eADR transformation. `PtmConfig::elide_fences` instead
//! skips only the fences while keeping flushes — the deliberately
//! incorrect variant behind Table III.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use palloc::PHeap;
use pmem_sim::{MemSession, PAddr};

use trace::{AbortCause, EventKind, HtmAbortCause};

use crate::access::TxAccess;
use crate::algo::htm::PendingEntry;
use crate::algo::LogPolicy;
use crate::config::PtmConfig;
use crate::orec::{is_locked, GlobalClock, OrecTable};
use crate::phases::{Phase, PhaseSnapshot, PhaseStats};
use crate::stats::{PtmStats, PtmStatsSnapshot};

/// The group-commit window record: the completion time of the most
/// recent lead fence on this PTM instance. A committing transaction
/// whose flushes were all WPQ-accepted before `done` (and whose clock is
/// within the recency window of it) joins that fence instead of issuing
/// its own `sfence`. Retrospective by construction — joiners never wait
/// for a future fence, so the protocol cannot deadlock a
/// single-OS-thread deterministic run.
#[derive(Debug, Default)]
pub(crate) struct GroupFence {
    /// Virtual completion time of the last lead `sfence` (0 = none yet).
    pub done: u64,
}

/// A shared PTM instance: one per machine/heap.
pub struct Ptm {
    pub config: PtmConfig,
    pub orecs: OrecTable,
    pub clock: GlobalClock,
    pub stats: PtmStats,
    /// Where transaction time goes, by [`Phase`] (see [`crate::phases`]).
    pub phases: PhaseStats,
    /// Group-commit window state (uncontended single-word mutex; only
    /// touched when `config.group_commit` is on).
    pub(crate) group: Mutex<GroupFence>,
    /// `HtmLogged` pending table: home address → the committed-but-
    /// unretired back-end log entry covering it (see `algo::htm`).
    /// Never iterated in a state-bearing order, so a `HashMap` keeps
    /// deterministic runs deterministic.
    ///
    /// Lock discipline: the mutex guards only DRAM bookkeeping. No
    /// holder may issue a timed memory operation (store/clwb/sfence)
    /// while inside — a timed op can block in the clock-domain lag
    /// window waiting for peers to advance, and a peer parked on this
    /// mutex never advances its virtual clock: deadlock.
    pub(crate) pending_log: Mutex<HashMap<u64, PendingEntry>>,
    /// Committers currently persisting tombstones *outside* the
    /// `pending_log` lock (see `algo::htm::append_and_seal`). Ring
    /// recycling must not reuse slots while a tombstone store to one of
    /// them may still be in flight, so `reset_ring` waits for this to
    /// drain before deregistering its records.
    pub(crate) tombstones_in_flight: std::sync::atomic::AtomicU64,
}

impl Ptm {
    pub fn new(config: PtmConfig) -> Arc<Ptm> {
        let orecs = OrecTable::new(config.orec_count);
        Arc::new(Ptm {
            config,
            orecs,
            clock: GlobalClock::new(),
            stats: PtmStats::new(),
            phases: PhaseStats::new(),
            group: Mutex::new(GroupFence::default()),
            pending_log: Mutex::new(HashMap::new()),
            tombstones_in_flight: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Snapshot of commit/abort counters.
    pub fn stats_snapshot(&self) -> PtmStatsSnapshot {
        self.stats.snapshot()
    }

    /// Snapshot of the per-phase time breakdown.
    pub fn phases_snapshot(&self) -> PhaseSnapshot {
        self.phases.snapshot()
    }
}

/// Marker type: the transaction must abort and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort;

/// Result of instrumented transactional operations.
pub type TxResult<T> = Result<T, Abort>;

/// Per-thread transaction executor.
///
/// Owns the thread's [`MemSession`] and persistent log (inside its
/// [`TxAccess`]) plus the algorithm policy resolved from the registry.
/// Obtain one per virtual thread, then call [`TxThread::run`] with a
/// closure over [`Tx`]. The closure **must propagate** `Err(Abort)`
/// from `read`/`write` (use `?`) — swallowing it would let inconsistent
/// reads escape.
pub struct TxThread {
    pub(crate) ax: TxAccess,
    pub(crate) policy: &'static dyn LogPolicy,
}

impl TxThread {
    /// Create an executor for the session's virtual thread; allocates the
    /// thread's persistent log pools on the session's machine.
    pub fn new(ptm: Arc<Ptm>, heap: Arc<PHeap>, s: MemSession) -> TxThread {
        let policy = crate::algo::policy(ptm.config.algo);
        TxThread {
            ax: TxAccess::new(ptm, heap, s),
            policy,
        }
    }

    /// Run `f` as a transaction, retrying on aborts until it commits.
    ///
    /// With `htm_retries > 0` and a durability domain that does not
    /// require flushes (eADR / PDRAM / PDRAM-Lite), the hardware path is
    /// attempted first: no orec instrumentation, no log, no flushes —
    /// conflicts and capacity overflows fall back to the software
    /// algorithm. Under ADR the plain hybrid skips the hardware path
    /// entirely: a `clwb` inside a hardware transaction aborts it (the
    /// paper's §V observation about TSX). A logged hardware policy
    /// ([`crate::config::Algo::HtmLogged`]) keeps all persistence
    /// outside the section and therefore runs the hardware path under
    /// every domain.
    pub fn run<T>(&mut self, f: impl FnMut(&mut Tx<'_>) -> TxResult<T>) -> T {
        // Phase accounting brackets the whole call: every virtual
        // nanosecond between here and the drain is charged to exactly one
        // phase.
        let now = self.ax.s.now();
        self.ax.timer.start(now);
        let v = self.run_inner(f);
        let now = self.ax.s.now();
        self.ax.timer.drain(now, &self.ax.ptm.phases);
        v
    }

    fn run_inner<T>(&mut self, mut f: impl FnMut(&mut Tx<'_>) -> TxResult<T>) -> T {
        self.ax.attempts = 0;
        let htm_retries = self.ax.ptm.config.htm_retries;
        let htm_tries = if !self.ax.s.htm_enabled() {
            0
        } else if self.policy.htm_mode() {
            // A logged hardware policy persists outside the section, so
            // the hardware path is its point under *every* domain — it
            // runs even when the hybrid knob is off.
            htm_retries.max(4)
        } else if htm_retries > 0 && !self.ax.s.machine().domain().requires_flushes() {
            htm_retries
        } else {
            0
        };
        if htm_tries > 0 {
            // Contention-aware fallback pacing (opt-in): consecutive
            // capacity/conflict aborts with an unchanged write-set
            // footprint mean the section will keep failing the same way
            // — skip the rest of the retry budget. Pure DRAM
            // bookkeeping; with the threshold at 0 the loop below is
            // bit-identical to the unpaced driver.
            let pace_threshold = self.ax.ptm.config.htm_fastpath_threshold;
            let mut pace_streak: u32 = 0;
            let mut pace_key: (u64, u64) = (u64::MAX, u64::MAX);
            for attempt in 0..htm_tries {
                // Before the section: the policy's only chance to fence
                // (ring recycling) without the flush landing inside the
                // TxBegin→HtmRetire window.
                self.policy.htm_prepare(&mut self.ax);
                self.ax.begin();
                self.ax.in_htm = true;
                self.ax.s.htm_begin();
                let outcome = f(&mut Tx { th: self });
                let committed = match outcome {
                    Ok(v) => {
                        if self.policy.htm_commit(&mut self.ax) {
                            self.ax.in_htm = false;
                            let logged = self.policy.htm_mode();
                            PtmStats::bump(&self.ax.ptm.stats.htm_commits);
                            if logged {
                                PtmStats::bump(&self.ax.ptm.stats.htm_logged_commits);
                            }
                            PtmStats::bump(&self.ax.ptm.stats.commits);
                            let n = self.ax.entries.len() as u64;
                            self.ax
                                .trace(EventKind::TxCommit, n, if logged { 2 } else { 1 });
                            return v;
                        }
                        false
                    }
                    Err(Abort) => false,
                };
                debug_assert!(!committed);
                if self.ax.s.htm_in_section() {
                    // `Err(Abort)` escaped the closure with the section
                    // still open (policy commit paths close it themselves).
                    self.ax.s.htm_abort();
                }
                self.ax.in_htm = false;
                let cause = self
                    .ax
                    .htm_abort_cause
                    .take()
                    .unwrap_or(HtmAbortCause::Explicit);
                PtmStats::bump(&self.ax.ptm.stats.htm_aborts);
                PtmStats::bump(match cause {
                    HtmAbortCause::Capacity => &self.ax.ptm.stats.htm_capacity_aborts,
                    HtmAbortCause::Conflict => &self.ax.ptm.stats.htm_conflict_aborts,
                    HtmAbortCause::Explicit => &self.ax.ptm.stats.htm_explicit_aborts,
                });
                self.ax
                    .trace(EventKind::HtmAbort, cause as u64, attempt as u64);
                self.ax.abort_cleanup();
                if pace_threshold > 0
                    && matches!(cause, HtmAbortCause::Capacity | HtmAbortCause::Conflict)
                {
                    let key = (cause as u64, self.ax.entries.len() as u64);
                    if key == pace_key {
                        pace_streak += 1;
                    } else {
                        pace_key = key;
                        pace_streak = 1;
                    }
                    if pace_streak >= pace_threshold {
                        PtmStats::bump(&self.ax.ptm.stats.htm_fallback_fastpathed);
                        break;
                    }
                }
                let now = self.ax.s.now();
                self.ax.timer.switch(now, Phase::Backoff);
                let delay = 60u64 << attempt.min(6);
                self.ax.trace(EventKind::Backoff, delay, attempt as u64);
                self.ax.s.advance(delay);
            }
            PtmStats::bump(&self.ax.ptm.stats.htm_fallbacks);
            self.ax.trace(EventKind::HtmFallback, htm_tries as u64, 0);
        }
        self.run_software(f)
    }

    /// The software (STM) retry loop.
    fn run_software<T>(&mut self, mut f: impl FnMut(&mut Tx<'_>) -> TxResult<T>) -> T {
        self.ax.attempts = 0;
        loop {
            self.ax.begin();
            let outcome = f(&mut Tx { th: self });
            match outcome {
                Ok(v) => {
                    if self.try_commit() {
                        PtmStats::bump(&self.ax.ptm.stats.commits);
                        let n = self.policy.write_set_size(&self.ax);
                        self.ax.trace(EventKind::TxCommit, n, 0);
                        return v;
                    }
                }
                Err(Abort) => self.policy.abort_rollback(&mut self.ax, None),
            }
            PtmStats::bump(&self.ax.ptm.stats.aborts);
            if self.ax.ptm.config.tracing {
                let (cause, orec) = self
                    .ax
                    .pending_abort
                    .take()
                    .unwrap_or((AbortCause::User as u64, 0));
                self.ax.s.trace_event(EventKind::TxAbort, cause, orec);
            }
            self.ax.abort_cleanup();
            self.ax.attempts += 1;
            assert!(
                self.ax.attempts < self.ax.ptm.config.max_retries,
                "transaction livelock: {} consecutive aborts on thread {}",
                self.ax.attempts,
                self.ax.tid
            );
            self.ax.backoff();
        }
    }

    /// The underlying session, for non-transactional phases (setup).
    pub fn session_mut(&mut self) -> &mut MemSession {
        &mut self.ax.s
    }

    /// The heap this executor allocates from.
    pub fn heap(&self) -> &Arc<PHeap> {
        &self.ax.heap
    }

    /// The shared PTM.
    pub fn ptm(&self) -> &Arc<Ptm> {
        &self.ax.ptm
    }

    /// Consume the executor, returning its session.
    pub fn into_session(self) -> MemSession {
        self.ax.s
    }

    // ---- internals ------------------------------------------------------

    pub(crate) fn tx_read(&mut self, addr: PAddr) -> TxResult<u64> {
        if self.ax.in_htm {
            return self.htm_read(addr);
        }
        let o = self.ax.ptm.orecs.index_of(addr);
        if let Some(hit) = self.policy.on_read(&mut self.ax, addr, o) {
            return hit;
        }
        self.ax.validated_read(addr, o)
    }

    pub(crate) fn tx_write(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        if self.ax.in_htm {
            return self.htm_write(addr, val);
        }
        self.policy.on_write(&mut self.ax, addr, val)
    }

    /// The shared commit sequence. The policy fills in acquisition,
    /// durability, and publication; the driver owns the clock protocol
    /// and read validation so every algorithm serializes identically.
    fn try_commit(&mut self) -> bool {
        if self.policy.read_only(&self.ax) {
            self.ax.apply_frees();
            return true;
        }
        let now = self.ax.s.now();
        self.ax.timer.switch(now, Phase::Validation);
        if !self.policy.pre_commit_acquire(&mut self.ax) {
            return false;
        }
        let wv = self.ax.ptm.clock.bump();
        self.ax.commit_wv = wv;
        self.ax.s.advance(self.ax.ptm.config.orec_ns);
        if wv != self.ax.start_time + 2 {
            if let Err(o) = self.ax.validate_reads() {
                PtmStats::bump(&self.ax.ptm.stats.aborts_validation);
                self.ax.abort_at(AbortCause::Validation, o);
                self.policy.abort_rollback(&mut self.ax, Some(wv));
                return false;
            }
            let reads = self.ax.read_set.len() as u64;
            self.ax.trace(EventKind::TxValidate, reads, wv);
        }
        self.policy.make_durable(&mut self.ax);
        self.policy.commit_publish(&mut self.ax, wv);
        self.ax
            .ptm
            .stats
            .note_write_set(self.policy.write_set_size(&self.ax));
        self.ax.note_read_set();
        self.ax.apply_frees();
        true
    }

    /// Hardware-path read: the cache coherence protocol does the conflict
    /// tracking, so no orec time is charged — but a locked or too-new
    /// stripe means a software writer is (or was) active and the hardware
    /// transaction must abort. The read's line joins the section's
    /// footprint; overflowing the modeled L1/L2 bound is a capacity
    /// abort.
    fn htm_read(&mut self, addr: PAddr) -> TxResult<u64> {
        if !self.ax.s.htm_track_read(addr) {
            self.ax.htm_abort_cause = Some(HtmAbortCause::Capacity);
            return Err(Abort);
        }
        if !self.ax.entries.is_empty() {
            if let Some(i) = self.ax.redo_index.get(addr.0) {
                return Ok(self.ax.entries[i as usize].1);
            }
        }
        let o = self.ax.ptm.orecs.index_of(addr);
        let v = self.ax.ptm.orecs.load(o);
        if is_locked(v) || v > self.ax.start_time {
            self.ax.htm_abort_cause = Some(HtmAbortCause::Conflict);
            return Err(Abort);
        }
        Ok(self.ax.s.load(addr))
    }

    /// Hardware-path write: buffered in the (volatile) write set. The
    /// capacity bound is the section's *distinct-line* footprint (what a
    /// real HTM tracks), not the entry count — many words on one line
    /// cost one footprint line.
    fn htm_write(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        if !self.ax.s.htm_track_write(addr) {
            self.ax.htm_abort_cause = Some(HtmAbortCause::Capacity);
            return Err(Abort);
        }
        if let Some(i) = self.ax.redo_index.get(addr.0) {
            self.ax.entries[i as usize].1 = val;
            return Ok(());
        }
        self.ax.entries.push((addr.0, val));
        self.ax
            .redo_index
            .insert(addr.0, self.ax.entries.len() as u64 - 1);
        Ok(())
    }
}

/// Handle passed to transaction closures.
pub struct Tx<'a> {
    th: &'a mut TxThread,
}

impl Tx<'_> {
    /// Transactional 64-bit read.
    #[inline]
    pub fn read(&mut self, addr: PAddr) -> TxResult<u64> {
        self.th.tx_read(addr)
    }

    /// Transactional 64-bit write.
    #[inline]
    pub fn write(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        self.th.tx_write(addr, val)
    }

    /// Read `base + off` (field access sugar).
    #[inline]
    pub fn read_at(&mut self, base: PAddr, off: u64) -> TxResult<u64> {
        self.th.tx_read(base.offset(off))
    }

    /// Write `base + off`.
    #[inline]
    pub fn write_at(&mut self, base: PAddr, off: u64, val: u64) -> TxResult<()> {
        self.th.tx_write(base.offset(off), val)
    }

    /// Allocate from the persistent heap. Returned blocks are freed
    /// automatically if the transaction aborts.
    pub fn alloc(&mut self, words: usize) -> PAddr {
        let heap = Arc::clone(&self.th.ax.heap);
        let a = heap.alloc(&mut self.th.ax.s, words);
        self.th.ax.tx_allocs.push(a);
        a
    }

    /// Free a block; deferred until the transaction commits.
    pub fn free(&mut self, addr: PAddr) {
        self.th.ax.tx_frees.push(addr);
    }

    /// Allocate a zeroed block with the alloc-new optimization: the
    /// zeroes are written directly (not logged — the block is unreachable
    /// until a logged pointer-write commits) and flushed with the commit.
    pub fn alloc_zeroed(&mut self, words: usize) -> PAddr {
        let heap = Arc::clone(&self.th.ax.heap);
        let a = heap.alloc(&mut self.th.ax.s, words);
        for w in 0..words as u64 {
            self.th.ax.s.store(a.offset(w), 0);
        }
        self.th.ax.tx_allocs.push(a);
        self.th.ax.fresh_blocks.push((a.0, words));
        a
    }

    /// Read a pointer-valued word.
    #[inline]
    pub fn read_ptr(&mut self, addr: PAddr) -> TxResult<PAddr> {
        Ok(PAddr(self.th.tx_read(addr)?))
    }

    /// Write a pointer-valued word.
    #[inline]
    pub fn write_ptr(&mut self, addr: PAddr, p: PAddr) -> TxResult<()> {
        self.th.tx_write(addr, p.0)
    }
}
