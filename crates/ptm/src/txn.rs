//! The transaction engine: orec-lazy (redo) and orec-eager (undo).
//!
//! Both algorithms follow TL2-style timestamp validation against the
//! global clock, with every optimization the paper enables:
//!
//! * **timestamp extension** — a read that observes a too-new version
//!   revalidates the read set and moves the start time forward instead of
//!   aborting;
//! * **read-only fast path** — transactions with no writes commit without
//!   touching the clock or any orec;
//! * **split log** — the log's hash index is a DRAM structure
//!   ([`crate::umap::U64Map`]); only the entry payloads occupy persistent
//!   memory;
//! * **commit-time validation elision** — if the commit timestamp is
//!   exactly `start_time + 2`, no other writer committed in between and
//!   the read set is valid by construction.
//!
//! The persistence choreography is the part the paper measures:
//!
//! * **orec-lazy** flushes its redo-log lines and issues **O(1)** fences:
//!   one after the log, one with the COMMITTED marker, one after
//!   writeback, one with the IDLE marker;
//! * **orec-eager** issues **O(W)** fences: every first write to a
//!   location persists an undo entry (`clwb` + `sfence`) *before* the
//!   in-place store.
//!
//! Under eADR-class durability domains the `clwb`/`sfence` calls are
//! free ([`pmem_sim::MemSession`] elides them), which is precisely the
//! paper's ADR→eADR transformation. `PtmConfig::elide_fences` instead
//! skips only the fences while keeping flushes — the deliberately
//! incorrect variant behind Table III.

use std::sync::Arc;

use palloc::PHeap;
use pmem_sim::{MemSession, PAddr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use trace::{AbortCause, EventKind};

use crate::config::{Algo, FlushTiming, PtmConfig};
use crate::log::{TxLog, STATE_COMMITTED, STATE_IDLE};
use crate::orec::{is_locked, owner_of, GlobalClock, OrecTable};
use crate::phases::{Phase, PhaseSnapshot, PhaseStats, PhaseTimer};
use crate::stats::{PtmStats, PtmStatsSnapshot};
use crate::umap::{LineSet, U64Map};

/// A shared PTM instance: one per machine/heap.
pub struct Ptm {
    pub config: PtmConfig,
    pub orecs: OrecTable,
    pub clock: GlobalClock,
    pub stats: PtmStats,
    /// Where transaction time goes, by [`Phase`] (see [`crate::phases`]).
    pub phases: PhaseStats,
}

impl Ptm {
    pub fn new(config: PtmConfig) -> Arc<Ptm> {
        let orecs = OrecTable::new(config.orec_count);
        Arc::new(Ptm {
            config,
            orecs,
            clock: GlobalClock::new(),
            stats: PtmStats::new(),
            phases: PhaseStats::new(),
        })
    }

    /// Snapshot of commit/abort counters.
    pub fn stats_snapshot(&self) -> PtmStatsSnapshot {
        self.stats.snapshot()
    }

    /// Snapshot of the per-phase time breakdown.
    pub fn phases_snapshot(&self) -> PhaseSnapshot {
        self.phases.snapshot()
    }
}

/// Marker type: the transaction must abort and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort;

/// Result of instrumented transactional operations.
pub type TxResult<T> = Result<T, Abort>;

/// Per-thread transaction executor.
///
/// Owns the thread's [`MemSession`] and persistent log. Obtain one per
/// virtual thread, then call [`TxThread::run`] with a closure over
/// [`Tx`]. The closure **must propagate** `Err(Abort)` from `read`/`write`
/// (use `?`) — swallowing it would let inconsistent reads escape.
pub struct TxThread {
    ptm: Arc<Ptm>,
    heap: Arc<PHeap>,
    s: MemSession,
    tid: u64,
    log: TxLog,

    start_time: u64,
    read_set: Vec<(u32, u64)>,
    /// Duplicate filter over `read_set` (orec -> slot), maintained only
    /// under `write_combining`: repeated reads of a hot stripe then cost
    /// O(unique orecs) in `validate_reads`/`extend`.
    read_index: U64Map,
    /// Redo: (addr bits, new value). Undo: (addr bits, old value).
    entries: Vec<(u64, u64)>,
    redo_index: U64Map,
    /// Write-combining flush planner: every durability obligation of the
    /// current fence window, deduped at cache-line granularity.
    plan: LineSet,
    /// Reusable drain buffer handed to `MemSession::clwb_batch`.
    plan_scratch: Vec<PAddr>,
    /// Held orecs with their pre-lock versions.
    owned: Vec<(u32, u64)>,
    owned_map: U64Map,
    undo_logged: U64Map,
    eager_writes: Vec<u64>,
    /// Blocks allocated and zero-initialized this transaction via the
    /// alloc-new optimization: their stores bypass the log (they are
    /// unreachable until a logged pointer-write commits) but their lines
    /// must be flushed before the commit point.
    fresh_blocks: Vec<(u64, usize)>,
    tx_allocs: Vec<PAddr>,
    tx_frees: Vec<PAddr>,
    /// Cached copy of the persistent undo sequence number (log header
    /// word `W_SEQ`).
    undo_seq: u64,
    /// Executing on the hardware path (no logging, no orec charges).
    in_htm: bool,
    rng: SmallRng,
    attempts: u32,
    /// Charges elapsed virtual time to [`Phase`]s; drained into
    /// `ptm.phases` at the end of every [`TxThread::run`].
    timer: PhaseTimer,
    /// Abort attribution for the flight recorder: `(cause code, orec)`
    /// set at the site that decided to abort, consumed when the abort is
    /// counted (a `None` at that point means the closure itself returned
    /// `Err(Abort)` — a user abort with no contended orec).
    pending_abort: Option<(u64, u64)>,
}

impl TxThread {
    /// Create an executor for the session's virtual thread; allocates the
    /// thread's persistent log pools on the session's machine.
    pub fn new(ptm: Arc<Ptm>, heap: Arc<PHeap>, s: MemSession) -> TxThread {
        let tid = s.tid() as u64;
        let log = TxLog::create(s.machine(), s.tid(), &ptm.config);
        let cap = ptm.config.log_capacity.min(1 << 12);
        TxThread {
            ptm,
            heap,
            s,
            tid,
            log,
            start_time: 0,
            read_set: Vec::with_capacity(256),
            read_index: U64Map::new(256),
            entries: Vec::with_capacity(cap.min(256)),
            redo_index: U64Map::new(64),
            plan: LineSet::new(64),
            plan_scratch: Vec::with_capacity(64),
            owned: Vec::with_capacity(64),
            owned_map: U64Map::new(64),
            undo_logged: U64Map::new(64),
            eager_writes: Vec::with_capacity(64),
            fresh_blocks: Vec::new(),
            tx_allocs: Vec::new(),
            tx_frees: Vec::new(),
            undo_seq: 0,
            in_htm: false,
            rng: SmallRng::seed_from_u64(0x9E37 ^ tid),
            attempts: 0,
            timer: PhaseTimer::new(),
            pending_abort: None,
        }
    }

    /// Record a flight-recorder event. One boolean test when tracing is
    /// off (and the session only captures a ring when a sink is attached
    /// to the machine, so an enabled flag without a sink is still just a
    /// second branch).
    #[inline]
    fn trace(&mut self, kind: EventKind, a: u64, b: u64) {
        if self.ptm.config.tracing {
            self.s.trace_event(kind, a, b);
        }
    }

    /// Note which orec (and why) decided the current attempt must abort.
    #[inline]
    fn abort_at(&mut self, cause: AbortCause, orec: u32) {
        if self.ptm.config.tracing {
            self.pending_abort = Some((cause as u64, orec as u64));
        }
    }

    /// Run `f` as a transaction, retrying on aborts until it commits.
    ///
    /// With `htm_retries > 0` and a durability domain that does not
    /// require flushes (eADR / PDRAM / PDRAM-Lite), the hardware path is
    /// attempted first: no orec instrumentation, no log, no flushes —
    /// conflicts and capacity overflows fall back to the software
    /// algorithm. Under ADR the hardware path is skipped entirely: a
    /// `clwb` inside a hardware transaction aborts it (the paper's §V
    /// observation about TSX).
    pub fn run<T>(&mut self, f: impl FnMut(&mut Tx<'_>) -> TxResult<T>) -> T {
        // Phase accounting brackets the whole call: every virtual
        // nanosecond between here and the drain is charged to exactly one
        // phase.
        let now = self.s.now();
        self.timer.start(now);
        let v = self.run_inner(f);
        let now = self.s.now();
        self.timer.drain(now, &self.ptm.phases);
        v
    }

    fn run_inner<T>(&mut self, mut f: impl FnMut(&mut Tx<'_>) -> TxResult<T>) -> T {
        self.attempts = 0;
        let htm_retries = self.ptm.config.htm_retries;
        if htm_retries > 0 && !self.s.machine().domain().requires_flushes() {
            for attempt in 0..htm_retries {
                self.begin();
                self.in_htm = true;
                self.s.advance(self.ptm.config.htm_begin_ns);
                let outcome = f(&mut Tx { th: self });
                let committed = match outcome {
                    Ok(v) => {
                        if self.commit_htm() {
                            self.in_htm = false;
                            PtmStats::bump(&self.ptm.stats.htm_commits);
                            PtmStats::bump(&self.ptm.stats.commits);
                            self.trace(EventKind::TxCommit, self.entries.len() as u64, 1);
                            return v;
                        }
                        false
                    }
                    Err(Abort) => false,
                };
                debug_assert!(!committed);
                self.in_htm = false;
                PtmStats::bump(&self.ptm.stats.htm_aborts);
                self.trace(EventKind::HtmAbort, attempt as u64, 0);
                self.abort_cleanup();
                let now = self.s.now();
                self.timer.switch(now, Phase::Backoff);
                self.s.advance(60u64 << attempt.min(6));
            }
            PtmStats::bump(&self.ptm.stats.htm_fallbacks);
            self.trace(EventKind::HtmFallback, htm_retries as u64, 0);
        }
        self.run_software(f)
    }

    /// The software (STM) retry loop.
    fn run_software<T>(&mut self, mut f: impl FnMut(&mut Tx<'_>) -> TxResult<T>) -> T {
        self.attempts = 0;
        loop {
            self.begin();
            let outcome = f(&mut Tx { th: self });
            match outcome {
                Ok(v) => {
                    if self.try_commit() {
                        PtmStats::bump(&self.ptm.stats.commits);
                        self.trace(EventKind::TxCommit, self.entries.len() as u64, 0);
                        return v;
                    }
                }
                Err(Abort) => self.user_abort(),
            }
            PtmStats::bump(&self.ptm.stats.aborts);
            if self.ptm.config.tracing {
                let (cause, orec) = self
                    .pending_abort
                    .take()
                    .unwrap_or((AbortCause::User as u64, 0));
                self.s.trace_event(EventKind::TxAbort, cause, orec);
            }
            self.abort_cleanup();
            self.attempts += 1;
            assert!(
                self.attempts < self.ptm.config.max_retries,
                "transaction livelock: {} consecutive aborts on thread {}",
                self.attempts,
                self.tid
            );
            self.backoff();
        }
    }

    /// The underlying session, for non-transactional phases (setup).
    pub fn session_mut(&mut self) -> &mut MemSession {
        &mut self.s
    }

    /// The heap this executor allocates from.
    pub fn heap(&self) -> &Arc<PHeap> {
        &self.heap
    }

    /// The shared PTM.
    pub fn ptm(&self) -> &Arc<Ptm> {
        &self.ptm
    }

    /// Consume the executor, returning its session.
    pub fn into_session(self) -> MemSession {
        self.s
    }

    // ---- internals ------------------------------------------------------

    /// `sfence`, charged to [`Phase::FenceWait`]. Under eADR-class
    /// domains the session elides the fence, so ~0 ns is charged — this
    /// is how the profiler shows the ADR→eADR fence-wait collapse.
    #[inline]
    fn fence(&mut self) {
        if !self.ptm.config.elide_fences {
            let now = self.s.now();
            let prev = self.timer.switch(now, Phase::FenceWait);
            self.s.sfence();
            let now = self.s.now();
            self.timer.switch(now, prev);
        }
    }

    /// `clwb`, charged to [`Phase::Flush`] (elided → ~0 under eADR).
    #[inline]
    fn flush_line(&mut self, addr: PAddr) {
        let now = self.s.now();
        let prev = self.timer.switch(now, Phase::Flush);
        self.s.clwb(addr);
        let now = self.s.now();
        self.timer.switch(now, prev);
    }

    /// Whether this commit should route its flushes through the
    /// write-combining planner. Under eADR-class domains the planner is
    /// skipped entirely (flushes are free no-ops there, so planning
    /// would only spend DRAM time and skew the planner counters).
    #[inline]
    fn combining(&self) -> bool {
        self.ptm.config.write_combining && self.s.machine().domain().requires_flushes()
    }

    /// Offer the cache line containing `addr` to the fence window's plan.
    #[inline]
    fn plan_line(&mut self, addr: PAddr) {
        let base = PAddr::new(addr.pool(), addr.line() * pmem_sim::WORDS_PER_LINE as u64);
        self.plan.insert(base.0);
    }

    /// Drain the planned window through the bank-interleaved batched
    /// flusher, charged to [`Phase::Flush`]; updates the planner
    /// counters (`lines_planned`, `flushes_elided`).
    fn drain_plan(&mut self) {
        let unique = self.plan.len() as u64;
        let offered = self.plan.offered();
        if unique == 0 {
            return;
        }
        PtmStats::add(&self.ptm.stats.lines_planned, unique);
        PtmStats::add(&self.ptm.stats.flushes_elided, offered - unique);
        self.plan_scratch.clear();
        self.plan_scratch
            .extend(self.plan.lines().iter().map(|&k| PAddr(k)));
        self.plan.clear();
        let now = self.s.now();
        let prev = self.timer.switch(now, Phase::Flush);
        self.s.clwb_batch(&mut self.plan_scratch);
        let now = self.s.now();
        self.timer.switch(now, prev);
    }

    #[inline]
    fn index_cost(&mut self) {
        let cfg = &self.ptm.config;
        if cfg.split_log_index {
            self.s.advance(cfg.index_ns);
        } else {
            // Unsplit ablation: the index itself lives in Optane; charge a
            // partial media access per probe (some probes hit cache).
            let extra = self.s.machine().model().optane_load_ns / 4;
            self.s.advance(cfg.index_ns + extra);
        }
    }

    fn begin(&mut self) {
        // A new attempt starts in speculation (also closes out the
        // previous attempt's backoff/rollback interval).
        let now = self.s.now();
        self.timer.switch(now, Phase::Speculation);
        self.read_set.clear();
        self.read_index.clear();
        self.entries.clear();
        self.redo_index.clear();
        self.plan.clear();
        self.owned.clear();
        self.owned_map.clear();
        self.undo_logged.clear();
        self.eager_writes.clear();
        self.fresh_blocks.clear();
        self.tx_allocs.clear();
        self.tx_frees.clear();
        self.start_time = self.ptm.clock.sample();
        self.s.advance(self.ptm.config.orec_ns);
        self.pending_abort = None;
        let (attempts, start) = (self.attempts as u64, self.start_time);
        self.trace(EventKind::TxBegin, attempts, start);
    }

    /// Timestamp extension: revalidate the read set at a newer clock.
    fn extend(&mut self) -> bool {
        let cfg_orec_ns = self.ptm.config.orec_ns;
        let ts = self.ptm.clock.sample();
        self.s
            .advance(cfg_orec_ns * (self.read_set.len() as u64 + 1));
        for i in 0..self.read_set.len() {
            let (o, ver) = self.read_set[i];
            let cur = self.ptm.orecs.load(o);
            if cur == ver {
                continue;
            }
            if is_locked(cur) && owner_of(cur) == self.tid {
                if let Some(idx) = self.owned_map.get(o as u64) {
                    if self.owned[idx as usize].1 == ver {
                        continue;
                    }
                }
            }
            return false;
        }
        self.start_time = ts;
        PtmStats::bump(&self.ptm.stats.extensions);
        true
    }

    pub(crate) fn tx_read(&mut self, addr: PAddr) -> TxResult<u64> {
        if self.in_htm {
            return self.htm_read(addr);
        }
        let cfg_algo = self.ptm.config.algo;
        if cfg_algo == Algo::RedoLazy && !self.entries.is_empty() {
            self.index_cost();
            if let Some(i) = self.redo_index.get(addr.0) {
                return Ok(self.entries[i as usize].1);
            }
        }
        let o = self.ptm.orecs.index_of(addr);
        if cfg_algo == Algo::UndoEager && !self.owned.is_empty() {
            self.s.advance(self.ptm.config.index_ns);
            if self.owned_map.get(o as u64).is_some() {
                // We hold the stripe: in-place values are ours to read.
                return Ok(self.s.load(addr));
            }
        }
        let spin_limit = self.ptm.config.lock_spin;
        let orec_ns = self.ptm.config.orec_ns;
        let mut spins = 0;
        loop {
            self.s.advance(orec_ns);
            let v1 = self.ptm.orecs.load(o);
            if is_locked(v1) {
                if spins < spin_limit {
                    spins += 1;
                    self.s.advance(8);
                    continue;
                }
                PtmStats::bump(&self.ptm.stats.aborts_read_locked);
                self.abort_at(AbortCause::ReadLocked, o);
                return Err(Abort);
            }
            if v1 > self.start_time {
                if self.ptm.config.ts_extension && self.extend() {
                    continue;
                }
                PtmStats::bump(&self.ptm.stats.aborts_read_version);
                self.abort_at(AbortCause::ReadVersion, o);
                return Err(Abort);
            }
            let val = self.s.load(addr);
            self.s.advance(orec_ns);
            let v2 = self.ptm.orecs.load(o);
            if v2 != v1 {
                if spins < spin_limit {
                    spins += 1;
                    continue;
                }
                PtmStats::bump(&self.ptm.stats.aborts_read_version);
                self.abort_at(AbortCause::ReadVersion, o);
                return Err(Abort);
            }
            self.trace(EventKind::TxRead, o as u64, addr.0);
            if self.ptm.config.write_combining {
                // Duplicate-filtered read set: one slot per orec. A
                // repeat hit must have observed the recorded version —
                // any later committer bumps the orec past start_time,
                // which forces the extension/abort path above before
                // this push point is reached.
                match self.read_index.get(o as u64) {
                    Some(slot) => {
                        debug_assert_eq!(
                            self.read_set[slot as usize].1, v1,
                            "re-read of orec {o} observed a version the recorded \
                             snapshot did not"
                        );
                    }
                    None => {
                        self.read_index.insert(o as u64, self.read_set.len() as u64);
                        self.read_set.push((o, v1));
                    }
                }
            } else {
                self.read_set.push((o, v1));
            }
            return Ok(val);
        }
    }

    pub(crate) fn tx_write(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        if self.in_htm {
            return self.htm_write(addr, val);
        }
        match self.ptm.config.algo {
            Algo::RedoLazy => self.redo_write(addr, val),
            Algo::UndoEager => self.eager_write(addr, val),
        }
    }

    fn redo_write(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        if self.ptm.config.tracing {
            // The orec lookup is pure address hashing; only pay for it
            // when the event is actually recorded.
            let o = self.ptm.orecs.index_of(addr);
            self.s.trace_event(EventKind::TxWrite, o as u64, addr.0);
        }
        self.index_cost();
        let now = self.s.now();
        let outer = self.timer.switch(now, Phase::LogAppend);
        if let Some(i) = self.redo_index.get(addr.0) {
            let i = i as usize;
            self.entries[i].1 = val;
            let e = self.log.entry_addr(i);
            self.s.store(e.offset(1), val);
            let now = self.s.now();
            self.timer.switch(now, outer);
            return Ok(());
        }
        let i = self.entries.len();
        assert!(i < self.log.capacity, "redo log overflow ({i} entries)");
        self.entries.push((addr.0, val));
        self.redo_index.insert(addr.0, i as u64);
        let e = self.log.entry_addr(i);
        self.s.store(e, addr.0);
        self.s.store(e.offset(1), val);
        // Incremental flush timing (§III-B): stagger `clwb`s during
        // execution by flushing each log line as it *completes* (the
        // commit still covers every touched line). The paper found this
        // makes no difference vs batching — flushing half-filled lines on
        // every append would instead double the writeback traffic.
        if self.ptm.config.flush_timing == FlushTiming::Incremental && i > 0 {
            let prev = self.log.entry_addr(i - 1);
            if prev.line() != e.line() || prev.pool() != e.pool() {
                self.flush_line(prev);
            }
        }
        let now = self.s.now();
        self.timer.switch(now, outer);
        Ok(())
    }

    fn eager_write(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        let o = self.ptm.orecs.index_of(addr);
        self.index_cost();
        if self.owned_map.get(o as u64).is_none() {
            let spin_limit = self.ptm.config.lock_spin;
            let orec_ns = self.ptm.config.orec_ns;
            let mut spins = 0;
            loop {
                self.s.advance(orec_ns);
                let v = self.ptm.orecs.load(o);
                if is_locked(v) {
                    // (cannot be ours: owned_map said no)
                    if spins < spin_limit {
                        spins += 1;
                        self.s.advance(8);
                        continue;
                    }
                    PtmStats::bump(&self.ptm.stats.aborts_acquire);
                    self.abort_at(AbortCause::Acquire, o);
                    return Err(Abort);
                }
                if v > self.start_time {
                    // Acquiring a newer stripe would let owned-stripe reads
                    // see post-snapshot values; extend or abort.
                    if self.ptm.config.ts_extension && self.extend() {
                        continue;
                    }
                    PtmStats::bump(&self.ptm.stats.aborts_acquire);
                    self.abort_at(AbortCause::Acquire, o);
                    return Err(Abort);
                }
                self.s.advance(orec_ns);
                if self.ptm.orecs.try_lock(o, v, self.tid).is_ok() {
                    self.owned_map.insert(o as u64, self.owned.len() as u64);
                    self.owned.push((o, v));
                    self.trace(EventKind::TxAcquire, o as u64, v);
                    break;
                }
                if spins >= spin_limit {
                    PtmStats::bump(&self.ptm.stats.aborts_acquire);
                    self.abort_at(AbortCause::Acquire, o);
                    return Err(Abort);
                }
                spins += 1;
            }
        }
        // First write to this address: persist the old value, fenced,
        // before the in-place store (the undo fence the paper measures).
        self.index_cost();
        if self.undo_logged.get(addr.0).is_none() {
            let now = self.s.now();
            let outer = self.timer.switch(now, Phase::LogAppend);
            self.undo_logged.insert(addr.0, 1);
            let i = self.entries.len();
            assert!(i < self.log.capacity, "undo log overflow ({i} entries)");
            if i == 0 {
                // First entry of this transaction: persist the bumped
                // sequence number before any entry can become valid, so
                // recovery rejects stale entries from earlier
                // transactions that lie past ours.
                self.undo_seq += 1;
                let seq_addr = self.log.seq_addr();
                self.s.store(seq_addr, self.undo_seq);
                self.flush_line(seq_addr);
                self.fence();
            }
            let old = self.s.load(addr);
            self.entries.push((addr.0, old));
            let e = self.log.entry_addr(i);
            self.s.store(e, addr.0);
            self.s.store(e.offset(1), old);
            self.s
                .store(e.offset(2), crate::log::seal(addr.0, old, self.undo_seq));
            self.flush_line(e);
            self.fence();
            let now = self.s.now();
            self.timer.switch(now, outer);
            // One commit-time flush obligation per *unique* address:
            // repeat stores used to push a duplicate per store, inflating
            // the commit flush loop for write-hot transactions.
            self.eager_writes.push(addr.0);
        }
        self.s.store(addr, val);
        self.trace(EventKind::TxWrite, o as u64, addr.0);
        Ok(())
    }

    /// Hardware-path read: the cache coherence protocol does the conflict
    /// tracking, so no orec time is charged — but a locked or too-new
    /// stripe means a software writer is (or was) active and the hardware
    /// transaction must abort.
    fn htm_read(&mut self, addr: PAddr) -> TxResult<u64> {
        if !self.entries.is_empty() {
            if let Some(i) = self.redo_index.get(addr.0) {
                return Ok(self.entries[i as usize].1);
            }
        }
        let o = self.ptm.orecs.index_of(addr);
        let v = self.ptm.orecs.load(o);
        if is_locked(v) || v > self.start_time {
            return Err(Abort);
        }
        Ok(self.s.load(addr))
    }

    /// Hardware-path write: buffered in the (volatile) write set; exceeds
    /// of the modeled L1-bound capacity abort the hardware transaction.
    fn htm_write(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        if let Some(i) = self.redo_index.get(addr.0) {
            self.entries[i as usize].1 = val;
            return Ok(());
        }
        if self.entries.len() >= self.ptm.config.htm_capacity {
            return Err(Abort); // capacity abort
        }
        self.entries.push((addr.0, val));
        self.redo_index
            .insert(addr.0, self.entries.len() as u64 - 1);
        Ok(())
    }

    /// Hardware-path commit: acquire the write-set stripes, then
    /// atomically validate-and-serialize on the global clock (no other
    /// transaction may have committed since begin — conservative, like a
    /// real HTM's read-set tracking at line granularity), then apply.
    /// No logging and no flushes: under eADR-class domains the stores are
    /// durable the moment they are cache-visible, which is exactly why
    /// the paper expects TSX to compose with eADR but not ADR.
    fn commit_htm(&mut self) -> bool {
        let now = self.s.now();
        self.timer.switch(now, Phase::Validation);
        self.s.advance(self.ptm.config.htm_commit_ns);
        if self.entries.is_empty() {
            // Read-only: all reads saw orec versions <= start_time and
            // unlocked stripes; any later committer would have bumped the
            // clock, which htm_read's version check bounds. Commit.
            self.apply_frees();
            return true;
        }
        for i in 0..self.entries.len() {
            let addr = PAddr(self.entries[i].0);
            let o = self.ptm.orecs.index_of(addr);
            if self.owned_map.get(o as u64).is_some() {
                continue;
            }
            let v = self.ptm.orecs.load(o);
            if is_locked(v) || self.ptm.orecs.try_lock(o, v, self.tid).is_err() {
                self.release_owned_restore();
                return false;
            }
            self.owned_map.insert(o as u64, self.owned.len() as u64);
            self.owned.push((o, v));
        }
        let wv = match self.ptm.clock.try_advance(self.start_time) {
            Ok(wv) => wv,
            Err(_) => {
                self.release_owned_restore();
                return false;
            }
        };
        // A real hardware transaction's stores become visible (and, under
        // eADR, durable) atomically at xend; a simulated power failure
        // must not split the application of the write set — there is no
        // log to repair a torn hardware commit.
        self.s.enter_atomic();
        let now = self.s.now();
        self.timer.switch(now, Phase::Writeback);
        for i in 0..self.entries.len() {
            let (a, v) = self.entries[i];
            self.s.store(PAddr(a), v);
        }
        let now = self.s.now();
        self.timer.switch(now, Phase::Validation);
        for i in 0..self.owned.len() {
            let (o, _) = self.owned[i];
            self.ptm.orecs.release(o, wv);
        }
        self.s.exit_atomic();
        self.apply_frees();
        true
    }

    fn try_commit(&mut self) -> bool {
        match self.ptm.config.algo {
            Algo::RedoLazy => self.commit_redo(),
            Algo::UndoEager => self.commit_undo(),
        }
    }

    /// Validate the read set against held/current orecs. Assumes write
    /// orecs are already acquired. On failure returns the orec whose
    /// version moved (abort attribution).
    fn validate_reads(&mut self) -> Result<(), u32> {
        self.s
            .advance(self.ptm.config.orec_ns * self.read_set.len() as u64);
        for i in 0..self.read_set.len() {
            let (o, ver) = self.read_set[i];
            let cur = self.ptm.orecs.load(o);
            if cur == ver {
                continue;
            }
            if is_locked(cur) && owner_of(cur) == self.tid {
                if let Some(idx) = self.owned_map.get(o as u64) {
                    if self.owned[idx as usize].1 == ver {
                        continue;
                    }
                }
            }
            return Err(o);
        }
        Ok(())
    }

    /// Flush the lines of alloc-new blocks (unlogged initialization) so
    /// they are durable before the commit point.
    fn flush_fresh_blocks(&mut self) {
        for i in 0..self.fresh_blocks.len() {
            let (addr_bits, words) = self.fresh_blocks[i];
            let base = PAddr(addr_bits);
            let mut w = 0u64;
            while w < words as u64 {
                self.flush_line(base.offset(w));
                w += pmem_sim::WORDS_PER_LINE as u64;
            }
        }
    }

    /// Planner counterpart of [`Self::flush_fresh_blocks`]: offer the
    /// alloc-new lines to the current fence window instead of flushing
    /// them immediately (overlapping blocks dedupe).
    fn plan_fresh_blocks(&mut self) {
        for i in 0..self.fresh_blocks.len() {
            let (addr_bits, words) = self.fresh_blocks[i];
            let base = PAddr(addr_bits);
            let mut w = 0u64;
            while w < words as u64 {
                self.plan_line(base.offset(w));
                w += pmem_sim::WORDS_PER_LINE as u64;
            }
        }
    }

    fn commit_redo(&mut self) -> bool {
        if self.entries.is_empty() {
            // Read-only: per-read validation against start_time already
            // guarantees a consistent snapshot.
            self.apply_frees();
            return true;
        }
        // Acquire all write-set orecs (commit-time locking).
        let now = self.s.now();
        self.timer.switch(now, Phase::Validation);
        let spin_limit = self.ptm.config.lock_spin;
        let orec_ns = self.ptm.config.orec_ns;
        for i in 0..self.entries.len() {
            let addr = PAddr(self.entries[i].0);
            let o = self.ptm.orecs.index_of(addr);
            self.s.advance(self.ptm.config.index_ns);
            if self.owned_map.get(o as u64).is_some() {
                continue;
            }
            let mut spins = 0;
            let acquired = loop {
                self.s.advance(orec_ns);
                let v = self.ptm.orecs.load(o);
                if is_locked(v) {
                    if spins < spin_limit {
                        spins += 1;
                        self.s.advance(8);
                        continue;
                    }
                    break false;
                }
                self.s.advance(orec_ns);
                if self.ptm.orecs.try_lock(o, v, self.tid).is_ok() {
                    self.owned_map.insert(o as u64, self.owned.len() as u64);
                    self.owned.push((o, v));
                    self.trace(EventKind::TxAcquire, o as u64, v);
                    break true;
                }
                if spins >= spin_limit {
                    break false;
                }
                spins += 1;
            };
            if !acquired {
                PtmStats::bump(&self.ptm.stats.aborts_acquire);
                self.abort_at(AbortCause::Acquire, o);
                self.release_owned_restore();
                return false;
            }
        }
        let wv = self.ptm.clock.bump();
        self.s.advance(orec_ns);
        if wv != self.start_time + 2 {
            if let Err(o) = self.validate_reads() {
                PtmStats::bump(&self.ptm.stats.aborts_validation);
                self.abort_at(AbortCause::Validation, o);
                self.release_owned_restore();
                return false;
            }
            let reads = self.read_set.len() as u64;
            self.trace(EventKind::TxValidate, reads, wv);
        }
        // Persist alloc-new initialization and the redo log: flush each
        // line once, one fence for both.
        let combining = self.combining();
        if combining {
            // Window 1: plan fresh-block lines and log lines together —
            // the planner dedupes across both sources (a fresh block the
            // log pass also covered is flushed once).
            self.plan_fresh_blocks();
            for i in 0..self.entries.len() {
                let e = self.log.entry_addr(i);
                self.plan_line(e);
            }
            self.drain_plan();
        } else {
            self.flush_fresh_blocks();
            let mut last_line = (pmem_sim::PoolId(u32::MAX), u64::MAX);
            for i in 0..self.entries.len() {
                let e = self.log.entry_addr(i);
                let line = (e.pool(), e.line());
                if line != last_line {
                    self.flush_line(e);
                    last_line = line;
                }
            }
        }
        self.fence();
        // Linearization + durability point: the COMMITTED marker.
        let now = self.s.now();
        self.timer.switch(now, Phase::LogAppend);
        let state = self.log.state_addr();
        let count = self.log.count_addr();
        self.s.store(count, self.entries.len() as u64);
        self.s.store(state, STATE_COMMITTED);
        self.flush_line(state); // state & count share the header line
        self.fence();
        // Write back and persist program data.
        let now = self.s.now();
        self.timer.switch(now, Phase::Writeback);
        if combining {
            // Window 2: apply the whole write set first, then flush each
            // dirty line exactly once. The naive loop's store-then-flush
            // per entry re-dirties a shared line between flushes, so a
            // line written by k entries pays k writebacks.
            for i in 0..self.entries.len() {
                let (a, v) = self.entries[i];
                let addr = PAddr(a);
                self.s.store(addr, v);
                self.plan_line(addr);
            }
            PtmStats::high_water(&self.ptm.stats.max_write_lines, self.plan.len() as u64);
            self.drain_plan();
        } else {
            for i in 0..self.entries.len() {
                let (a, v) = self.entries[i];
                let addr = PAddr(a);
                self.s.store(addr, v);
                self.flush_line(addr);
            }
        }
        self.fence();
        // Retire the log.
        let now = self.s.now();
        self.timer.switch(now, Phase::LogAppend);
        self.s.store(state, STATE_IDLE);
        self.flush_line(state);
        self.fence();
        // Make the writes visible at the commit timestamp.
        let now = self.s.now();
        self.timer.switch(now, Phase::Validation);
        self.s.advance(orec_ns * self.owned.len() as u64);
        for i in 0..self.owned.len() {
            let (o, _) = self.owned[i];
            self.ptm.orecs.release(o, wv);
        }
        self.ptm.stats.note_write_set(self.entries.len() as u64);
        self.note_read_set();
        self.apply_frees();
        true
    }

    /// Record the duplicate-filtered read-set high-water mark (only
    /// meaningful when `write_combining` maintains the filter).
    #[inline]
    fn note_read_set(&self) {
        if self.ptm.config.write_combining {
            PtmStats::high_water(
                &self.ptm.stats.max_read_set_unique,
                self.read_set.len() as u64,
            );
        }
    }

    fn commit_undo(&mut self) -> bool {
        if self.owned.is_empty() && self.fresh_blocks.is_empty() {
            self.apply_frees();
            return true; // read-only
        }
        let orec_ns = self.ptm.config.orec_ns;
        let now = self.s.now();
        self.timer.switch(now, Phase::Validation);
        let wv = self.ptm.clock.bump();
        self.s.advance(orec_ns);
        if wv != self.start_time + 2 {
            if let Err(o) = self.validate_reads() {
                PtmStats::bump(&self.ptm.stats.aborts_validation);
                self.abort_at(AbortCause::Validation, o);
                self.rollback_undo(wv);
                return false;
            }
            let reads = self.read_set.len() as u64;
            self.trace(EventKind::TxValidate, reads, wv);
        }
        // Flush the in-place data and alloc-new blocks, one fence.
        if self.combining() {
            self.plan_fresh_blocks();
            for i in 0..self.eager_writes.len() {
                let addr = PAddr(self.eager_writes[i]);
                self.plan_line(addr);
            }
            PtmStats::high_water(&self.ptm.stats.max_write_lines, self.plan.len() as u64);
            self.drain_plan();
        } else {
            self.flush_fresh_blocks();
            for i in 0..self.eager_writes.len() {
                let addr = PAddr(self.eager_writes[i]);
                self.flush_line(addr);
            }
        }
        self.fence();
        // Truncate the undo log: entry 0's addr word zeroed, durable.
        let now = self.s.now();
        self.timer.switch(now, Phase::LogAppend);
        let e0 = self.log.entry_addr(0);
        self.s.store(e0, 0);
        self.flush_line(e0);
        self.fence();
        let now = self.s.now();
        self.timer.switch(now, Phase::Validation);
        self.s.advance(orec_ns * self.owned.len() as u64);
        for i in 0..self.owned.len() {
            let (o, _) = self.owned[i];
            self.ptm.orecs.release(o, wv);
        }
        self.ptm.stats.note_write_set(self.entries.len() as u64);
        self.note_read_set();
        self.apply_frees();
        true
    }

    /// Redo abort: nothing was written in place; restore pre-lock versions.
    fn release_owned_restore(&mut self) {
        let now = self.s.now();
        self.timer.switch(now, Phase::Rollback);
        self.s
            .advance(self.ptm.config.orec_ns * self.owned.len() as u64);
        for i in 0..self.owned.len() {
            let (o, prev) = self.owned[i];
            self.ptm.orecs.release(o, prev);
        }
        self.owned.clear();
        self.owned_map.clear();
    }

    /// Undo abort: restore old values (durably), truncate, release at a
    /// fresh timestamp so concurrent readers of speculative values fail
    /// validation.
    fn rollback_undo(&mut self, wv: u64) {
        let now = self.s.now();
        self.timer.switch(now, Phase::Rollback);
        for i in (0..self.entries.len()).rev() {
            let (a, old) = self.entries[i];
            let addr = PAddr(a);
            self.s.store(addr, old);
            self.flush_line(addr);
        }
        self.fence();
        if !self.entries.is_empty() {
            let e0 = self.log.entry_addr(0);
            self.s.store(e0, 0);
            self.flush_line(e0);
            self.fence();
        }
        self.s
            .advance(self.ptm.config.orec_ns * self.owned.len() as u64);
        for i in 0..self.owned.len() {
            let (o, _) = self.owned[i];
            self.ptm.orecs.release(o, wv);
        }
        self.owned.clear();
        self.owned_map.clear();
    }

    /// Abort initiated by user code (`Err(Abort)` escaped the closure).
    fn user_abort(&mut self) {
        let now = self.s.now();
        self.timer.switch(now, Phase::Rollback);
        match self.ptm.config.algo {
            Algo::RedoLazy => self.release_owned_restore(),
            Algo::UndoEager => {
                if !self.owned.is_empty() {
                    let wv = self.ptm.clock.bump();
                    self.rollback_undo(wv);
                }
            }
        }
    }

    /// Return transactionally-allocated blocks after an abort.
    fn abort_cleanup(&mut self) {
        let now = self.s.now();
        self.timer.switch(now, Phase::Rollback);
        let heap = Arc::clone(&self.heap);
        for i in 0..self.tx_allocs.len() {
            let a = self.tx_allocs[i];
            heap.free(&mut self.s, a);
        }
        self.tx_allocs.clear();
        self.tx_frees.clear();
    }

    /// Apply deferred frees after a successful commit (allocator work:
    /// charged to [`Phase::Speculation`] like `Tx::alloc`).
    fn apply_frees(&mut self) {
        let now = self.s.now();
        self.timer.switch(now, Phase::Speculation);
        let heap = Arc::clone(&self.heap);
        for i in 0..self.tx_frees.len() {
            let a = self.tx_frees[i];
            heap.free(&mut self.s, a);
        }
        self.tx_frees.clear();
        self.tx_allocs.clear();
    }

    fn backoff(&mut self) {
        let now = self.s.now();
        self.timer.switch(now, Phase::Backoff);
        let shift = self.attempts.min(8);
        let ceiling = (100u64 << shift).min(40_000);
        let delay = self.rng.gen_range(ceiling / 2..=ceiling);
        self.s.advance(delay);
        self.s.publish_clock();
        std::thread::yield_now();
        if self.attempts > 256 {
            // Deep backoff: on an oversubscribed host a pure yield loop
            // can starve the conflicting lock holder of real CPU time.
            // Virtual time is unaffected (already charged above).
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
}

/// Handle passed to transaction closures.
pub struct Tx<'a> {
    th: &'a mut TxThread,
}

impl Tx<'_> {
    /// Transactional 64-bit read.
    #[inline]
    pub fn read(&mut self, addr: PAddr) -> TxResult<u64> {
        self.th.tx_read(addr)
    }

    /// Transactional 64-bit write.
    #[inline]
    pub fn write(&mut self, addr: PAddr, val: u64) -> TxResult<()> {
        self.th.tx_write(addr, val)
    }

    /// Read `base + off` (field access sugar).
    #[inline]
    pub fn read_at(&mut self, base: PAddr, off: u64) -> TxResult<u64> {
        self.th.tx_read(base.offset(off))
    }

    /// Write `base + off`.
    #[inline]
    pub fn write_at(&mut self, base: PAddr, off: u64, val: u64) -> TxResult<()> {
        self.th.tx_write(base.offset(off), val)
    }

    /// Allocate from the persistent heap. Returned blocks are freed
    /// automatically if the transaction aborts.
    pub fn alloc(&mut self, words: usize) -> PAddr {
        let heap = Arc::clone(&self.th.heap);
        let a = heap.alloc(&mut self.th.s, words);
        self.th.tx_allocs.push(a);
        a
    }

    /// Free a block; deferred until the transaction commits.
    pub fn free(&mut self, addr: PAddr) {
        self.th.tx_frees.push(addr);
    }

    /// Allocate a zeroed block with the alloc-new optimization: the
    /// zeroes are written directly (not logged — the block is unreachable
    /// until a logged pointer-write commits) and flushed with the commit.
    pub fn alloc_zeroed(&mut self, words: usize) -> PAddr {
        let heap = Arc::clone(&self.th.heap);
        let a = heap.alloc(&mut self.th.s, words);
        for w in 0..words as u64 {
            self.th.s.store(a.offset(w), 0);
        }
        self.th.tx_allocs.push(a);
        self.th.fresh_blocks.push((a.0, words));
        a
    }

    /// Read a pointer-valued word.
    #[inline]
    pub fn read_ptr(&mut self, addr: PAddr) -> TxResult<PAddr> {
        Ok(PAddr(self.th.tx_read(addr)?))
    }

    /// Write a pointer-valued word.
    #[inline]
    pub fn write_ptr(&mut self, addr: PAddr, p: PAddr) -> TxResult<()> {
        self.th.tx_write(addr, p.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};

    fn setup(algo: Algo) -> (Arc<Machine>, Arc<Ptm>, Arc<PHeap>) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 16, 8);
        let cfg = match algo {
            Algo::RedoLazy => PtmConfig::redo(),
            Algo::UndoEager => PtmConfig::undo(),
        };
        (m.clone(), Ptm::new(cfg), heap)
    }

    fn both() -> Vec<Algo> {
        vec![Algo::RedoLazy, Algo::UndoEager]
    }

    #[test]
    fn write_then_read_within_tx() {
        for algo in both() {
            let (m, ptm, heap) = setup(algo);
            let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
            let a = heap.alloc(th.session_mut(), 4);
            let got = th.run(|tx| {
                tx.write(a, 10)?;
                tx.write(a.offset(1), 20)?;
                let x = tx.read(a)?;
                let y = tx.read(a.offset(1))?;
                Ok(x + y)
            });
            assert_eq!(got, 30, "{algo:?}");
        }
    }

    #[test]
    fn committed_writes_visible_to_next_tx() {
        for algo in both() {
            let (m, ptm, heap) = setup(algo);
            let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
            let a = heap.alloc(th.session_mut(), 4);
            th.run(|tx| tx.write(a, 55));
            let v = th.run(|tx| tx.read(a));
            assert_eq!(v, 55, "{algo:?}");
        }
    }

    #[test]
    fn user_abort_rolls_back() {
        for algo in both() {
            let (m, ptm, heap) = setup(algo);
            let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
            let a = heap.alloc(th.session_mut(), 4);
            th.run(|tx| tx.write(a, 1));
            let mut tried = false;
            th.run(|tx| {
                if !tried {
                    tried = true;
                    tx.write(a, 999)?;
                    return Err(Abort); // user-requested retry
                }
                Ok(())
            });
            let v = th.run(|tx| tx.read(a));
            assert_eq!(v, 1, "{algo:?}: speculative write must be undone");
            assert!(ptm.stats_snapshot().aborts >= 1);
        }
    }

    #[test]
    fn read_only_tx_commits_without_clock_bump() {
        for algo in both() {
            let (m, ptm, heap) = setup(algo);
            let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
            let a = heap.alloc(th.session_mut(), 4);
            th.run(|tx| tx.write(a, 5));
            let before = ptm.clock.sample();
            let v = th.run(|tx| tx.read(a));
            assert_eq!(v, 5);
            assert_eq!(ptm.clock.sample(), before, "{algo:?}");
        }
    }

    #[test]
    fn redo_commit_is_durable_under_adr() {
        let (m, ptm, heap) = setup(Algo::RedoLazy);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 77));
        // After commit, the value must be durable (in the shadow).
        assert_eq!(heap.pool().shadow().unwrap().load(a.word()), 77);
    }

    #[test]
    fn undo_commit_is_durable_under_adr() {
        let (m, ptm, heap) = setup(Algo::UndoEager);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 88));
        assert_eq!(heap.pool().shadow().unwrap().load(a.word()), 88);
    }

    #[test]
    fn alloc_in_aborted_tx_is_freed() {
        for algo in both() {
            let (m, ptm, heap) = setup(algo);
            let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
            let mut first = true;
            let mut leaked = PAddr::NULL;
            th.run(|tx| {
                if first {
                    first = false;
                    leaked = tx.alloc(8);
                    return Err(Abort);
                }
                Ok(())
            });
            assert_eq!(heap.free_blocks(), 1, "{algo:?}: aborted alloc returned");
            // And it is reusable.
            let again = heap.alloc(th.session_mut(), 8);
            assert_eq!(again, leaked);
        }
    }

    #[test]
    fn free_in_committed_tx_is_applied() {
        for algo in both() {
            let (m, ptm, heap) = setup(algo);
            let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
            let a = heap.alloc(th.session_mut(), 8);
            th.run(|tx| {
                tx.free(a);
                tx.write_at(a, 0, 0)?; // touching freed-this-tx memory is
                                       // legal until commit
                Ok(())
            });
            assert_eq!(heap.free_blocks(), 1, "{algo:?}");
        }
    }

    #[test]
    fn conflicting_writers_serialize_counter() {
        for algo in both() {
            let (m, ptm, heap) = setup(algo);
            let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
            let ctr = heap.alloc(th0.session_mut(), 1);
            th0.run(|tx| tx.write(ctr, 0));
            drop(th0);
            let threads = 4;
            let per = 500;
            m.begin_run(threads, u64::MAX);
            std::thread::scope(|scope| {
                for tid in 0..threads {
                    let m = Arc::clone(&m);
                    let ptm = Arc::clone(&ptm);
                    let heap = Arc::clone(&heap);
                    scope.spawn(move || {
                        let mut th = TxThread::new(ptm, heap, m.session(tid));
                        for _ in 0..per {
                            th.run(|tx| {
                                let v = tx.read(ctr)?;
                                tx.write(ctr, v + 1)
                            });
                        }
                    });
                }
            });
            let mut th = TxThread::new(ptm.clone(), heap.clone(), {
                m.begin_run(1, u64::MAX);
                m.session(0)
            });
            let v = th.run(|tx| tx.read(ctr));
            assert_eq!(v, (threads * per) as u64, "{algo:?}: lost updates");
        }
    }

    #[test]
    fn bank_invariant_under_concurrency() {
        for algo in both() {
            let (m, ptm, heap) = setup(algo);
            let accounts = 16u64;
            let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
            let table = heap.alloc(th0.session_mut(), accounts as usize);
            th0.run(|tx| {
                for i in 0..accounts {
                    tx.write_at(table, i, 1_000)?;
                }
                Ok(())
            });
            drop(th0);
            let threads = 4;
            m.begin_run(threads, u64::MAX);
            std::thread::scope(|scope| {
                for tid in 0..threads {
                    let m = Arc::clone(&m);
                    let ptm = Arc::clone(&ptm);
                    let heap = Arc::clone(&heap);
                    scope.spawn(move || {
                        let mut th = TxThread::new(ptm, heap, m.session(tid));
                        let mut rng = SmallRng::seed_from_u64(tid as u64);
                        for _ in 0..400 {
                            let from = rng.gen_range(0..accounts);
                            let to = rng.gen_range(0..accounts);
                            th.run(|tx| {
                                let f = tx.read_at(table, from)?;
                                let t = tx.read_at(table, to)?;
                                if from != to && f >= 10 {
                                    tx.write_at(table, from, f - 10)?;
                                    tx.write_at(table, to, t + 10)?;
                                }
                                Ok(())
                            });
                        }
                    });
                }
            });
            m.begin_run(1, u64::MAX);
            let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
            let total = th.run(|tx| {
                let mut sum = 0;
                for i in 0..accounts {
                    sum += tx.read_at(table, i)?;
                }
                Ok(sum)
            });
            assert_eq!(total, accounts * 1_000, "{algo:?}: money not conserved");
        }
    }

    fn setup_with(cfg: PtmConfig) -> (Arc<Machine>, Arc<Ptm>, Arc<PHeap>) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 16, 8);
        (m.clone(), Ptm::new(cfg), heap)
    }

    /// Unique (pool, line) count of a set of addresses.
    fn unique_lines(addrs: &[PAddr]) -> u64 {
        let mut lines: Vec<(u32, u64)> = addrs.iter().map(|a| (a.pool().0, a.line())).collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len() as u64
    }

    /// Satellite acceptance: under ADR with write combining, the
    /// writebacks of one committed redo transaction are exactly the
    /// unique dirty lines it touches — ceil(k/2) log lines (two entries
    /// per line), the header line twice (COMMITTED marker + retire), and
    /// each unique data line once.
    #[test]
    fn combined_redo_writebacks_equal_unique_dirty_lines() {
        let (m, ptm, heap) = setup_with(PtmConfig::combined(Algo::RedoLazy));
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 24);
        // 12 entries: 8 words of one region plus 4 of another — several
        // entries share data lines.
        let writes: Vec<PAddr> = (0..8).chain(16..20).map(|w| a.offset(w)).collect();
        let before = m.stats.snapshot();
        th.run(|tx| {
            for (i, &w) in writes.iter().enumerate() {
                tx.write(w, i as u64 + 1)?;
            }
            Ok(())
        });
        let d = m.stats.snapshot().delta_since(&before);
        let k = writes.len() as u64;
        let log_lines = crate::log::entry_lines(writes.len()) as u64;
        let data_lines = unique_lines(&writes);
        assert!(data_lines < k, "test must exercise line sharing");
        let expected = log_lines + 2 + data_lines;
        assert_eq!(
            d.clwb_writebacks, expected,
            "writebacks must equal unique dirty lines \
             (log {log_lines} + header 2 + data {data_lines})"
        );
        assert_eq!(
            d.clwbs, expected,
            "combined pipeline flushes each line once"
        );
        assert_eq!(d.clwb_batches, 2, "one batched drain per fence window");
        let s = ptm.stats_snapshot();
        // The header-line flushes (marker, retire) go direct, not through
        // the planner: only log and data lines are planned.
        assert_eq!(s.lines_planned, log_lines + data_lines);
        assert_eq!(
            s.flushes_elided,
            (k - log_lines) + (k - data_lines),
            "planner elides the duplicate log- and data-line offers"
        );
        assert_eq!(s.max_write_lines, data_lines);
    }

    /// Same-shape accounting for undo: the commit window flushes each
    /// unique in-place data line once (the per-entry log flushes during
    /// execution are the algorithm's O(W) cost and stay as-is).
    #[test]
    fn combined_undo_writebacks_equal_unique_dirty_lines() {
        let (m, ptm, heap) = setup_with(PtmConfig::combined(Algo::UndoEager));
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 16);
        let writes: Vec<PAddr> = (0..6).map(|w| a.offset(w)).collect();
        let before = m.stats.snapshot();
        th.run(|tx| {
            for (i, &w) in writes.iter().enumerate() {
                // Repeat stores: the eager_writes dedup keeps one
                // obligation per address.
                tx.write(w, i as u64)?;
                tx.write(w, i as u64 + 10)?;
            }
            Ok(())
        });
        let d = m.stats.snapshot().delta_since(&before);
        let k = writes.len() as u64;
        let data_lines = unique_lines(&writes);
        // seq header + one flush per log entry append + commit window
        // (unique data lines) + truncate.
        let expected = 1 + k + data_lines + 1;
        assert_eq!(d.clwb_writebacks, expected);
        let s = ptm.stats_snapshot();
        assert_eq!(s.lines_planned, data_lines);
        assert_eq!(s.flushes_elided, k - data_lines);
    }

    /// The combined pipeline must commit the same data as the naive one
    /// while issuing strictly fewer flushes on a line-sharing write set.
    #[test]
    fn combined_pipeline_matches_naive_semantics_with_fewer_flushes() {
        for algo in both() {
            let run = |combining: bool| {
                let cfg = PtmConfig {
                    write_combining: combining,
                    ..match algo {
                        Algo::RedoLazy => PtmConfig::redo(),
                        Algo::UndoEager => PtmConfig::undo(),
                    }
                };
                let (m, ptm, heap) = setup_with(cfg);
                let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
                let a = heap.alloc(th.session_mut(), 32);
                for round in 0..4u64 {
                    th.run(|tx| {
                        for w in 0..16u64 {
                            tx.write_at(a, w, round * 100 + w)?;
                        }
                        Ok(())
                    });
                }
                let values: Vec<u64> = (0..16)
                    .map(|w| heap.pool().shadow().unwrap().load(a.word() + w))
                    .collect();
                (values, m.stats.snapshot().clwbs)
            };
            let (naive_vals, naive_clwbs) = run(false);
            let (combined_vals, combined_clwbs) = run(true);
            assert_eq!(naive_vals, combined_vals, "{algo:?}: divergent commits");
            assert!(
                combined_clwbs < naive_clwbs,
                "{algo:?}: combined {combined_clwbs} must flush less than naive {naive_clwbs}"
            );
        }
    }

    /// Under eADR the planner is bypassed entirely: no planner counters
    /// move and no flush instructions are issued — the eADR arm of the
    /// ablation must be unchanged by the flag.
    #[test]
    fn combining_is_inert_under_eadr() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 16, 8);
        let ptm = Ptm::new(PtmConfig {
            write_combining: true,
            htm_retries: 0,
            ..PtmConfig::redo()
        });
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 16);
        th.run(|tx| {
            for w in 0..16u64 {
                tx.write_at(a, w, w)?;
            }
            Ok(())
        });
        let s = ptm.stats_snapshot();
        assert_eq!(s.lines_planned, 0);
        assert_eq!(s.flushes_elided, 0);
        assert_eq!(m.stats.snapshot().clwbs, 0);
        assert_eq!(m.stats.snapshot().clwb_batches, 0);
    }

    /// The duplicate-filtered read set keeps one slot per orec, so a
    /// hot-stripe re-read costs O(unique orecs) at validation.
    #[test]
    fn read_set_is_duplicate_filtered_under_combining() {
        let (m, ptm, heap) = setup_with(PtmConfig::combined(Algo::RedoLazy));
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 7));
        let got = th.run(|tx| {
            let mut sum = 0;
            for _ in 0..100 {
                sum += tx.read(a)?;
            }
            // A write forces the full (non-read-only) commit path, which
            // records the read-set high-water mark.
            tx.write(a.offset(1), sum)?;
            Ok(sum)
        });
        assert_eq!(got, 700);
        let s = ptm.stats_snapshot();
        assert!(
            s.max_read_set_unique <= 2,
            "100 re-reads of one stripe must collapse to one slot, got {}",
            s.max_read_set_unique
        );
    }

    #[test]
    fn undo_pays_more_fences_than_redo() {
        let writes = 16u64;
        let fences_for = |algo: Algo| {
            let (m, ptm, heap) = setup(algo);
            let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
            let a = heap.alloc(th.session_mut(), writes as usize);
            let before = m.stats.snapshot().sfences;
            th.run(|tx| {
                for i in 0..writes {
                    tx.write_at(a, i, i)?;
                }
                Ok(())
            });
            m.stats.snapshot().sfences - before
        };
        let undo = fences_for(Algo::UndoEager);
        let redo = fences_for(Algo::RedoLazy);
        assert!(
            undo >= writes && redo <= 8,
            "undo fences {undo} (expect >= {writes}), redo fences {redo} (expect O(1))"
        );
    }

    #[test]
    fn elide_fences_suppresses_sfence() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 8);
        let cfg = PtmConfig {
            elide_fences: true,
            ..PtmConfig::undo()
        };
        let ptm = Ptm::new(cfg);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 8);
        let before = m.stats.snapshot();
        th.run(|tx| {
            for i in 0..8 {
                tx.write_at(a, i, i)?;
            }
            Ok(())
        });
        let after = m.stats.snapshot();
        assert_eq!(after.sfences, before.sfences, "no fences issued");
        assert!(after.clwbs > before.clwbs, "flushes still issued");
    }

    #[test]
    fn ts_extension_salvages_reads() {
        // A transaction reads a, then another tx commits to b (raising the
        // clock), then the first reads b: without extension this aborts;
        // with it, the read set {a} revalidates and the tx commits.
        let (m, ptm, heap) = setup(Algo::RedoLazy);
        m.begin_run(2, u64::MAX);
        let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let mut th1 = TxThread::new(ptm.clone(), heap.clone(), m.session(1));
        let a = heap.alloc(th0.session_mut(), 1);
        let b = heap.alloc(th0.session_mut(), 1);
        th0.run(|tx| {
            tx.write(a, 1)?;
            tx.write(b, 2)
        });
        let before = ptm.stats_snapshot();
        let mut stage = 0;
        let got = th0.run(|tx| {
            let va = tx.read(a)?;
            if stage == 0 {
                stage = 1;
                th1.run(|tx1| {
                    let vb = tx1.read(b)?;
                    tx1.write(b, vb + 10)
                });
            }
            let vb = tx.read(b)?;
            Ok((va, vb))
        });
        assert_eq!(got, (1, 12));
        let after = ptm.stats_snapshot();
        assert_eq!(after.aborts, before.aborts, "extension avoided the abort");
        assert!(after.extensions > before.extensions);
    }

    #[test]
    fn snapshot_isolation_is_really_serializable() {
        // Classic write-skew shape is prevented: two txs each read both
        // cells and write one; outcome must be serializable.
        for algo in both() {
            let (m, ptm, heap) = setup(algo);
            m.begin_run(2, u64::MAX);
            let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
            let a = heap.alloc(th0.session_mut(), 1);
            let b = heap.alloc(th0.session_mut(), 1);
            th0.run(|tx| {
                tx.write(a, 100)?;
                tx.write(b, 100)
            });
            drop(th0);
            std::thread::scope(|scope| {
                let m0 = Arc::clone(&m);
                let p0 = Arc::clone(&ptm);
                let h0 = Arc::clone(&heap);
                scope.spawn(move || {
                    let mut th = TxThread::new(p0, h0, m0.session(0));
                    th.run(|tx| {
                        let x = tx.read(a)?;
                        let y = tx.read(b)?;
                        if x + y >= 100 {
                            tx.write(a, x.saturating_sub(100))?;
                        }
                        Ok(())
                    });
                });
                let m1 = Arc::clone(&m);
                let p1 = Arc::clone(&ptm);
                let h1 = Arc::clone(&heap);
                scope.spawn(move || {
                    let mut th = TxThread::new(p1, h1, m1.session(1));
                    th.run(|tx| {
                        let x = tx.read(a)?;
                        let y = tx.read(b)?;
                        if x + y >= 100 {
                            tx.write(b, y.saturating_sub(100))?;
                        }
                        Ok(())
                    });
                });
            });
            m.begin_run(1, u64::MAX);
            let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
            let (x, y) = th.run(|tx| Ok((tx.read(a)?, tx.read(b)?)));
            // Serializable outcomes: one tx sees the other's debit.
            assert!(
                (x, y) == (0, 100) || (x, y) == (100, 0) || (x, y) == (0, 0),
                "{algo:?}: non-serializable outcome ({x},{y})"
            );
            // (0,0) happens only if one committed before the other began;
            // with sum 200 initially both guards pass, so (0,0) is also
            // serializable. What must NOT happen is a torn guard, e.g.
            // negative balances — unrepresentable here, so the assert above
            // is the full check.
        }
    }
}

#[cfg(test)]
mod htm_tests {
    use super::*;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};

    fn setup(domain: DurabilityDomain) -> (Arc<Machine>, Arc<Ptm>, Arc<PHeap>) {
        let m = Machine::new(MachineConfig::functional(domain));
        let heap = PHeap::format(&m, "heap", 1 << 16, 8);
        let ptm = Ptm::new(PtmConfig::hybrid(Algo::RedoLazy));
        (m, ptm, heap)
    }

    #[test]
    fn htm_commits_under_eadr() {
        let (m, ptm, heap) = setup(DurabilityDomain::Eadr);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| {
            tx.write(a, 5)?;
            let v = tx.read(a)?;
            tx.write(a.offset(1), v * 2)
        });
        assert_eq!(th.run(|tx| tx.read(a.offset(1))), 10);
        let s = ptm.stats_snapshot();
        assert!(s.htm_commits >= 2, "hardware path used: {s:?}");
        assert_eq!(s.htm_fallbacks, 0);
        // No flushes and no log traffic on the hardware path.
        assert_eq!(m.stats.snapshot().clwbs, 0);
    }

    #[test]
    fn htm_is_skipped_under_adr() {
        let (m, ptm, heap) = setup(DurabilityDomain::Adr);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 9));
        let s = ptm.stats_snapshot();
        assert_eq!(s.htm_commits, 0, "TSX is incompatible with ADR");
        assert_eq!(s.commits, 1);
        assert!(m.stats.snapshot().sfences > 0, "software path flushed");
    }

    #[test]
    fn htm_commit_is_durable_under_eadr() {
        let (m, ptm, heap) = setup(DurabilityDomain::Eadr);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 2);
        th.run(|tx| tx.write(a, 1234));
        assert!(ptm.stats_snapshot().htm_commits >= 1);
        let img = m.crash(0);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Eadr));
        crate::recovery::recover(&m2);
        assert_eq!(m2.pool(a.pool()).raw_load(a.word()), 1234);
    }

    #[test]
    fn htm_capacity_overflow_falls_back() {
        let (m, ptm, heap) = setup(DurabilityDomain::Eadr);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let cap = ptm.config.htm_capacity;
        let a = heap.alloc(th.session_mut(), cap + 8);
        th.run(|tx| {
            for i in 0..(cap as u64 + 4) {
                tx.write_at(a, i, i)?;
            }
            Ok(())
        });
        let s = ptm.stats_snapshot();
        assert!(s.htm_fallbacks >= 1, "capacity abort must fall back: {s:?}");
        assert_eq!(s.commits, 1);
        // Data intact via the software path.
        assert_eq!(th.run(|tx| tx.read_at(a, cap as u64 + 3)), cap as u64 + 3);
    }

    #[test]
    fn hybrid_counter_is_exact_under_concurrency() {
        let (m, ptm, heap) = setup(DurabilityDomain::Eadr);
        let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let ctr = heap.alloc(th0.session_mut(), 1);
        th0.run(|tx| tx.write(ctr, 0));
        drop(th0);
        let threads = 4;
        let per = 400;
        m.begin_run(threads, u64::MAX);
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let m = Arc::clone(&m);
                let ptm = Arc::clone(&ptm);
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    let mut th = TxThread::new(ptm, heap, m.session(tid));
                    for _ in 0..per {
                        th.run(|tx| {
                            let v = tx.read(ctr)?;
                            tx.write(ctr, v + 1)
                        });
                    }
                });
            }
        });
        m.begin_run(1, u64::MAX);
        let mut th = TxThread::new(ptm.clone(), heap, m.session(0));
        assert_eq!(th.run(|tx| tx.read(ctr)), (threads * per) as u64);
        let s = ptm.stats_snapshot();
        assert!(s.htm_commits > 0, "some hardware commits expected: {s:?}");
    }

    #[test]
    fn htm_mixes_safely_with_software_writers() {
        // One thread runs hybrid, another pure-STM eager, on overlapping
        // data; the sum invariant must hold.
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 16, 8);
        let hybrid = Ptm::new(PtmConfig::hybrid(Algo::RedoLazy));
        let mut th0 = TxThread::new(hybrid.clone(), heap.clone(), m.session(0));
        let cells = heap.alloc(th0.session_mut(), 8);
        th0.run(|tx| {
            for i in 0..8 {
                tx.write_at(cells, i, 100)?;
            }
            Ok(())
        });
        drop(th0);
        m.begin_run(2, u64::MAX);
        std::thread::scope(|scope| {
            // NOTE: both threads must share the same Ptm (same orecs/clock);
            // the hybrid flag is per-config, so use one Ptm and rely on
            // run()'s dispatch for both.
            let m0 = Arc::clone(&m);
            let p0 = Arc::clone(&hybrid);
            let h0 = Arc::clone(&heap);
            scope.spawn(move || {
                let mut th = TxThread::new(p0, h0, m0.session(0));
                for i in 0..500u64 {
                    th.run(|tx| {
                        let a = i % 8;
                        let b = (i + 3) % 8;
                        let va = tx.read_at(cells, a)?;
                        let vb = tx.read_at(cells, b)?;
                        if a != b && va > 0 {
                            tx.write_at(cells, a, va - 1)?;
                            tx.write_at(cells, b, vb + 1)?;
                        }
                        Ok(())
                    });
                }
            });
            let m1 = Arc::clone(&m);
            let p1 = Arc::clone(&hybrid);
            let h1 = Arc::clone(&heap);
            scope.spawn(move || {
                let mut th = TxThread::new(p1, h1, m1.session(1));
                for i in 0..500u64 {
                    th.run(|tx| {
                        let a = (i + 5) % 8;
                        let b = i % 8;
                        let va = tx.read_at(cells, a)?;
                        let vb = tx.read_at(cells, b)?;
                        if a != b && va > 0 {
                            tx.write_at(cells, a, va - 1)?;
                            tx.write_at(cells, b, vb + 1)?;
                        }
                        Ok(())
                    });
                }
            });
        });
        m.begin_run(1, u64::MAX);
        let mut th = TxThread::new(hybrid, heap, m.session(0));
        let sum = th.run(|tx| {
            let mut s = 0;
            for i in 0..8 {
                s += tx.read_at(cells, i)?;
            }
            Ok(s)
        });
        assert_eq!(sum, 800, "transfers must conserve");
    }
}
