//! Ownership records (orecs) and the global version clock.
//!
//! The PTM algorithms coordinate speculative accesses with a DRAM-resident
//! table of versioned locks, exactly as in TL2/TinySTM and the paper's
//! orec-lazy/orec-eager algorithms. An orec value is either
//!
//! * an **even version number** — the commit timestamp of the last
//!   transaction that wrote any location striped to this orec, or
//! * an **odd lock word** — `thread_id << 1 | 1`, held by a writer.
//!
//! The table is volatile: after a crash it is reconstructed empty (all
//! versions zero), which is sound because recovery quiesces all
//! transactions first.

use std::sync::atomic::{AtomicU64, Ordering};

use pmem_sim::PAddr;

/// Is this orec value a lock word?
#[inline]
pub fn is_locked(v: u64) -> bool {
    v & 1 == 1
}

/// Owner thread of a lock word.
#[inline]
pub fn owner_of(v: u64) -> u64 {
    debug_assert!(is_locked(v));
    v >> 1
}

/// Lock word for a thread.
#[inline]
pub fn lock_word(tid: u64) -> u64 {
    (tid << 1) | 1
}

/// The global version clock. Versions are even; the clock advances by 2
/// per writer commit.
#[derive(Debug)]
pub struct GlobalClock(AtomicU64);

impl GlobalClock {
    pub fn new() -> Self {
        GlobalClock(AtomicU64::new(0))
    }

    /// Sample the clock (transaction begin / timestamp extension).
    #[inline]
    pub fn sample(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advance and return the new (even) commit timestamp.
    #[inline]
    pub fn bump(&self) -> u64 {
        self.0.fetch_add(2, Ordering::AcqRel) + 2
    }

    /// Advance only if the clock still reads `expected`: the hybrid HTM
    /// commit's atomic validate-and-serialize. Returns the new timestamp,
    /// or the observed value on failure.
    #[inline]
    pub fn try_advance(&self, expected: u64) -> Result<u64, u64> {
        self.0
            .compare_exchange(expected, expected + 2, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| expected + 2)
    }
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

/// The striped orec table.
#[derive(Debug)]
pub struct OrecTable {
    orecs: Box<[AtomicU64]>,
    mask: u64,
}

impl OrecTable {
    /// `count` is rounded up to a power of two.
    pub fn new(count: usize) -> Self {
        let n = count.max(64).next_power_of_two();
        OrecTable {
            orecs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mask: n as u64 - 1,
        }
    }

    pub fn len(&self) -> usize {
        self.orecs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.orecs.is_empty()
    }

    /// Stripe an address onto an orec index (full-avalanche mix so the
    /// pool id in the address's high bits participates).
    #[inline]
    pub fn index_of(&self, addr: PAddr) -> u32 {
        let mut h = addr.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h & self.mask) as u32
    }

    /// Read an orec value.
    #[inline]
    pub fn load(&self, idx: u32) -> u64 {
        self.orecs[idx as usize].load(Ordering::Acquire)
    }

    /// Try to acquire: CAS `expected` (an even version) to this thread's
    /// lock word. Returns the observed value on failure.
    #[inline]
    pub fn try_lock(&self, idx: u32, expected: u64, tid: u64) -> Result<(), u64> {
        debug_assert!(!is_locked(expected));
        self.orecs[idx as usize]
            .compare_exchange(
                expected,
                lock_word(tid),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(|_| ())
    }

    /// Release a held orec to `version` (even).
    #[inline]
    pub fn release(&self, idx: u32, version: u64) {
        debug_assert!(!is_locked(version));
        self.orecs[idx as usize].store(version, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::PoolId;

    #[test]
    fn lock_word_roundtrip() {
        let w = lock_word(42);
        assert!(is_locked(w));
        assert_eq!(owner_of(w), 42);
        assert!(!is_locked(8));
    }

    #[test]
    fn try_advance_is_atomic_validate_and_bump() {
        let c = GlobalClock::new();
        assert_eq!(c.try_advance(0), Ok(2));
        assert_eq!(c.try_advance(0), Err(2));
        assert_eq!(c.try_advance(2), Ok(4));
        assert_eq!(c.sample(), 4);
    }

    #[test]
    fn clock_bumps_by_two_and_stays_even() {
        let c = GlobalClock::new();
        assert_eq!(c.sample(), 0);
        assert_eq!(c.bump(), 2);
        assert_eq!(c.bump(), 4);
        assert_eq!(c.sample(), 4);
        assert_eq!(c.sample() & 1, 0);
    }

    #[test]
    fn try_lock_and_release() {
        let t = OrecTable::new(64);
        assert_eq!(t.try_lock(5, 0, 9), Ok(()));
        assert_eq!(t.load(5), lock_word(9));
        // Second lock attempt fails and reports the lock word.
        assert_eq!(t.try_lock(5, 0, 3), Err(lock_word(9)));
        t.release(5, 10);
        assert_eq!(t.load(5), 10);
    }

    #[test]
    fn stale_version_cas_fails() {
        let t = OrecTable::new(64);
        t.release(7, 20);
        assert_eq!(t.try_lock(7, 18, 1), Err(20));
    }

    #[test]
    fn index_is_stable_and_in_range() {
        let t = OrecTable::new(1 << 10);
        let a = PAddr::new(PoolId(1), 12345);
        let i1 = t.index_of(a);
        let i2 = t.index_of(a);
        assert_eq!(i1, i2);
        assert!((i1 as usize) < t.len());
    }

    #[test]
    fn adjacent_words_usually_stripe_differently() {
        let t = OrecTable::new(1 << 16);
        let base = PAddr::new(PoolId(1), 0);
        let distinct: std::collections::HashSet<u32> =
            (0..64).map(|i| t.index_of(base.offset(i))).collect();
        assert!(
            distinct.len() > 48,
            "only {} distinct stripes",
            distinct.len()
        );
    }

    #[test]
    fn concurrent_lock_grants_exactly_one_winner() {
        let t = std::sync::Arc::new(OrecTable::new(64));
        let wins: Vec<bool> = std::thread::scope(|s| {
            (0..8u64)
                .map(|tid| {
                    let t = std::sync::Arc::clone(&t);
                    s.spawn(move || t.try_lock(3, 0, tid).is_ok())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(wins.iter().filter(|&&w| w).count(), 1);
    }
}
