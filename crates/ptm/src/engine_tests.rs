//! Engine-level tests for the transaction driver and every registered
//! algorithm policy (redo, undo, cow shadow, htm). These exercise the public
//! `TxThread`/`Tx` API only; policy-internal unit tests live next to
//! their modules.

use std::sync::Arc;

use palloc::PHeap;
use pmem_sim::{DurabilityDomain, Machine, MachineConfig, PAddr};
use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::config::{Algo, PtmConfig};
use crate::txn::{Abort, Ptm, TxThread};

fn setup(algo: Algo) -> (Arc<Machine>, Arc<Ptm>, Arc<PHeap>) {
    let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
    let heap = PHeap::format(&m, "heap", 1 << 16, 8);
    (m.clone(), Ptm::new(PtmConfig::with_algo(algo)), heap)
}

/// Every registered algorithm — tests iterate the registry, not a
/// hand-kept list, so a fourth algorithm is covered by construction.
fn all() -> Vec<Algo> {
    Algo::ALL.to_vec()
}

#[test]
fn write_then_read_within_tx() {
    for algo in all() {
        let (m, ptm, heap) = setup(algo);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        let got = th.run(|tx| {
            tx.write(a, 10)?;
            tx.write(a.offset(1), 20)?;
            let x = tx.read(a)?;
            let y = tx.read(a.offset(1))?;
            Ok(x + y)
        });
        assert_eq!(got, 30, "{algo:?}");
    }
}

#[test]
fn committed_writes_visible_to_next_tx() {
    for algo in all() {
        let (m, ptm, heap) = setup(algo);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 55));
        let v = th.run(|tx| tx.read(a));
        assert_eq!(v, 55, "{algo:?}");
    }
}

#[test]
fn user_abort_rolls_back() {
    for algo in all() {
        let (m, ptm, heap) = setup(algo);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 1));
        let mut tried = false;
        th.run(|tx| {
            if !tried {
                tried = true;
                tx.write(a, 999)?;
                return Err(Abort); // user-requested retry
            }
            Ok(())
        });
        let v = th.run(|tx| tx.read(a));
        assert_eq!(v, 1, "{algo:?}: speculative write must be undone");
        // HtmLogged takes the user abort on the hardware path.
        let s = ptm.stats_snapshot();
        assert!(s.aborts + s.htm_aborts >= 1, "{algo:?}: {s:?}");
    }
}

#[test]
fn read_only_tx_commits_without_clock_bump() {
    for algo in all() {
        let (m, ptm, heap) = setup(algo);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 5));
        let before = ptm.clock.sample();
        let v = th.run(|tx| tx.read(a));
        assert_eq!(v, 5);
        assert_eq!(ptm.clock.sample(), before, "{algo:?}");
    }
}

#[test]
fn commit_is_durable_under_adr() {
    for algo in all() {
        let (m, ptm, heap) = setup(algo);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 77));
        if algo == Algo::HtmLogged {
            // The home writeback is deliberately unfenced — until the
            // ring retires, durability lives in the sealed back-end
            // log. Crash and recover to observe it.
            drop(th);
            let img = m.crash(0);
            let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
            crate::recovery::recover(&m2);
            assert_eq!(m2.pool(a.pool()).raw_load(a.word()), 77, "{algo:?}");
        } else {
            // After commit, the value must be durable (in the shadow).
            assert_eq!(heap.pool().shadow().unwrap().load(a.word()), 77, "{algo:?}");
        }
    }
}

#[test]
fn alloc_in_aborted_tx_is_freed() {
    for algo in all() {
        let (m, ptm, heap) = setup(algo);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let mut first = true;
        let mut leaked = PAddr::NULL;
        th.run(|tx| {
            if first {
                first = false;
                leaked = tx.alloc(8);
                return Err(Abort);
            }
            Ok(())
        });
        assert_eq!(heap.free_blocks(), 1, "{algo:?}: aborted alloc returned");
        // And it is reusable.
        let again = heap.alloc(th.session_mut(), 8);
        assert_eq!(again, leaked);
    }
}

#[test]
fn free_in_committed_tx_is_applied() {
    for algo in all() {
        let (m, ptm, heap) = setup(algo);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 8);
        th.run(|tx| {
            tx.free(a);
            tx.write_at(a, 0, 0)?; // touching freed-this-tx memory is
                                   // legal until commit
            Ok(())
        });
        // The freed block is back on its size class (cow additionally
        // cycles shadow blocks through a different class, so counting
        // free blocks is not algorithm-portable — reuse is).
        let again = heap.alloc(th.session_mut(), 8);
        assert_eq!(again, a, "{algo:?}: freed block must be reusable");
    }
}

#[test]
fn conflicting_writers_serialize_counter() {
    for algo in all() {
        let (m, ptm, heap) = setup(algo);
        let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let ctr = heap.alloc(th0.session_mut(), 1);
        th0.run(|tx| tx.write(ctr, 0));
        drop(th0);
        let threads = 4;
        let per = 500;
        m.begin_run(threads, u64::MAX);
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let m = Arc::clone(&m);
                let ptm = Arc::clone(&ptm);
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    let mut th = TxThread::new(ptm, heap, m.session(tid));
                    for _ in 0..per {
                        th.run(|tx| {
                            let v = tx.read(ctr)?;
                            tx.write(ctr, v + 1)
                        });
                    }
                });
            }
        });
        let mut th = TxThread::new(ptm.clone(), heap.clone(), {
            m.begin_run(1, u64::MAX);
            m.session(0)
        });
        let v = th.run(|tx| tx.read(ctr));
        assert_eq!(v, (threads * per) as u64, "{algo:?}: lost updates");
    }
}

#[test]
fn bank_invariant_under_concurrency() {
    for algo in all() {
        let (m, ptm, heap) = setup(algo);
        let accounts = 16u64;
        let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let table = heap.alloc(th0.session_mut(), accounts as usize);
        th0.run(|tx| {
            for i in 0..accounts {
                tx.write_at(table, i, 1_000)?;
            }
            Ok(())
        });
        drop(th0);
        let threads = 4;
        m.begin_run(threads, u64::MAX);
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let m = Arc::clone(&m);
                let ptm = Arc::clone(&ptm);
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    let mut th = TxThread::new(ptm, heap, m.session(tid));
                    let mut rng = SmallRng::seed_from_u64(tid as u64);
                    for _ in 0..400 {
                        let from = rng.gen_range(0..accounts);
                        let to = rng.gen_range(0..accounts);
                        th.run(|tx| {
                            let f = tx.read_at(table, from)?;
                            let t = tx.read_at(table, to)?;
                            if from != to && f >= 10 {
                                tx.write_at(table, from, f - 10)?;
                                tx.write_at(table, to, t + 10)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        m.begin_run(1, u64::MAX);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let total = th.run(|tx| {
            let mut sum = 0;
            for i in 0..accounts {
                sum += tx.read_at(table, i)?;
            }
            Ok(sum)
        });
        assert_eq!(total, accounts * 1_000, "{algo:?}: money not conserved");
    }
}

fn setup_with(cfg: PtmConfig) -> (Arc<Machine>, Arc<Ptm>, Arc<PHeap>) {
    let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
    let heap = PHeap::format(&m, "heap", 1 << 16, 8);
    (m.clone(), Ptm::new(cfg), heap)
}

/// Unique (pool, line) count of a set of addresses.
fn unique_lines(addrs: &[PAddr]) -> u64 {
    let mut lines: Vec<(u32, u64)> = addrs.iter().map(|a| (a.pool().0, a.line())).collect();
    lines.sort_unstable();
    lines.dedup();
    lines.len() as u64
}

/// Satellite acceptance: under ADR with write combining, the
/// writebacks of one committed redo transaction are exactly the
/// unique dirty lines it touches — ceil(k/2) log lines (two entries
/// per line), the header line twice (COMMITTED marker + retire), and
/// each unique data line once.
#[test]
fn combined_redo_writebacks_equal_unique_dirty_lines() {
    let (m, ptm, heap) = setup_with(PtmConfig::combined(Algo::RedoLazy));
    let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
    let a = heap.alloc(th.session_mut(), 24);
    // 12 entries: 8 words of one region plus 4 of another — several
    // entries share data lines.
    let writes: Vec<PAddr> = (0..8).chain(16..20).map(|w| a.offset(w)).collect();
    let before = m.stats.snapshot();
    th.run(|tx| {
        for (i, &w) in writes.iter().enumerate() {
            tx.write(w, i as u64 + 1)?;
        }
        Ok(())
    });
    let d = m.stats.snapshot().delta_since(&before);
    let k = writes.len() as u64;
    let log_lines = crate::log::entry_lines(writes.len()) as u64;
    let data_lines = unique_lines(&writes);
    assert!(data_lines < k, "test must exercise line sharing");
    let expected = log_lines + 2 + data_lines;
    assert_eq!(
        d.clwb_writebacks, expected,
        "writebacks must equal unique dirty lines \
         (log {log_lines} + header 2 + data {data_lines})"
    );
    assert_eq!(
        d.clwbs, expected,
        "combined pipeline flushes each line once"
    );
    assert_eq!(d.clwb_batches, 2, "one batched drain per fence window");
    let s = ptm.stats_snapshot();
    // The header-line flushes (marker, retire) go direct, not through
    // the planner: only log and data lines are planned.
    assert_eq!(s.lines_planned, log_lines + data_lines);
    assert_eq!(
        s.flushes_elided,
        (k - log_lines) + (k - data_lines),
        "planner elides the duplicate log- and data-line offers"
    );
    assert_eq!(s.max_write_lines, data_lines);
}

/// Same-shape accounting for undo: the commit window flushes each
/// unique in-place data line once (the per-entry log flushes during
/// execution are the algorithm's O(W) cost and stay as-is).
#[test]
fn combined_undo_writebacks_equal_unique_dirty_lines() {
    let (m, ptm, heap) = setup_with(PtmConfig::combined(Algo::UndoEager));
    let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
    let a = heap.alloc(th.session_mut(), 16);
    let writes: Vec<PAddr> = (0..6).map(|w| a.offset(w)).collect();
    let before = m.stats.snapshot();
    th.run(|tx| {
        for (i, &w) in writes.iter().enumerate() {
            // Repeat stores: the eager_writes dedup keeps one
            // obligation per address.
            tx.write(w, i as u64)?;
            tx.write(w, i as u64 + 10)?;
        }
        Ok(())
    });
    let d = m.stats.snapshot().delta_since(&before);
    let k = writes.len() as u64;
    let data_lines = unique_lines(&writes);
    // seq header + one flush per log entry append + commit window
    // (unique data lines) + truncate.
    let expected = 1 + k + data_lines + 1;
    assert_eq!(d.clwb_writebacks, expected);
    let s = ptm.stats_snapshot();
    assert_eq!(s.lines_planned, data_lines);
    assert_eq!(s.flushes_elided, k - data_lines);
}

/// Cow shadow accounting: under ADR with write combining, a committed
/// transaction flushes each shadow line once, the publish-log lines,
/// the header line twice (marker + retire), and each home line once in
/// the publish window — and bumps exactly two publish fences.
#[test]
fn combined_cow_writebacks_count_shadow_and_home_lines() {
    let (m, ptm, heap) = setup_with(PtmConfig::combined(Algo::CowShadow));
    let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
    let a = heap.alloc(th.session_mut(), 24);
    let writes: Vec<PAddr> = (0..8).chain(16..20).map(|w| a.offset(w)).collect();
    let before = m.stats.snapshot();
    th.run(|tx| {
        for (i, &w) in writes.iter().enumerate() {
            tx.write(w, i as u64 + 1)?;
        }
        Ok(())
    });
    let d = m.stats.snapshot().delta_since(&before);
    let home_lines = unique_lines(&writes);
    let s = ptm.stats_snapshot();
    assert_eq!(s.shadow_lines_allocated, home_lines, "one shadow per line");
    assert_eq!(s.shadow_lines_reclaimed, home_lines, "reclaimed at publish");
    assert_eq!(s.publish_fences, 2, "publish + retire");
    // shadow lines + publish-log lines (one 4-word record per dirtied
    // line, two per cache line) + header twice + home lines.
    let log_lines = crate::log::entry_lines(home_lines as usize) as u64;
    let expected = home_lines + log_lines + 2 + home_lines;
    assert_eq!(
        d.clwbs, expected,
        "cow flushes shadow {home_lines} + log {log_lines} + header 2 + home {home_lines}"
    );
}

/// The combined pipeline must commit the same data as the naive one
/// while issuing strictly fewer flushes on a line-sharing write set.
/// Redo and undo only: cow is already line-granular, so combining has
/// nothing left to elide there.
#[test]
fn combined_pipeline_matches_naive_semantics_with_fewer_flushes() {
    for algo in [Algo::RedoLazy, Algo::UndoEager] {
        let run = |combining: bool| {
            let cfg = PtmConfig {
                write_combining: combining,
                ..PtmConfig::with_algo(algo)
            };
            let (m, ptm, heap) = setup_with(cfg);
            let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
            let a = heap.alloc(th.session_mut(), 32);
            for round in 0..4u64 {
                th.run(|tx| {
                    for w in 0..16u64 {
                        tx.write_at(a, w, round * 100 + w)?;
                    }
                    Ok(())
                });
            }
            let values: Vec<u64> = (0..16)
                .map(|w| heap.pool().shadow().unwrap().load(a.word() + w))
                .collect();
            (values, m.stats.snapshot().clwbs)
        };
        let (naive_vals, naive_clwbs) = run(false);
        let (combined_vals, combined_clwbs) = run(true);
        assert_eq!(naive_vals, combined_vals, "{algo:?}: divergent commits");
        assert!(
            combined_clwbs < naive_clwbs,
            "{algo:?}: combined {combined_clwbs} must flush less than naive {naive_clwbs}"
        );
    }
}

/// Under eADR the planner is bypassed entirely: no planner counters
/// move and no flush instructions are issued — the eADR arm of the
/// ablation must be unchanged by the flag.
#[test]
fn combining_is_inert_under_eadr() {
    let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
    let heap = PHeap::format(&m, "heap", 1 << 16, 8);
    let ptm = Ptm::new(PtmConfig {
        write_combining: true,
        htm_retries: 0,
        ..PtmConfig::redo()
    });
    let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
    let a = heap.alloc(th.session_mut(), 16);
    th.run(|tx| {
        for w in 0..16u64 {
            tx.write_at(a, w, w)?;
        }
        Ok(())
    });
    let s = ptm.stats_snapshot();
    assert_eq!(s.lines_planned, 0);
    assert_eq!(s.flushes_elided, 0);
    assert_eq!(m.stats.snapshot().clwbs, 0);
    assert_eq!(m.stats.snapshot().clwb_batches, 0);
}

/// The duplicate-filtered read set keeps one slot per orec, so a
/// hot-stripe re-read costs O(unique orecs) at validation.
#[test]
fn read_set_is_duplicate_filtered_under_combining() {
    let (m, ptm, heap) = setup_with(PtmConfig::combined(Algo::RedoLazy));
    let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
    let a = heap.alloc(th.session_mut(), 4);
    th.run(|tx| tx.write(a, 7));
    let got = th.run(|tx| {
        let mut sum = 0;
        for _ in 0..100 {
            sum += tx.read(a)?;
        }
        // A write forces the full (non-read-only) commit path, which
        // records the read-set high-water mark.
        tx.write(a.offset(1), sum)?;
        Ok(sum)
    });
    assert_eq!(got, 700);
    let s = ptm.stats_snapshot();
    assert!(
        s.max_read_set_unique <= 2,
        "100 re-reads of one stripe must collapse to one slot, got {}",
        s.max_read_set_unique
    );
}

#[test]
fn undo_pays_more_fences_than_redo() {
    let writes = 16u64;
    let fences_for = |algo: Algo| {
        let (m, ptm, heap) = setup(algo);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), writes as usize);
        let before = m.stats.snapshot().sfences;
        th.run(|tx| {
            for i in 0..writes {
                tx.write_at(a, i, i)?;
            }
            Ok(())
        });
        m.stats.snapshot().sfences - before
    };
    let undo = fences_for(Algo::UndoEager);
    let redo = fences_for(Algo::RedoLazy);
    let cow = fences_for(Algo::CowShadow);
    assert!(
        undo >= writes && redo <= 8 && cow <= 8,
        "undo fences {undo} (expect >= {writes}), redo {redo} and cow {cow} (expect O(1))"
    );
}

#[test]
fn elide_fences_suppresses_sfence() {
    let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
    let heap = PHeap::format(&m, "heap", 1 << 14, 8);
    let cfg = PtmConfig {
        elide_fences: true,
        ..PtmConfig::undo()
    };
    let ptm = Ptm::new(cfg);
    let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
    let a = heap.alloc(th.session_mut(), 8);
    let before = m.stats.snapshot();
    th.run(|tx| {
        for i in 0..8 {
            tx.write_at(a, i, i)?;
        }
        Ok(())
    });
    let after = m.stats.snapshot();
    assert_eq!(after.sfences, before.sfences, "no fences issued");
    assert!(after.clwbs > before.clwbs, "flushes still issued");
}

#[test]
fn ts_extension_salvages_reads() {
    // A transaction reads a, then another tx commits to b (raising the
    // clock), then the first reads b: without extension this aborts;
    // with it, the read set {a} revalidates and the tx commits.
    let (m, ptm, heap) = setup(Algo::RedoLazy);
    m.begin_run(2, u64::MAX);
    let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
    let mut th1 = TxThread::new(ptm.clone(), heap.clone(), m.session(1));
    let a = heap.alloc(th0.session_mut(), 1);
    let b = heap.alloc(th0.session_mut(), 1);
    th0.run(|tx| {
        tx.write(a, 1)?;
        tx.write(b, 2)
    });
    let before = ptm.stats_snapshot();
    let mut stage = 0;
    let got = th0.run(|tx| {
        let va = tx.read(a)?;
        if stage == 0 {
            stage = 1;
            th1.run(|tx1| {
                let vb = tx1.read(b)?;
                tx1.write(b, vb + 10)
            });
        }
        let vb = tx.read(b)?;
        Ok((va, vb))
    });
    assert_eq!(got, (1, 12));
    let after = ptm.stats_snapshot();
    assert_eq!(after.aborts, before.aborts, "extension avoided the abort");
    assert!(after.extensions > before.extensions);
}

#[test]
fn snapshot_isolation_is_really_serializable() {
    // Classic write-skew shape is prevented: two txs each read both
    // cells and write one; outcome must be serializable.
    for algo in all() {
        let (m, ptm, heap) = setup(algo);
        m.begin_run(2, u64::MAX);
        let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th0.session_mut(), 1);
        let b = heap.alloc(th0.session_mut(), 1);
        th0.run(|tx| {
            tx.write(a, 100)?;
            tx.write(b, 100)
        });
        drop(th0);
        std::thread::scope(|scope| {
            let m0 = Arc::clone(&m);
            let p0 = Arc::clone(&ptm);
            let h0 = Arc::clone(&heap);
            scope.spawn(move || {
                let mut th = TxThread::new(p0, h0, m0.session(0));
                th.run(|tx| {
                    let x = tx.read(a)?;
                    let y = tx.read(b)?;
                    if x + y >= 100 {
                        tx.write(a, x.saturating_sub(100))?;
                    }
                    Ok(())
                });
            });
            let m1 = Arc::clone(&m);
            let p1 = Arc::clone(&ptm);
            let h1 = Arc::clone(&heap);
            scope.spawn(move || {
                let mut th = TxThread::new(p1, h1, m1.session(1));
                th.run(|tx| {
                    let x = tx.read(a)?;
                    let y = tx.read(b)?;
                    if x + y >= 100 {
                        tx.write(b, y.saturating_sub(100))?;
                    }
                    Ok(())
                });
            });
        });
        m.begin_run(1, u64::MAX);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let (x, y) = th.run(|tx| Ok((tx.read(a)?, tx.read(b)?)));
        // Serializable outcomes: one tx sees the other's debit.
        assert!(
            (x, y) == (0, 100) || (x, y) == (100, 0) || (x, y) == (0, 0),
            "{algo:?}: non-serializable outcome ({x},{y})"
        );
        // (0,0) happens only if one committed before the other began;
        // with sum 200 initially both guards pass, so (0,0) is also
        // serializable. What must NOT happen is a torn guard, e.g.
        // negative balances — unrepresentable here, so the assert above
        // is the full check.
    }
}

mod htm {
    use super::*;

    fn setup(domain: DurabilityDomain) -> (Arc<Machine>, Arc<Ptm>, Arc<PHeap>) {
        let m = Machine::new(MachineConfig::functional(domain));
        let heap = PHeap::format(&m, "heap", 1 << 16, 8);
        let ptm = Ptm::new(PtmConfig::hybrid(Algo::RedoLazy));
        (m, ptm, heap)
    }

    #[test]
    fn htm_commits_under_eadr() {
        let (m, ptm, heap) = setup(DurabilityDomain::Eadr);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| {
            tx.write(a, 5)?;
            let v = tx.read(a)?;
            tx.write(a.offset(1), v * 2)
        });
        assert_eq!(th.run(|tx| tx.read(a.offset(1))), 10);
        let s = ptm.stats_snapshot();
        assert!(s.htm_commits >= 2, "hardware path used: {s:?}");
        assert_eq!(s.htm_fallbacks, 0);
        // No flushes and no log traffic on the hardware path.
        assert_eq!(m.stats.snapshot().clwbs, 0);
    }

    #[test]
    fn htm_is_skipped_under_adr() {
        let (m, ptm, heap) = setup(DurabilityDomain::Adr);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 9));
        let s = ptm.stats_snapshot();
        assert_eq!(s.htm_commits, 0, "TSX is incompatible with ADR");
        assert_eq!(s.commits, 1);
        assert!(m.stats.snapshot().sfences > 0, "software path flushed");
    }

    #[test]
    fn htm_commit_is_durable_under_eadr() {
        let (m, ptm, heap) = setup(DurabilityDomain::Eadr);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 2);
        th.run(|tx| tx.write(a, 1234));
        assert!(ptm.stats_snapshot().htm_commits >= 1);
        let img = m.crash(0);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Eadr));
        crate::recovery::recover(&m2);
        assert_eq!(m2.pool(a.pool()).raw_load(a.word()), 1234);
    }

    #[test]
    fn htm_capacity_overflow_falls_back() {
        let (m, ptm, heap) = setup(DurabilityDomain::Eadr);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let cap = m.config().htm.capacity_lines as u64;
        let wpl = pmem_sim::WORDS_PER_LINE as u64;
        let a = heap.alloc(th.session_mut(), ((cap + 4) * wpl) as usize);
        th.run(|tx| {
            // One word per line: the distinct-line footprint overflows
            // the modeled capacity.
            for i in 0..(cap + 2) {
                tx.write_at(a, i * wpl, i)?;
            }
            Ok(())
        });
        let s = ptm.stats_snapshot();
        assert!(s.htm_fallbacks >= 1, "capacity abort must fall back: {s:?}");
        assert!(s.htm_capacity_aborts >= 1, "attributed to capacity: {s:?}");
        assert_eq!(s.commits, 1);
        // Data intact via the software path.
        assert_eq!(th.run(|tx| tx.read_at(a, (cap + 1) * wpl)), cap + 1);
    }

    #[test]
    fn htm_capacity_counts_lines_not_entries() {
        // The capacity bound is the distinct-*line* footprint, not the
        // write-set entry count: twice as many word writes as the line
        // capacity, packed onto a fraction of the lines, must stay on
        // the hardware path.
        let (m, ptm, heap) = setup(DurabilityDomain::Eadr);
        let mut th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let words = 2 * m.config().htm.capacity_lines as u64;
        let a = heap.alloc(th.session_mut(), words as usize);
        th.run(|tx| {
            for i in 0..words {
                tx.write_at(a, i, i)?;
            }
            Ok(())
        });
        let s = ptm.stats_snapshot();
        assert_eq!(s.htm_capacity_aborts, 0, "dense lines fit: {s:?}");
        assert_eq!(s.htm_fallbacks, 0);
        assert!(s.htm_commits >= 1, "stayed on the hardware path: {s:?}");
        assert_eq!(th.run(|tx| tx.read_at(a, words - 1)), words - 1);
    }

    #[test]
    fn hybrid_counter_is_exact_under_concurrency() {
        let (m, ptm, heap) = setup(DurabilityDomain::Eadr);
        let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let ctr = heap.alloc(th0.session_mut(), 1);
        th0.run(|tx| tx.write(ctr, 0));
        drop(th0);
        let threads = 4;
        let per = 400;
        m.begin_run(threads, u64::MAX);
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let m = Arc::clone(&m);
                let ptm = Arc::clone(&ptm);
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    let mut th = TxThread::new(ptm, heap, m.session(tid));
                    for _ in 0..per {
                        th.run(|tx| {
                            let v = tx.read(ctr)?;
                            tx.write(ctr, v + 1)
                        });
                    }
                });
            }
        });
        m.begin_run(1, u64::MAX);
        let mut th = TxThread::new(ptm.clone(), heap, m.session(0));
        assert_eq!(th.run(|tx| tx.read(ctr)), (threads * per) as u64);
        let s = ptm.stats_snapshot();
        assert!(s.htm_commits > 0, "some hardware commits expected: {s:?}");
    }

    #[test]
    fn htm_mixes_safely_with_software_writers() {
        // One thread runs hybrid, another pure-STM eager, on overlapping
        // data; the sum invariant must hold.
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 16, 8);
        let hybrid = Ptm::new(PtmConfig::hybrid(Algo::RedoLazy));
        let mut th0 = TxThread::new(hybrid.clone(), heap.clone(), m.session(0));
        let cells = heap.alloc(th0.session_mut(), 8);
        th0.run(|tx| {
            for i in 0..8 {
                tx.write_at(cells, i, 100)?;
            }
            Ok(())
        });
        drop(th0);
        m.begin_run(2, u64::MAX);
        std::thread::scope(|scope| {
            // NOTE: both threads must share the same Ptm (same orecs/clock);
            // the hybrid flag is per-config, so use one Ptm and rely on
            // run()'s dispatch for both.
            let m0 = Arc::clone(&m);
            let p0 = Arc::clone(&hybrid);
            let h0 = Arc::clone(&heap);
            scope.spawn(move || {
                let mut th = TxThread::new(p0, h0, m0.session(0));
                for i in 0..500u64 {
                    th.run(|tx| {
                        let a = i % 8;
                        let b = (i + 3) % 8;
                        let va = tx.read_at(cells, a)?;
                        let vb = tx.read_at(cells, b)?;
                        if a != b && va > 0 {
                            tx.write_at(cells, a, va - 1)?;
                            tx.write_at(cells, b, vb + 1)?;
                        }
                        Ok(())
                    });
                }
            });
            let m1 = Arc::clone(&m);
            let p1 = Arc::clone(&hybrid);
            let h1 = Arc::clone(&heap);
            scope.spawn(move || {
                let mut th = TxThread::new(p1, h1, m1.session(1));
                for i in 0..500u64 {
                    th.run(|tx| {
                        let a = (i + 5) % 8;
                        let b = i % 8;
                        let va = tx.read_at(cells, a)?;
                        let vb = tx.read_at(cells, b)?;
                        if a != b && va > 0 {
                            tx.write_at(cells, a, va - 1)?;
                            tx.write_at(cells, b, vb + 1)?;
                        }
                        Ok(())
                    });
                }
            });
        });
        m.begin_run(1, u64::MAX);
        let mut th = TxThread::new(hybrid, heap, m.session(0));
        let sum = th.run(|tx| {
            let mut s = 0;
            for i in 0..8 {
                s += tx.read_at(cells, i)?;
            }
            Ok(s)
        });
        assert_eq!(sum, 800, "transfers must conserve");
    }
}
