//! A convenience façade bundling the machine + heap + PTM lifecycle.
//!
//! Most programs want exactly one persistent heap and one PTM instance,
//! and a two-call story for crashes: [`PtmDb::crash`] to capture the
//! failure image, [`PtmDb::reopen`] to get back a fully recovered
//! database (PTM log replay/rollback + allocator GC + root table).
//!
//! ```
//! use pmem_sim::{DurabilityDomain, MachineConfig};
//! use ptm::db::PtmDb;
//! use ptm::PtmConfig;
//!
//! let db = PtmDb::create(
//!     MachineConfig::functional(DurabilityDomain::Adr),
//!     PtmConfig::redo(),
//!     1 << 16,
//!     8,
//! );
//! let mut th = db.thread(0);
//! let heap = db.heap().clone();
//! let cell = heap.alloc(th.session_mut(), 1);
//! th.run(|tx| tx.write(cell, 7));
//! heap.set_root(th.session_mut(), 0, cell);
//! drop(th);
//!
//! let image = db.crash(1);
//! let (db2, reports) = PtmDb::reopen(&image, MachineConfig::functional(DurabilityDomain::Adr), PtmConfig::redo());
//! assert_eq!(reports.gc.blocks_scanned, 1);
//! let cell2 = db2.heap().root_raw(0);
//! assert_eq!(db2.heap().pool().raw_load(cell2.word()), 7);
//! ```

use std::sync::Arc;
use std::time::Instant;

use palloc::{GcReport, PHeap};
use pmem_sim::{CrashImage, Machine, MachineConfig};

use crate::config::PtmConfig;
use crate::recovery::{recover_with_options, RecoverOptions, RecoveryReport};
use crate::txn::{Ptm, TxThread};

/// Pool name the façade uses for its heap (how `reopen` finds it again).
pub const DB_HEAP_NAME: &str = "ptmdb-heap";

/// Everything recovery did during [`PtmDb::reopen`].
#[derive(Debug, Clone, Default)]
pub struct ReopenReports {
    pub recovery: RecoveryReport,
    pub gc: GcReport,
    /// Reopen start → the heap able to serve its first (read-only)
    /// transaction: log repair done and the pool attached behind the
    /// GC's epoch fence, sweep possibly still running.
    pub time_to_first_txn_ns: u64,
    /// Reopen start → fully restarted (GC sweep installed, allocator
    /// mutations unblocked).
    pub full_restart_ns: u64,
}

impl ReopenReports {
    /// Fold another engine's reopen reports into this one (shard
    /// aggregation). Counts add saturating via the underlying reports'
    /// `merge`; the wall-clock fields take the maximum — shards restart
    /// concurrently, so the slowest shard *is* the restart latency.
    pub fn merge(&mut self, other: &ReopenReports) {
        self.recovery.merge(&other.recovery);
        self.gc.merge(&other.gc);
        self.time_to_first_txn_ns = self.time_to_first_txn_ns.max(other.time_to_first_txn_ns);
        self.full_restart_ns = self.full_restart_ns.max(other.full_restart_ns);
    }
}

/// A persistent database: one machine, one heap, one PTM.
pub struct PtmDb {
    machine: Arc<Machine>,
    heap: Arc<PHeap>,
    ptm: Arc<Ptm>,
}

impl PtmDb {
    /// Create a fresh database.
    pub fn create(
        machine_cfg: MachineConfig,
        ptm_cfg: PtmConfig,
        heap_words: usize,
        roots: usize,
    ) -> PtmDb {
        let machine = Machine::new(machine_cfg);
        let heap = PHeap::format_with_media(
            &machine,
            DB_HEAP_NAME,
            heap_words,
            roots,
            ptm_cfg.heap_media,
        );
        let ptm = Ptm::new(ptm_cfg);
        PtmDb { machine, heap, ptm }
    }

    /// Reboot from a crash image: runs PTM recovery (replaying committed
    /// redo logs, rolling back in-flight undo logs), re-attaches the heap
    /// (allocator GC), and returns a ready-to-use database.
    ///
    /// # Panics
    /// Panics if the image contains no [`DB_HEAP_NAME`] pool or the heap
    /// fails validation.
    pub fn reopen(
        image: &CrashImage,
        machine_cfg: MachineConfig,
        ptm_cfg: PtmConfig,
    ) -> (PtmDb, ReopenReports) {
        Self::reopen_with(image, machine_cfg, ptm_cfg, RecoverOptions::default())
    }

    /// [`PtmDb::reopen`] with explicit recovery options: log repair runs
    /// with [`RecoverOptions::workers`] threads and the restart GC's
    /// scan/mark phases use the same worker count. The heap is attached
    /// *online* — the returned timing splits time-to-first-transaction
    /// (reads servable) from the full restart (sweep installed) — but
    /// the sweep is joined before returning, so the database is fully
    /// ready and the reports are complete.
    pub fn reopen_with(
        image: &CrashImage,
        machine_cfg: MachineConfig,
        ptm_cfg: PtmConfig,
        opts: RecoverOptions,
    ) -> (PtmDb, ReopenReports) {
        let t0 = Instant::now();
        let machine = Machine::reboot(image, machine_cfg);
        let recovery = recover_with_options(&machine, opts);
        let pool = machine
            .pools()
            .into_iter()
            .find(|p| p.name() == DB_HEAP_NAME)
            .expect("crash image contains no PtmDb heap");
        let (heap, online) = PHeap::attach_online(pool, opts.workers.max(1)).expect("heap attach");
        let time_to_first_txn_ns = t0.elapsed().as_nanos() as u64;
        let gc = online.join();
        let full_restart_ns = t0.elapsed().as_nanos() as u64;
        if let Some(sink) = machine.tracer() {
            let mut r = sink.ring();
            r.record(0, trace::EventKind::GcPhase, 0, gc.gc_scan_ns);
            r.record(0, trace::EventKind::GcPhase, 1, gc.gc_mark_ns);
            r.record(0, trace::EventKind::GcPhase, 2, gc.gc_sweep_ns);
            sink.submit(trace::RECOVERY_TID, &r);
        }
        let ptm = Ptm::new(ptm_cfg);
        (
            PtmDb { machine, heap, ptm },
            ReopenReports {
                recovery,
                gc,
                time_to_first_txn_ns,
                full_restart_ns,
            },
        )
    }

    /// Begin a timed run with `threads` virtual threads (see
    /// [`Machine::begin_run`]).
    pub fn begin_run(&self, threads: usize, window_ns: u64) {
        self.machine.begin_run(threads, window_ns);
    }

    /// A transaction executor for virtual thread `tid`.
    pub fn thread(&self, tid: usize) -> TxThread {
        TxThread::new(
            Arc::clone(&self.ptm),
            Arc::clone(&self.heap),
            self.machine.session(tid),
        )
    }

    /// Simulate a power failure (callers running concurrent threads
    /// should [`Machine::freeze`] first).
    pub fn crash(&self, seed: u64) -> CrashImage {
        self.machine.crash(seed)
    }

    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    pub fn heap(&self) -> &Arc<PHeap> {
        &self.heap
    }

    pub fn ptm(&self) -> &Arc<Ptm> {
        &self.ptm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::DurabilityDomain;

    fn cfg() -> MachineConfig {
        MachineConfig::functional(DurabilityDomain::Adr)
    }

    #[test]
    fn create_write_crash_reopen_roundtrip() {
        let db = PtmDb::create(cfg(), PtmConfig::redo(), 1 << 14, 4);
        let mut th = db.thread(0);
        let heap = Arc::clone(db.heap());
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| {
            tx.write(a, 11)?;
            tx.write_at(a, 1, 22)
        });
        heap.set_root(th.session_mut(), 0, a);
        drop(th);
        let image = db.crash(9);
        let (db2, reports) = PtmDb::reopen(&image, cfg(), PtmConfig::redo());
        assert_eq!(reports.recovery.logs_scanned, 1);
        let a2 = db2.heap().root_raw(0);
        assert_eq!(a2, a);
        let mut th2 = db2.thread(0);
        assert_eq!(th2.run(|tx| tx.read(a2)), 11);
        assert_eq!(th2.run(|tx| tx.read_at(a2, 1)), 22);
    }

    #[test]
    fn reopen_reports_gc_findings() {
        let db = PtmDb::create(cfg(), PtmConfig::undo(), 1 << 14, 4);
        let mut th = db.thread(0);
        let heap = Arc::clone(db.heap());
        let kept = heap.alloc(th.session_mut(), 8);
        th.run(|tx| tx.write(kept, 1));
        heap.set_root(th.session_mut(), 0, kept);
        let _leak = heap.alloc(th.session_mut(), 8);
        drop(th);
        let image = db.crash(3);
        let (_db2, reports) = PtmDb::reopen(&image, cfg(), PtmConfig::undo());
        assert_eq!(reports.gc.live_blocks, 1);
        assert_eq!(reports.gc.leaked_blocks, 1);
    }

    #[test]
    #[should_panic(expected = "no PtmDb heap")]
    fn reopen_rejects_foreign_images() {
        let m = Machine::new(cfg());
        m.alloc_pool("something-else", 64, pmem_sim::MediaKind::Optane);
        let image = m.crash(0);
        let _ = PtmDb::reopen(&image, cfg(), PtmConfig::redo());
    }

    /// Pin the aggregation rules: counts sum (saturating — a corrupt or
    /// overflowing shard counter must never wrap the fleet total), the
    /// wall-clock fields take the max (shards restart concurrently).
    #[test]
    fn reopen_reports_merge_sums_counts_and_maxes_times() {
        let mut a = ReopenReports::default();
        a.recovery.logs_scanned = usize::MAX;
        a.recovery.redo_entries = 3;
        a.gc.blocks_scanned = 5;
        a.time_to_first_txn_ns = 10;
        a.full_restart_ns = 50;
        let mut b = ReopenReports::default();
        b.recovery.logs_scanned = 2;
        b.recovery.redo_entries = 4;
        b.recovery.malformed.push("pool 'x': bad".to_string());
        b.gc.blocks_scanned = 7;
        b.time_to_first_txn_ns = 30;
        b.full_restart_ns = 40;
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(
            m.recovery.logs_scanned,
            usize::MAX,
            "saturates, never wraps"
        );
        assert_eq!(m.recovery.redo_entries, 7);
        assert_eq!(m.recovery.malformed, b.recovery.malformed);
        assert_eq!(m.gc.blocks_scanned, 12);
        assert_eq!(m.time_to_first_txn_ns, 30, "overlapping restarts: max");
        assert_eq!(m.full_restart_ns, 50, "slowest shard is the restart");
    }

    /// The façade's timing split is ordered sanely: first transaction at
    /// or before full restart, both nonzero.
    #[test]
    fn reopen_timing_split_is_ordered() {
        let db = PtmDb::create(cfg(), PtmConfig::redo(), 1 << 14, 4);
        let mut th = db.thread(0);
        let heap = Arc::clone(db.heap());
        let a = heap.alloc(th.session_mut(), 1);
        th.run(|tx| tx.write(a, 1));
        heap.set_root(th.session_mut(), 0, a);
        drop(th);
        let image = db.crash(2);
        let (_db2, reports) = PtmDb::reopen_with(
            &image,
            cfg(),
            PtmConfig::redo(),
            crate::recovery::RecoverOptions {
                workers: 2,
                ..Default::default()
            },
        );
        assert!(reports.time_to_first_txn_ns > 0);
        assert!(reports.full_restart_ns >= reports.time_to_first_txn_ns);
        assert!(reports.recovery.recovery_ns > 0);
    }

    #[test]
    fn multi_thread_runs_work() {
        let db = PtmDb::create(cfg(), PtmConfig::redo(), 1 << 14, 4);
        let mut th = db.thread(0);
        let heap = Arc::clone(db.heap());
        let ctr = heap.alloc(th.session_mut(), 1);
        th.run(|tx| tx.write(ctr, 0));
        drop(th);
        db.begin_run(3, u64::MAX);
        std::thread::scope(|s| {
            for tid in 0..3 {
                let db = &db;
                s.spawn(move || {
                    let mut th = db.thread(tid);
                    for _ in 0..100 {
                        th.run(|tx| {
                            let v = tx.read(ctr)?;
                            tx.write(ctr, v + 1)
                        });
                    }
                });
            }
        });
        db.begin_run(1, u64::MAX);
        let mut th = db.thread(0);
        assert_eq!(th.run(|tx| tx.read(ctr)), 300);
    }
}
