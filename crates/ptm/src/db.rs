//! A convenience façade bundling the machine + heap + PTM lifecycle.
//!
//! Most programs want exactly one persistent heap and one PTM instance,
//! and a two-call story for crashes: [`PtmDb::crash`] to capture the
//! failure image, [`PtmDb::reopen`] to get back a fully recovered
//! database (PTM log replay/rollback + allocator GC + root table).
//!
//! ```
//! use pmem_sim::{DurabilityDomain, MachineConfig};
//! use ptm::db::PtmDb;
//! use ptm::PtmConfig;
//!
//! let db = PtmDb::create(
//!     MachineConfig::functional(DurabilityDomain::Adr),
//!     PtmConfig::redo(),
//!     1 << 16,
//!     8,
//! );
//! let mut th = db.thread(0);
//! let heap = db.heap().clone();
//! let cell = heap.alloc(th.session_mut(), 1);
//! th.run(|tx| tx.write(cell, 7));
//! heap.set_root(th.session_mut(), 0, cell);
//! drop(th);
//!
//! let image = db.crash(1);
//! let (db2, reports) = PtmDb::reopen(&image, MachineConfig::functional(DurabilityDomain::Adr), PtmConfig::redo());
//! assert_eq!(reports.gc.blocks_scanned, 1);
//! let cell2 = db2.heap().root_raw(0);
//! assert_eq!(db2.heap().pool().raw_load(cell2.word()), 7);
//! ```

use std::sync::Arc;

use palloc::{GcReport, PHeap};
use pmem_sim::{CrashImage, Machine, MachineConfig};

use crate::config::PtmConfig;
use crate::recovery::{recover, RecoveryReport};
use crate::txn::{Ptm, TxThread};

/// Pool name the façade uses for its heap (how `reopen` finds it again).
pub const DB_HEAP_NAME: &str = "ptmdb-heap";

/// Everything recovery did during [`PtmDb::reopen`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReopenReports {
    pub recovery: RecoveryReport,
    pub gc: GcReport,
}

/// A persistent database: one machine, one heap, one PTM.
pub struct PtmDb {
    machine: Arc<Machine>,
    heap: Arc<PHeap>,
    ptm: Arc<Ptm>,
}

impl PtmDb {
    /// Create a fresh database.
    pub fn create(
        machine_cfg: MachineConfig,
        ptm_cfg: PtmConfig,
        heap_words: usize,
        roots: usize,
    ) -> PtmDb {
        let machine = Machine::new(machine_cfg);
        let heap = PHeap::format_with_media(
            &machine,
            DB_HEAP_NAME,
            heap_words,
            roots,
            ptm_cfg.heap_media,
        );
        let ptm = Ptm::new(ptm_cfg);
        PtmDb { machine, heap, ptm }
    }

    /// Reboot from a crash image: runs PTM recovery (replaying committed
    /// redo logs, rolling back in-flight undo logs), re-attaches the heap
    /// (allocator GC), and returns a ready-to-use database.
    ///
    /// # Panics
    /// Panics if the image contains no [`DB_HEAP_NAME`] pool or the heap
    /// fails validation.
    pub fn reopen(
        image: &CrashImage,
        machine_cfg: MachineConfig,
        ptm_cfg: PtmConfig,
    ) -> (PtmDb, ReopenReports) {
        let machine = Machine::reboot(image, machine_cfg);
        let recovery = recover(&machine);
        let pool = machine
            .pools()
            .into_iter()
            .find(|p| p.name() == DB_HEAP_NAME)
            .expect("crash image contains no PtmDb heap");
        let (heap, gc) = PHeap::attach(pool).expect("heap attach");
        let ptm = Ptm::new(ptm_cfg);
        (PtmDb { machine, heap, ptm }, ReopenReports { recovery, gc })
    }

    /// Begin a timed run with `threads` virtual threads (see
    /// [`Machine::begin_run`]).
    pub fn begin_run(&self, threads: usize, window_ns: u64) {
        self.machine.begin_run(threads, window_ns);
    }

    /// A transaction executor for virtual thread `tid`.
    pub fn thread(&self, tid: usize) -> TxThread {
        TxThread::new(
            Arc::clone(&self.ptm),
            Arc::clone(&self.heap),
            self.machine.session(tid),
        )
    }

    /// Simulate a power failure (callers running concurrent threads
    /// should [`Machine::freeze`] first).
    pub fn crash(&self, seed: u64) -> CrashImage {
        self.machine.crash(seed)
    }

    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    pub fn heap(&self) -> &Arc<PHeap> {
        &self.heap
    }

    pub fn ptm(&self) -> &Arc<Ptm> {
        &self.ptm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::DurabilityDomain;

    fn cfg() -> MachineConfig {
        MachineConfig::functional(DurabilityDomain::Adr)
    }

    #[test]
    fn create_write_crash_reopen_roundtrip() {
        let db = PtmDb::create(cfg(), PtmConfig::redo(), 1 << 14, 4);
        let mut th = db.thread(0);
        let heap = Arc::clone(db.heap());
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| {
            tx.write(a, 11)?;
            tx.write_at(a, 1, 22)
        });
        heap.set_root(th.session_mut(), 0, a);
        drop(th);
        let image = db.crash(9);
        let (db2, reports) = PtmDb::reopen(&image, cfg(), PtmConfig::redo());
        assert_eq!(reports.recovery.logs_scanned, 1);
        let a2 = db2.heap().root_raw(0);
        assert_eq!(a2, a);
        let mut th2 = db2.thread(0);
        assert_eq!(th2.run(|tx| tx.read(a2)), 11);
        assert_eq!(th2.run(|tx| tx.read_at(a2, 1)), 22);
    }

    #[test]
    fn reopen_reports_gc_findings() {
        let db = PtmDb::create(cfg(), PtmConfig::undo(), 1 << 14, 4);
        let mut th = db.thread(0);
        let heap = Arc::clone(db.heap());
        let kept = heap.alloc(th.session_mut(), 8);
        th.run(|tx| tx.write(kept, 1));
        heap.set_root(th.session_mut(), 0, kept);
        let _leak = heap.alloc(th.session_mut(), 8);
        drop(th);
        let image = db.crash(3);
        let (_db2, reports) = PtmDb::reopen(&image, cfg(), PtmConfig::undo());
        assert_eq!(reports.gc.live_blocks, 1);
        assert_eq!(reports.gc.leaked_blocks, 1);
    }

    #[test]
    #[should_panic(expected = "no PtmDb heap")]
    fn reopen_rejects_foreign_images() {
        let m = Machine::new(cfg());
        m.alloc_pool("something-else", 64, pmem_sim::MediaKind::Optane);
        let image = m.crash(0);
        let _ = PtmDb::reopen(&image, cfg(), PtmConfig::redo());
    }

    #[test]
    fn multi_thread_runs_work() {
        let db = PtmDb::create(cfg(), PtmConfig::redo(), 1 << 14, 4);
        let mut th = db.thread(0);
        let heap = Arc::clone(db.heap());
        let ctr = heap.alloc(th.session_mut(), 1);
        th.run(|tx| tx.write(ctr, 0));
        drop(th);
        db.begin_run(3, u64::MAX);
        std::thread::scope(|s| {
            for tid in 0..3 {
                let db = &db;
                s.spawn(move || {
                    let mut th = db.thread(tid);
                    for _ in 0..100 {
                        th.run(|tx| {
                            let v = tx.read(ctr)?;
                            tx.write(ctr, v + 1)
                        });
                    }
                });
            }
        });
        db.begin_run(1, u64::MAX);
        let mut th = db.thread(0);
        assert_eq!(th.run(|tx| tx.read(ctr)), 300);
    }
}
