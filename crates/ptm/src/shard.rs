//! Sharded multi-pool engine: N independent PTM instances, one per
//! simulated machine, under a single coordinator.
//!
//! The paper's central obstruction is that a single Optane DIMM's write
//! pipeline (WPQ + media write bandwidth) saturates with a handful of
//! writer threads. A [`ShardedEngine`] sidesteps the wall by partitioning
//! the key space across N shards, each a complete `machine + heap + ptm`
//! stack with its own WPQ banks, orec table and log arena. Transactions
//! are routed by key ([`ShardedEngine::shard_of`]) and each executor
//! ([`ShardedEngine::thread`]) is *structurally* confined to one shard:
//! its heap and memory session belong to that shard's machine, so a
//! cross-shard access is not merely forbidden but unrepresentable
//! (`PAddr`s of foreign pools panic at the pool boundary).
//!
//! Cross-shard atomicity is provided by [`crate::twopc::CrossShardTx`]:
//! two-phase commit over the per-shard logs, with the decision record
//! persisted in the coordinator shard's [`crate::log::COORD_POOL`]
//! (allocated here, one per shard machine, so the record rides the same
//! crash/recovery machinery as every other pool).
//!
//! Crash behaviour composes per shard: [`ShardedEngine::crash_all`]
//! yields one media image per shard, and [`ShardedEngine::reopen`] runs
//! log recovery and allocator GC on every shard independently — then a
//! single cross-shard outcome-resolution pass
//! ([`crate::recovery::resolve_in_doubt`]) decides every in-doubt 2PC
//! participant from the durable coordinator records.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use palloc::PHeap;
use pmem_sim::{CrashImage, Machine, MachineConfig, MachineSet, PmemPool, StatsSnapshot};

use crate::config::PtmConfig;
use crate::db::ReopenReports;
use crate::log::{COORD_POOL, COORD_SLOTS, COORD_SLOT_WORDS};
use crate::recovery::{recover_with_options, resolve_in_doubt, RecoverOptions};
use crate::stats::{PtmStats, PtmStatsSnapshot};
use crate::txn::{Ptm, TxThread};

/// Pool-name prefix for shard heaps; shard `i`'s heap pool is named
/// `"shard-heap-<i>"`, which is how [`ShardedEngine::reopen`] finds it.
pub const SHARD_HEAP_PREFIX: &str = "shard-heap";

fn shard_heap_name(shard: usize) -> String {
    format!("{SHARD_HEAP_PREFIX}-{shard}")
}

/// N single-shard PTM stacks behind one key-routed front door.
pub struct ShardedEngine {
    machines: MachineSet,
    heaps: Vec<Arc<PHeap>>,
    ptms: Vec<Arc<Ptm>>,
    /// Per-shard 2PC coordinator-record pools (`COORD_POOL` on each
    /// shard machine), in shard order.
    coords: Vec<Arc<PmemPool>>,
    /// Next global transaction id for cross-shard commits. Gtids are
    /// engine-local, start at 1 (0 = free slot), and must fit 32 bits
    /// (the PREPARED marker packs them into the log state word). Safe
    /// to restart from 1 after reopen: resolution durably clears every
    /// coordinator slot before new transactions run.
    gtid_next: AtomicU64,
    /// Round-robin coordinator slot cursor. With fewer than
    /// [`COORD_SLOTS`] cross-shard commits in flight a slot is always
    /// tombstoned (in cache) before the cursor wraps back to it.
    coord_cursor: AtomicUsize,
}

impl ShardedEngine {
    /// Build `shards` fresh stacks. Every shard gets an identical machine
    /// configuration, an identical PTM configuration, and its own heap of
    /// `heap_words_per_shard` words with `roots` root slots.
    pub fn create(
        shards: usize,
        machine_cfg: MachineConfig,
        ptm_cfg: PtmConfig,
        heap_words_per_shard: usize,
        roots: usize,
    ) -> ShardedEngine {
        let machines = MachineSet::new(shards, machine_cfg);
        let heaps = (0..shards)
            .map(|i| {
                PHeap::format_with_media(
                    machines.get(i),
                    &shard_heap_name(i),
                    heap_words_per_shard,
                    roots,
                    ptm_cfg.heap_media,
                )
            })
            .collect();
        let ptms = (0..shards).map(|_| Ptm::new(ptm_cfg.clone())).collect();
        let coords = (0..shards)
            .map(|i| {
                machines.get(i).alloc_pool(
                    COORD_POOL,
                    COORD_SLOTS * COORD_SLOT_WORDS,
                    ptm_cfg.heap_media,
                )
            })
            .collect();
        ShardedEngine {
            machines,
            heaps,
            ptms,
            coords,
            gtid_next: AtomicU64::new(1),
            coord_cursor: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.machines.len()
    }

    /// Which shard owns `key`. Fibonacci multiply-shift so adjacent keys
    /// scatter; deterministic, so routing is stable across runs and
    /// across crash/reopen.
    pub fn shard_of(&self, key: u64) -> usize {
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % self.shards() as u64) as usize
    }

    /// A transaction executor for virtual thread `tid` on shard `shard`.
    /// The returned [`TxThread`] is bound to that shard's heap and clock
    /// — it cannot name another shard's memory.
    pub fn thread(&self, shard: usize, tid: usize) -> TxThread {
        assert!(shard < self.shards(), "shard {shard} out of range");
        TxThread::new(
            Arc::clone(&self.ptms[shard]),
            Arc::clone(&self.heaps[shard]),
            self.machines.get(shard).session(tid),
        )
    }

    /// Assert that `key` is homed on `shard` — drivers call this on every
    /// operation so a routing bug fails loudly instead of silently doing
    /// single-shard work on the wrong shard. Checked in release builds
    /// too (one multiply-shift per op): a misroute is silent data
    /// misplacement, exactly the class of bug benchmarks would otherwise
    /// launder into plausible numbers.
    pub fn assert_routed(&self, shard: usize, key: u64) {
        let home = self.shard_of(key);
        if home != shard {
            panic!(
                "misrouted operation: key {key} executed on shard {shard} but is homed on shard {home} (of {})",
                self.shards()
            );
        }
    }

    /// Start a timed run on every shard: `threads_per_shard` virtual
    /// threads each, bounded-lag window `window_ns`.
    pub fn begin_run_all(&self, threads_per_shard: usize, window_ns: u64) {
        self.machines.begin_run_all(threads_per_shard, window_ns);
    }

    /// Stop the world on every shard (before a live-run crash).
    pub fn freeze_all(&self) {
        self.machines.freeze_all();
    }

    /// Resume every shard.
    pub fn thaw_all(&self) {
        self.machines.thaw_all();
    }

    /// Simulated power failure on all shards at once: one media image per
    /// shard, adversary seeds derived per shard from `seed`.
    pub fn crash_all(&self, seed: u64) -> Vec<CrashImage> {
        self.machines.crash_all(seed)
    }

    /// Reboot every shard from its crash image: per-shard PTM recovery
    /// (redo replay / undo rollback from that shard's log arena alone)
    /// followed by per-shard heap attach + GC. Shard `i` recovers from
    /// `images[i]`; recovery on one shard never reads another shard's
    /// log.
    pub fn reopen(
        images: &[CrashImage],
        machine_cfg: MachineConfig,
        ptm_cfg: PtmConfig,
    ) -> (ShardedEngine, Vec<ReopenReports>) {
        Self::reopen_with(images, machine_cfg, ptm_cfg, RecoverOptions::default())
    }

    /// [`ShardedEngine::reopen`] with explicit recovery options: the
    /// shards restart *concurrently* (one restart thread per shard) and
    /// each shard's log repair and GC scan/mark additionally use
    /// [`RecoverOptions::workers`] threads. Observationally identical
    /// to the serial reopen — shards never read each other's pools, so
    /// shard restarts commute — and the returned reports stay in shard
    /// order.
    pub fn reopen_with(
        images: &[CrashImage],
        machine_cfg: MachineConfig,
        ptm_cfg: PtmConfig,
        opts: RecoverOptions,
    ) -> (ShardedEngine, Vec<ReopenReports>) {
        assert!(!images.is_empty(), "reopen needs at least one shard image");
        let shard_results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = images
                .iter()
                .enumerate()
                .map(|(i, image)| {
                    let machine_cfg = machine_cfg.clone();
                    s.spawn(move || Self::reopen_shard(i, image, machine_cfg, opts))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        let mut machines = Vec::with_capacity(images.len());
        let mut heaps = Vec::with_capacity(images.len());
        let mut reports = Vec::with_capacity(images.len());
        for res in shard_results {
            match res {
                Ok((machine, heap, rep)) => {
                    machines.push(machine);
                    heaps.push(heap);
                    reports.push(rep);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        // Cross-shard outcome resolution: with every shard's pools
        // readable, decide each in-doubt (PREPARED) participant log from
        // the durable coordinator records, in fixed shard order — the
        // result is independent of the per-shard recovery order above.
        let resolution = resolve_in_doubt(&machines);
        for (i, res) in resolution.iter().enumerate() {
            reports[i].recovery.merge(res);
        }
        let ptms: Vec<Arc<Ptm>> = (0..images.len())
            .map(|_| Ptm::new(ptm_cfg.clone()))
            .collect();
        for (i, res) in resolution.iter().enumerate() {
            PtmStats::add(
                &ptms[i].stats.indoubt_resolved_commit,
                res.indoubt_resolved_commit as u64,
            );
            PtmStats::add(
                &ptms[i].stats.indoubt_resolved_abort,
                res.indoubt_resolved_abort as u64,
            );
        }
        // Re-adopt (or re-create, for images that predate 2PC) each
        // shard's coordinator pool; resolution left every slot durably
        // zeroed, so restarting gtids from 1 is safe.
        let coords = machines
            .iter()
            .map(|m| {
                m.pools()
                    .into_iter()
                    .find(|p| p.name() == COORD_POOL)
                    .unwrap_or_else(|| {
                        m.alloc_pool(
                            COORD_POOL,
                            COORD_SLOTS * COORD_SLOT_WORDS,
                            ptm_cfg.heap_media,
                        )
                    })
            })
            .collect();
        (
            ShardedEngine {
                machines: MachineSet::from_machines(machines),
                heaps,
                ptms,
                coords,
                gtid_next: AtomicU64::new(1),
                coord_cursor: AtomicUsize::new(0),
            },
            reports,
        )
    }

    /// Restart one shard: reboot → log recovery → online heap attach.
    /// The sweep is joined before returning, so the shard comes back
    /// fully ready; the timing split still records how early reads
    /// became servable behind the GC's epoch fence.
    fn reopen_shard(
        i: usize,
        image: &CrashImage,
        machine_cfg: MachineConfig,
        opts: RecoverOptions,
    ) -> (Arc<Machine>, Arc<PHeap>, ReopenReports) {
        let t0 = std::time::Instant::now();
        let machine = Machine::reboot(image, machine_cfg);
        let recovery = recover_with_options(&machine, opts);
        let name = shard_heap_name(i);
        let pool = machine
            .pools()
            .into_iter()
            .find(|p| p.name() == name)
            .unwrap_or_else(|| panic!("image {i} contains no {name} pool"));
        let (heap, online) =
            PHeap::attach_online(pool, opts.workers.max(1)).expect("shard heap attach");
        let time_to_first_txn_ns = t0.elapsed().as_nanos() as u64;
        let gc = online.join();
        let full_restart_ns = t0.elapsed().as_nanos() as u64;
        if let Some(sink) = machine.tracer() {
            let mut r = sink.ring();
            r.record(0, trace::EventKind::GcPhase, 0, gc.gc_scan_ns);
            r.record(0, trace::EventKind::GcPhase, 1, gc.gc_mark_ns);
            r.record(0, trace::EventKind::GcPhase, 2, gc.gc_sweep_ns);
            sink.submit(trace::RECOVERY_TID, &r);
        }
        if let Some(sampler) = machine.sampler() {
            // Restart runs outside virtual time; GC progress is noted
            // as untimed phase observations rather than series windows.
            sampler.note_gc_phase(0, gc.gc_scan_ns);
            sampler.note_gc_phase(1, gc.gc_mark_ns);
            sampler.note_gc_phase(2, gc.gc_sweep_ns);
        }
        (
            machine,
            heap,
            ReopenReports {
                recovery,
                gc,
                time_to_first_txn_ns,
                full_restart_ns,
            },
        )
    }

    /// Sum of all shards' PTM counters (high-water fields take the max).
    pub fn aggregate_ptm_stats(&self) -> PtmStatsSnapshot {
        let mut total = PtmStatsSnapshot::default();
        for p in &self.ptms {
            total.merge(&p.stats.snapshot());
        }
        total
    }

    /// Sum of all shards' memory-system counters.
    pub fn aggregate_mem_stats(&self) -> StatsSnapshot {
        self.machines.aggregate_stats()
    }

    /// Per-shard memory-system snapshots, in shard order (for per-shard
    /// WPQ-stall attribution in benchmark output).
    pub fn per_shard_mem_stats(&self) -> Vec<StatsSnapshot> {
        self.machines
            .machines()
            .iter()
            .map(|m| m.stats.snapshot())
            .collect()
    }

    /// Zero every shard's PTM and memory counters.
    pub fn reset_stats(&self) {
        for p in &self.ptms {
            p.stats.reset();
        }
        self.machines.reset_stats();
    }

    /// Aggregate makespan: the largest virtual time reached on any shard.
    pub fn max_run_time_ns(&self) -> u64 {
        self.machines.max_run_time_ns()
    }

    /// The underlying machine set (tracer attachment, direct inspection).
    pub fn machine_set(&self) -> &MachineSet {
        &self.machines
    }

    /// Shard `i`'s machine.
    pub fn machine(&self, shard: usize) -> &Arc<Machine> {
        self.machines.get(shard)
    }

    /// Shard `i`'s heap.
    pub fn heap(&self, shard: usize) -> &Arc<PHeap> {
        &self.heaps[shard]
    }

    /// Shard `i`'s PTM instance.
    pub fn ptm(&self, shard: usize) -> &Arc<Ptm> {
        &self.ptms[shard]
    }

    /// Shard `i`'s 2PC coordinator-record pool.
    pub(crate) fn coord_pool(&self, shard: usize) -> &Arc<PmemPool> {
        &self.coords[shard]
    }

    /// Allocate the next cross-shard global transaction id (never 0;
    /// must fit the PREPARED marker's 32-bit gtid field).
    pub(crate) fn next_gtid(&self) -> u64 {
        let g = self.gtid_next.fetch_add(1, Ordering::Relaxed);
        assert!(g < u32::MAX as u64, "cross-shard gtid space exhausted");
        g
    }

    /// Claim a coordinator record slot (round-robin over the fixed slot
    /// array; see `coord_cursor` for why reuse is safe).
    pub(crate) fn next_coord_slot(&self) -> usize {
        self.coord_cursor.fetch_add(1, Ordering::Relaxed) % COORD_SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::DurabilityDomain;

    fn cfg() -> MachineConfig {
        MachineConfig::functional(DurabilityDomain::Adr)
    }

    fn engine(shards: usize) -> ShardedEngine {
        ShardedEngine::create(shards, cfg(), PtmConfig::redo(), 1 << 14, 4)
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let e = engine(4);
        for key in 0..10_000u64 {
            let s = e.shard_of(key);
            assert!(s < 4);
            assert_eq!(s, e.shard_of(key), "routing must be deterministic");
        }
        // All shards get some share of a dense key range.
        let mut seen = [false; 4];
        for key in 0..10_000u64 {
            seen[e.shard_of(key)] = true;
        }
        assert!(seen.iter().all(|&s| s), "dense keys must hit every shard");
    }

    #[test]
    fn shards_commit_independently() {
        let e = engine(2);
        e.begin_run_all(1, u64::MAX);
        let mut cells = Vec::new();
        for shard in 0..2 {
            let mut th = e.thread(shard, 0);
            let heap = Arc::clone(e.heap(shard));
            let c = heap.alloc(th.session_mut(), 1);
            th.run(|tx| tx.write(c, 100 + shard as u64));
            cells.push(c);
        }
        for shard in 0..2 {
            let mut th = e.thread(shard, 0);
            assert_eq!(th.run(|tx| tx.read(cells[shard])), 100 + shard as u64);
        }
        let agg = e.aggregate_ptm_stats();
        assert_eq!(agg.commits, 4);
        // Each shard saw exactly its own transactions.
        assert_eq!(e.ptm(0).stats.snapshot().commits, 2);
        assert_eq!(e.ptm(1).stats.snapshot().commits, 2);
    }

    #[test]
    fn crash_all_reopen_recovers_every_shard() {
        let e = engine(3);
        e.begin_run_all(1, u64::MAX);
        let mut cells = Vec::new();
        for shard in 0..3 {
            let mut th = e.thread(shard, 0);
            let heap = Arc::clone(e.heap(shard));
            let c = heap.alloc(th.session_mut(), 2);
            th.run(|tx| {
                tx.write(c, 7 * (shard as u64 + 1))?;
                tx.write_at(c, 1, 9)
            });
            heap.set_root(th.session_mut(), 0, c);
            cells.push(c);
        }
        let images = e.crash_all(11);
        assert_eq!(images.len(), 3);
        let (e2, reports) = ShardedEngine::reopen(&images, cfg(), PtmConfig::redo());
        assert_eq!(reports.len(), 3);
        for (shard, rep) in reports.iter().enumerate() {
            assert_eq!(rep.recovery.logs_scanned, 1, "shard {shard} log scan");
        }
        e2.begin_run_all(1, u64::MAX);
        for shard in 0..3 {
            let c = e2.heap(shard).root_raw(0);
            assert_eq!(c, cells[shard]);
            let mut th = e2.thread(shard, 0);
            assert_eq!(th.run(|tx| tx.read(c)), 7 * (shard as u64 + 1));
            assert_eq!(th.run(|tx| tx.read_at(c, 1)), 9);
        }
    }

    /// Concurrent shard restart with parallel recovery workers is
    /// observationally identical to the serial reopen, and folding the
    /// per-shard reports with `ReopenReports::merge` equals the
    /// field-wise sum (counts) / max (wall-clock).
    #[test]
    fn parallel_reopen_matches_serial_and_merge_equals_sum() {
        let e = engine(3);
        e.begin_run_all(1, u64::MAX);
        for shard in 0..3 {
            let mut th = e.thread(shard, 0);
            let heap = Arc::clone(e.heap(shard));
            let c = heap.alloc(th.session_mut(), 2);
            th.run(|tx| tx.write(c, 5 + shard as u64));
            heap.set_root(th.session_mut(), 0, c);
            let _leak = heap.alloc(th.session_mut(), 4);
        }
        let images = e.crash_all(23);
        let (serial_e, serial_reports) = ShardedEngine::reopen(&images, cfg(), PtmConfig::redo());
        let (par_e, par_reports) = ShardedEngine::reopen_with(
            &images,
            cfg(),
            PtmConfig::redo(),
            RecoverOptions {
                workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(serial_reports.len(), par_reports.len());
        for shard in 0..3 {
            let (s, p) = (&serial_reports[shard], &par_reports[shard]);
            assert_eq!(
                s.recovery.without_timing(),
                p.recovery.without_timing(),
                "shard {shard} recovery report"
            );
            assert_eq!(s.gc.live_blocks, p.gc.live_blocks, "shard {shard}");
            assert_eq!(s.gc.leaked_blocks, p.gc.leaked_blocks, "shard {shard}");
            assert_eq!(
                s.gc.reclaimed_blocks, p.gc.reclaimed_blocks,
                "shard {shard}"
            );
            // Bit-identical durable state per shard.
            for (sp, pp) in serial_e
                .machine(shard)
                .pools()
                .iter()
                .zip(par_e.machine(shard).pools().iter())
            {
                for w in 0..sp.len_words() as u64 {
                    assert_eq!(sp.raw_load(w), pp.raw_load(w), "shard {shard} word {w}");
                }
            }
        }
        let mut merged = ReopenReports::default();
        for r in &par_reports {
            merged.merge(r);
        }
        assert_eq!(
            merged.recovery.logs_scanned,
            par_reports
                .iter()
                .map(|r| r.recovery.logs_scanned)
                .sum::<usize>()
        );
        assert_eq!(
            merged.gc.blocks_scanned,
            par_reports
                .iter()
                .map(|r| r.gc.blocks_scanned)
                .sum::<usize>()
        );
        assert_eq!(
            merged.full_restart_ns,
            par_reports.iter().map(|r| r.full_restart_ns).max().unwrap()
        );
        assert_eq!(
            merged.time_to_first_txn_ns,
            par_reports
                .iter()
                .map(|r| r.time_to_first_txn_ns)
                .max()
                .unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_shard_thread_rejected() {
        let e = engine(2);
        e.begin_run_all(1, u64::MAX);
        let _ = e.thread(2, 0);
    }
}
