//! Persistent per-thread transaction descriptor and write-ahead log.
//!
//! Layout of a thread's primary log pool (`ptm-log-<tid>`):
//!
//! ```text
//! word 0  state        (IDLE / COMMITTED — the redo linearization marker)
//! word 1  count        (redo: number of valid entries, sealed with state)
//! word 2  algo         (1 = redo, 2 = undo, 3 = cow, 4 = htm; recovery
//!                       dispatches on it via the `crate::algo` registry)
//! word 3  overflow id  (pool id of the spill region, 0 = none)
//! word 4  primary cap  (entries that fit in this pool)
//! word 8… entries      (4 words each: addr, value, checksum, pad)
//! ```
//!
//! **Redo** entries become meaningful only once the commit marker
//! (`state = COMMITTED` plus `count`, on one cache line, one flush+fence)
//! is durable; all entries are flushed and fenced *before* the marker, so
//! recovery never sees a torn committed log.
//!
//! **Undo** entries must be trusted *without* a marker (the crash can hit
//! mid-transaction), so each entry carries a checksum
//! `addr ^ value ^ SEAL`. A torn entry — some words durable, some not —
//! fails the checksum unless the lost value word was genuinely zero, in
//! which case replaying it is a no-op rewrite of the same value. The log
//! is truncated (entry 0's address word zeroed, flushed, fenced) after
//! the in-place data has been flushed at commit, and after rollback
//! completes at abort.
//!
//! Under `DurabilityDomain::PdramLite` the primary pool is created with
//! [`PersistenceClass::PdramLite`] — served at DRAM latency, durable —
//! and holds `lite_log_entries`; the remainder spills to an Optane-class
//! overflow pool, reproducing the paper's bounded-budget design.

use std::sync::Arc;

use pmem_sim::{DurabilityDomain, Machine, MediaKind, PAddr, PersistenceClass, PmemPool};

use crate::config::PtmConfig;

/// Descriptor state values (the low byte of `W_STATE`).
pub const STATE_IDLE: u64 = 0;
pub const STATE_COMMITTED: u64 = 2;
/// 2PC participant state: the write set is durable but the outcome
/// belongs to the coordinator record, not this log. Recovery must
/// neither replay nor roll back a prepared log until the outcome-
/// resolution pass has consulted the coordinator.
pub const STATE_PREPARED: u64 = 3;
/// Bits of the state word holding the state value proper; the upper
/// bits of a committed marker carry the entry count (see
/// [`committed_marker`]).
pub const STATE_MASK: u64 = 0xFF;

/// Build a committed marker carrying its own entry count. The marker
/// and the count must become durable *atomically*: they share the
/// header cache line, but under a power failure the WPQ persists a torn
/// line word by word — a marker word that survives while the separate
/// `W_COUNT` word reverts to a stale (larger) value makes recovery
/// replay stale entries past the real write set. Packing the count into
/// the marker word makes that split impossible. `W_COUNT` is still
/// written as an observability mirror, but recovery must never trust it
/// for a committed log.
pub fn committed_marker(count: u64) -> u64 {
    debug_assert!(count < 1 << 56, "entry count overflows marker");
    STATE_COMMITTED | (count << 8)
}

/// Whether a state word is a committed marker (any entry count).
pub fn is_committed(state: u64) -> bool {
    state & STATE_MASK == STATE_COMMITTED
}

/// The entry count packed into a committed marker.
pub fn marker_count(state: u64) -> u64 {
    state >> 8
}

/// Build a prepared marker for a 2PC participant, carrying both the
/// entry count (bits 8..32) and the global transaction id (bits
/// 32..64). Like [`committed_marker`], packing everything recovery
/// needs into one word makes a torn header line unable to pair a
/// durable marker with a stale count or gtid.
pub fn prepared_marker(count: u64, gtid: u64) -> u64 {
    debug_assert!(count < 1 << 24, "entry count overflows prepared marker");
    debug_assert!(gtid > 0 && gtid < 1 << 32, "gtid out of marker range");
    STATE_PREPARED | (count << 8) | (gtid << 32)
}

/// Whether a state word is a prepared marker.
pub fn is_prepared(state: u64) -> bool {
    state & STATE_MASK == STATE_PREPARED
}

/// The entry count packed into a prepared marker.
pub fn prepared_count(state: u64) -> u64 {
    (state >> 8) & 0xFF_FFFF
}

/// The global transaction id packed into a prepared marker.
pub fn prepared_gtid(state: u64) -> u64 {
    state >> 32
}

// ---- coordinator commit record ------------------------------------------
//
// The 2PC decision record lives in a small pool (`ptm-2pc-coord`) on the
// *coordinator shard's* machine — a designated participant, not a
// separate coordinator node, so the record rides the same crash/recovery
// machinery as every other pool (DESIGN.md decision 14). A record is two
// words on one cache line: the gtid and a seal derived from it. The
// decision point is the flush+fence of that line; a torn record (gtid
// durable, seal stale or vice versa) fails the seal check and reads as
// "no decision", which resolves the transaction as aborted — exactly the
// presumed-abort contract.

/// Name of the per-machine coordinator-record pool.
pub const COORD_POOL: &str = "ptm-2pc-coord";
/// Slots in the coordinator pool (2 words each; one line holds 4).
pub const COORD_SLOTS: usize = 64;
/// Words per coordinator slot.
pub const COORD_SLOT_WORDS: usize = 2;
/// Seal constant for coordinator records.
pub const COORD_SEAL: u64 = 0x00C0_012D_2BC5_EA1E;

/// Seal for a coordinator commit record of `gtid`.
#[inline]
pub fn coord_seal(gtid: u64) -> u64 {
    gtid.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ COORD_SEAL
}

/// Algo discriminants as stored persistently (each policy's
/// `LogPolicy::persistent_tag`).
pub const ALGO_REDO: u64 = 1;
pub const ALGO_UNDO: u64 = 2;
pub const ALGO_COW: u64 = 3;
pub const ALGO_HTM: u64 = 4;

/// Header word offsets.
pub const W_STATE: u64 = 0;
pub const W_COUNT: u64 = 1;
pub const W_ALGO: u64 = 2;
pub const W_OVF: u64 = 3;
pub const W_PRIMARY_CAP: u64 = 4;
/// Persistent per-thread transaction sequence number. Bumped and fenced
/// before an undo transaction's first entry; folded into every entry
/// checksum so recovery cannot mistake a stale entry from an earlier
/// transaction (lying just past the current transaction's entries) for a
/// live one.
pub const W_SEQ: u64 = 5;
/// First entry word.
pub const ENTRY0: u64 = 8;
/// Words per entry.
pub const ENTRY_WORDS: u64 = 4;

/// Checksum seal for undo entries.
pub const SEAL: u64 = 0x005E_A10F_1EA5_C0DE;

/// Distinct cache lines occupied by the first `count` log entries.
///
/// Entries are 4 words in an 8-word line and start line-aligned (at
/// [`ENTRY0`] in the primary pool, at word 0 in the overflow pool), so
/// they pack two per line: `count` entries dirty exactly
/// `ceil(count / 2)` lines. This is the write-combining planner's
/// per-commit log flush cost; the naive pipeline pays one flush per
/// entry instead.
#[inline]
pub const fn entry_lines(count: usize) -> usize {
    count.div_ceil(2)
}

/// Seal an undo entry for transaction sequence number `seq`.
#[inline]
pub fn seal(addr: u64, value: u64, seq: u64) -> u64 {
    addr ^ value ^ SEAL ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Name prefix of primary log pools (recovery discovers them by name).
pub const LOG_POOL_PREFIX: &str = "ptm-log-";
/// Name prefix of overflow pools (skipped by discovery; reached via id).
pub const OVF_POOL_PREFIX: &str = "ptm-logovf-";

/// A thread's persistent log region.
pub struct TxLog {
    pub primary: Arc<PmemPool>,
    pub overflow: Option<Arc<PmemPool>>,
    /// Entries that fit in the primary pool.
    pub primary_cap: usize,
    /// Total entry capacity.
    pub capacity: usize,
}

impl TxLog {
    /// Create the per-thread log pools on `machine`. Setup is untimed.
    pub fn create(machine: &Arc<Machine>, tid: usize, cfg: &PtmConfig) -> TxLog {
        let lite = machine.domain() == DurabilityDomain::PdramLite;
        let media = cfg.heap_media;
        let (primary_cap, class) = if lite && media == MediaKind::Optane {
            (
                cfg.lite_log_entries.min(cfg.log_capacity),
                PersistenceClass::PdramLite,
            )
        } else {
            (cfg.log_capacity, PersistenceClass::Normal)
        };
        let primary_words = (ENTRY0 + primary_cap as u64 * ENTRY_WORDS) as usize;
        let primary = machine.alloc_pool_with_class(
            &format!("{LOG_POOL_PREFIX}{tid}"),
            primary_words,
            media,
            class,
        );
        let overflow = if primary_cap < cfg.log_capacity {
            let words = (cfg.log_capacity - primary_cap) * ENTRY_WORDS as usize;
            Some(machine.alloc_pool(&format!("{OVF_POOL_PREFIX}{tid}"), words, media))
        } else {
            None
        };
        primary.raw_store(W_STATE, STATE_IDLE);
        primary.raw_store(W_COUNT, 0);
        primary.raw_store(W_ALGO, crate::algo::policy(cfg.algo).persistent_tag());
        primary.raw_store(W_OVF, overflow.as_ref().map_or(0, |p| p.id().0 as u64));
        primary.raw_store(W_PRIMARY_CAP, primary_cap as u64);
        primary.raw_store(W_SEQ, 0);
        primary.persist_line_now(0);
        TxLog {
            primary,
            overflow,
            primary_cap,
            capacity: cfg.log_capacity,
        }
    }

    /// Address of entry `i`'s first word (`addr` field).
    #[inline]
    pub fn entry_addr(&self, i: usize) -> PAddr {
        if i < self.primary_cap {
            self.primary.addr(ENTRY0 + i as u64 * ENTRY_WORDS)
        } else {
            let ovf = self
                .overflow
                .as_ref()
                .expect("entry index beyond primary with no overflow");
            ovf.addr((i - self.primary_cap) as u64 * ENTRY_WORDS)
        }
    }

    /// Address of the descriptor header (state word).
    #[inline]
    pub fn state_addr(&self) -> PAddr {
        self.primary.addr(W_STATE)
    }

    /// Address of the count word.
    #[inline]
    pub fn count_addr(&self) -> PAddr {
        self.primary.addr(W_COUNT)
    }

    /// Address of the sequence-number word.
    #[inline]
    pub fn seq_addr(&self) -> PAddr {
        self.primary.addr(W_SEQ)
    }

    /// Untimed read of an entry (recovery).
    pub fn raw_entry(
        primary: &PmemPool,
        overflow: Option<&PmemPool>,
        primary_cap: usize,
        i: usize,
    ) -> (u64, u64, u64) {
        let (pool, base) = if i < primary_cap {
            (primary, ENTRY0 + i as u64 * ENTRY_WORDS)
        } else {
            (
                overflow.expect("entry beyond primary with no overflow"),
                (i - primary_cap) as u64 * ENTRY_WORDS,
            )
        };
        (
            pool.raw_load(base),
            pool.raw_load(base + 1),
            pool.raw_load(base + 2),
        )
    }

    /// Untimed read of a full 4-word entry (recovery of `HtmLogged`
    /// back-end logs, whose fourth word is a checksum rather than pad).
    pub fn raw_entry4(
        primary: &PmemPool,
        overflow: Option<&PmemPool>,
        primary_cap: usize,
        i: usize,
    ) -> (u64, u64, u64, u64) {
        let (pool, base) = if i < primary_cap {
            (primary, ENTRY0 + i as u64 * ENTRY_WORDS)
        } else {
            (
                overflow.expect("entry beyond primary with no overflow"),
                (i - primary_cap) as u64 * ENTRY_WORDS,
            )
        };
        (
            pool.raw_load(base),
            pool.raw_load(base + 1),
            pool.raw_load(base + 2),
            pool.raw_load(base + 3),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::MachineConfig;

    fn machine(domain: DurabilityDomain) -> Arc<Machine> {
        Machine::new(MachineConfig::functional(domain))
    }

    #[test]
    fn create_initializes_header_durably() {
        let m = machine(DurabilityDomain::Adr);
        let cfg = PtmConfig::redo();
        let log = TxLog::create(&m, 3, &cfg);
        assert_eq!(log.primary.raw_load(W_ALGO), ALGO_REDO);
        assert_eq!(log.primary.raw_load(W_STATE), STATE_IDLE);
        assert_eq!(log.primary_cap, cfg.log_capacity);
        assert!(log.overflow.is_none());
        // Header durable even under ADR (shadow has it).
        assert_eq!(log.primary.shadow().unwrap().load(W_ALGO), ALGO_REDO);
        assert_eq!(log.primary.name(), "ptm-log-3");
    }

    #[test]
    fn pdram_lite_splits_into_lite_primary_and_optane_overflow() {
        let m = machine(DurabilityDomain::PdramLite);
        let mut cfg = PtmConfig::redo();
        cfg.lite_log_entries = 16;
        cfg.log_capacity = 64;
        let log = TxLog::create(&m, 0, &cfg);
        assert_eq!(log.primary_cap, 16);
        assert_eq!(log.primary.class(), PersistenceClass::PdramLite);
        let ovf = log.overflow.as_ref().unwrap();
        assert_eq!(ovf.class(), PersistenceClass::Normal);
        assert_eq!(log.primary.raw_load(W_OVF), ovf.id().0 as u64);
        // Entries below the budget land in primary; above spill.
        assert_eq!(log.entry_addr(15).pool(), log.primary.id());
        assert_eq!(log.entry_addr(16).pool(), ovf.id());
        assert_eq!(log.entry_addr(16).word(), 0);
    }

    #[test]
    fn dram_heap_gets_dram_logs() {
        let m = machine(DurabilityDomain::Adr);
        let cfg = PtmConfig {
            heap_media: MediaKind::Dram,
            ..PtmConfig::redo()
        };
        let log = TxLog::create(&m, 0, &cfg);
        assert_eq!(log.primary.media_kind(), MediaKind::Dram);
    }

    #[test]
    fn entries_are_line_disjoint_pairs() {
        // 4-word entries, 8-word lines: two entries per line, never torn
        // across lines.
        let m = machine(DurabilityDomain::Adr);
        let log = TxLog::create(&m, 0, &PtmConfig::redo());
        for i in 0..32 {
            let a = log.entry_addr(i);
            let line_of_first = a.line();
            let line_of_last = a.offset(ENTRY_WORDS - 1).line();
            assert_eq!(line_of_first, line_of_last, "entry {i} spans lines");
        }
    }

    #[test]
    fn entry_lines_matches_entry_addr_geometry() {
        let m = machine(DurabilityDomain::Adr);
        let log = TxLog::create(&m, 0, &PtmConfig::redo());
        for count in 0..32usize {
            let lines: std::collections::HashSet<u64> =
                (0..count).map(|i| log.entry_addr(i).line()).collect();
            assert_eq!(entry_lines(count), lines.len(), "count {count}");
        }
    }

    #[test]
    fn prepared_marker_round_trips_and_is_distinct() {
        let m = prepared_marker(37, 0xDEAD_BEEF);
        assert!(is_prepared(m));
        assert!(!is_committed(m));
        assert_eq!(prepared_count(m), 37);
        assert_eq!(prepared_gtid(m), 0xDEAD_BEEF);
        // Committed markers never read as prepared and vice versa.
        let c = committed_marker(37);
        assert!(is_committed(c));
        assert!(!is_prepared(c));
        assert_ne!(m & STATE_MASK, c & STATE_MASK);
        assert!(!is_prepared(STATE_IDLE));
    }

    #[test]
    fn coord_seal_rejects_torn_records() {
        let gtid = 42u64;
        let s = coord_seal(gtid);
        assert_eq!(coord_seal(gtid), s);
        // Torn record: gtid word durable, seal word lost (zero) — or a
        // seal from a different gtid. Both must fail.
        assert_ne!(coord_seal(gtid), 0);
        assert_ne!(coord_seal(41), s);
    }

    #[test]
    fn seal_detects_lost_value_word_and_stale_seq() {
        let addr = 0xABCD;
        let value = 77;
        let chk = seal(addr, value, 5);
        assert_eq!(seal(addr, value, 5), chk);
        // Lost value word (reads back 0): checksum mismatch unless the
        // true value was 0.
        assert_ne!(seal(addr, 0, 5), chk);
        // A stale entry sealed under an earlier transaction's sequence
        // number must not validate under the current one.
        assert_ne!(seal(addr, value, 4), chk);
    }
}
