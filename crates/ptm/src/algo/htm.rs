//! Durable HTM via aliased back-end logging (Giles et al., *Hardware
//! Transactional Persistent Memory*): the hardware fast path that works
//! under ADR.
//!
//! The plain hybrid cannot run hardware sections under flush-requiring
//! domains — a `clwb` aborts a TSX transaction (the paper's §V
//! observation). This policy moves **all** persistence out of the
//! section: the body runs with buffered writes and no orec acquisition,
//! flush or fence inside the section; after the section retires, the
//! write set is persisted to a redo-style *back-end log* and sealed with
//! the COMMITTED marker (two fences, both outside the contention
//! window), then home locations are written back lazily with **no**
//! writeback fence — a torn writeback is repaired by replaying the
//! sealed log.
//!
//! The back-end log is a per-thread *ring*: sealed entries of earlier
//! transactions stay in place (slots `0..log_sealed`) and the COMMITTED
//! marker's count grows to cover the whole valid prefix, so replay
//! applies slots in order and later entries win. The ring is recycled
//! (fence, durable IDLE, `log_sealed = 0`) outside the section — from
//! [`LogPolicy::htm_prepare`] on the hardware path, from `make_durable`
//! on the software path.
//!
//! **Cross-log overlap.** Entries outlive their transaction's orec
//! release, so two threads' rings can both hold a committed entry for
//! the same word — recovery would then depend on cross-log replay
//! order. The shared pending table (`Ptm::pending_log`) restores the
//! one-covering-entry invariant at commit time: before a committer logs
//! a word a live entry (another ring's, or its own ring's from an
//! earlier transaction) still covers, it (a) makes the old committed
//! value durable at home (`clwb` + one batched `sfence` — the previous
//! commit deliberately skipped the writeback fence) and (b) *tombstones*
//! the superseded entry by flipping its checksum word, so the stale
//! value can never replay over the new one.
//!
//! **Lock discipline.** The table mutex guards *only* the DRAM lookup-
//! and-register pass: a holder must never issue a timed memory
//! operation, because timed ops can wait in the clock-domain lag window
//! for peers whose virtual clocks are frozen while they are parked on
//! this very mutex (deadlock). The timed tombstone work therefore runs
//! *after* the lock is dropped, covered by `Ptm::tombstones_in_flight`
//! — incremented under the lock before the stores begin, decremented
//! when they retire. Ring recycling deregisters a thread's records
//! before any slot reuse and, under the same lock hold as its check,
//! waits for in-flight tombstones to drain first, so a tombstone store
//! can never land in a recycled slot. (Orecs already serialize two
//! committers of the same word, so the table pass itself is race-free
//! per address; a tombstone landing on an already-retired ring is
//! harmless — its slots are not yet reused and its marker is IDLE.)
//!
//! Conflict detection on the hardware path is the section itself
//! ([`pmem_sim::MemSession::htm_commit`] checks the line-granular
//! footprint against concurrently published lines); the global clock is
//! bumped, not `try_advance`d, so unrelated hardware commits never
//! serialize against each other. Software commits of this policy
//! publish their write lines to the same conflict table before
//! releasing their orecs, so an overlapping open section aborts instead
//! of reading a half-published write set.

use std::sync::atomic::Ordering;

use pmem_sim::PAddr;

use trace::{EventKind, HtmAbortCause};

use crate::access::TxAccess;
use crate::config::Algo;
use crate::log::{
    committed_marker, is_committed, marker_count, prepared_count, prepared_marker, seal, ALGO_HTM,
    STATE_IDLE,
};
use crate::orec::is_locked;
use crate::phases::Phase;
use crate::recovery::RecoverCtx;
use crate::stats::PtmStats;
use crate::txn::TxResult;

use super::LogPolicy;

/// A committed-but-unretired back-end log entry, registered in
/// `Ptm::pending_log` keyed by the home address it covers. `handle` is
/// the entry's checksum word, the target of a tombstone.
pub(crate) struct PendingEntry {
    /// Thread (= log) that owns the entry.
    pub tid: u64,
    /// Address of the entry's checksum word.
    pub handle: PAddr,
}

/// Sealed entries accumulated before the ring is recycled.
///
/// The bound is a cache-residency decision, not a capacity one: ring
/// slots are only rewritten after a recycle, so the ring's working set
/// is `threshold × 32 B`. Letting the ring sprawl (say, to half of a
/// multi-thousand-entry log) means nearly every append lands on a
/// never-touched line and pays a compulsory L3 miss filled at media
/// latency — far more than the two fences a recycle costs. 128 entries
/// keep the hot ring at 4 KB (64 lines) while recycling rarely enough
/// (every ~8 write transactions) that its fences amortize away.
const RECYCLE_ENTRIES: usize = 128;

fn recycle_threshold(ax: &TxAccess) -> usize {
    RECYCLE_ENTRIES.min(ax.log.capacity / 2)
}

/// Recycle before a commit could overflow the ring or sprawl past the
/// hot-set bound.
fn ring_needs_reset(ax: &TxAccess, n: usize) -> bool {
    ax.log_sealed + n > ax.log.capacity || ax.log_sealed >= recycle_threshold(ax)
}

/// Retire the whole ring durably and deregister this thread's pending
/// entries. Fences — callers must never be inside a hardware section.
fn reset_ring(ax: &mut TxAccess) {
    if ax.log_sealed == 0 {
        return;
    }
    let now = ax.s.now();
    ax.timer.switch(now, Phase::LogAppend);
    // Drain the deferred home writebacks of every entry the ring still
    // covers: once the marker is gone the log can no longer repair a
    // torn one.
    ax.fence();
    let state = ax.log.state_addr();
    let count = ax.log.count_addr();
    ax.s.store(count, 0);
    ax.s.store(state, STATE_IDLE);
    ax.flush_line(state);
    ax.fence();
    ax.log_sealed = 0;
    // Deregister *before* any slot reuse: a committer finding a stale
    // record of ours would tombstone a slot about to hold a live entry.
    // The counter check and the retain share one lock hold, so no new
    // tombstone targeting this ring can start in between (after the
    // retain, no record with this tid exists to supersede).
    let tid = ax.tid;
    loop {
        {
            let mut table = ax.ptm.pending_log.lock().unwrap();
            if ax.ptm.tombstones_in_flight.load(Ordering::Acquire) == 0 {
                table.retain(|_, pe| pe.tid != tid);
                break;
            }
        }
        // A peer is persisting tombstones outside the lock (possibly
        // into this retired ring — harmless, the slots are not reused
        // until the retain above runs). Wait with virtual time
        // advancing, same idiom as the contention backoff: a frozen
        // clock here would stall the peer's own timed operations.
        ax.s.advance(32);
        ax.s.publish_clock();
        std::thread::yield_now();
    }
}

/// Persist `ax.entries` into ring slots `log_sealed..` and seal them
/// under the grown COMMITTED marker — or, when `gtid` is set (the 2PC
/// prepare path), under a PREPARED marker: two fences (entries,
/// marker), the policy's entire per-commit fence budget. Handles
/// cross-log overlap via the pending table (see the module docs) and
/// advances `log_sealed`. Caller guarantees the entries fit
/// (`log_sealed + entries.len() <= capacity`); the prepare path
/// additionally guarantees the ring was reset, so a PREPARED marker's
/// count covers only the in-doubt transaction's own entries.
fn append_and_seal(ax: &mut TxAccess, wv: u64, gtid: Option<u64>) {
    let base = ax.log_sealed;
    let n = ax.entries.len();
    debug_assert!(base + n <= ax.log.capacity, "back-end ring overflow");
    let now = ax.s.now();
    ax.timer.switch(now, Phase::LogAppend);
    // DRAM-only table pass under the lock (see the module docs for the
    // lock discipline): register this commit's entries and collect the
    // superseded ones — a foreign ring's or this thread's own from an
    // earlier transaction, uniformly — so the at-most-one-valid-entry-
    // per-word invariant holds globally and cross-log replay order
    // never matters. If anything was superseded, raise the in-flight
    // counter *before* unlocking so a concurrent ring recycle waits for
    // the timed tombstone stores below.
    let superseded = {
        let mut table = ax.ptm.pending_log.lock().unwrap();
        let mut superseded: Vec<(PAddr, PAddr)> = Vec::new();
        for i in 0..n {
            let a = ax.entries[i].0;
            let handle = ax.log.entry_addr(base + i).offset(3);
            if let Some(prev) = table.insert(
                a,
                PendingEntry {
                    tid: ax.tid,
                    handle,
                },
            ) {
                superseded.push((PAddr(a), prev.handle));
            }
        }
        if !superseded.is_empty() {
            ax.ptm.tombstones_in_flight.fetch_add(1, Ordering::AcqRel);
        }
        superseded
    };
    // Timed tombstone work, no lock held. The superseded entry's home
    // writeback was unfenced, so the old committed value is persisted
    // first (one batched `sfence` per commit, only when an overlap
    // exists); the tombstones' own `clwb`s drain at the entry fence
    // below — durably before this commit's marker.
    if !superseded.is_empty() {
        for &(home, _) in &superseded {
            ax.s.clwb(home);
        }
        if !ax.ptm.config.elide_fences {
            ax.s.sfence();
        }
        for &(_, h) in &superseded {
            let chk = ax.s.load(h);
            ax.s.store(h, chk ^ 1);
            ax.s.clwb(h);
        }
        ax.ptm.tombstones_in_flight.fetch_sub(1, Ordering::AcqRel);
    }
    for i in 0..n {
        let (a, v) = ax.entries[i];
        let e = ax.log.entry_addr(base + i);
        ax.s.store(e, a);
        ax.s.store(e.offset(1), v);
        ax.s.store(e.offset(2), wv);
        ax.s.store(e.offset(3), seal(a, v, wv));
    }
    // Persist alloc-new initialization and the fresh entries: one flush
    // per line, one fence for everything (tombstones included).
    if ax.combining() {
        ax.plan_fresh_blocks();
        for i in 0..n {
            let e = ax.log.entry_addr(base + i);
            ax.plan_line(e);
        }
        ax.drain_plan();
    } else {
        ax.flush_fresh_blocks();
        let mut last_line = (pmem_sim::PoolId(u32::MAX), u64::MAX);
        for i in 0..n {
            let e = ax.log.entry_addr(base + i);
            let line = (e.pool(), e.line());
            if line != last_line {
                ax.flush_line(e);
                last_line = line;
            }
        }
    }
    ax.fence();
    // The marker's count covers the whole valid ring prefix, so replay
    // walks slots in order and later transactions' entries win.
    let total = (base + n) as u64;
    let state = ax.log.state_addr();
    let count = ax.log.count_addr();
    ax.s.store(count, total);
    let marker = match gtid {
        Some(g) => prepared_marker(total, g),
        None => committed_marker(total),
    };
    ax.s.store(state, marker);
    ax.flush_line(state);
    ax.fence();
    ax.log_sealed = base + n;
    PtmStats::add(&ax.ptm.stats.backend_log_bytes, n as u64 * 32);
}

/// Lazy home writeback + orec release at `wv`. Deliberately unfenced:
/// the sealed log repairs a torn writeback, and the `clwb`s drain at
/// the next ring-reset fence at the latest.
fn publish_home(ax: &mut TxAccess, wv: u64) {
    let now = ax.s.now();
    ax.timer.switch(now, Phase::Writeback);
    if ax.combining() {
        for i in 0..ax.entries.len() {
            let (a, v) = ax.entries[i];
            let addr = PAddr(a);
            ax.s.store(addr, v);
            ax.plan_line(addr);
        }
        PtmStats::high_water(&ax.ptm.stats.max_write_lines, ax.plan.len() as u64);
        ax.drain_plan();
    } else {
        // Two passes: complete ALL home stores before issuing any
        // flushes. A clwb snapshots the line at issue time, so a flush
        // interleaved between two same-line stores captures only the
        // first — and line dedup would then skip the re-flush the
        // second store needs, leaving it unflushed forever. A redundant
        // flush (line revisited non-adjacently) is merely slow; a
        // skipped one loses committed data once the ring entry covering
        // it is recycled.
        for i in 0..ax.entries.len() {
            let (a, v) = ax.entries[i];
            ax.s.store(PAddr(a), v);
        }
        let mut last_line = (pmem_sim::PoolId(u32::MAX), u64::MAX);
        for i in 0..ax.entries.len() {
            let addr = PAddr(ax.entries[i].0);
            let line = (addr.pool(), addr.line());
            if line != last_line {
                ax.flush_line(addr);
                last_line = line;
            }
        }
    }
    // Publish the write lines to the hardware conflict table while the
    // orecs still exclude readers, so an overlapping open section
    // aborts instead of observing a partial write set.
    if ax.s.htm_enabled() {
        let entries = &ax.entries;
        ax.s.htm_publish_lines(entries.iter().map(|&(a, _)| PAddr(a)));
    }
    let now = ax.s.now();
    ax.timer.switch(now, Phase::Validation);
    ax.s.advance(ax.ptm.config.orec_ns * ax.owned.len() as u64);
    for i in 0..ax.owned.len() {
        let (o, _) = ax.owned[i];
        ax.ptm.orecs.release(o, wv);
    }
}

pub struct HtmPolicy;

impl LogPolicy for HtmPolicy {
    fn algo(&self) -> Algo {
        Algo::HtmLogged
    }

    fn persistent_tag(&self) -> u64 {
        ALGO_HTM
    }

    fn htm_mode(&self) -> bool {
        true
    }

    /// Recycle the ring *before* the section opens — the one place the
    /// hardware path may fence.
    fn htm_prepare(&self, ax: &mut TxAccess) {
        if ax.log_sealed >= recycle_threshold(ax) {
            reset_ring(ax);
        }
    }

    /// The retired-section commit: acquire write-set orecs (DRAM
    /// metadata — legal in a section), serialize via the hardware
    /// conflict check, and only then touch persistence.
    fn htm_commit(&self, ax: &mut TxAccess) -> bool {
        let now = ax.s.now();
        ax.timer.switch(now, Phase::Validation);
        if ax.entries.is_empty() {
            // Read-only: per-read orec validation against start_time
            // already guarantees a consistent snapshot.
            let fp = ax.s.htm_footprint_lines() as u64;
            ax.s.htm_commit_readonly();
            ax.trace(EventKind::HtmRetire, fp, 0);
            ax.apply_frees();
            return true;
        }
        let base = ax.log_sealed;
        let n = ax.entries.len();
        if base + n > ax.log.capacity {
            // Ring full. Fences are illegal here, so abort and let
            // `htm_prepare` recycle before the next attempt.
            ax.s.htm_abort();
            ax.htm_abort_cause = Some(HtmAbortCause::Explicit);
            return false;
        }
        for i in 0..n {
            let addr = PAddr(ax.entries[i].0);
            let o = ax.ptm.orecs.index_of(addr);
            if ax.owned_map.get(o as u64).is_some() {
                continue;
            }
            let v = ax.ptm.orecs.load(o);
            if is_locked(v) || ax.ptm.orecs.try_lock(o, v, ax.tid).is_err() {
                ax.s.htm_abort();
                ax.htm_abort_cause = Some(HtmAbortCause::Conflict);
                ax.release_owned_restore();
                return false;
            }
            ax.owned_map.insert(o as u64, ax.owned.len() as u64);
            ax.owned.push((o, v));
        }
        // A plain bump, not `try_advance`: unrelated hardware commits
        // must not serialize — the footprint check below is the
        // conflict detector. The timestamp only versions the orecs and
        // salts the entry checksums.
        let wv = ax.ptm.clock.bump();
        ax.s.advance(ax.ptm.config.orec_ns);
        let fp = ax.s.htm_footprint_lines() as u64;
        if !ax.s.htm_commit() {
            ax.htm_abort_cause = Some(HtmAbortCause::Conflict);
            ax.release_owned_restore();
            return false;
        }
        // Section retired — persistence is legal again, and the
        // contention window above contained no clwb or sfence.
        ax.trace(EventKind::HtmRetire, fp, n as u64);
        append_and_seal(ax, wv, None);
        publish_home(ax, wv);
        ax.ptm.stats.note_write_set(n as u64);
        ax.apply_frees();
        true
    }

    fn on_read(&self, ax: &mut TxAccess, addr: PAddr, _o: u32) -> Option<TxResult<u64>> {
        if !ax.entries.is_empty() {
            ax.index_cost();
            if let Some(i) = ax.redo_index.get(addr.0) {
                return Some(Ok(ax.entries[i as usize].1));
            }
        }
        None
    }

    /// Software-path write capture: DRAM-only buffering — unlike redo,
    /// nothing touches the persistent log until `make_durable` (the
    /// ring slot is not known until commit time).
    fn on_write(&self, ax: &mut TxAccess, addr: PAddr, val: u64) -> TxResult<()> {
        if ax.ptm.config.tracing {
            let o = ax.ptm.orecs.index_of(addr);
            ax.s.trace_event(EventKind::TxWrite, o as u64, addr.0);
        }
        ax.index_cost();
        if let Some(i) = ax.redo_index.get(addr.0) {
            ax.entries[i as usize].1 = val;
            return Ok(());
        }
        let i = ax.entries.len();
        assert!(i < ax.log.capacity, "back-end log overflow ({i} entries)");
        ax.entries.push((addr.0, val));
        ax.redo_index.insert(addr.0, i as u64);
        Ok(())
    }

    fn read_only(&self, ax: &TxAccess) -> bool {
        ax.entries.is_empty()
    }

    fn write_set_size(&self, ax: &TxAccess) -> u64 {
        ax.entries.len() as u64
    }

    fn pre_commit_acquire(&self, ax: &mut TxAccess) -> bool {
        for i in 0..ax.entries.len() {
            let addr = PAddr(ax.entries[i].0);
            if !ax.acquire_commit(addr) {
                ax.release_owned_restore();
                return false;
            }
        }
        true
    }

    fn make_durable(&self, ax: &mut TxAccess) {
        if ring_needs_reset(ax, ax.entries.len()) {
            // Software path: fences are legal even while holding the
            // write-set orecs.
            reset_ring(ax);
        }
        assert!(
            ax.entries.len() <= ax.log.capacity,
            "back-end log overflow ({} entries)",
            ax.entries.len()
        );
        append_and_seal(ax, ax.commit_wv, None);
    }

    fn commit_publish(&self, ax: &mut TxAccess, wv: u64) {
        publish_home(ax, wv);
    }

    fn make_prepared(&self, ax: &mut TxAccess, gtid: u64) {
        // Force a ring reset even below the recycle threshold: a
        // PREPARED marker covers the whole valid prefix, and a
        // decide-abort must be able to drop it without losing earlier
        // committed-but-unretired transactions' entries (their home
        // writebacks were unfenced). Resetting first means the in-doubt
        // window contains exactly this transaction.
        reset_ring(ax);
        assert!(
            ax.entries.len() <= ax.log.capacity,
            "back-end log overflow ({} entries)",
            ax.entries.len()
        );
        append_and_seal(ax, ax.commit_wv, Some(gtid));
    }

    fn commit_prepared(&self, ax: &mut TxAccess, wv: u64) {
        // Upgrade the marker to COMMITTED durably *before* the lazy
        // home writeback: once the coordinator record is tombstoned, a
        // still-PREPARED ring would resolve as aborted and retire
        // without replay, leaving the unfenced writeback unrepairable.
        let now = ax.s.now();
        ax.timer.switch(now, Phase::LogAppend);
        let state = ax.log.state_addr();
        ax.s.store(state, committed_marker(ax.log_sealed as u64));
        ax.flush_line(state);
        ax.fence();
        publish_home(ax, wv);
    }

    fn abort_prepared(&self, ax: &mut TxAccess, _wv: u64) {
        // Nothing was written in place; the sealed prepared entries are
        // dropped by retiring the ring durably (which also deregisters
        // this thread's pending-table records before any slot reuse).
        reset_ring(ax);
        ax.release_owned_restore();
    }

    fn resolve_prepared(&self, ctx: &mut RecoverCtx<'_>, committed: bool) {
        let state = ctx.primary.raw_load(crate::log::W_STATE);
        if committed {
            let count = prepared_count(state) as usize;
            if count > ctx.capacity() {
                ctx.malformed(format!(
                    "prepared marker count {count} exceeds log capacity {} — replay skipped",
                    ctx.capacity()
                ));
                return;
            }
            // The prepare path reset the ring first, so the prefix is
            // exactly the in-doubt transaction. Checksum failures are
            // tombstoned entries — skipped, counted as torn.
            for i in 0..count {
                let (a, v, wv, chk) = ctx.raw_entry4(i);
                if chk != seal(a, v, wv) {
                    ctx.report.torn_entries += 1;
                    continue;
                }
                ctx.store_persist(PAddr(a), v);
                ctx.report.htm_entries += 1;
            }
        }
        // Presumed abort: nothing in place — retiring is the rollback.
        ctx.retire();
    }

    /// Nothing was written in place and no ring slot was consumed;
    /// restore pre-lock versions.
    fn abort_rollback(&self, ax: &mut TxAccess, _wv: Option<u64>) {
        ax.release_owned_restore();
    }

    fn recover_apply(&self, ctx: &mut RecoverCtx<'_>) {
        let state = ctx.primary.raw_load(crate::log::W_STATE);
        if is_committed(state) && !ctx.opts.skip_redo_replay {
            let count = marker_count(state) as usize;
            if count > ctx.capacity() {
                ctx.malformed(format!(
                    "committed marker count {count} exceeds log capacity {} — replay skipped",
                    ctx.capacity()
                ));
                return;
            }
            // Slots in order: later transactions' entries overwrite
            // earlier ones for the same word. Checksum failures are
            // tombstoned entries (a newer commit in another ring covers
            // the word) — skipped, counted as torn.
            for i in 0..count {
                let (a, v, wv, chk) = ctx.raw_entry4(i);
                if chk != seal(a, v, wv) {
                    ctx.report.torn_entries += 1;
                    continue;
                }
                ctx.store_persist(PAddr(a), v);
                ctx.report.htm_entries += 1;
            }
            ctx.report.htm_replayed += 1;
        }
        ctx.retire();
    }
}
