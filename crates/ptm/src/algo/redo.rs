//! "orec-lazy": commit-time locking with redo logging.
//!
//! Writes are buffered in the redo log (reads consult it first); at
//! commit the write-set orecs are acquired, the log is flushed and
//! sealed with the COMMITTED marker, and only then is program data
//! written back. **O(1)** fences per transaction: one after the log,
//! one with the COMMITTED marker, one after writeback, one with the
//! IDLE marker.

use pmem_sim::PAddr;

use trace::EventKind;

use crate::access::TxAccess;
use crate::config::{Algo, FlushTiming};
use crate::log::{
    committed_marker, is_committed, marker_count, prepared_count, prepared_marker, ALGO_REDO,
    STATE_IDLE, W_STATE,
};
use crate::phases::Phase;
use crate::recovery::RecoverCtx;
use crate::stats::PtmStats;
use crate::txn::TxResult;

use super::LogPolicy;

pub struct RedoPolicy;

/// Persist the redo log and seal it under `marker` (the COMMITTED
/// marker on the single-shard path, a PREPARED marker on the 2PC
/// prepare path — same flush/fence sequence either way).
fn seal_log(ax: &mut TxAccess, marker: u64) {
    // Persist alloc-new initialization and the redo log: flush each
    // line once, one fence for both.
    if ax.combining() {
        // Window 1: plan fresh-block lines and log lines together —
        // the planner dedupes across both sources (a fresh block the
        // log pass also covered is flushed once).
        ax.plan_fresh_blocks();
        for i in 0..ax.entries.len() {
            let e = ax.log.entry_addr(i);
            ax.plan_line(e);
        }
        ax.drain_plan();
    } else {
        ax.flush_fresh_blocks();
        let mut last_line = (pmem_sim::PoolId(u32::MAX), u64::MAX);
        for i in 0..ax.entries.len() {
            let e = ax.log.entry_addr(i);
            let line = (e.pool(), e.line());
            if line != last_line {
                ax.flush_line(e);
                last_line = line;
            }
        }
    }
    ax.fence();
    // Linearization + durability point: the marker.
    let now = ax.s.now();
    ax.timer.switch(now, Phase::LogAppend);
    let state = ax.log.state_addr();
    let count = ax.log.count_addr();
    // The count rides inside the marker word (see `committed_marker`):
    // marker and count must persist atomically, and a torn header
    // line persists word by word. `W_COUNT` is only a mirror.
    ax.s.store(count, ax.entries.len() as u64);
    ax.s.store(state, marker);
    ax.flush_line(state); // state & count share the header line
    ax.fence();
}

impl LogPolicy for RedoPolicy {
    fn algo(&self) -> Algo {
        Algo::RedoLazy
    }

    fn persistent_tag(&self) -> u64 {
        ALGO_REDO
    }

    fn on_read(&self, ax: &mut TxAccess, addr: PAddr, _o: u32) -> Option<TxResult<u64>> {
        if !ax.entries.is_empty() {
            ax.index_cost();
            if let Some(i) = ax.redo_index.get(addr.0) {
                return Some(Ok(ax.entries[i as usize].1));
            }
        }
        None
    }

    fn on_write(&self, ax: &mut TxAccess, addr: PAddr, val: u64) -> TxResult<()> {
        if ax.ptm.config.tracing {
            // The orec lookup is pure address hashing; only pay for it
            // when the event is actually recorded.
            let o = ax.ptm.orecs.index_of(addr);
            ax.s.trace_event(EventKind::TxWrite, o as u64, addr.0);
        }
        ax.index_cost();
        let now = ax.s.now();
        let outer = ax.timer.switch(now, Phase::LogAppend);
        if let Some(i) = ax.redo_index.get(addr.0) {
            let i = i as usize;
            ax.entries[i].1 = val;
            let e = ax.log.entry_addr(i);
            ax.s.store(e.offset(1), val);
            let now = ax.s.now();
            ax.timer.switch(now, outer);
            return Ok(());
        }
        let i = ax.entries.len();
        assert!(i < ax.log.capacity, "redo log overflow ({i} entries)");
        ax.entries.push((addr.0, val));
        ax.redo_index.insert(addr.0, i as u64);
        let e = ax.log.entry_addr(i);
        ax.s.store(e, addr.0);
        ax.s.store(e.offset(1), val);
        // Incremental flush timing (§III-B): stagger `clwb`s during
        // execution by flushing each log line as it *completes* (the
        // commit still covers every touched line). The paper found this
        // makes no difference vs batching — flushing half-filled lines on
        // every append would instead double the writeback traffic.
        if ax.ptm.config.flush_timing == FlushTiming::Incremental && i > 0 {
            let prev = ax.log.entry_addr(i - 1);
            if prev.line() != e.line() || prev.pool() != e.pool() {
                ax.flush_line(prev);
            }
        }
        let now = ax.s.now();
        ax.timer.switch(now, outer);
        Ok(())
    }

    fn read_only(&self, ax: &TxAccess) -> bool {
        // Per-read validation against start_time already guarantees a
        // consistent snapshot.
        ax.entries.is_empty()
    }

    fn write_set_size(&self, ax: &TxAccess) -> u64 {
        ax.entries.len() as u64
    }

    /// Acquire all write-set orecs (commit-time locking).
    fn pre_commit_acquire(&self, ax: &mut TxAccess) -> bool {
        for i in 0..ax.entries.len() {
            let addr = PAddr(ax.entries[i].0);
            if !ax.acquire_commit(addr) {
                ax.release_owned_restore();
                return false;
            }
        }
        true
    }

    fn make_durable(&self, ax: &mut TxAccess) {
        seal_log(ax, committed_marker(ax.entries.len() as u64));
    }

    fn make_prepared(&self, ax: &mut TxAccess, gtid: u64) {
        seal_log(ax, prepared_marker(ax.entries.len() as u64, gtid));
    }

    fn commit_publish(&self, ax: &mut TxAccess, wv: u64) {
        // Write back and persist program data.
        let now = ax.s.now();
        ax.timer.switch(now, Phase::Writeback);
        if ax.combining() {
            // Window 2: apply the whole write set first, then flush each
            // dirty line exactly once. The naive loop's store-then-flush
            // per entry re-dirties a shared line between flushes, so a
            // line written by k entries pays k writebacks.
            for i in 0..ax.entries.len() {
                let (a, v) = ax.entries[i];
                let addr = PAddr(a);
                ax.s.store(addr, v);
                ax.plan_line(addr);
            }
            PtmStats::high_water(&ax.ptm.stats.max_write_lines, ax.plan.len() as u64);
            ax.drain_plan();
        } else {
            for i in 0..ax.entries.len() {
                let (a, v) = ax.entries[i];
                let addr = PAddr(a);
                ax.s.store(addr, v);
                ax.flush_line(addr);
            }
        }
        ax.fence();
        // Retire the log.
        let now = ax.s.now();
        ax.timer.switch(now, Phase::LogAppend);
        let state = ax.log.state_addr();
        ax.s.store(state, STATE_IDLE);
        ax.flush_line(state);
        ax.fence();
        // Make the writes visible at the commit timestamp.
        let now = ax.s.now();
        ax.timer.switch(now, Phase::Validation);
        ax.s.advance(ax.ptm.config.orec_ns * ax.owned.len() as u64);
        for i in 0..ax.owned.len() {
            let (o, _) = ax.owned[i];
            ax.ptm.orecs.release(o, wv);
        }
    }

    /// Redo abort: nothing was written in place; restore pre-lock
    /// versions.
    fn abort_rollback(&self, ax: &mut TxAccess, _wv: Option<u64>) {
        ax.release_owned_restore();
    }

    fn recover_apply(&self, ctx: &mut RecoverCtx<'_>) {
        let state = ctx.primary.raw_load(crate::log::W_STATE);
        if is_committed(state) && !ctx.opts.skip_redo_replay {
            // Take the count from the marker word, NOT from `W_COUNT`: a
            // torn header line can persist the fresh marker next to a
            // stale count, and a stale (larger) count would replay
            // leftover entries from an earlier transaction on top of
            // this one's write set.
            let count = marker_count(state) as usize;
            if count > ctx.capacity() {
                // A legitimate commit can never seal more entries than
                // the log physically holds: the marker word is corrupt.
                // Fail soft — no out-of-bounds entry reads, no replay of
                // garbage, log left as-is for inspection.
                ctx.malformed(format!(
                    "committed marker count {count} exceeds log capacity {} — replay skipped",
                    ctx.capacity()
                ));
                return;
            }
            for i in 0..count {
                let (a, v, _chk) = ctx.raw_entry(i);
                ctx.store_persist(PAddr(a), v);
                ctx.report.redo_entries += 1;
            }
            ctx.report.redo_replayed += 1;
        }
        ctx.retire();
    }

    fn resolve_prepared(&self, ctx: &mut RecoverCtx<'_>, committed: bool) {
        let state = ctx.primary.raw_load(W_STATE);
        if committed {
            // The coordinator decided commit: the prepared entries are a
            // complete redo log — replay like a committed one.
            let count = prepared_count(state) as usize;
            if count > ctx.capacity() {
                ctx.malformed(format!(
                    "prepared marker count {count} exceeds log capacity {} — replay skipped",
                    ctx.capacity()
                ));
                return;
            }
            for i in 0..count {
                let (a, v, _chk) = ctx.raw_entry(i);
                ctx.store_persist(PAddr(a), v);
                ctx.report.redo_entries += 1;
            }
        }
        // Presumed abort: nothing was written in place, retiring the
        // log is the whole rollback.
        ctx.retire();
    }
}
