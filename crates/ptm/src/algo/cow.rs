//! Copy-on-write shadow updates (the third design point: Marathe et
//! al., *Persistent Memory Transactions*, arXiv:1804.00701).
//!
//! The first write to a cache line allocates a line-aligned *shadow*
//! line from the persistent heap and redirects that line's writes to
//! it; home locations are untouched until commit. The commit publishes
//! atomically redo-style: flush the shadow lines and a publish log of
//! `(home, shadow, mask)` records, seal with the COMMITTED marker, then
//! copy the masked words home and retire. **O(1)** fences like redo,
//! paid for with ~2x data writes (shadow + home) and an allocation per
//! dirtied line.
//!
//! Abort is cheap — home was never touched, so only the orecs are
//! restored and the shadow blocks freed. A crash leaks its shadow
//! blocks: they are unreachable from the heap roots, so the restart GC
//! reclaims them; recovery itself only replays the publish.

use std::sync::Arc;

use pmem_sim::{PAddr, WORDS_PER_LINE};

use trace::EventKind;

use crate::access::TxAccess;
use crate::config::Algo;
use crate::log::{
    committed_marker, is_committed, marker_count, prepared_count, prepared_marker, ALGO_COW,
    STATE_IDLE, W_STATE,
};
use crate::phases::Phase;
use crate::recovery::RecoverCtx;
use crate::stats::PtmStats;
use crate::txn::TxResult;

use super::LogPolicy;

/// One dirtied home line and its shadow redirection.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CowLine {
    /// PAddr bits of the home line's first word.
    pub home: u64,
    /// PAddr bits of the (line-aligned) shadow line's first word.
    pub shadow: u64,
    /// PAddr bits of the heap block backing the shadow (freed on
    /// publish/abort; `shadow` sits line-aligned inside it).
    pub block: u64,
    /// Bit `w` set ⇔ word `w` of the line was written this transaction.
    pub mask: u64,
}

pub struct CowPolicy;

const LPW: u64 = WORDS_PER_LINE as u64;

/// Home-line base address of `addr`.
#[inline]
fn home_line(addr: PAddr) -> PAddr {
    PAddr::new(addr.pool(), addr.line() * LPW)
}

/// Return the shadow blocks to the allocator and clear the shadow
/// state. Charged to whatever phase the caller set (Speculation on
/// publish, Rollback on abort). Crashed transactions never get here —
/// their blocks are unreachable and fall to the restart GC.
fn reclaim_shadows(ax: &mut TxAccess) {
    if ax.cow_lines.is_empty() {
        return;
    }
    let n = ax.cow_lines.len() as u64;
    let heap = Arc::clone(&ax.heap);
    for i in 0..ax.cow_lines.len() {
        let block = PAddr(ax.cow_lines[i].block);
        heap.free(&mut ax.s, block);
    }
    PtmStats::add(&ax.ptm.stats.shadow_lines_reclaimed, n);
    ax.cow_lines.clear();
    ax.cow_map.clear();
    ax.cow_words.clear();
}

/// Persist the shadow data and publish log, sealing under `marker`
/// (COMMITTED single-shard, PREPARED on the 2PC prepare path — same
/// flush/fence sequence either way).
fn seal_publish_log(ax: &mut TxAccess, marker: u64) {
    // Publish log: one (home, shadow, mask) record per dirtied line.
    // Marker-protected like redo — the records mean nothing until
    // the marker is durable, so no per-record checksum.
    let now = ax.s.now();
    let outer = ax.timer.switch(now, Phase::LogAppend);
    for i in 0..ax.cow_lines.len() {
        let line = ax.cow_lines[i];
        let e = ax.log.entry_addr(i);
        ax.s.store(e, line.home);
        ax.s.store(e.offset(1), line.shadow);
        ax.s.store(e.offset(2), line.mask);
    }
    let now = ax.s.now();
    ax.timer.switch(now, outer);
    // Shadow data + publish log + alloc-new blocks: flush each line
    // once, one fence for all three.
    if ax.combining() {
        ax.plan_fresh_blocks();
        for i in 0..ax.cow_lines.len() {
            ax.plan_line(PAddr(ax.cow_lines[i].shadow));
            ax.plan_line(ax.log.entry_addr(i));
        }
        ax.drain_plan();
    } else {
        ax.flush_fresh_blocks();
        for i in 0..ax.cow_lines.len() {
            ax.flush_line(PAddr(ax.cow_lines[i].shadow));
        }
        let mut last_line = (pmem_sim::PoolId(u32::MAX), u64::MAX);
        for i in 0..ax.cow_lines.len() {
            let e = ax.log.entry_addr(i);
            let line = (e.pool(), e.line());
            if line != last_line {
                ax.flush_line(e);
                last_line = line;
            }
        }
    }
    ax.fence();
    // Linearization + durability point: the marker.
    let now = ax.s.now();
    ax.timer.switch(now, Phase::LogAppend);
    let state = ax.log.state_addr();
    let count = ax.log.count_addr();
    // As in redo: the count rides inside the marker word so a torn
    // header line can never persist the marker with a stale count.
    // `W_COUNT` is only a mirror.
    ax.s.store(count, ax.cow_lines.len() as u64);
    ax.s.store(state, marker);
    ax.flush_line(state);
    ax.fence();
}

impl LogPolicy for CowPolicy {
    fn algo(&self) -> Algo {
        Algo::CowShadow
    }

    fn persistent_tag(&self) -> u64 {
        ALGO_COW
    }

    fn on_read(&self, ax: &mut TxAccess, addr: PAddr, _o: u32) -> Option<TxResult<u64>> {
        if ax.cow_lines.is_empty() {
            return None;
        }
        ax.index_cost();
        if let Some(i) = ax.cow_map.get(home_line(addr).0) {
            let line = &ax.cow_lines[i as usize];
            let w = addr.word() % LPW;
            if line.mask & (1 << w) != 0 {
                let shadow = PAddr(line.shadow);
                return Some(Ok(ax.s.load(shadow.offset(w))));
            }
        }
        // Unwritten word of a dirtied line: fall through to the
        // validated home read (home is untouched until publish).
        None
    }

    fn on_write(&self, ax: &mut TxAccess, addr: PAddr, val: u64) -> TxResult<()> {
        if ax.ptm.config.tracing {
            let o = ax.ptm.orecs.index_of(addr);
            ax.s.trace_event(EventKind::TxWrite, o as u64, addr.0);
        }
        ax.index_cost();
        let home = home_line(addr);
        let now = ax.s.now();
        let outer = ax.timer.switch(now, Phase::LogAppend);
        let idx = match ax.cow_map.get(home.0) {
            Some(i) => i as usize,
            None => {
                let i = ax.cow_lines.len();
                assert!(i < ax.log.capacity, "cow shadow set overflow ({i} lines)");
                // Two lines' worth guarantees a line-aligned window
                // regardless of the block's alignment (palloc data
                // starts one word past the block header).
                let heap = Arc::clone(&ax.heap);
                let block = heap.alloc(&mut ax.s, 2 * WORDS_PER_LINE);
                let shadow = PAddr::new(block.pool(), (block.word() + LPW - 1) & !(LPW - 1));
                PtmStats::bump(&ax.ptm.stats.shadow_lines_allocated);
                ax.cow_map.insert(home.0, i as u64);
                ax.cow_lines.push(CowLine {
                    home: home.0,
                    shadow: shadow.0,
                    block: block.0,
                    mask: 0,
                });
                i
            }
        };
        let w = addr.word() % LPW;
        if ax.cow_lines[idx].mask & (1 << w) == 0 {
            ax.cow_lines[idx].mask |= 1 << w;
            // Word-granular commit-time acquisition set, like redo's
            // entry list (adjacent words stripe to different orecs).
            ax.cow_words.push(addr.0);
        }
        let shadow = PAddr(ax.cow_lines[idx].shadow);
        ax.s.store(shadow.offset(w), val);
        let now = ax.s.now();
        ax.timer.switch(now, outer);
        Ok(())
    }

    fn read_only(&self, ax: &TxAccess) -> bool {
        ax.cow_lines.is_empty() && ax.fresh_blocks.is_empty()
    }

    fn write_set_size(&self, ax: &TxAccess) -> u64 {
        ax.cow_words.len() as u64
    }

    /// Commit-time locking over the written words, like redo.
    fn pre_commit_acquire(&self, ax: &mut TxAccess) -> bool {
        for i in 0..ax.cow_words.len() {
            let addr = PAddr(ax.cow_words[i]);
            if !ax.acquire_commit(addr) {
                ax.release_owned_restore();
                return false;
            }
        }
        true
    }

    fn make_durable(&self, ax: &mut TxAccess) {
        seal_publish_log(ax, committed_marker(ax.cow_lines.len() as u64));
    }

    fn make_prepared(&self, ax: &mut TxAccess, gtid: u64) {
        seal_publish_log(ax, prepared_marker(ax.cow_lines.len() as u64, gtid));
    }

    fn commit_publish(&self, ax: &mut TxAccess, wv: u64) {
        // Copy the masked shadow words home (the algorithm's ~2x data
        // cost: every committed word is loaded from the shadow and
        // stored again at home).
        let now = ax.s.now();
        ax.timer.switch(now, Phase::Writeback);
        if ax.combining() {
            for i in 0..ax.cow_lines.len() {
                let line = ax.cow_lines[i];
                let (home, shadow) = (PAddr(line.home), PAddr(line.shadow));
                for w in 0..LPW {
                    if line.mask & (1 << w) != 0 {
                        let v = ax.s.load(shadow.offset(w));
                        ax.s.store(home.offset(w), v);
                    }
                }
                ax.plan_line(home);
            }
            PtmStats::high_water(&ax.ptm.stats.max_write_lines, ax.plan.len() as u64);
            ax.drain_plan();
        } else {
            for i in 0..ax.cow_lines.len() {
                let line = ax.cow_lines[i];
                let (home, shadow) = (PAddr(line.home), PAddr(line.shadow));
                for w in 0..LPW {
                    if line.mask & (1 << w) != 0 {
                        let v = ax.s.load(shadow.offset(w));
                        ax.s.store(home.offset(w), v);
                    }
                }
                ax.flush_line(home);
            }
        }
        ax.fence();
        PtmStats::bump(&ax.ptm.stats.publish_fences);
        // Retire the log.
        let now = ax.s.now();
        ax.timer.switch(now, Phase::LogAppend);
        let state = ax.log.state_addr();
        ax.s.store(state, STATE_IDLE);
        ax.flush_line(state);
        ax.fence();
        PtmStats::bump(&ax.ptm.stats.publish_fences);
        // Make the writes visible at the commit timestamp.
        let now = ax.s.now();
        ax.timer.switch(now, Phase::Validation);
        ax.s.advance(ax.ptm.config.orec_ns * ax.owned.len() as u64);
        for i in 0..ax.owned.len() {
            let (o, _) = ax.owned[i];
            ax.ptm.orecs.release(o, wv);
        }
        // Allocator work, charged like deferred frees.
        let now = ax.s.now();
        ax.timer.switch(now, Phase::Speculation);
        reclaim_shadows(ax);
    }

    /// Cow abort: home was never touched — restore pre-lock orec
    /// versions (also correct after a post-bump validation failure:
    /// nothing was published) and return the shadow blocks.
    fn abort_rollback(&self, ax: &mut TxAccess, _wv: Option<u64>) {
        ax.release_owned_restore();
        reclaim_shadows(ax);
    }

    fn recover_apply(&self, ctx: &mut RecoverCtx<'_>) {
        let state = ctx.primary.raw_load(W_STATE);
        if is_committed(state) && !ctx.opts.skip_redo_replay {
            // Count from the marker word, never from the `W_COUNT`
            // mirror (see the redo policy): a stale count would re-copy
            // leftover publish entries from reclaimed shadow lines.
            let count = marker_count(state) as usize;
            if count > ctx.capacity() {
                // As in redo: a marker count beyond the log's physical
                // capacity proves header corruption — never read entries
                // out of bounds or publish garbage shadow data.
                ctx.malformed(format!(
                    "committed marker count {count} exceeds log capacity {} — publish skipped",
                    ctx.capacity()
                ));
                return;
            }
            for i in 0..count {
                let (home, shadow, mask) = ctx.raw_entry(i);
                for w in 0..LPW {
                    if mask & (1 << w) != 0 {
                        let v = ctx.raw_load(PAddr(shadow).offset(w));
                        ctx.store_persist(PAddr(home).offset(w), v);
                        ctx.report.cow_words += 1;
                    }
                }
            }
            ctx.report.cow_published += 1;
        }
        // The orphaned shadow blocks stay allocated until the restart
        // GC sweeps them (they are unreachable from the heap roots).
        ctx.retire();
    }

    fn resolve_prepared(&self, ctx: &mut RecoverCtx<'_>, committed: bool) {
        let state = ctx.primary.raw_load(W_STATE);
        if committed {
            // The coordinator decided commit: publish the masked shadow
            // words home, exactly like a committed publish log.
            let count = prepared_count(state) as usize;
            if count > ctx.capacity() {
                ctx.malformed(format!(
                    "prepared marker count {count} exceeds log capacity {} — publish skipped",
                    ctx.capacity()
                ));
                return;
            }
            for i in 0..count {
                let (home, shadow, mask) = ctx.raw_entry(i);
                for w in 0..LPW {
                    if mask & (1 << w) != 0 {
                        let v = ctx.raw_load(PAddr(shadow).offset(w));
                        ctx.store_persist(PAddr(home).offset(w), v);
                        ctx.report.cow_words += 1;
                    }
                }
            }
        }
        // Presumed abort: home untouched — retiring is the rollback.
        // Either way the shadow blocks fall to the restart GC.
        ctx.retire();
    }
}
