//! The pluggable algorithm layer: everything a PTM algorithm decides —
//! how writes are captured, what must be durable before the commit
//! point, how the commit is published, how an abort is undone, and how
//! a crashed log is repaired — lives behind [`LogPolicy`].
//!
//! The shared machinery ([`crate::access::TxAccess`]) owns the read set,
//! write-set structures, orec protocol, phase charging, and trace
//! emission; policies are stateless unit structs that operate on it.
//! `txn.rs` drives the retry loop and the HTM path and never matches on
//! [`Algo`] — the only algorithm dispatch in the crate is the
//! [`policy`] registry below. Registering a new algorithm means adding
//! a policy file and a registry row.

pub mod cow;
pub mod redo;
pub mod undo;

use pmem_sim::PAddr;

use crate::access::TxAccess;
use crate::config::Algo;
use crate::recovery::RecoverCtx;
use crate::txn::TxResult;

/// The algorithm seam. One implementation per [`Algo`] variant; all
/// methods take the shared [`TxAccess`] — policies hold no state.
///
/// The driver's commit sequence is fixed (read-only fast path, then
/// `pre_commit_acquire` → clock bump → read validation → `make_durable`
/// → `commit_publish`); the policy methods fill in the algorithm-
/// specific steps. TL2-style begin/read validation/retry/backoff and
/// the HTM path are shared and not part of the contract.
pub trait LogPolicy: Sync {
    /// The [`Algo`] this policy implements.
    fn algo(&self) -> Algo;

    /// Tag written to the persistent log header (`W_ALGO`) so recovery
    /// can dispatch without configuration. Must be unique and stable
    /// across versions.
    fn persistent_tag(&self) -> u64;

    /// Own-write lookup before the shared validated read of `addr`
    /// (orec `o`). `Some(result)` short-circuits; `None` falls through
    /// to [`TxAccess::validated_read`].
    fn on_read(&self, ax: &mut TxAccess, addr: PAddr, o: u32) -> Option<TxResult<u64>>;

    /// Capture a transactional write (buffer, log-and-write-in-place,
    /// or redirect — the algorithm's defining choice).
    fn on_write(&self, ax: &mut TxAccess, addr: PAddr, val: u64) -> TxResult<()>;

    /// Whether the transaction can take the read-only fast path (commit
    /// without touching the clock or any orec).
    fn read_only(&self, ax: &TxAccess) -> bool;

    /// Committed write-set size for the `max_write_entries` high-water
    /// stat.
    fn write_set_size(&self, ax: &TxAccess) -> u64;

    /// Acquire whatever orecs the commit still needs (commit-time
    /// locking). On failure the policy has already released its own
    /// holdings and noted the abort cause; the driver just retries.
    fn pre_commit_acquire(&self, ax: &mut TxAccess) -> bool;

    /// Make the write set durable up to and including the commit
    /// marker: after this returns, a crash must recover to the
    /// transaction's committed state.
    fn make_durable(&self, ax: &mut TxAccess);

    /// Publish the committed writes (write back / release in-place
    /// stores / copy shadows home), retire the log, and release held
    /// orecs at commit timestamp `wv`.
    fn commit_publish(&self, ax: &mut TxAccess, wv: u64);

    /// Undo the current attempt. `wv` is `Some` when the driver already
    /// bumped the clock (post-acquire validation failure) and `None`
    /// for a user abort (`Err(Abort)` escaped the closure) — policies
    /// that wrote in place must then bump the clock themselves before
    /// restoring.
    fn abort_rollback(&self, ax: &mut TxAccess, wv: Option<u64>);

    /// Repair one crashed log of this algorithm (dispatched on the
    /// persistent tag, not on configuration).
    fn recover_apply(&self, ctx: &mut RecoverCtx<'_>);
}

/// The algorithm registry: the single point in the crate that maps an
/// [`Algo`] to its implementation.
pub fn policy(algo: Algo) -> &'static dyn LogPolicy {
    match algo {
        Algo::RedoLazy => &redo::RedoPolicy,
        Algo::UndoEager => &undo::UndoPolicy,
        Algo::CowShadow => &cow::CowPolicy,
    }
}

/// Recovery-side dispatch: find the policy whose persistent tag was
/// written to a log header. `None` for foreign/unknown tags (the log is
/// left untouched, matching the pre-seam behavior for unrecognized
/// algorithm words).
pub fn policy_for_tag(tag: u64) -> Option<&'static dyn LogPolicy> {
    Algo::ALL
        .into_iter()
        .map(policy)
        .find(|p| p.persistent_tag() == tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_total_and_tags_are_unique() {
        let mut tags = Vec::new();
        for algo in Algo::ALL {
            let p = policy(algo);
            assert_eq!(p.algo(), algo);
            tags.push(p.persistent_tag());
        }
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(
            tags.len(),
            Algo::ALL.len(),
            "persistent tags must be unique"
        );
    }

    #[test]
    fn tag_lookup_round_trips_and_rejects_foreign() {
        for algo in Algo::ALL {
            let p = policy(algo);
            let back = policy_for_tag(p.persistent_tag()).expect("registered tag");
            assert_eq!(back.algo(), algo);
        }
        assert!(policy_for_tag(0).is_none());
        assert!(policy_for_tag(0xDEAD).is_none());
    }
}
