//! The pluggable algorithm layer: everything a PTM algorithm decides —
//! how writes are captured, what must be durable before the commit
//! point, how the commit is published, how an abort is undone, and how
//! a crashed log is repaired — lives behind [`LogPolicy`].
//!
//! The shared machinery ([`crate::access::TxAccess`]) owns the read set,
//! write-set structures, orec protocol, phase charging, and trace
//! emission; policies are stateless unit structs that operate on it.
//! `txn.rs` drives the retry loop (software and hardware) and never
//! matches on [`Algo`] — the only algorithm dispatch in the crate is
//! the [`policy`] registry below. Registering a new algorithm means
//! adding a policy file and a registry row. The hardware path is itself
//! part of the seam: [`LogPolicy::htm_commit`] defaults to the plain
//! hybrid's unlogged commit, and a policy that persists *through* the
//! hardware path ([`htm::HtmPolicy`]) overrides it.

pub mod cow;
pub mod htm;
pub mod redo;
pub mod undo;

use pmem_sim::PAddr;

use trace::{EventKind, HtmAbortCause};

use crate::access::TxAccess;
use crate::config::Algo;
use crate::orec::is_locked;
use crate::phases::Phase;
use crate::recovery::RecoverCtx;
use crate::txn::TxResult;

/// The algorithm seam. One implementation per [`Algo`] variant; all
/// methods take the shared [`TxAccess`] — policies hold no state.
///
/// The driver's commit sequence is fixed (read-only fast path, then
/// `pre_commit_acquire` → clock bump → read validation → `make_durable`
/// → `commit_publish`); the policy methods fill in the algorithm-
/// specific steps. TL2-style begin/read validation/retry/backoff and
/// the HTM path are shared and not part of the contract.
pub trait LogPolicy: Sync {
    /// The [`Algo`] this policy implements.
    fn algo(&self) -> Algo;

    /// Tag written to the persistent log header (`W_ALGO`) so recovery
    /// can dispatch without configuration. Must be unique and stable
    /// across versions.
    fn persistent_tag(&self) -> u64;

    /// Own-write lookup before the shared validated read of `addr`
    /// (orec `o`). `Some(result)` short-circuits; `None` falls through
    /// to [`TxAccess::validated_read`].
    fn on_read(&self, ax: &mut TxAccess, addr: PAddr, o: u32) -> Option<TxResult<u64>>;

    /// Capture a transactional write (buffer, log-and-write-in-place,
    /// or redirect — the algorithm's defining choice).
    fn on_write(&self, ax: &mut TxAccess, addr: PAddr, val: u64) -> TxResult<()>;

    /// Whether the transaction can take the read-only fast path (commit
    /// without touching the clock or any orec).
    fn read_only(&self, ax: &TxAccess) -> bool;

    /// Committed write-set size for the `max_write_entries` high-water
    /// stat.
    fn write_set_size(&self, ax: &TxAccess) -> u64;

    /// Acquire whatever orecs the commit still needs (commit-time
    /// locking). On failure the policy has already released its own
    /// holdings and noted the abort cause; the driver just retries.
    fn pre_commit_acquire(&self, ax: &mut TxAccess) -> bool;

    /// Make the write set durable up to and including the commit
    /// marker: after this returns, a crash must recover to the
    /// transaction's committed state.
    fn make_durable(&self, ax: &mut TxAccess);

    /// Publish the committed writes (write back / release in-place
    /// stores / copy shadows home), retire the log, and release held
    /// orecs at commit timestamp `wv`.
    fn commit_publish(&self, ax: &mut TxAccess, wv: u64);

    /// Undo the current attempt. `wv` is `Some` when the driver already
    /// bumped the clock (post-acquire validation failure) and `None`
    /// for a user abort (`Err(Abort)` escaped the closure) — policies
    /// that wrote in place must then bump the clock themselves before
    /// restoring.
    fn abort_rollback(&self, ax: &mut TxAccess, wv: Option<u64>);

    /// Repair one crashed log of this algorithm (dispatched on the
    /// persistent tag, not on configuration).
    fn recover_apply(&self, ctx: &mut RecoverCtx<'_>);

    // ---- two-phase commit (cross-shard) ---------------------------------

    /// 2PC prepare: make the write set durable under a `PREPARED`
    /// marker carrying `gtid` instead of the `COMMITTED` marker. After
    /// this returns the participant is *in-doubt* — a crash must leave
    /// recovery consulting the coordinator record for the outcome, and
    /// the per-shard replay pass must neither replay nor roll back the
    /// log. Called with the commit timestamp already in `ax.commit_wv`
    /// (like `make_durable`).
    fn make_prepared(&self, ax: &mut TxAccess, gtid: u64);

    /// 2PC decide-commit on a prepared participant: publish the writes,
    /// retire the log, release orecs at `wv`. The default is
    /// [`LogPolicy::commit_publish`], correct for policies whose publish
    /// path overwrites the marker with a durable `IDLE` (redo, cow).
    fn commit_prepared(&self, ax: &mut TxAccess, wv: u64) {
        self.commit_publish(ax, wv);
    }

    /// 2PC decide-abort on a prepared participant: roll back, then
    /// durably clear the `PREPARED` marker so presumed-abort resolution
    /// finds nothing. Rollback runs *first*: a crash in between leaves
    /// the marker with no live entries, which resolution handles
    /// idempotently.
    fn abort_prepared(&self, ax: &mut TxAccess, wv: u64) {
        self.abort_rollback(ax, Some(wv));
        let now = ax.s.now();
        ax.timer.switch(now, Phase::LogAppend);
        let state = ax.log.state_addr();
        ax.s.store(state, crate::log::STATE_IDLE);
        ax.flush_line(state);
        ax.fence();
    }

    /// Resolve one in-doubt (`PREPARED`) log during recovery:
    /// `committed` reflects the coordinator record. Must be idempotent
    /// (a crash mid-resolution re-runs it) and end with the log retired.
    fn resolve_prepared(&self, ctx: &mut RecoverCtx<'_>, committed: bool);

    // ---- hardware path --------------------------------------------------

    /// Whether this policy persists *through* the hardware path (a
    /// back-end log outside the section). Logged mode attempts the
    /// hardware path under every durability domain — flush-requiring
    /// ones included — and even when `htm_retries` is 0; the plain
    /// (default) hybrid only runs it where flushes are elided.
    fn htm_mode(&self) -> bool {
        false
    }

    /// Called before each hardware attempt, outside the section: the
    /// one place a logged policy may flush or fence (e.g. to recycle
    /// its back-end ring) without violating the invariant that the
    /// TxBegin→HtmRetire window contains no `clwb`/`sfence`.
    fn htm_prepare(&self, _ax: &mut TxAccess) {}

    /// Commit the open hardware section (the driver already ran the
    /// body). On `false` the policy has closed the section, noted the
    /// abort cause in `ax.htm_abort_cause`, and released anything it
    /// acquired; the driver counts the abort and retries.
    ///
    /// The default is the plain hybrid commit: close the section, then
    /// acquire the write-set stripes and atomically
    /// validate-and-serialize on the global clock (no other transaction
    /// may have committed since begin — conservative, like a real HTM's
    /// read-set tracking at line granularity), then apply in place. No
    /// logging and no flushes: under eADR-class domains the stores are
    /// durable the moment they are cache-visible, which is exactly why
    /// the paper expects TSX to compose with eADR but not ADR.
    fn htm_commit(&self, ax: &mut TxAccess) -> bool {
        let now = ax.s.now();
        ax.timer.switch(now, Phase::Validation);
        let fp = ax.s.htm_footprint_lines() as u64;
        let n = ax.entries.len() as u64;
        // The global-clock serialization below subsumes the machine's
        // footprint conflict check (any concurrent commit fails
        // `try_advance`), so the section retires unchecked either way.
        ax.s.htm_commit_readonly();
        ax.trace(EventKind::HtmRetire, fp, n);
        if ax.entries.is_empty() {
            // Read-only: all reads saw orec versions <= start_time and
            // unlocked stripes; any later committer would have bumped
            // the clock, which htm_read's version check bounds. Commit.
            ax.apply_frees();
            return true;
        }
        for i in 0..ax.entries.len() {
            let addr = PAddr(ax.entries[i].0);
            let o = ax.ptm.orecs.index_of(addr);
            if ax.owned_map.get(o as u64).is_some() {
                continue;
            }
            let v = ax.ptm.orecs.load(o);
            if is_locked(v) || ax.ptm.orecs.try_lock(o, v, ax.tid).is_err() {
                ax.htm_abort_cause = Some(HtmAbortCause::Conflict);
                ax.release_owned_restore();
                return false;
            }
            ax.owned_map.insert(o as u64, ax.owned.len() as u64);
            ax.owned.push((o, v));
        }
        let wv = match ax.ptm.clock.try_advance(ax.start_time) {
            Ok(wv) => wv,
            Err(_) => {
                ax.htm_abort_cause = Some(HtmAbortCause::Conflict);
                ax.release_owned_restore();
                return false;
            }
        };
        // A real hardware transaction's stores become visible (and,
        // under eADR, durable) atomically at xend; a simulated power
        // failure must not split the application of the write set —
        // there is no log to repair a torn hardware commit.
        ax.s.enter_atomic();
        let now = ax.s.now();
        ax.timer.switch(now, Phase::Writeback);
        for i in 0..ax.entries.len() {
            let (a, v) = ax.entries[i];
            ax.s.store(PAddr(a), v);
        }
        let now = ax.s.now();
        ax.timer.switch(now, Phase::Validation);
        for i in 0..ax.owned.len() {
            let (o, _) = ax.owned[i];
            ax.ptm.orecs.release(o, wv);
        }
        ax.s.exit_atomic();
        ax.apply_frees();
        true
    }
}

/// The algorithm registry: the single point in the crate that maps an
/// [`Algo`] to its implementation.
pub fn policy(algo: Algo) -> &'static dyn LogPolicy {
    match algo {
        Algo::RedoLazy => &redo::RedoPolicy,
        Algo::UndoEager => &undo::UndoPolicy,
        Algo::CowShadow => &cow::CowPolicy,
        Algo::HtmLogged => &htm::HtmPolicy,
    }
}

/// Recovery-side dispatch: find the policy whose persistent tag was
/// written to a log header. `None` for foreign/unknown tags (the log is
/// left untouched, matching the pre-seam behavior for unrecognized
/// algorithm words).
pub fn policy_for_tag(tag: u64) -> Option<&'static dyn LogPolicy> {
    Algo::ALL
        .into_iter()
        .map(policy)
        .find(|p| p.persistent_tag() == tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_total_and_tags_are_unique() {
        let mut tags = Vec::new();
        for algo in Algo::ALL {
            let p = policy(algo);
            assert_eq!(p.algo(), algo);
            tags.push(p.persistent_tag());
        }
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(
            tags.len(),
            Algo::ALL.len(),
            "persistent tags must be unique"
        );
    }

    #[test]
    fn tag_lookup_round_trips_and_rejects_foreign() {
        for algo in Algo::ALL {
            let p = policy(algo);
            let back = policy_for_tag(p.persistent_tag()).expect("registered tag");
            assert_eq!(back.algo(), algo);
        }
        assert!(policy_for_tag(0).is_none());
        assert!(policy_for_tag(0xDEAD).is_none());
    }
}
