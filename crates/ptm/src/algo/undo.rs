//! "orec-eager": encounter-time locking with undo logging.
//!
//! Writes go in place after the stripe's orec is acquired and the old
//! value is persisted to the undo log — **O(W)** fences: every first
//! write to a location pays `clwb` + `sfence` before its in-place
//! store. Commit only has to flush the in-place data and truncate the
//! log; abort restores old values durably in reverse order.

use pmem_sim::PAddr;

use trace::{AbortCause, EventKind};

use crate::access::TxAccess;
use crate::config::Algo;
use crate::log::{prepared_marker, seal, ALGO_UNDO, ENTRY_WORDS, STATE_IDLE, W_SEQ};
use crate::orec::is_locked;
use crate::phases::Phase;
use crate::recovery::RecoverCtx;
use crate::stats::PtmStats;
use crate::txn::{Abort, TxResult};

use super::LogPolicy;

pub struct UndoPolicy;

/// Undo abort: restore old values (durably), truncate, release at a
/// fresh timestamp so concurrent readers of speculative values fail
/// validation.
fn rollback_undo(ax: &mut TxAccess, wv: u64) {
    let now = ax.s.now();
    ax.timer.switch(now, Phase::Rollback);
    for i in (0..ax.entries.len()).rev() {
        let (a, old) = ax.entries[i];
        let addr = PAddr(a);
        ax.s.store(addr, old);
        ax.flush_line(addr);
    }
    ax.fence();
    if !ax.entries.is_empty() {
        let e0 = ax.log.entry_addr(0);
        ax.s.store(e0, 0);
        ax.flush_line(e0);
        ax.fence();
    }
    ax.s.advance(ax.ptm.config.orec_ns * ax.owned.len() as u64);
    for i in 0..ax.owned.len() {
        let (o, _) = ax.owned[i];
        ax.ptm.orecs.release(o, wv);
    }
    ax.owned.clear();
    ax.owned_map.clear();
}

impl LogPolicy for UndoPolicy {
    fn algo(&self) -> Algo {
        Algo::UndoEager
    }

    fn persistent_tag(&self) -> u64 {
        ALGO_UNDO
    }

    fn on_read(&self, ax: &mut TxAccess, addr: PAddr, o: u32) -> Option<TxResult<u64>> {
        if !ax.owned.is_empty() {
            ax.s.advance(ax.ptm.config.index_ns);
            if ax.owned_map.get(o as u64).is_some() {
                // We hold the stripe: in-place values are ours to read.
                return Some(Ok(ax.s.load(addr)));
            }
        }
        None
    }

    fn on_write(&self, ax: &mut TxAccess, addr: PAddr, val: u64) -> TxResult<()> {
        let o = ax.ptm.orecs.index_of(addr);
        ax.index_cost();
        if ax.owned_map.get(o as u64).is_none() {
            let spin_limit = ax.ptm.config.lock_spin;
            let orec_ns = ax.ptm.config.orec_ns;
            let mut spins = 0;
            loop {
                ax.s.advance(orec_ns);
                let v = ax.ptm.orecs.load(o);
                if is_locked(v) {
                    // (cannot be ours: owned_map said no)
                    if spins < spin_limit {
                        spins += 1;
                        ax.s.advance(8);
                        continue;
                    }
                    PtmStats::bump(&ax.ptm.stats.aborts_acquire);
                    ax.abort_at(AbortCause::Acquire, o);
                    return Err(Abort);
                }
                if v > ax.start_time {
                    // Acquiring a newer stripe would let owned-stripe reads
                    // see post-snapshot values; extend or abort.
                    if ax.ptm.config.ts_extension && ax.extend() {
                        continue;
                    }
                    PtmStats::bump(&ax.ptm.stats.aborts_acquire);
                    ax.abort_at(AbortCause::Acquire, o);
                    return Err(Abort);
                }
                ax.s.advance(orec_ns);
                if ax.ptm.orecs.try_lock(o, v, ax.tid).is_ok() {
                    ax.owned_map.insert(o as u64, ax.owned.len() as u64);
                    ax.owned.push((o, v));
                    ax.trace(EventKind::TxAcquire, o as u64, v);
                    break;
                }
                if spins >= spin_limit {
                    PtmStats::bump(&ax.ptm.stats.aborts_acquire);
                    ax.abort_at(AbortCause::Acquire, o);
                    return Err(Abort);
                }
                spins += 1;
            }
        }
        // First write to this address: persist the old value, fenced,
        // before the in-place store (the undo fence the paper measures).
        ax.index_cost();
        if ax.undo_logged.get(addr.0).is_none() {
            let now = ax.s.now();
            let outer = ax.timer.switch(now, Phase::LogAppend);
            ax.undo_logged.insert(addr.0, 1);
            let i = ax.entries.len();
            assert!(i < ax.log.capacity, "undo log overflow ({i} entries)");
            if i == 0 {
                // First entry of this transaction: persist the bumped
                // sequence number before any entry can become valid, so
                // recovery rejects stale entries from earlier
                // transactions that lie past ours.
                ax.undo_seq += 1;
                let seq_addr = ax.log.seq_addr();
                ax.s.store(seq_addr, ax.undo_seq);
                ax.flush_line(seq_addr);
                ax.fence();
            }
            let old = ax.s.load(addr);
            ax.entries.push((addr.0, old));
            let e = ax.log.entry_addr(i);
            ax.s.store(e, addr.0);
            ax.s.store(e.offset(1), old);
            ax.s.store(e.offset(2), seal(addr.0, old, ax.undo_seq));
            ax.flush_line(e);
            ax.fence();
            let now = ax.s.now();
            ax.timer.switch(now, outer);
            // One commit-time flush obligation per *unique* address:
            // repeat stores used to push a duplicate per store, inflating
            // the commit flush loop for write-hot transactions.
            ax.eager_writes.push(addr.0);
        }
        ax.s.store(addr, val);
        ax.trace(EventKind::TxWrite, o as u64, addr.0);
        Ok(())
    }

    fn read_only(&self, ax: &TxAccess) -> bool {
        ax.owned.is_empty() && ax.fresh_blocks.is_empty()
    }

    fn write_set_size(&self, ax: &TxAccess) -> u64 {
        ax.entries.len() as u64
    }

    /// Encounter-time locking already acquired everything.
    fn pre_commit_acquire(&self, _ax: &mut TxAccess) -> bool {
        true
    }

    fn make_durable(&self, ax: &mut TxAccess) {
        // Flush the in-place data and alloc-new blocks, one fence.
        if ax.combining() {
            ax.plan_fresh_blocks();
            for i in 0..ax.eager_writes.len() {
                let addr = PAddr(ax.eager_writes[i]);
                ax.plan_line(addr);
            }
            PtmStats::high_water(&ax.ptm.stats.max_write_lines, ax.plan.len() as u64);
            ax.drain_plan();
        } else {
            ax.flush_fresh_blocks();
            for i in 0..ax.eager_writes.len() {
                let addr = PAddr(ax.eager_writes[i]);
                ax.flush_line(addr);
            }
        }
        ax.fence();
        // Truncate the undo log: entry 0's addr word zeroed, durable.
        let now = ax.s.now();
        ax.timer.switch(now, Phase::LogAppend);
        let e0 = ax.log.entry_addr(0);
        ax.s.store(e0, 0);
        ax.flush_line(e0);
        ax.fence();
    }

    fn commit_publish(&self, ax: &mut TxAccess, wv: u64) {
        let now = ax.s.now();
        ax.timer.switch(now, Phase::Validation);
        ax.s.advance(ax.ptm.config.orec_ns * ax.owned.len() as u64);
        for i in 0..ax.owned.len() {
            let (o, _) = ax.owned[i];
            ax.ptm.orecs.release(o, wv);
        }
    }

    fn make_prepared(&self, ax: &mut TxAccess, gtid: u64) {
        // Flush the in-place data and alloc-new blocks, one fence —
        // exactly `make_durable`'s first half.
        if ax.combining() {
            ax.plan_fresh_blocks();
            for i in 0..ax.eager_writes.len() {
                let addr = PAddr(ax.eager_writes[i]);
                ax.plan_line(addr);
            }
            PtmStats::high_water(&ax.ptm.stats.max_write_lines, ax.plan.len() as u64);
            ax.drain_plan();
        } else {
            ax.flush_fresh_blocks();
            for i in 0..ax.eager_writes.len() {
                let addr = PAddr(ax.eager_writes[i]);
                ax.flush_line(addr);
            }
        }
        ax.fence();
        // But do NOT truncate: the sealed undo entries are the only way
        // a decide-abort (or presumed-abort recovery) can restore the
        // in-place writes. Seal the in-doubt window with the PREPARED
        // marker instead.
        let now = ax.s.now();
        ax.timer.switch(now, Phase::LogAppend);
        let state = ax.log.state_addr();
        ax.s.store(state, prepared_marker(ax.entries.len() as u64, gtid));
        ax.flush_line(state);
        ax.fence();
    }

    fn commit_prepared(&self, ax: &mut TxAccess, wv: u64) {
        // Decide-commit: truncate the undo log and clear the marker
        // (different cache lines — one flush each, one fence), then
        // release the orecs. In-place data is durable since prepare.
        let now = ax.s.now();
        ax.timer.switch(now, Phase::LogAppend);
        if !ax.entries.is_empty() {
            let e0 = ax.log.entry_addr(0);
            ax.s.store(e0, 0);
            ax.flush_line(e0);
        }
        let state = ax.log.state_addr();
        ax.s.store(state, STATE_IDLE);
        ax.flush_line(state);
        ax.fence();
        self.commit_publish(ax, wv);
    }

    fn resolve_prepared(&self, ctx: &mut RecoverCtx<'_>, committed: bool) {
        if committed {
            // In-place data was durable at prepare; the entries hold old
            // values and must NOT be restored. Truncate and retire.
            ctx.truncate_entries();
            ctx.retire();
        } else {
            // Decide-abort: the ordinary crashed-undo repair — roll the
            // seal-valid prefix back, truncate, retire.
            self.recover_apply(ctx);
        }
    }

    fn abort_rollback(&self, ax: &mut TxAccess, wv: Option<u64>) {
        match wv {
            Some(wv) => rollback_undo(ax, wv),
            None => {
                // User abort: only bump the clock when in-place writes
                // actually happened (a read-only attempt rolls back to
                // nothing).
                if !ax.owned.is_empty() {
                    let wv = ax.ptm.clock.bump();
                    rollback_undo(ax, wv);
                }
            }
        }
    }

    fn recover_apply(&self, ctx: &mut RecoverCtx<'_>) {
        // Collect the valid prefix of entries, sealed under the
        // descriptor's persisted sequence number.
        let seq = ctx.primary.raw_load(W_SEQ);
        let mut valid = Vec::new();
        let capacity = ctx.primary_cap
            + ctx
                .overflow
                .as_ref()
                .map_or(0, |p| p.len_words() / ENTRY_WORDS as usize);
        for i in 0..capacity {
            let (a, old, chk) = ctx.raw_entry(i);
            if a == 0 {
                break;
            }
            if chk != seal(a, old, seq) {
                // Torn tail entry: its in-place store never happened
                // (the fence orders entry before data), so stopping
                // here is safe.
                ctx.report.torn_entries += 1;
                break;
            }
            valid.push((a, old));
        }
        if !valid.is_empty() && !ctx.opts.skip_undo_rollback {
            for &(a, old) in valid.iter().rev() {
                ctx.store_persist(PAddr(a), old);
                ctx.report.undo_entries += 1;
            }
            ctx.report.undo_rolled_back += 1;
        }
        // Entries are only erased *after* every rollback store is
        // durable (see truncate_entries' ordering contract).
        ctx.truncate_entries();
        ctx.retire();
    }
}
