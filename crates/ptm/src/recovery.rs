//! Post-crash recovery.
//!
//! Runs once, after [`pmem_sim::Machine::reboot`] and before any new
//! transactions. It discovers every thread's persistent log by pool
//! name and:
//!
//! * **redo, COMMITTED**: the transaction logically happened — replay all
//!   `count` entries into program data and persist them, then retire the
//!   log. Replay is idempotent, so a crash *during recovery* is handled
//!   by simply recovering again.
//! * **redo, not committed**: the transaction never happened; retire the
//!   log.
//! * **undo, live entries**: the crash interrupted an in-flight
//!   transaction after some in-place writes — roll the entries back in
//!   reverse order, persist the restored values, truncate.
//! * **cow, COMMITTED**: publish each logged shadow line's masked words
//!   to its home location (idempotent, like redo replay), then retire;
//!   the orphaned shadow blocks are reclaimed by the restart GC.
//! * **htm, COMMITTED**: the back-end *ring* may seal several
//!   transactions' entries under one grown marker — replay the slots in
//!   order, skipping checksum failures (tombstoned entries a newer
//!   commit superseded), then retire.
//!
//! The per-algorithm repair logic lives in each policy's
//! [`crate::algo::LogPolicy::recover_apply`], dispatched on the log
//! header's persistent tag; this module owns discovery and the
//! [`RecoverCtx`] repair primitives. Recovery is untimed (it happens
//! outside measured execution) and uses raw pool operations plus
//! `persist_line_now`.
//!
//! ## Parallel recovery and replay-order independence
//!
//! With [`RecoverOptions::workers`] > 1, discovery stays serial (it is
//! a cheap header scan in pool order) and the discovered logs are
//! partitioned round-robin across worker threads, each repairing its
//! share independently. This is sound because distinct logs commute:
//!
//! * every committed-but-unretired log's write set still holds its
//!   orecs — the retire store is durable *before* any orec is released
//!   — so at most one unretired committed log covers any given word.
//!   HtmLogged entries outlive their orec release, but a commit that
//!   overwrites a word another ring still covers *tombstones* the
//!   superseded entry before sealing its own (see `crate::algo::htm`),
//!   restoring the one-covering-entry invariant;
//! * replay writes whole 64-bit words atomically ([`PmemPool::raw_store`])
//!   and `persist_line_now` snapshots the line's *current* contents
//!   under the pool's apply lock, so two logs touching different words
//!   of the same cache line interleave safely in any order;
//! * undo rollback targets only words its own (in-flight) transaction
//!   wrote, which it likewise still owns.
//!
//! Per-log repair order within a worker is preserved, and worker
//! reports are merged in worker-index order, so the merged
//! [`RecoveryReport`] is deterministic for a given worker count.
//!
//! ## Fail-soft discovery
//!
//! A pool whose name collides with [`LOG_POOL_PREFIX`] but whose header
//! is garbage (unknown algorithm tag, impossible `primary_cap`,
//! dangling overflow pool id, marker count beyond the log's physical
//! capacity) must not panic recovery or replay garbage: the log is left
//! untouched and a per-log diagnostic is pushed onto
//! [`RecoveryReport::malformed`].

use std::sync::Arc;
use std::time::Instant;

use pmem_sim::{Machine, PAddr, PmemPool, SiteKind, WORDS_PER_LINE};

use crate::log::{
    is_prepared, TxLog, ENTRY0, ENTRY_WORDS, LOG_POOL_PREFIX, OVF_POOL_PREFIX, STATE_IDLE, W_ALGO,
    W_OVF, W_PRIMARY_CAP, W_STATE,
};

/// Fault-injection switches for harness self-tests.
///
/// A crash-site sweep that always passes proves nothing until it is shown
/// to *fail* when recovery is deliberately broken. These switches disable
/// individual recovery obligations so `ptm::crash_harness` (and its
/// tests) can demonstrate that the sweep catches the resulting
/// inconsistencies with a deterministic reproducer. Never set in
/// production recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverOptions {
    /// Skip rolling back in-flight undo logs (leaves torn in-place
    /// writes of uncommitted transactions in program data).
    pub skip_undo_rollback: bool,
    /// Skip replaying committed redo logs (loses transactions whose
    /// commit marker is durable but whose writeback was not).
    pub skip_redo_replay: bool,
    /// Worker threads to repair discovered logs with (clamped to at
    /// least 1 and at most the number of logs). Not a fault-injection
    /// switch: any worker count produces the same post-recovery state
    /// (see the module docs on replay-order independence).
    pub workers: usize,
}

impl Default for RecoverOptions {
    fn default() -> Self {
        RecoverOptions {
            skip_undo_rollback: false,
            skip_redo_replay: false,
            workers: 1,
        }
    }
}

/// What recovery found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Per-thread logs examined.
    pub logs_scanned: usize,
    /// Committed redo logs replayed forward.
    pub redo_replayed: usize,
    /// Redo entries written back during replay.
    pub redo_entries: usize,
    /// In-flight undo logs rolled back.
    pub undo_rolled_back: usize,
    /// Undo entries restored.
    pub undo_entries: usize,
    /// Undo entries rejected by the torn-write checksum.
    pub torn_entries: usize,
    /// Committed cow logs whose shadow lines were published forward.
    pub cow_published: usize,
    /// Cow words copied shadow → home during publish replay.
    pub cow_words: usize,
    /// Committed HtmLogged back-end rings replayed forward.
    pub htm_replayed: usize,
    /// Live (non-tombstoned) ring entries written back during replay.
    pub htm_entries: usize,
    /// PREPARED (in-doubt 2PC participant) logs the per-shard pass left
    /// untouched — their fate is a *cross-shard* decision taken by
    /// [`resolve_in_doubt`] once every shard's coordinator pool is
    /// readable.
    pub prepared_skipped: usize,
    /// In-doubt participant logs resolved as committed (a durable,
    /// seal-valid coordinator record carried their gtid).
    pub indoubt_resolved_commit: usize,
    /// In-doubt participant logs resolved as aborted (no durable
    /// coordinator record — presumed abort).
    pub indoubt_resolved_abort: usize,
    /// Per-log diagnostics for prefix-colliding pools whose header
    /// failed validation — these logs are left untouched.
    pub malformed: Vec<String>,
    /// Wall-clock duration of this recovery pass.
    pub recovery_ns: u64,
    /// Worker threads the pass actually ran with (after clamping).
    pub recovery_workers: usize,
}

impl RecoveryReport {
    /// Fold `other` (a worker's share) into `self`. Counts add
    /// saturating (mirrors the `ReopenReports` aggregation rules);
    /// diagnostics concatenate in call order; the timing/worker fields
    /// take the maximum, since worker passes overlap in wall-clock time
    /// rather than summing.
    pub fn merge(&mut self, other: &RecoveryReport) {
        self.logs_scanned = self.logs_scanned.saturating_add(other.logs_scanned);
        self.redo_replayed = self.redo_replayed.saturating_add(other.redo_replayed);
        self.redo_entries = self.redo_entries.saturating_add(other.redo_entries);
        self.undo_rolled_back = self.undo_rolled_back.saturating_add(other.undo_rolled_back);
        self.undo_entries = self.undo_entries.saturating_add(other.undo_entries);
        self.torn_entries = self.torn_entries.saturating_add(other.torn_entries);
        self.cow_published = self.cow_published.saturating_add(other.cow_published);
        self.cow_words = self.cow_words.saturating_add(other.cow_words);
        self.htm_replayed = self.htm_replayed.saturating_add(other.htm_replayed);
        self.htm_entries = self.htm_entries.saturating_add(other.htm_entries);
        self.prepared_skipped = self.prepared_skipped.saturating_add(other.prepared_skipped);
        self.indoubt_resolved_commit = self
            .indoubt_resolved_commit
            .saturating_add(other.indoubt_resolved_commit);
        self.indoubt_resolved_abort = self
            .indoubt_resolved_abort
            .saturating_add(other.indoubt_resolved_abort);
        self.malformed.extend(other.malformed.iter().cloned());
        self.recovery_ns = self.recovery_ns.max(other.recovery_ns);
        self.recovery_workers = self.recovery_workers.max(other.recovery_workers);
    }

    /// The report with its wall-clock timing zeroed: what must be
    /// bit-identical between a serial and a parallel pass over the same
    /// image (`recovery_workers` stays — callers compare it explicitly).
    pub fn without_timing(&self) -> RecoveryReport {
        RecoveryReport {
            recovery_ns: 0,
            recovery_workers: 0,
            ..self.clone()
        }
    }
}

/// One crashed log, as handed to [`crate::algo::LogPolicy::recover_apply`]:
/// the discovered pools plus the repair primitives every algorithm's
/// recovery is built from. Each persist primitive is its own crash site
/// ([`SiteKind::RecoveryPersist`]) so the idempotence sweeps enumerate
/// mid-recovery failures of any algorithm uniformly.
pub struct RecoverCtx<'a> {
    pub machine: &'a Arc<Machine>,
    ring: &'a mut Option<trace::TraceRing>,
    /// The log's primary pool (header + first `primary_cap` entries).
    pub primary: Arc<PmemPool>,
    /// PDRAM-Lite spill pool, when the header points at one.
    pub overflow: Option<Arc<PmemPool>>,
    pub primary_cap: usize,
    pub opts: RecoverOptions,
    pub report: &'a mut RecoveryReport,
    /// Write-back batching for replay loops: the last line stored to
    /// but not yet persisted (with its pool handle cached, sparing the
    /// per-entry pool-table lookup). Entries overwhelmingly target
    /// consecutive words, so batching turns one `persist_line_now` per
    /// *entry* into one per *line* — the dominant cost of a large
    /// replay, and (because every persist takes the target pool's
    /// apply lock) the serialization point when recovery workers replay
    /// into a shared heap pool.
    pending: Option<(Arc<PmemPool>, u64)>,
}

impl RecoverCtx<'_> {
    /// Durable raw store of one word (with its trace event and crash
    /// site). Recovery must be idempotent under a failure at any point
    /// of its own execution.
    ///
    /// The line flush is deferred while consecutive stores hit the same
    /// line; [`Self::truncate_entries`] and [`Self::retire`] flush
    /// first, so the ordering invariant recovery correctness rests on —
    /// every replayed store durable before the retire is — holds
    /// unchanged. A crash while a line is pending just re-runs the
    /// (idempotent) repair: the log is still live.
    pub fn store_persist(&mut self, addr: PAddr, value: u64) {
        self.machine.note_site(SiteKind::RecoveryPersist, false);
        if let Some(r) = self.ring.as_mut() {
            r.record(0, trace::EventKind::RecoveryApply, addr.0, value);
        }
        let line = addr.word() / WORDS_PER_LINE as u64;
        let reuse = match self.pending.take() {
            Some((pool, l)) if pool.id() == addr.pool() => {
                if l != line {
                    pool.persist_line_now(l);
                }
                Some(pool)
            }
            Some((pool, l)) => {
                pool.persist_line_now(l);
                None
            }
            None => None,
        };
        let pool = reuse.unwrap_or_else(|| self.machine.pool(addr.pool()));
        pool.raw_store(addr.word(), value);
        self.pending = Some((pool, line));
    }

    /// Persist the deferred line, if any. Idempotent; called by the
    /// durable-ordering primitives below and after each log's repair.
    pub fn flush_pending(&mut self) {
        if let Some((pool, line)) = self.pending.take() {
            pool.persist_line_now(line);
        }
    }

    /// Untimed read of log entry `i` (primary or overflow).
    pub fn raw_entry(&self, i: usize) -> (u64, u64, u64) {
        TxLog::raw_entry(&self.primary, self.overflow.as_deref(), self.primary_cap, i)
    }

    /// Untimed read of all four words of log entry `i` (HtmLogged ring
    /// entries carry the sealing timestamp as their third word).
    pub fn raw_entry4(&self, i: usize) -> (u64, u64, u64, u64) {
        TxLog::raw_entry4(&self.primary, self.overflow.as_deref(), self.primary_cap, i)
    }

    /// Physical entry capacity of the discovered pools — the hard upper
    /// bound any persisted count field must respect. A marker count
    /// beyond it proves header corruption: reject via [`Self::malformed`]
    /// rather than reading out of bounds.
    pub fn capacity(&self) -> usize {
        self.primary_cap
            + self
                .overflow
                .as_ref()
                .map_or(0, |p| p.len_words() / ENTRY_WORDS as usize)
    }

    /// Record a per-log diagnostic: the log failed validation and was
    /// left untouched.
    pub fn malformed(&mut self, msg: String) {
        self.report
            .malformed
            .push(format!("pool '{}': {msg}", self.primary.name()));
    }

    /// Untimed raw load of an arbitrary persistent word (e.g. cow
    /// shadow data referenced from a log entry).
    pub fn raw_load(&self, addr: PAddr) -> u64 {
        self.machine.pool(addr.pool()).raw_load(addr.word())
    }

    /// Zero entry 0's address word (undo-style truncation), durably.
    /// Its own crash site: ordering matters for mid-recovery crashes —
    /// call only after every repair store is durable, so a re-run
    /// either sees the full valid prefix again (and harmlessly repairs
    /// it a second time) or an already-truncated log.
    pub fn truncate_entries(&mut self) {
        self.flush_pending();
        self.machine.note_site(SiteKind::RecoveryPersist, false);
        self.primary.raw_store(ENTRY0, 0);
        self.primary
            .persist_line_now(ENTRY0 / WORDS_PER_LINE as u64);
    }

    /// Retire the log to IDLE, durably. The last crash site of a log's
    /// recovery: a failure before it re-runs the (idempotent) repair, a
    /// failure after it finds an idle log.
    pub fn retire(&mut self) {
        self.flush_pending();
        self.machine.note_site(SiteKind::RecoveryPersist, false);
        self.primary.raw_store(W_STATE, STATE_IDLE);
        self.primary.persist_line_now(0);
    }
}

/// Recover every PTM log on `machine`. Idempotent.
pub fn recover(machine: &Arc<Machine>) -> RecoveryReport {
    recover_with_options(machine, RecoverOptions::default())
}

/// One discovered, header-validated log awaiting repair.
struct DiscoveredLog {
    primary: Arc<PmemPool>,
    overflow: Option<Arc<PmemPool>>,
    primary_cap: usize,
    policy: &'static dyn crate::algo::LogPolicy,
}

/// Repair one discovered log, attributing its trace events to `worker`.
fn recover_one(
    machine: &Arc<Machine>,
    log: DiscoveredLog,
    worker: usize,
    opts: RecoverOptions,
    report: &mut RecoveryReport,
    ring: &mut Option<trace::TraceRing>,
) {
    if let Some(r) = ring.as_mut() {
        r.record(
            0,
            trace::EventKind::RecoveryLog,
            log.primary.id().0 as u64,
            worker as u64,
        );
    }
    let mut ctx = RecoverCtx {
        machine,
        ring,
        primary: log.primary,
        overflow: log.overflow,
        primary_cap: log.primary_cap,
        opts,
        report,
        pending: None,
    };
    log.policy.recover_apply(&mut ctx);
    // Belt and braces: every policy ends with `retire` (which flushes),
    // but a pending line must never outlive its log's repair.
    ctx.flush_pending();
}

/// [`recover`] with fault-injection switches and a worker count.
pub fn recover_with_options(machine: &Arc<Machine>, opts: RecoverOptions) -> RecoveryReport {
    let t0 = Instant::now();
    let mut report = RecoveryReport::default();
    // Recovery is untimed: its events carry ts 0 and are submitted
    // under the reserved recovery-tid band (ordering within each stream
    // is preserved by the merge's sequence tiebreak; worker streams get
    // distinct band tids so a merged timeline stays deterministic).
    let tracer = machine.tracer();
    let mut ring = tracer.as_ref().map(|sink| sink.ring());
    if let Some(r) = ring.as_mut() {
        r.record(
            0,
            trace::EventKind::RecoveryBegin,
            machine.pools().len() as u64,
            0,
        );
    }
    // Discovery: a serial header scan in pool order, validating each
    // prefix-colliding pool fail-soft before it is handed to a policy.
    let (logs, prepared) = discover(machine, &mut report);
    report.prepared_skipped = prepared.len();
    let workers = opts.workers.clamp(1, logs.len().max(1));
    report.recovery_workers = workers;
    if workers <= 1 {
        for log in logs {
            recover_one(machine, log, 0, opts, &mut report, &mut ring);
        }
    } else {
        // Round-robin partition in discovery order; each worker repairs
        // its share with a private report and trace ring, merged back in
        // worker-index order so the result is deterministic. Sound for
        // any partition — distinct logs commute (see module docs).
        let mut buckets: Vec<Vec<DiscoveredLog>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, log) in logs.into_iter().enumerate() {
            buckets[i % workers].push(log);
        }
        let tracer_ref = tracer.as_ref();
        let joined: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .enumerate()
                .map(|(w, bucket)| {
                    s.spawn(move || {
                        let mut rep = RecoveryReport::default();
                        let mut ring = tracer_ref.map(|sink| sink.ring());
                        for log in bucket {
                            recover_one(machine, log, w, opts, &mut rep, &mut ring);
                        }
                        (rep, ring)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        // Merge completed workers first (their repairs are durable and
        // idempotent regardless of a sibling's fate), then re-raise the
        // first simulated-crash panic so the caller's crash harness sees
        // it exactly as in the serial path.
        let mut panic_payload = None;
        for (w, res) in joined.into_iter().enumerate() {
            match res {
                Ok((rep, worker_ring)) => {
                    report.merge(&rep);
                    if let (Some(sink), Some(r)) = (tracer.as_ref(), worker_ring) {
                        sink.submit(trace::recovery_worker_tid(w), &r);
                    }
                }
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    }
    report.recovery_ns = t0.elapsed().as_nanos() as u64;
    if let (Some(sink), Some(mut r)) = (tracer, ring) {
        r.record(
            0,
            trace::EventKind::RecoveryEnd,
            report.redo_replayed as u64,
            report.undo_rolled_back as u64,
        );
        sink.submit(trace::RECOVERY_TID, &r);
    }
    report
}

/// Serial header scan in pool order, validating each prefix-colliding
/// pool fail-soft. Returns `(repairable, prepared)`: logs whose header
/// carries a PREPARED marker are in doubt — the per-shard pass must
/// leave them untouched, because their fate is a *cross-shard* decision
/// that [`resolve_in_doubt`] takes once every shard's coordinator pool
/// is readable.
fn discover(
    machine: &Arc<Machine>,
    report: &mut RecoveryReport,
) -> (Vec<DiscoveredLog>, Vec<DiscoveredLog>) {
    let mut logs = Vec::new();
    let mut prepared = Vec::new();
    for primary in machine.pools() {
        if !primary.name().starts_with(LOG_POOL_PREFIX)
            || primary.name().starts_with(OVF_POOL_PREFIX)
        {
            continue;
        }
        report.logs_scanned += 1;
        let tag = primary.raw_load(W_ALGO);
        let Some(policy) = crate::algo::policy_for_tag(tag) else {
            // Unformatted or foreign pool that happens to share the
            // prefix: leave it alone, but say so.
            report.malformed.push(format!(
                "pool '{}': unknown algorithm tag {tag:#x} — log left untouched",
                primary.name()
            ));
            continue;
        };
        let primary_cap = primary.raw_load(W_PRIMARY_CAP) as usize;
        if primary_cap as u64 > (primary.len_words() as u64).saturating_sub(ENTRY0) / ENTRY_WORDS {
            report.malformed.push(format!(
                "pool '{}': primary_cap {primary_cap} does not fit a {}-word pool — log left untouched",
                primary.name(),
                primary.len_words()
            ));
            continue;
        }
        let ovf_id = primary.raw_load(W_OVF) as u32;
        let overflow = match ovf_id {
            0 => None,
            id => match machine.try_pool(pmem_sim::PoolId(id)) {
                Some(p) if p.name().starts_with(OVF_POOL_PREFIX) => Some(p),
                Some(p) => {
                    report.malformed.push(format!(
                        "pool '{}': overflow id {id} names non-overflow pool '{}' — log left untouched",
                        primary.name(),
                        p.name()
                    ));
                    continue;
                }
                None => {
                    report.malformed.push(format!(
                        "pool '{}': overflow id {id} names no pool — log left untouched",
                        primary.name()
                    ));
                    continue;
                }
            },
        };
        let found = DiscoveredLog {
            primary,
            overflow,
            primary_cap,
            policy,
        };
        if is_prepared(found.primary.raw_load(W_STATE)) {
            prepared.push(found);
        } else {
            logs.push(found);
        }
    }
    (logs, prepared)
}

/// Cross-shard outcome resolution: the second recovery phase of a
/// sharded (2PC) deployment, run *after* every shard's per-shard pass.
///
/// Walks each machine's coordinator pool ([`crate::log::COORD_POOL`]) and
/// collects the gtids of every durable, seal-valid commit record; then
/// walks every PREPARED participant log in machine/pool order and hands
/// it to its policy's [`crate::algo::LogPolicy::resolve_prepared`] —
/// commit if the coordinator decided commit, presumed abort otherwise
/// (including a torn record, which fails the seal check). Finally zeroes
/// every coordinator slot durably, so a stale record can never collide
/// with a reused gtid after restart.
///
/// Deterministic under any shard recovery order (the per-shard pass
/// never touches PREPARED logs, and this pass iterates `machines` in
/// the caller's fixed shard order) and idempotent: resolved logs are
/// retired before slots are zeroed, so a crash at any point re-runs to
/// the same state. Returns one report per machine (resolution counts
/// attributed to the shard owning each participant log).
pub fn resolve_in_doubt(machines: &[Arc<Machine>]) -> Vec<RecoveryReport> {
    use crate::log::{coord_seal, prepared_gtid, COORD_POOL, COORD_SLOTS, COORD_SLOT_WORDS};
    // Phase 1: gather durable commit decisions from every coordinator
    // pool. A record is a decision iff its seal validates — a torn or
    // half-written record is indistinguishable from "never decided" and
    // resolves its transaction as aborted (presumed abort).
    let mut committed = std::collections::HashSet::new();
    let mut coords = Vec::new();
    for m in machines {
        let Some(pool) = m.pools().into_iter().find(|p| p.name() == COORD_POOL) else {
            continue;
        };
        for slot in 0..COORD_SLOTS {
            let g = pool.raw_load((slot * COORD_SLOT_WORDS) as u64);
            let s = pool.raw_load((slot * COORD_SLOT_WORDS + 1) as u64);
            if g != 0 && s == coord_seal(g) {
                committed.insert(g);
            }
        }
        coords.push(pool);
    }
    // Phase 2: resolve every in-doubt participant log, in machine/pool
    // order. Discovery re-validates headers fail-soft; its scratch
    // report is discarded (the per-shard pass already counted scans and
    // malformed diagnostics for these pools).
    let mut reports = vec![RecoveryReport::default(); machines.len()];
    for (mi, m) in machines.iter().enumerate() {
        let mut scratch = RecoveryReport::default();
        let (_, prepared) = discover(m, &mut scratch);
        let report = &mut reports[mi];
        for log in prepared {
            let gtid = prepared_gtid(log.primary.raw_load(W_STATE));
            let decide_commit = committed.contains(&gtid);
            let mut ring = None;
            let mut ctx = RecoverCtx {
                machine: m,
                ring: &mut ring,
                primary: log.primary,
                overflow: log.overflow,
                primary_cap: log.primary_cap,
                opts: RecoverOptions::default(),
                report,
                pending: None,
            };
            log.policy.resolve_prepared(&mut ctx, decide_commit);
            ctx.flush_pending();
            if decide_commit {
                report.indoubt_resolved_commit += 1;
            } else {
                report.indoubt_resolved_abort += 1;
            }
        }
    }
    // Phase 3: clear the decision records. Every prepared log is retired
    // (durably) by now, so losing the records cannot change any outcome;
    // clearing them durably is what makes gtid reuse after restart safe.
    for pool in coords {
        for slot in 0..COORD_SLOTS {
            pool.raw_store((slot * COORD_SLOT_WORDS) as u64, 0);
            pool.raw_store((slot * COORD_SLOT_WORDS + 1) as u64, 0);
        }
        let lines = (COORD_SLOTS * COORD_SLOT_WORDS).div_ceil(WORDS_PER_LINE);
        for line in 0..lines as u64 {
            pool.persist_line_now(line);
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PtmConfig;
    use crate::log::{committed_marker, seal, W_COUNT, W_STATE};
    use crate::txn::{Ptm, TxThread};
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, MachineConfig, MediaKind};

    #[test]
    fn clean_logs_recover_to_nothing() {
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let ptm = Ptm::new(PtmConfig::redo());
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 5));
        let img = m.crash(0);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.logs_scanned, 1);
        assert_eq!(r.redo_replayed, 0);
        assert_eq!(r.undo_rolled_back, 0);
        assert_eq!(m2.pool(a.pool()).raw_load(a.word()), 5);
    }

    #[test]
    fn committed_marker_without_writeback_replays() {
        // Hand-craft the dangerous window: log persisted, marker durable,
        // but data writeback lost.
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::redo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let target = {
            let mut s = m.session(0);
            let t = heap.alloc(&mut s, 4);
            s.store(t, 1);
            s.clwb(t);
            s.sfence();
            t
        };
        // Entry 0: write target := 42, fully persisted; marker durable.
        let e = log.entry_addr(0);
        log.primary.raw_store(e.word(), target.0);
        log.primary.raw_store(e.word() + 1, 42);
        log.primary.persist_line_now(e.line());
        log.primary.raw_store(W_COUNT, 1);
        log.primary.raw_store(W_STATE, committed_marker(1));
        log.primary.persist_line_now(0);
        // Crash: the in-place data store never happened.
        let img = m.crash(1);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.redo_replayed, 1);
        assert_eq!(r.redo_entries, 1);
        assert_eq!(m2.pool(target.pool()).raw_load(target.word()), 42);
        // Idempotence: recovering again changes nothing.
        let r2 = recover(&m2);
        assert_eq!(r2.redo_replayed, 0);
        assert_eq!(m2.pool(target.pool()).raw_load(target.word()), 42);
    }

    #[test]
    fn stale_count_word_cannot_extend_a_committed_replay() {
        // The bug the exhaustive crash-site sweep found (site 61, redo,
        // ADR, per-word adversary): the marker and `W_COUNT` share the
        // header line but persist word by word, so a crash inside the
        // marker's flush window can keep a *stale, larger* `W_COUNT`
        // next to the fresh marker. Recovery must take the count from
        // the marker word — a stale mirror must not make it replay
        // leftover entries from an earlier transaction on top of the
        // committed write set.
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::redo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let (a, b) = {
            let mut s = m.session(0);
            let t = heap.alloc(&mut s, 4);
            s.store(t, 1);
            s.store(t.offset(1), 1);
            s.clwb(t);
            s.sfence();
            (t, t.offset(1))
        };
        // Fresh committed transaction: 1 entry (a := 42). A leftover
        // entry from an earlier, retired transaction sits right after it
        // (b := 7) and the stale `W_COUNT` mirror still says 2.
        let e0 = log.entry_addr(0);
        log.primary.raw_store(e0.word(), a.0);
        log.primary.raw_store(e0.word() + 1, 42);
        let e1 = log.entry_addr(1);
        log.primary.raw_store(e1.word(), b.0);
        log.primary.raw_store(e1.word() + 1, 7);
        log.primary.persist_line_now(e0.line());
        log.primary.persist_line_now(e1.line());
        log.primary.raw_store(W_COUNT, 2); // stale mirror survives
        log.primary.raw_store(W_STATE, committed_marker(1));
        log.primary.persist_line_now(0);
        let img = m.crash(4);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.redo_replayed, 1);
        assert_eq!(r.redo_entries, 1, "only the marker's count is replayed");
        assert_eq!(m2.pool(a.pool()).raw_load(a.word()), 42);
        assert_eq!(
            m2.pool(b.pool()).raw_load(b.word()),
            1,
            "stale leftover entry must not be replayed"
        );
    }

    #[test]
    fn inflight_undo_rolls_back() {
        // Hand-craft an in-flight undo transaction: entry persisted, data
        // overwritten in place, no truncation.
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::undo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let target = {
            let mut s = m.session(0);
            let t = heap.alloc(&mut s, 4);
            s.store(t, 7);
            s.clwb(t);
            s.sfence();
            t
        };
        let e = log.entry_addr(0);
        log.primary.raw_store(e.word(), target.0);
        log.primary.raw_store(e.word() + 1, 7); // old value
        log.primary.raw_store(e.word() + 2, seal(target.0, 7, 0));
        log.primary.persist_line_now(e.line());
        // Speculative in-place store, durable (worst case).
        heap.pool().raw_store(target.word(), 999);
        heap.pool().persist_line_now(target.line());
        let img = m.crash(2);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.undo_rolled_back, 1);
        assert_eq!(r.undo_entries, 1);
        assert_eq!(m2.pool(target.pool()).raw_load(target.word()), 7);
    }

    #[test]
    fn torn_undo_entry_is_rejected() {
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let _heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::undo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let e = log.entry_addr(0);
        // addr and checksum present, value word lost (zero), true old != 0.
        let fake_addr = PAddr::new(log.primary.id(), 9_999).0;
        log.primary.raw_store(e.word(), fake_addr);
        log.primary.raw_store(e.word() + 1, 0);
        log.primary
            .raw_store(e.word() + 2, seal(fake_addr, 31337, 0));
        log.primary.persist_line_now(e.line());
        let img = m.crash(3);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.torn_entries, 1);
        assert_eq!(r.undo_rolled_back, 0, "torn entry must not be replayed");
    }

    #[test]
    fn foreign_prefixed_pool_is_ignored() {
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        m.alloc_pool("ptm-log-weird", 64, MediaKind::Optane); // ALGO word = 0
        let r = recover(&m);
        assert_eq!(r.logs_scanned, 1);
        assert_eq!(r.redo_replayed + r.undo_rolled_back, 0);
        assert_eq!(r.malformed.len(), 1, "unknown tag must leave a diagnostic");
        assert!(
            r.malformed[0].contains("unknown algorithm tag"),
            "{:?}",
            r.malformed
        );
    }
}

#[cfg(test)]
mod malformed_log_tests {
    use super::*;
    use crate::config::PtmConfig;
    use crate::log::{committed_marker, ALGO_REDO, W_COUNT};
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig, MediaKind};

    fn machine() -> Arc<Machine> {
        Machine::new(MachineConfig::functional(DurabilityDomain::Adr))
    }

    /// A prefix-colliding pool whose overflow word names a pool id that
    /// does not exist must not panic recovery (it used to: discovery
    /// chased the id through the panicking `Machine::pool`). It fails
    /// soft with a per-log diagnostic and the log is left untouched.
    #[test]
    fn dangling_overflow_id_fails_soft() {
        let m = machine();
        let pool = m.alloc_pool("ptm-log-0", 256, MediaKind::Optane);
        pool.raw_store(W_ALGO, ALGO_REDO);
        pool.raw_store(W_PRIMARY_CAP, 8);
        pool.raw_store(W_OVF, 999); // no such pool
        pool.raw_store(W_STATE, committed_marker(1));
        let r = recover(&m);
        assert_eq!(r.logs_scanned, 1);
        assert_eq!(r.redo_replayed, 0, "malformed log must not replay");
        assert_eq!(r.malformed.len(), 1);
        assert!(
            r.malformed[0].contains("overflow id 999"),
            "{:?}",
            r.malformed
        );
        // Untouched: still marked committed, not retired.
        assert_eq!(pool.raw_load(W_STATE), committed_marker(1));
    }

    /// An overflow word pointing at a real pool that is *not* an
    /// overflow pool (e.g. the heap) is equally corrupt — replaying
    /// "entries" out of heap data would write garbage everywhere.
    #[test]
    fn overflow_id_naming_a_foreign_pool_fails_soft() {
        let m = machine();
        let victim = m.alloc_pool("some-heap", 1 << 12, MediaKind::Optane);
        let pool = m.alloc_pool("ptm-log-0", 256, MediaKind::Optane);
        pool.raw_store(W_ALGO, ALGO_REDO);
        pool.raw_store(W_PRIMARY_CAP, 8);
        pool.raw_store(W_OVF, victim.id().0 as u64);
        pool.raw_store(W_STATE, committed_marker(1));
        let r = recover(&m);
        assert_eq!(r.redo_replayed, 0);
        assert_eq!(r.malformed.len(), 1);
        assert!(
            r.malformed[0].contains("non-overflow pool"),
            "{:?}",
            r.malformed
        );
    }

    /// A `primary_cap` larger than the pool can physically hold proves
    /// header corruption before any entry is read.
    #[test]
    fn oversized_primary_cap_fails_soft() {
        let m = machine();
        let pool = m.alloc_pool("ptm-log-0", 64, MediaKind::Optane);
        pool.raw_store(W_ALGO, ALGO_REDO);
        pool.raw_store(W_PRIMARY_CAP, 1_000_000);
        let r = recover(&m);
        assert_eq!(r.redo_replayed, 0);
        assert_eq!(r.malformed.len(), 1);
        assert!(r.malformed[0].contains("primary_cap"), "{:?}", r.malformed);
    }

    /// A committed marker whose count exceeds the log's entry capacity
    /// is corrupt: recovery must neither read entries out of bounds nor
    /// replay garbage, and a second pass converges (same diagnostic,
    /// no state change).
    #[test]
    fn oversized_marker_count_fails_soft() {
        let m = machine();
        let cfg = PtmConfig::redo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let bogus = log.capacity as u64 + 5;
        log.primary.raw_store(W_COUNT, bogus);
        log.primary.raw_store(W_STATE, committed_marker(bogus));
        log.primary.persist_line_now(0);
        let r = recover(&m);
        assert_eq!(r.redo_replayed, 0);
        assert_eq!(r.redo_entries, 0);
        assert_eq!(r.malformed.len(), 1);
        assert!(
            r.malformed[0].contains("exceeds log capacity"),
            "{:?}",
            r.malformed
        );
        // Left as evidence, not retired.
        assert_eq!(log.primary.raw_load(W_STATE), committed_marker(bogus));
        let r2 = recover(&m);
        assert_eq!(r2.malformed, r.malformed, "second pass converges");
    }
}

#[cfg(test)]
mod parallel_recovery_tests {
    use super::*;
    use crate::config::PtmConfig;
    use crate::log::{committed_marker, W_COUNT};
    use palloc::PHeap;
    use pmem_sim::{
        catch_simulated_crash, silence_simulated_crash_panics, AdversaryPolicy, CrashImage,
        CrashInjector, DurabilityDomain, Machine, MachineConfig,
    };

    const LOGS: usize = 6;
    const N: usize = 4;

    fn cfg() -> MachineConfig {
        MachineConfig::functional(DurabilityDomain::Adr)
    }

    /// Craft `LOGS` committed-but-not-written-back redo logs, one per
    /// virtual thread, each targeting its own block (`1000*(t+1)+i`),
    /// and crash the machine.
    fn crashed_multi_log_image() -> (CrashImage, Vec<PAddr>) {
        let m = Machine::new(cfg());
        let heap = PHeap::format(&m, "heap", 1 << 16, 4);
        let cfg = PtmConfig::redo();
        let mut blocks = Vec::new();
        for t in 0..LOGS {
            let log = crate::log::TxLog::create(&m, t, &cfg);
            let block = {
                let mut s = m.session(0);
                let b = heap.alloc(&mut s, N);
                for i in 0..N as u64 {
                    s.store(b.offset(i), 1);
                }
                s.persist_range(b, N as u64);
                b
            };
            for i in 0..N {
                let e = log.entry_addr(i);
                log.primary.raw_store(e.word(), block.offset(i as u64).0);
                log.primary
                    .raw_store(e.word() + 1, 1000 * (t as u64 + 1) + i as u64);
                log.primary.persist_line_now(e.line());
            }
            log.primary.raw_store(W_COUNT, N as u64);
            log.primary.raw_store(W_STATE, committed_marker(N as u64));
            log.primary.persist_line_now(0);
            blocks.push(block);
        }
        (m.crash(1), blocks)
    }

    fn full_state(machine: &Arc<Machine>) -> Vec<Vec<u64>> {
        machine
            .pools()
            .iter()
            .map(|p| (0..p.len_words() as u64).map(|w| p.raw_load(w)).collect())
            .collect()
    }

    /// The tentpole contract: recovering the same image with any worker
    /// count yields a bit-identical machine state and (timing aside) an
    /// identical report.
    #[test]
    fn parallel_recovery_matches_serial_bit_for_bit() {
        let (img, _) = crashed_multi_log_image();
        let serial_m = Machine::reboot(&img, cfg());
        let serial_rep = recover(&serial_m);
        assert_eq!(serial_rep.redo_replayed, LOGS);
        let serial_state = full_state(&serial_m);
        for workers in [2, 4, 8] {
            let m = Machine::reboot(&img, cfg());
            let rep = recover_with_options(
                &m,
                RecoverOptions {
                    workers,
                    ..RecoverOptions::default()
                },
            );
            assert_eq!(rep.recovery_workers, workers.min(LOGS), "workers {workers}");
            assert_eq!(
                rep.without_timing(),
                serial_rep.without_timing(),
                "workers {workers}"
            );
            assert_eq!(full_state(&m), serial_state, "workers {workers}");
        }
    }

    /// Replay-order independence in its sharpest form: two distinct
    /// committed logs whose write sets land on *different words of the
    /// same cache line*. Whole-word atomic stores plus whole-line
    /// durable snapshots under the pool's apply lock make the two
    /// replays commute, whichever worker gets there first.
    #[test]
    fn two_logs_replaying_into_one_cache_line_commute() {
        let m = Machine::new(cfg());
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg_p = PtmConfig::redo();
        let block = {
            let mut s = m.session(0);
            let b = heap.alloc(&mut s, 16);
            for i in 0..16u64 {
                s.store(b.offset(i), 1);
            }
            s.persist_range(b, 16);
            b
        };
        // Pick a line-aligned offset inside the block so `o` and `o+1`
        // share a cache line for sure.
        let o =
            (WORDS_PER_LINE as u64 - block.word() % WORDS_PER_LINE as u64) % WORDS_PER_LINE as u64;
        for (t, (word, value)) in [(o, 111u64), (o + 1, 222u64)].into_iter().enumerate() {
            let log = crate::log::TxLog::create(&m, t, &cfg_p);
            let e = log.entry_addr(0);
            log.primary.raw_store(e.word(), block.offset(word).0);
            log.primary.raw_store(e.word() + 1, value);
            log.primary.persist_line_now(e.line());
            log.primary.raw_store(W_COUNT, 1);
            log.primary.raw_store(W_STATE, committed_marker(1));
            log.primary.persist_line_now(0);
        }
        let img = m.crash(7);
        let mut states = Vec::new();
        for workers in [1, 2] {
            let m2 = Machine::reboot(&img, cfg());
            let rep = recover_with_options(
                &m2,
                RecoverOptions {
                    workers,
                    ..RecoverOptions::default()
                },
            );
            assert_eq!(rep.redo_replayed, 2, "workers {workers}");
            let pool = m2.pool(block.pool());
            assert_eq!(pool.raw_load(block.word() + o), 111, "workers {workers}");
            assert_eq!(
                pool.raw_load(block.word() + o + 1),
                222,
                "workers {workers}"
            );
            states.push(full_state(&m2));
        }
        assert_eq!(states[0], states[1], "same line, any order: same state");
    }

    /// A crash *during* a parallel recovery pass (simulated-crash panic
    /// on a worker thread, re-raised on the caller) must leave state a
    /// second, serial pass converges from — the same idempotence
    /// contract the serial sweeps pin, minus site determinism, which an
    /// interleaved global site counter cannot promise.
    #[test]
    fn crash_during_parallel_recovery_converges() {
        silence_simulated_crash_panics();
        let (img, blocks) = crashed_multi_log_image();
        for policy in AdversaryPolicy::SWEEP {
            for site in 0..64 {
                let m2 = Machine::reboot(&img, cfg());
                let inj = CrashInjector::at_site(site, policy, site ^ 0xBEEF);
                m2.arm_injector(Arc::clone(&inj));
                let interrupted = catch_simulated_crash(|| {
                    recover_with_options(
                        &m2,
                        RecoverOptions {
                            workers: 4,
                            ..RecoverOptions::default()
                        },
                    )
                })
                .is_err();
                m2.disarm_injector();
                if !interrupted {
                    break;
                }
                let fired = inj.take_outcome().expect("crash fired");
                let m3 = Machine::reboot(&fired.image, cfg());
                recover(&m3);
                for (t, block) in blocks.iter().enumerate() {
                    for i in 0..N as u64 {
                        assert_eq!(
                            m3.pool(block.pool()).raw_load(block.word() + i),
                            1000 * (t as u64 + 1) + i,
                            "policy {policy} site {site} log {t} entry {i}"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod recovery_idempotence_tests {
    use super::*;
    use crate::config::PtmConfig;
    use crate::log::{committed_marker, seal, W_COUNT, W_STATE};
    use palloc::PHeap;
    use pmem_sim::{
        catch_simulated_crash, silence_simulated_crash_panics, AdversaryPolicy, CrashInjector,
        DurabilityDomain, Machine, MachineConfig,
    };

    const N: usize = 6;

    /// Build a machine whose durable state holds a committed-but-not-
    /// written-back redo log of `N` entries targeting `block[0..N]`
    /// (values `1000+i`), then crash it and return the rebooted machine.
    fn crashed_redo_machine() -> (Arc<Machine>, PAddr) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::redo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let block = {
            let mut s = m.session(0);
            let b = heap.alloc(&mut s, N);
            for i in 0..N as u64 {
                s.store(b.offset(i), 1);
            }
            s.persist_range(b, N as u64);
            b
        };
        for i in 0..N {
            let e = log.entry_addr(i);
            log.primary.raw_store(e.word(), block.offset(i as u64).0);
            log.primary.raw_store(e.word() + 1, 1000 + i as u64);
            log.primary.persist_line_now(e.line());
        }
        log.primary.raw_store(W_COUNT, N as u64);
        log.primary.raw_store(W_STATE, committed_marker(N as u64));
        log.primary.persist_line_now(0);
        let img = m.crash(1);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        (m2, block)
    }

    /// Like above, but an in-flight undo log: `N` sealed entries with old
    /// value 7, in-place data torn to 999 and durable (worst case).
    fn crashed_undo_machine() -> (Arc<Machine>, PAddr) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::undo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let block = {
            let mut s = m.session(0);
            let b = heap.alloc(&mut s, N);
            for i in 0..N as u64 {
                s.store(b.offset(i), 7);
            }
            s.persist_range(b, N as u64);
            b
        };
        for i in 0..N {
            let e = log.entry_addr(i);
            let a = block.offset(i as u64);
            log.primary.raw_store(e.word(), a.0);
            log.primary.raw_store(e.word() + 1, 7);
            log.primary.raw_store(e.word() + 2, seal(a.0, 7, 0));
            log.primary.persist_line_now(e.line());
            heap.pool().raw_store(a.word(), 999);
            heap.pool().persist_line_now(a.line());
        }
        let img = m.crash(2);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        (m2, block)
    }

    /// Crash `machine` at recovery-persist site `site` (if recovery has
    /// that many), reboot from the captured image, and return the new
    /// machine. `None` if recovery completed before reaching the site.
    fn crash_during_recovery(
        machine: &Arc<Machine>,
        site: u64,
        policy: AdversaryPolicy,
    ) -> Option<Arc<Machine>> {
        silence_simulated_crash_panics();
        let inj = CrashInjector::at_site(site, policy, site ^ 0xDEAD);
        machine.arm_injector(Arc::clone(&inj));
        let interrupted = catch_simulated_crash(|| recover(machine)).is_err();
        machine.disarm_injector();
        interrupted.then(|| {
            let fired = inj.take_outcome().expect("crash fired");
            Machine::reboot(
                &fired.image,
                MachineConfig::functional(DurabilityDomain::Adr),
            )
        })
    }

    fn full_state(machine: &Arc<Machine>) -> Vec<Vec<u64>> {
        machine
            .pools()
            .iter()
            .map(|p| (0..p.len_words() as u64).map(|w| p.raw_load(w)).collect())
            .collect()
    }

    /// Redo replay interrupted at *every* recovery persist site must
    /// converge to the fully-replayed state on the next recovery pass.
    #[test]
    fn redo_replay_survives_crash_at_every_recovery_site() {
        for policy in AdversaryPolicy::SWEEP {
            for site in 0.. {
                let (m2, block) = crashed_redo_machine();
                let Some(m3) = crash_during_recovery(&m2, site, policy) else {
                    assert!(site > 0, "recovery must have at least one site");
                    break;
                };
                recover(&m3);
                for i in 0..N as u64 {
                    assert_eq!(
                        m3.pool(block.pool()).raw_load(block.word() + i),
                        1000 + i,
                        "policy {policy} site {site} entry {i}"
                    );
                }
                // Third pass: already converged, nothing left to do.
                let before = full_state(&m3);
                let r2 = recover(&m3);
                assert_eq!(r2.redo_replayed, 0, "policy {policy} site {site}");
                assert_eq!(before, full_state(&m3), "policy {policy} site {site}");
            }
        }
    }

    /// Undo rollback interrupted at *every* recovery persist site must
    /// converge to the fully-rolled-back state on the next pass.
    #[test]
    fn undo_rollback_survives_crash_at_every_recovery_site() {
        for policy in AdversaryPolicy::SWEEP {
            for site in 0.. {
                let (m2, block) = crashed_undo_machine();
                let Some(m3) = crash_during_recovery(&m2, site, policy) else {
                    assert!(site > 0, "recovery must have at least one site");
                    break;
                };
                recover(&m3);
                for i in 0..N as u64 {
                    assert_eq!(
                        m3.pool(block.pool()).raw_load(block.word() + i),
                        7,
                        "policy {policy} site {site} entry {i}"
                    );
                }
                let before = full_state(&m3);
                let r2 = recover(&m3);
                assert_eq!(r2.undo_rolled_back, 0, "policy {policy} site {site}");
                assert_eq!(before, full_state(&m3), "policy {policy} site {site}");
            }
        }
    }

    /// The fault-injection switches actually break recovery (harness
    /// self-test support): with rollback skipped, torn data survives.
    #[test]
    fn skip_switches_break_recovery_as_advertised() {
        let (m2, block) = crashed_undo_machine();
        let r = recover_with_options(
            &m2,
            RecoverOptions {
                skip_undo_rollback: true,
                ..RecoverOptions::default()
            },
        );
        assert_eq!(r.undo_rolled_back, 0);
        assert_eq!(m2.pool(block.pool()).raw_load(block.word()), 999);

        let (m2, block) = crashed_redo_machine();
        let r = recover_with_options(
            &m2,
            RecoverOptions {
                skip_redo_replay: true,
                ..RecoverOptions::default()
            },
        );
        assert_eq!(r.redo_replayed, 0);
        assert_eq!(m2.pool(block.pool()).raw_load(block.word()), 1);
    }
}

#[cfg(test)]
mod overflow_recovery_tests {
    use super::*;
    use crate::config::{Algo, PtmConfig};
    use crate::txn::{Ptm, TxThread};
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};

    /// A PDRAM-Lite redo log that spills past its primary budget into the
    /// Optane overflow pool must still replay correctly after a crash.
    #[test]
    fn committed_log_spanning_overflow_replays() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::PdramLite));
        let heap = PHeap::format(&m, "heap", 1 << 16, 4);
        let cfg = PtmConfig {
            algo: Algo::RedoLazy,
            lite_log_entries: 8, // tiny budget: most entries spill
            ..PtmConfig::default()
        };
        let ptm = Ptm::new(cfg.clone());
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let h = std::sync::Arc::clone(&heap);
        let block = h.alloc(th.session_mut(), 64);
        // A transaction with 32 writes: 8 entries in the lite pool, 24 in
        // the overflow pool.
        th.run(|tx| {
            for i in 0..32u64 {
                tx.write_at(block, i, 1000 + i)?;
            }
            Ok(())
        });
        // Hand-roll the dangerous redo window: re-mark the (already
        // retired) log as COMMITTED and wipe the in-place data, then make
        // sure recovery replays all 32 entries from both pools.
        let log_pool = m
            .pools()
            .into_iter()
            .find(|p| p.name() == "ptm-log-0")
            .unwrap();
        log_pool.raw_store(crate::log::W_COUNT, 32);
        log_pool.raw_store(crate::log::W_STATE, crate::log::committed_marker(32));
        log_pool.persist_line_now(0);
        for i in 0..32u64 {
            heap.pool().raw_store(block.word() + i, 0);
            heap.pool().persist_line_now((block.word() + i) / 8);
        }
        let img = m.crash(5);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::PdramLite));
        let r = recover(&m2);
        assert_eq!(r.redo_replayed, 1);
        assert_eq!(r.redo_entries, 32);
        let heap_pool = m2.pool(heap.pool().id());
        for i in 0..32u64 {
            assert_eq!(heap_pool.raw_load(block.word() + i), 1000 + i, "entry {i}");
        }
    }

    /// Undo entries spilling into the overflow pool roll back correctly.
    #[test]
    fn inflight_undo_spanning_overflow_rolls_back() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::PdramLite));
        let heap = PHeap::format(&m, "heap", 1 << 16, 4);
        let cfg = PtmConfig {
            algo: Algo::UndoEager,
            lite_log_entries: 4,
            ..PtmConfig::default()
        };
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        assert!(log.overflow.is_some());
        let mut s = m.session(0);
        let h = std::sync::Arc::clone(&heap);
        let block = h.alloc(&mut s, 16);
        for i in 0..16u64 {
            s.store(block.offset(i), 7);
        }
        // Craft an in-flight tx: 12 undo entries (4 primary + 8 overflow),
        // sealed under seq 3, with speculative in-place damage.
        log.primary.raw_store(crate::log::W_SEQ, 3);
        log.primary.persist_line_now(0);
        for i in 0..12usize {
            let e = log.entry_addr(i);
            let pool = m.pool(e.pool());
            let a = block.offset(i as u64);
            pool.raw_store(e.word(), a.0);
            pool.raw_store(e.word() + 1, 7);
            pool.raw_store(e.word() + 2, crate::log::seal(a.0, 7, 3));
            pool.persist_line_now(e.line());
            heap.pool().raw_store(a.word(), 999);
            heap.pool().persist_line_now(a.line());
        }
        let img = m.crash(6);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::PdramLite));
        let r = recover(&m2);
        assert_eq!(r.undo_rolled_back, 1);
        assert_eq!(r.undo_entries, 12);
        let heap_pool = m2.pool(heap.pool().id());
        for i in 0..12u64 {
            assert_eq!(heap_pool.raw_load(block.word() + i), 7, "entry {i}");
        }
    }
}
