//! Post-crash recovery.
//!
//! Runs once, single-threaded, after [`pmem_sim::Machine::reboot`] and
//! before any new transactions. It discovers every thread's persistent
//! log by pool name and:
//!
//! * **redo, COMMITTED**: the transaction logically happened — replay all
//!   `count` entries into program data and persist them, then retire the
//!   log. Replay is idempotent, so a crash *during recovery* is handled
//!   by simply recovering again.
//! * **redo, not committed**: the transaction never happened; retire the
//!   log.
//! * **undo, live entries**: the crash interrupted an in-flight
//!   transaction after some in-place writes — roll the entries back in
//!   reverse order, persist the restored values, truncate.
//!
//! Recovery is untimed (it happens outside measured execution) and uses
//! raw pool operations plus `persist_line_now`.

use std::sync::Arc;

use pmem_sim::{Machine, PAddr, SiteKind, WORDS_PER_LINE};

use crate::log::{
    seal, TxLog, ALGO_REDO, ALGO_UNDO, ENTRY0, ENTRY_WORDS, LOG_POOL_PREFIX, OVF_POOL_PREFIX,
    STATE_COMMITTED, STATE_IDLE, W_ALGO, W_COUNT, W_OVF, W_PRIMARY_CAP, W_SEQ, W_STATE,
};

/// Fault-injection switches for harness self-tests.
///
/// A crash-site sweep that always passes proves nothing until it is shown
/// to *fail* when recovery is deliberately broken. These switches disable
/// individual recovery obligations so `ptm::crash_harness` (and its
/// tests) can demonstrate that the sweep catches the resulting
/// inconsistencies with a deterministic reproducer. Never set in
/// production recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverOptions {
    /// Skip rolling back in-flight undo logs (leaves torn in-place
    /// writes of uncommitted transactions in program data).
    pub skip_undo_rollback: bool,
    /// Skip replaying committed redo logs (loses transactions whose
    /// commit marker is durable but whose writeback was not).
    pub skip_redo_replay: bool,
}

/// What recovery found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Per-thread logs examined.
    pub logs_scanned: usize,
    /// Committed redo logs replayed forward.
    pub redo_replayed: usize,
    /// Redo entries written back during replay.
    pub redo_entries: usize,
    /// In-flight undo logs rolled back.
    pub undo_rolled_back: usize,
    /// Undo entries restored.
    pub undo_entries: usize,
    /// Undo entries rejected by the torn-write checksum.
    pub torn_entries: usize,
}

fn store_persist(machine: &Machine, ring: &mut Option<trace::TraceRing>, addr: PAddr, value: u64) {
    // Each recovery persist is itself a crash site: recovery must be
    // idempotent under a failure at any point of its own execution.
    machine.note_site(SiteKind::RecoveryPersist, false);
    if let Some(r) = ring.as_mut() {
        r.record(0, trace::EventKind::RecoveryApply, addr.0, value);
    }
    let pool = machine.pool(addr.pool());
    pool.raw_store(addr.word(), value);
    pool.persist_line_now(addr.word() / WORDS_PER_LINE as u64);
}

/// Recover every PTM log on `machine`. Idempotent.
pub fn recover(machine: &Arc<Machine>) -> RecoveryReport {
    recover_with_options(machine, RecoverOptions::default())
}

/// [`recover`] with fault-injection switches (harness self-tests only).
pub fn recover_with_options(machine: &Arc<Machine>, opts: RecoverOptions) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    // Recovery is untimed and single-threaded: its events carry ts 0 and
    // are submitted under the reserved RECOVERY_TID stream (ordering
    // within the stream is preserved by the merge's sequence tiebreak).
    let tracer = machine.tracer();
    let mut ring = tracer.as_ref().map(|sink| sink.ring());
    if let Some(r) = ring.as_mut() {
        r.record(
            0,
            trace::EventKind::RecoveryBegin,
            machine.pools().len() as u64,
            0,
        );
    }
    for primary in machine.pools() {
        if !primary.name().starts_with(LOG_POOL_PREFIX)
            || primary.name().starts_with(OVF_POOL_PREFIX)
        {
            continue;
        }
        report.logs_scanned += 1;
        let algo = primary.raw_load(W_ALGO);
        let primary_cap = primary.raw_load(W_PRIMARY_CAP) as usize;
        let ovf_id = primary.raw_load(W_OVF) as u32;
        let overflow = (ovf_id != 0).then(|| machine.pool(pmem_sim::PoolId(ovf_id)));
        match algo {
            ALGO_REDO => {
                let state = primary.raw_load(W_STATE);
                if state == STATE_COMMITTED && !opts.skip_redo_replay {
                    let count = primary.raw_load(W_COUNT) as usize;
                    for i in 0..count {
                        let (a, v, _) =
                            TxLog::raw_entry(&primary, overflow.as_deref(), primary_cap, i);
                        store_persist(machine, &mut ring, PAddr(a), v);
                        report.redo_entries += 1;
                    }
                    report.redo_replayed += 1;
                }
                // Retiring the log is the last crash site of this log's
                // recovery: a failure before it re-runs the (idempotent)
                // replay, a failure after it finds an idle log.
                machine.note_site(SiteKind::RecoveryPersist, false);
                primary.raw_store(W_STATE, STATE_IDLE);
                primary.persist_line_now(0);
            }
            ALGO_UNDO => {
                // Collect the valid prefix of entries, sealed under the
                // descriptor's persisted sequence number.
                let seq = primary.raw_load(W_SEQ);
                let mut valid = Vec::new();
                let capacity = primary_cap
                    + overflow
                        .as_ref()
                        .map_or(0, |p| p.len_words() / ENTRY_WORDS as usize);
                for i in 0..capacity {
                    let (a, old, chk) =
                        TxLog::raw_entry(&primary, overflow.as_deref(), primary_cap, i);
                    if a == 0 {
                        break;
                    }
                    if chk != seal(a, old, seq) {
                        // Torn tail entry: its in-place store never
                        // happened (the fence orders entry before data),
                        // so stopping here is safe.
                        report.torn_entries += 1;
                        break;
                    }
                    valid.push((a, old));
                }
                if !valid.is_empty() && !opts.skip_undo_rollback {
                    for &(a, old) in valid.iter().rev() {
                        store_persist(machine, &mut ring, PAddr(a), old);
                        report.undo_entries += 1;
                    }
                    report.undo_rolled_back += 1;
                }
                // Truncate. Ordering matters for mid-recovery crashes:
                // entries are only erased *after* every rollback store is
                // durable, so a re-run either sees the full valid prefix
                // again (and harmlessly rolls it back a second time) or
                // an already-truncated log.
                machine.note_site(SiteKind::RecoveryPersist, false);
                primary.raw_store(ENTRY0, 0);
                primary.persist_line_now(ENTRY0 / WORDS_PER_LINE as u64);
                machine.note_site(SiteKind::RecoveryPersist, false);
                primary.raw_store(W_STATE, STATE_IDLE);
                primary.persist_line_now(0);
            }
            _ => {
                // Unformatted or foreign pool that happens to share the
                // prefix: leave it alone.
            }
        }
    }
    if let (Some(sink), Some(mut r)) = (tracer, ring) {
        r.record(
            0,
            trace::EventKind::RecoveryEnd,
            report.redo_replayed as u64,
            report.undo_rolled_back as u64,
        );
        sink.submit(trace::RECOVERY_TID, &r);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PtmConfig;
    use crate::log::{STATE_COMMITTED, W_COUNT, W_STATE};
    use crate::txn::{Ptm, TxThread};
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, MachineConfig, MediaKind};

    #[test]
    fn clean_logs_recover_to_nothing() {
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let ptm = Ptm::new(PtmConfig::redo());
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 5));
        let img = m.crash(0);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.logs_scanned, 1);
        assert_eq!(r.redo_replayed, 0);
        assert_eq!(r.undo_rolled_back, 0);
        assert_eq!(m2.pool(a.pool()).raw_load(a.word()), 5);
    }

    #[test]
    fn committed_marker_without_writeback_replays() {
        // Hand-craft the dangerous window: log persisted, marker durable,
        // but data writeback lost.
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::redo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let target = {
            let mut s = m.session(0);
            let t = heap.alloc(&mut s, 4);
            s.store(t, 1);
            s.clwb(t);
            s.sfence();
            t
        };
        // Entry 0: write target := 42, fully persisted; marker durable.
        let e = log.entry_addr(0);
        log.primary.raw_store(e.word(), target.0);
        log.primary.raw_store(e.word() + 1, 42);
        log.primary.persist_line_now(e.line());
        log.primary.raw_store(W_COUNT, 1);
        log.primary.raw_store(W_STATE, STATE_COMMITTED);
        log.primary.persist_line_now(0);
        // Crash: the in-place data store never happened.
        let img = m.crash(1);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.redo_replayed, 1);
        assert_eq!(r.redo_entries, 1);
        assert_eq!(m2.pool(target.pool()).raw_load(target.word()), 42);
        // Idempotence: recovering again changes nothing.
        let r2 = recover(&m2);
        assert_eq!(r2.redo_replayed, 0);
        assert_eq!(m2.pool(target.pool()).raw_load(target.word()), 42);
    }

    #[test]
    fn inflight_undo_rolls_back() {
        // Hand-craft an in-flight undo transaction: entry persisted, data
        // overwritten in place, no truncation.
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::undo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let target = {
            let mut s = m.session(0);
            let t = heap.alloc(&mut s, 4);
            s.store(t, 7);
            s.clwb(t);
            s.sfence();
            t
        };
        let e = log.entry_addr(0);
        log.primary.raw_store(e.word(), target.0);
        log.primary.raw_store(e.word() + 1, 7); // old value
        log.primary.raw_store(e.word() + 2, seal(target.0, 7, 0));
        log.primary.persist_line_now(e.line());
        // Speculative in-place store, durable (worst case).
        heap.pool().raw_store(target.word(), 999);
        heap.pool().persist_line_now(target.line());
        let img = m.crash(2);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.undo_rolled_back, 1);
        assert_eq!(r.undo_entries, 1);
        assert_eq!(m2.pool(target.pool()).raw_load(target.word()), 7);
    }

    #[test]
    fn torn_undo_entry_is_rejected() {
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let _heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::undo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let e = log.entry_addr(0);
        // addr and checksum present, value word lost (zero), true old != 0.
        let fake_addr = PAddr::new(log.primary.id(), 9_999).0;
        log.primary.raw_store(e.word(), fake_addr);
        log.primary.raw_store(e.word() + 1, 0);
        log.primary
            .raw_store(e.word() + 2, seal(fake_addr, 31337, 0));
        log.primary.persist_line_now(e.line());
        let img = m.crash(3);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.torn_entries, 1);
        assert_eq!(r.undo_rolled_back, 0, "torn entry must not be replayed");
    }

    #[test]
    fn foreign_prefixed_pool_is_ignored() {
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        m.alloc_pool("ptm-log-weird", 64, MediaKind::Optane); // ALGO word = 0
        let r = recover(&m);
        assert_eq!(r.logs_scanned, 1);
        assert_eq!(r.redo_replayed + r.undo_rolled_back, 0);
    }
}

#[cfg(test)]
mod recovery_idempotence_tests {
    use super::*;
    use crate::config::PtmConfig;
    use crate::log::{STATE_COMMITTED, W_COUNT, W_STATE};
    use palloc::PHeap;
    use pmem_sim::{
        catch_simulated_crash, silence_simulated_crash_panics, AdversaryPolicy, CrashInjector,
        DurabilityDomain, Machine, MachineConfig,
    };

    const N: usize = 6;

    /// Build a machine whose durable state holds a committed-but-not-
    /// written-back redo log of `N` entries targeting `block[0..N]`
    /// (values `1000+i`), then crash it and return the rebooted machine.
    fn crashed_redo_machine() -> (Arc<Machine>, PAddr) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::redo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let block = {
            let mut s = m.session(0);
            let b = heap.alloc(&mut s, N);
            for i in 0..N as u64 {
                s.store(b.offset(i), 1);
            }
            s.persist_range(b, N as u64);
            b
        };
        for i in 0..N {
            let e = log.entry_addr(i);
            log.primary.raw_store(e.word(), block.offset(i as u64).0);
            log.primary.raw_store(e.word() + 1, 1000 + i as u64);
            log.primary.persist_line_now(e.line());
        }
        log.primary.raw_store(W_COUNT, N as u64);
        log.primary.raw_store(W_STATE, STATE_COMMITTED);
        log.primary.persist_line_now(0);
        let img = m.crash(1);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        (m2, block)
    }

    /// Like above, but an in-flight undo log: `N` sealed entries with old
    /// value 7, in-place data torn to 999 and durable (worst case).
    fn crashed_undo_machine() -> (Arc<Machine>, PAddr) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::undo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let block = {
            let mut s = m.session(0);
            let b = heap.alloc(&mut s, N);
            for i in 0..N as u64 {
                s.store(b.offset(i), 7);
            }
            s.persist_range(b, N as u64);
            b
        };
        for i in 0..N {
            let e = log.entry_addr(i);
            let a = block.offset(i as u64);
            log.primary.raw_store(e.word(), a.0);
            log.primary.raw_store(e.word() + 1, 7);
            log.primary.raw_store(e.word() + 2, seal(a.0, 7, 0));
            log.primary.persist_line_now(e.line());
            heap.pool().raw_store(a.word(), 999);
            heap.pool().persist_line_now(a.line());
        }
        let img = m.crash(2);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        (m2, block)
    }

    /// Crash `machine` at recovery-persist site `site` (if recovery has
    /// that many), reboot from the captured image, and return the new
    /// machine. `None` if recovery completed before reaching the site.
    fn crash_during_recovery(
        machine: &Arc<Machine>,
        site: u64,
        policy: AdversaryPolicy,
    ) -> Option<Arc<Machine>> {
        silence_simulated_crash_panics();
        let inj = CrashInjector::at_site(site, policy, site ^ 0xDEAD);
        machine.arm_injector(Arc::clone(&inj));
        let interrupted = catch_simulated_crash(|| recover(machine)).is_err();
        machine.disarm_injector();
        interrupted.then(|| {
            let fired = inj.take_outcome().expect("crash fired");
            Machine::reboot(
                &fired.image,
                MachineConfig::functional(DurabilityDomain::Adr),
            )
        })
    }

    fn full_state(machine: &Arc<Machine>) -> Vec<Vec<u64>> {
        machine
            .pools()
            .iter()
            .map(|p| (0..p.len_words() as u64).map(|w| p.raw_load(w)).collect())
            .collect()
    }

    /// Redo replay interrupted at *every* recovery persist site must
    /// converge to the fully-replayed state on the next recovery pass.
    #[test]
    fn redo_replay_survives_crash_at_every_recovery_site() {
        for policy in AdversaryPolicy::SWEEP {
            for site in 0.. {
                let (m2, block) = crashed_redo_machine();
                let Some(m3) = crash_during_recovery(&m2, site, policy) else {
                    assert!(site > 0, "recovery must have at least one site");
                    break;
                };
                recover(&m3);
                for i in 0..N as u64 {
                    assert_eq!(
                        m3.pool(block.pool()).raw_load(block.word() + i),
                        1000 + i,
                        "policy {policy} site {site} entry {i}"
                    );
                }
                // Third pass: already converged, nothing left to do.
                let before = full_state(&m3);
                let r2 = recover(&m3);
                assert_eq!(r2.redo_replayed, 0, "policy {policy} site {site}");
                assert_eq!(before, full_state(&m3), "policy {policy} site {site}");
            }
        }
    }

    /// Undo rollback interrupted at *every* recovery persist site must
    /// converge to the fully-rolled-back state on the next pass.
    #[test]
    fn undo_rollback_survives_crash_at_every_recovery_site() {
        for policy in AdversaryPolicy::SWEEP {
            for site in 0.. {
                let (m2, block) = crashed_undo_machine();
                let Some(m3) = crash_during_recovery(&m2, site, policy) else {
                    assert!(site > 0, "recovery must have at least one site");
                    break;
                };
                recover(&m3);
                for i in 0..N as u64 {
                    assert_eq!(
                        m3.pool(block.pool()).raw_load(block.word() + i),
                        7,
                        "policy {policy} site {site} entry {i}"
                    );
                }
                let before = full_state(&m3);
                let r2 = recover(&m3);
                assert_eq!(r2.undo_rolled_back, 0, "policy {policy} site {site}");
                assert_eq!(before, full_state(&m3), "policy {policy} site {site}");
            }
        }
    }

    /// The fault-injection switches actually break recovery (harness
    /// self-test support): with rollback skipped, torn data survives.
    #[test]
    fn skip_switches_break_recovery_as_advertised() {
        let (m2, block) = crashed_undo_machine();
        let r = recover_with_options(
            &m2,
            RecoverOptions {
                skip_undo_rollback: true,
                ..RecoverOptions::default()
            },
        );
        assert_eq!(r.undo_rolled_back, 0);
        assert_eq!(m2.pool(block.pool()).raw_load(block.word()), 999);

        let (m2, block) = crashed_redo_machine();
        let r = recover_with_options(
            &m2,
            RecoverOptions {
                skip_redo_replay: true,
                ..RecoverOptions::default()
            },
        );
        assert_eq!(r.redo_replayed, 0);
        assert_eq!(m2.pool(block.pool()).raw_load(block.word()), 1);
    }
}

#[cfg(test)]
mod overflow_recovery_tests {
    use super::*;
    use crate::config::{Algo, PtmConfig};
    use crate::txn::{Ptm, TxThread};
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};

    /// A PDRAM-Lite redo log that spills past its primary budget into the
    /// Optane overflow pool must still replay correctly after a crash.
    #[test]
    fn committed_log_spanning_overflow_replays() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::PdramLite));
        let heap = PHeap::format(&m, "heap", 1 << 16, 4);
        let cfg = PtmConfig {
            algo: Algo::RedoLazy,
            lite_log_entries: 8, // tiny budget: most entries spill
            ..PtmConfig::default()
        };
        let ptm = Ptm::new(cfg.clone());
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let h = std::sync::Arc::clone(&heap);
        let block = h.alloc(th.session_mut(), 64);
        // A transaction with 32 writes: 8 entries in the lite pool, 24 in
        // the overflow pool.
        th.run(|tx| {
            for i in 0..32u64 {
                tx.write_at(block, i, 1000 + i)?;
            }
            Ok(())
        });
        // Hand-roll the dangerous redo window: re-mark the (already
        // retired) log as COMMITTED and wipe the in-place data, then make
        // sure recovery replays all 32 entries from both pools.
        let log_pool = m
            .pools()
            .into_iter()
            .find(|p| p.name() == "ptm-log-0")
            .unwrap();
        log_pool.raw_store(crate::log::W_COUNT, 32);
        log_pool.raw_store(crate::log::W_STATE, crate::log::STATE_COMMITTED);
        log_pool.persist_line_now(0);
        for i in 0..32u64 {
            heap.pool().raw_store(block.word() + i, 0);
            heap.pool().persist_line_now((block.word() + i) / 8);
        }
        let img = m.crash(5);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::PdramLite));
        let r = recover(&m2);
        assert_eq!(r.redo_replayed, 1);
        assert_eq!(r.redo_entries, 32);
        let heap_pool = m2.pool(heap.pool().id());
        for i in 0..32u64 {
            assert_eq!(heap_pool.raw_load(block.word() + i), 1000 + i, "entry {i}");
        }
    }

    /// Undo entries spilling into the overflow pool roll back correctly.
    #[test]
    fn inflight_undo_spanning_overflow_rolls_back() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::PdramLite));
        let heap = PHeap::format(&m, "heap", 1 << 16, 4);
        let cfg = PtmConfig {
            algo: Algo::UndoEager,
            lite_log_entries: 4,
            ..PtmConfig::default()
        };
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        assert!(log.overflow.is_some());
        let mut s = m.session(0);
        let h = std::sync::Arc::clone(&heap);
        let block = h.alloc(&mut s, 16);
        for i in 0..16u64 {
            s.store(block.offset(i), 7);
        }
        // Craft an in-flight tx: 12 undo entries (4 primary + 8 overflow),
        // sealed under seq 3, with speculative in-place damage.
        log.primary.raw_store(crate::log::W_SEQ, 3);
        log.primary.persist_line_now(0);
        for i in 0..12usize {
            let e = log.entry_addr(i);
            let pool = m.pool(e.pool());
            let a = block.offset(i as u64);
            pool.raw_store(e.word(), a.0);
            pool.raw_store(e.word() + 1, 7);
            pool.raw_store(e.word() + 2, crate::log::seal(a.0, 7, 3));
            pool.persist_line_now(e.line());
            heap.pool().raw_store(a.word(), 999);
            heap.pool().persist_line_now(a.line());
        }
        let img = m.crash(6);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::PdramLite));
        let r = recover(&m2);
        assert_eq!(r.undo_rolled_back, 1);
        assert_eq!(r.undo_entries, 12);
        let heap_pool = m2.pool(heap.pool().id());
        for i in 0..12u64 {
            assert_eq!(heap_pool.raw_load(block.word() + i), 7, "entry {i}");
        }
    }
}
