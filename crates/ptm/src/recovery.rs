//! Post-crash recovery.
//!
//! Runs once, single-threaded, after [`pmem_sim::Machine::reboot`] and
//! before any new transactions. It discovers every thread's persistent
//! log by pool name and:
//!
//! * **redo, COMMITTED**: the transaction logically happened — replay all
//!   `count` entries into program data and persist them, then retire the
//!   log. Replay is idempotent, so a crash *during recovery* is handled
//!   by simply recovering again.
//! * **redo, not committed**: the transaction never happened; retire the
//!   log.
//! * **undo, live entries**: the crash interrupted an in-flight
//!   transaction after some in-place writes — roll the entries back in
//!   reverse order, persist the restored values, truncate.
//! * **cow, COMMITTED**: publish each logged shadow line's masked words
//!   to its home location (idempotent, like redo replay), then retire;
//!   the orphaned shadow blocks are reclaimed by the restart GC.
//!
//! The per-algorithm repair logic lives in each policy's
//! [`crate::algo::LogPolicy::recover_apply`], dispatched on the log
//! header's persistent tag; this module owns discovery and the
//! [`RecoverCtx`] repair primitives. Recovery is untimed (it happens
//! outside measured execution) and uses raw pool operations plus
//! `persist_line_now`.

use std::sync::Arc;

use pmem_sim::{Machine, PAddr, PmemPool, SiteKind, WORDS_PER_LINE};

use crate::log::{
    TxLog, ENTRY0, LOG_POOL_PREFIX, OVF_POOL_PREFIX, STATE_IDLE, W_ALGO, W_OVF, W_PRIMARY_CAP,
    W_STATE,
};

/// Fault-injection switches for harness self-tests.
///
/// A crash-site sweep that always passes proves nothing until it is shown
/// to *fail* when recovery is deliberately broken. These switches disable
/// individual recovery obligations so `ptm::crash_harness` (and its
/// tests) can demonstrate that the sweep catches the resulting
/// inconsistencies with a deterministic reproducer. Never set in
/// production recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverOptions {
    /// Skip rolling back in-flight undo logs (leaves torn in-place
    /// writes of uncommitted transactions in program data).
    pub skip_undo_rollback: bool,
    /// Skip replaying committed redo logs (loses transactions whose
    /// commit marker is durable but whose writeback was not).
    pub skip_redo_replay: bool,
}

/// What recovery found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Per-thread logs examined.
    pub logs_scanned: usize,
    /// Committed redo logs replayed forward.
    pub redo_replayed: usize,
    /// Redo entries written back during replay.
    pub redo_entries: usize,
    /// In-flight undo logs rolled back.
    pub undo_rolled_back: usize,
    /// Undo entries restored.
    pub undo_entries: usize,
    /// Undo entries rejected by the torn-write checksum.
    pub torn_entries: usize,
    /// Committed cow logs whose shadow lines were published forward.
    pub cow_published: usize,
    /// Cow words copied shadow → home during publish replay.
    pub cow_words: usize,
}

/// One crashed log, as handed to [`crate::algo::LogPolicy::recover_apply`]:
/// the discovered pools plus the repair primitives every algorithm's
/// recovery is built from. Each persist primitive is its own crash site
/// ([`SiteKind::RecoveryPersist`]) so the idempotence sweeps enumerate
/// mid-recovery failures of any algorithm uniformly.
pub struct RecoverCtx<'a> {
    pub machine: &'a Arc<Machine>,
    ring: &'a mut Option<trace::TraceRing>,
    /// The log's primary pool (header + first `primary_cap` entries).
    pub primary: Arc<PmemPool>,
    /// PDRAM-Lite spill pool, when the header points at one.
    pub overflow: Option<Arc<PmemPool>>,
    pub primary_cap: usize,
    pub opts: RecoverOptions,
    pub report: &'a mut RecoveryReport,
}

impl RecoverCtx<'_> {
    /// Durable raw store of one word (with its trace event and crash
    /// site). Recovery must be idempotent under a failure at any point
    /// of its own execution.
    pub fn store_persist(&mut self, addr: PAddr, value: u64) {
        self.machine.note_site(SiteKind::RecoveryPersist, false);
        if let Some(r) = self.ring.as_mut() {
            r.record(0, trace::EventKind::RecoveryApply, addr.0, value);
        }
        let pool = self.machine.pool(addr.pool());
        pool.raw_store(addr.word(), value);
        pool.persist_line_now(addr.word() / WORDS_PER_LINE as u64);
    }

    /// Untimed read of log entry `i` (primary or overflow).
    pub fn raw_entry(&self, i: usize) -> (u64, u64, u64) {
        TxLog::raw_entry(&self.primary, self.overflow.as_deref(), self.primary_cap, i)
    }

    /// Untimed raw load of an arbitrary persistent word (e.g. cow
    /// shadow data referenced from a log entry).
    pub fn raw_load(&self, addr: PAddr) -> u64 {
        self.machine.pool(addr.pool()).raw_load(addr.word())
    }

    /// Zero entry 0's address word (undo-style truncation), durably.
    /// Its own crash site: ordering matters for mid-recovery crashes —
    /// call only after every repair store is durable, so a re-run
    /// either sees the full valid prefix again (and harmlessly repairs
    /// it a second time) or an already-truncated log.
    pub fn truncate_entries(&mut self) {
        self.machine.note_site(SiteKind::RecoveryPersist, false);
        self.primary.raw_store(ENTRY0, 0);
        self.primary
            .persist_line_now(ENTRY0 / WORDS_PER_LINE as u64);
    }

    /// Retire the log to IDLE, durably. The last crash site of a log's
    /// recovery: a failure before it re-runs the (idempotent) repair, a
    /// failure after it finds an idle log.
    pub fn retire(&mut self) {
        self.machine.note_site(SiteKind::RecoveryPersist, false);
        self.primary.raw_store(W_STATE, STATE_IDLE);
        self.primary.persist_line_now(0);
    }
}

/// Recover every PTM log on `machine`. Idempotent.
pub fn recover(machine: &Arc<Machine>) -> RecoveryReport {
    recover_with_options(machine, RecoverOptions::default())
}

/// [`recover`] with fault-injection switches (harness self-tests only).
pub fn recover_with_options(machine: &Arc<Machine>, opts: RecoverOptions) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    // Recovery is untimed and single-threaded: its events carry ts 0 and
    // are submitted under the reserved RECOVERY_TID stream (ordering
    // within the stream is preserved by the merge's sequence tiebreak).
    let tracer = machine.tracer();
    let mut ring = tracer.as_ref().map(|sink| sink.ring());
    if let Some(r) = ring.as_mut() {
        r.record(
            0,
            trace::EventKind::RecoveryBegin,
            machine.pools().len() as u64,
            0,
        );
    }
    for primary in machine.pools() {
        if !primary.name().starts_with(LOG_POOL_PREFIX)
            || primary.name().starts_with(OVF_POOL_PREFIX)
        {
            continue;
        }
        report.logs_scanned += 1;
        let tag = primary.raw_load(W_ALGO);
        let Some(policy) = crate::algo::policy_for_tag(tag) else {
            // Unformatted or foreign pool that happens to share the
            // prefix: leave it alone.
            continue;
        };
        let primary_cap = primary.raw_load(W_PRIMARY_CAP) as usize;
        let ovf_id = primary.raw_load(W_OVF) as u32;
        let overflow = (ovf_id != 0).then(|| machine.pool(pmem_sim::PoolId(ovf_id)));
        let mut ctx = RecoverCtx {
            machine,
            ring: &mut ring,
            primary,
            overflow,
            primary_cap,
            opts,
            report: &mut report,
        };
        policy.recover_apply(&mut ctx);
    }
    if let (Some(sink), Some(mut r)) = (tracer, ring) {
        r.record(
            0,
            trace::EventKind::RecoveryEnd,
            report.redo_replayed as u64,
            report.undo_rolled_back as u64,
        );
        sink.submit(trace::RECOVERY_TID, &r);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PtmConfig;
    use crate::log::{committed_marker, seal, W_COUNT, W_STATE};
    use crate::txn::{Ptm, TxThread};
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, MachineConfig, MediaKind};

    #[test]
    fn clean_logs_recover_to_nothing() {
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let ptm = Ptm::new(PtmConfig::redo());
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let a = heap.alloc(th.session_mut(), 4);
        th.run(|tx| tx.write(a, 5));
        let img = m.crash(0);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.logs_scanned, 1);
        assert_eq!(r.redo_replayed, 0);
        assert_eq!(r.undo_rolled_back, 0);
        assert_eq!(m2.pool(a.pool()).raw_load(a.word()), 5);
    }

    #[test]
    fn committed_marker_without_writeback_replays() {
        // Hand-craft the dangerous window: log persisted, marker durable,
        // but data writeback lost.
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::redo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let target = {
            let mut s = m.session(0);
            let t = heap.alloc(&mut s, 4);
            s.store(t, 1);
            s.clwb(t);
            s.sfence();
            t
        };
        // Entry 0: write target := 42, fully persisted; marker durable.
        let e = log.entry_addr(0);
        log.primary.raw_store(e.word(), target.0);
        log.primary.raw_store(e.word() + 1, 42);
        log.primary.persist_line_now(e.line());
        log.primary.raw_store(W_COUNT, 1);
        log.primary.raw_store(W_STATE, committed_marker(1));
        log.primary.persist_line_now(0);
        // Crash: the in-place data store never happened.
        let img = m.crash(1);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.redo_replayed, 1);
        assert_eq!(r.redo_entries, 1);
        assert_eq!(m2.pool(target.pool()).raw_load(target.word()), 42);
        // Idempotence: recovering again changes nothing.
        let r2 = recover(&m2);
        assert_eq!(r2.redo_replayed, 0);
        assert_eq!(m2.pool(target.pool()).raw_load(target.word()), 42);
    }

    #[test]
    fn stale_count_word_cannot_extend_a_committed_replay() {
        // The bug the exhaustive crash-site sweep found (site 61, redo,
        // ADR, per-word adversary): the marker and `W_COUNT` share the
        // header line but persist word by word, so a crash inside the
        // marker's flush window can keep a *stale, larger* `W_COUNT`
        // next to the fresh marker. Recovery must take the count from
        // the marker word — a stale mirror must not make it replay
        // leftover entries from an earlier transaction on top of the
        // committed write set.
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::redo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let (a, b) = {
            let mut s = m.session(0);
            let t = heap.alloc(&mut s, 4);
            s.store(t, 1);
            s.store(t.offset(1), 1);
            s.clwb(t);
            s.sfence();
            (t, t.offset(1))
        };
        // Fresh committed transaction: 1 entry (a := 42). A leftover
        // entry from an earlier, retired transaction sits right after it
        // (b := 7) and the stale `W_COUNT` mirror still says 2.
        let e0 = log.entry_addr(0);
        log.primary.raw_store(e0.word(), a.0);
        log.primary.raw_store(e0.word() + 1, 42);
        let e1 = log.entry_addr(1);
        log.primary.raw_store(e1.word(), b.0);
        log.primary.raw_store(e1.word() + 1, 7);
        log.primary.persist_line_now(e0.line());
        log.primary.persist_line_now(e1.line());
        log.primary.raw_store(W_COUNT, 2); // stale mirror survives
        log.primary.raw_store(W_STATE, committed_marker(1));
        log.primary.persist_line_now(0);
        let img = m.crash(4);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.redo_replayed, 1);
        assert_eq!(r.redo_entries, 1, "only the marker's count is replayed");
        assert_eq!(m2.pool(a.pool()).raw_load(a.word()), 42);
        assert_eq!(
            m2.pool(b.pool()).raw_load(b.word()),
            1,
            "stale leftover entry must not be replayed"
        );
    }

    #[test]
    fn inflight_undo_rolls_back() {
        // Hand-craft an in-flight undo transaction: entry persisted, data
        // overwritten in place, no truncation.
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::undo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let target = {
            let mut s = m.session(0);
            let t = heap.alloc(&mut s, 4);
            s.store(t, 7);
            s.clwb(t);
            s.sfence();
            t
        };
        let e = log.entry_addr(0);
        log.primary.raw_store(e.word(), target.0);
        log.primary.raw_store(e.word() + 1, 7); // old value
        log.primary.raw_store(e.word() + 2, seal(target.0, 7, 0));
        log.primary.persist_line_now(e.line());
        // Speculative in-place store, durable (worst case).
        heap.pool().raw_store(target.word(), 999);
        heap.pool().persist_line_now(target.line());
        let img = m.crash(2);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.undo_rolled_back, 1);
        assert_eq!(r.undo_entries, 1);
        assert_eq!(m2.pool(target.pool()).raw_load(target.word()), 7);
    }

    #[test]
    fn torn_undo_entry_is_rejected() {
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let _heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::undo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let e = log.entry_addr(0);
        // addr and checksum present, value word lost (zero), true old != 0.
        let fake_addr = PAddr::new(log.primary.id(), 9_999).0;
        log.primary.raw_store(e.word(), fake_addr);
        log.primary.raw_store(e.word() + 1, 0);
        log.primary
            .raw_store(e.word() + 2, seal(fake_addr, 31337, 0));
        log.primary.persist_line_now(e.line());
        let img = m.crash(3);
        let m2 = pmem_sim::Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        let r = recover(&m2);
        assert_eq!(r.torn_entries, 1);
        assert_eq!(r.undo_rolled_back, 0, "torn entry must not be replayed");
    }

    #[test]
    fn foreign_prefixed_pool_is_ignored() {
        let m = pmem_sim::Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        m.alloc_pool("ptm-log-weird", 64, MediaKind::Optane); // ALGO word = 0
        let r = recover(&m);
        assert_eq!(r.logs_scanned, 1);
        assert_eq!(r.redo_replayed + r.undo_rolled_back, 0);
    }
}

#[cfg(test)]
mod recovery_idempotence_tests {
    use super::*;
    use crate::config::PtmConfig;
    use crate::log::{committed_marker, seal, W_COUNT, W_STATE};
    use palloc::PHeap;
    use pmem_sim::{
        catch_simulated_crash, silence_simulated_crash_panics, AdversaryPolicy, CrashInjector,
        DurabilityDomain, Machine, MachineConfig,
    };

    const N: usize = 6;

    /// Build a machine whose durable state holds a committed-but-not-
    /// written-back redo log of `N` entries targeting `block[0..N]`
    /// (values `1000+i`), then crash it and return the rebooted machine.
    fn crashed_redo_machine() -> (Arc<Machine>, PAddr) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::redo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let block = {
            let mut s = m.session(0);
            let b = heap.alloc(&mut s, N);
            for i in 0..N as u64 {
                s.store(b.offset(i), 1);
            }
            s.persist_range(b, N as u64);
            b
        };
        for i in 0..N {
            let e = log.entry_addr(i);
            log.primary.raw_store(e.word(), block.offset(i as u64).0);
            log.primary.raw_store(e.word() + 1, 1000 + i as u64);
            log.primary.persist_line_now(e.line());
        }
        log.primary.raw_store(W_COUNT, N as u64);
        log.primary.raw_store(W_STATE, committed_marker(N as u64));
        log.primary.persist_line_now(0);
        let img = m.crash(1);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        (m2, block)
    }

    /// Like above, but an in-flight undo log: `N` sealed entries with old
    /// value 7, in-place data torn to 999 and durable (worst case).
    fn crashed_undo_machine() -> (Arc<Machine>, PAddr) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
        let heap = PHeap::format(&m, "heap", 1 << 14, 4);
        let cfg = PtmConfig::undo();
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        let block = {
            let mut s = m.session(0);
            let b = heap.alloc(&mut s, N);
            for i in 0..N as u64 {
                s.store(b.offset(i), 7);
            }
            s.persist_range(b, N as u64);
            b
        };
        for i in 0..N {
            let e = log.entry_addr(i);
            let a = block.offset(i as u64);
            log.primary.raw_store(e.word(), a.0);
            log.primary.raw_store(e.word() + 1, 7);
            log.primary.raw_store(e.word() + 2, seal(a.0, 7, 0));
            log.primary.persist_line_now(e.line());
            heap.pool().raw_store(a.word(), 999);
            heap.pool().persist_line_now(a.line());
        }
        let img = m.crash(2);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
        (m2, block)
    }

    /// Crash `machine` at recovery-persist site `site` (if recovery has
    /// that many), reboot from the captured image, and return the new
    /// machine. `None` if recovery completed before reaching the site.
    fn crash_during_recovery(
        machine: &Arc<Machine>,
        site: u64,
        policy: AdversaryPolicy,
    ) -> Option<Arc<Machine>> {
        silence_simulated_crash_panics();
        let inj = CrashInjector::at_site(site, policy, site ^ 0xDEAD);
        machine.arm_injector(Arc::clone(&inj));
        let interrupted = catch_simulated_crash(|| recover(machine)).is_err();
        machine.disarm_injector();
        interrupted.then(|| {
            let fired = inj.take_outcome().expect("crash fired");
            Machine::reboot(
                &fired.image,
                MachineConfig::functional(DurabilityDomain::Adr),
            )
        })
    }

    fn full_state(machine: &Arc<Machine>) -> Vec<Vec<u64>> {
        machine
            .pools()
            .iter()
            .map(|p| (0..p.len_words() as u64).map(|w| p.raw_load(w)).collect())
            .collect()
    }

    /// Redo replay interrupted at *every* recovery persist site must
    /// converge to the fully-replayed state on the next recovery pass.
    #[test]
    fn redo_replay_survives_crash_at_every_recovery_site() {
        for policy in AdversaryPolicy::SWEEP {
            for site in 0.. {
                let (m2, block) = crashed_redo_machine();
                let Some(m3) = crash_during_recovery(&m2, site, policy) else {
                    assert!(site > 0, "recovery must have at least one site");
                    break;
                };
                recover(&m3);
                for i in 0..N as u64 {
                    assert_eq!(
                        m3.pool(block.pool()).raw_load(block.word() + i),
                        1000 + i,
                        "policy {policy} site {site} entry {i}"
                    );
                }
                // Third pass: already converged, nothing left to do.
                let before = full_state(&m3);
                let r2 = recover(&m3);
                assert_eq!(r2.redo_replayed, 0, "policy {policy} site {site}");
                assert_eq!(before, full_state(&m3), "policy {policy} site {site}");
            }
        }
    }

    /// Undo rollback interrupted at *every* recovery persist site must
    /// converge to the fully-rolled-back state on the next pass.
    #[test]
    fn undo_rollback_survives_crash_at_every_recovery_site() {
        for policy in AdversaryPolicy::SWEEP {
            for site in 0.. {
                let (m2, block) = crashed_undo_machine();
                let Some(m3) = crash_during_recovery(&m2, site, policy) else {
                    assert!(site > 0, "recovery must have at least one site");
                    break;
                };
                recover(&m3);
                for i in 0..N as u64 {
                    assert_eq!(
                        m3.pool(block.pool()).raw_load(block.word() + i),
                        7,
                        "policy {policy} site {site} entry {i}"
                    );
                }
                let before = full_state(&m3);
                let r2 = recover(&m3);
                assert_eq!(r2.undo_rolled_back, 0, "policy {policy} site {site}");
                assert_eq!(before, full_state(&m3), "policy {policy} site {site}");
            }
        }
    }

    /// The fault-injection switches actually break recovery (harness
    /// self-test support): with rollback skipped, torn data survives.
    #[test]
    fn skip_switches_break_recovery_as_advertised() {
        let (m2, block) = crashed_undo_machine();
        let r = recover_with_options(
            &m2,
            RecoverOptions {
                skip_undo_rollback: true,
                ..RecoverOptions::default()
            },
        );
        assert_eq!(r.undo_rolled_back, 0);
        assert_eq!(m2.pool(block.pool()).raw_load(block.word()), 999);

        let (m2, block) = crashed_redo_machine();
        let r = recover_with_options(
            &m2,
            RecoverOptions {
                skip_redo_replay: true,
                ..RecoverOptions::default()
            },
        );
        assert_eq!(r.redo_replayed, 0);
        assert_eq!(m2.pool(block.pool()).raw_load(block.word()), 1);
    }
}

#[cfg(test)]
mod overflow_recovery_tests {
    use super::*;
    use crate::config::{Algo, PtmConfig};
    use crate::txn::{Ptm, TxThread};
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};

    /// A PDRAM-Lite redo log that spills past its primary budget into the
    /// Optane overflow pool must still replay correctly after a crash.
    #[test]
    fn committed_log_spanning_overflow_replays() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::PdramLite));
        let heap = PHeap::format(&m, "heap", 1 << 16, 4);
        let cfg = PtmConfig {
            algo: Algo::RedoLazy,
            lite_log_entries: 8, // tiny budget: most entries spill
            ..PtmConfig::default()
        };
        let ptm = Ptm::new(cfg.clone());
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let h = std::sync::Arc::clone(&heap);
        let block = h.alloc(th.session_mut(), 64);
        // A transaction with 32 writes: 8 entries in the lite pool, 24 in
        // the overflow pool.
        th.run(|tx| {
            for i in 0..32u64 {
                tx.write_at(block, i, 1000 + i)?;
            }
            Ok(())
        });
        // Hand-roll the dangerous redo window: re-mark the (already
        // retired) log as COMMITTED and wipe the in-place data, then make
        // sure recovery replays all 32 entries from both pools.
        let log_pool = m
            .pools()
            .into_iter()
            .find(|p| p.name() == "ptm-log-0")
            .unwrap();
        log_pool.raw_store(crate::log::W_COUNT, 32);
        log_pool.raw_store(crate::log::W_STATE, crate::log::committed_marker(32));
        log_pool.persist_line_now(0);
        for i in 0..32u64 {
            heap.pool().raw_store(block.word() + i, 0);
            heap.pool().persist_line_now((block.word() + i) / 8);
        }
        let img = m.crash(5);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::PdramLite));
        let r = recover(&m2);
        assert_eq!(r.redo_replayed, 1);
        assert_eq!(r.redo_entries, 32);
        let heap_pool = m2.pool(heap.pool().id());
        for i in 0..32u64 {
            assert_eq!(heap_pool.raw_load(block.word() + i), 1000 + i, "entry {i}");
        }
    }

    /// Undo entries spilling into the overflow pool roll back correctly.
    #[test]
    fn inflight_undo_spanning_overflow_rolls_back() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::PdramLite));
        let heap = PHeap::format(&m, "heap", 1 << 16, 4);
        let cfg = PtmConfig {
            algo: Algo::UndoEager,
            lite_log_entries: 4,
            ..PtmConfig::default()
        };
        let log = crate::log::TxLog::create(&m, 0, &cfg);
        assert!(log.overflow.is_some());
        let mut s = m.session(0);
        let h = std::sync::Arc::clone(&heap);
        let block = h.alloc(&mut s, 16);
        for i in 0..16u64 {
            s.store(block.offset(i), 7);
        }
        // Craft an in-flight tx: 12 undo entries (4 primary + 8 overflow),
        // sealed under seq 3, with speculative in-place damage.
        log.primary.raw_store(crate::log::W_SEQ, 3);
        log.primary.persist_line_now(0);
        for i in 0..12usize {
            let e = log.entry_addr(i);
            let pool = m.pool(e.pool());
            let a = block.offset(i as u64);
            pool.raw_store(e.word(), a.0);
            pool.raw_store(e.word() + 1, 7);
            pool.raw_store(e.word() + 2, crate::log::seal(a.0, 7, 3));
            pool.persist_line_now(e.line());
            heap.pool().raw_store(a.word(), 999);
            heap.pool().persist_line_now(a.line());
        }
        let img = m.crash(6);
        let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::PdramLite));
        let r = recover(&m2);
        assert_eq!(r.undo_rolled_back, 1);
        assert_eq!(r.undo_entries, 12);
        let heap_pool = m2.pool(heap.pool().id());
        for i in 0..12u64 {
            assert_eq!(heap_pool.raw_load(block.word() + i), 7, "entry {i}");
        }
    }
}
