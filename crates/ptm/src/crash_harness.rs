//! Deterministic crash-site enumeration harness.
//!
//! Random crash fuzzing (freeze at a wall-clock instant, crash with a
//! random adversary seed) samples the crash space; this module
//! *enumerates* it. Every persistence-relevant event of a workload run —
//! timed store, `clwb`, `sfence`, cache eviction, WPQ acceptance,
//! recovery persist — is a numbered **crash site** (see
//! [`pmem_sim::inject`]). The harness:
//!
//! 1. **dry-runs** the workload with a counting injector to learn the
//!    total number of sites;
//! 2. **sweeps** every site (or a strided subset above a configurable
//!    bound): for each site it re-runs the workload on a fresh machine
//!    with an injector armed to crash exactly there, reboots from the
//!    captured image, runs [`crate::recover`] and the allocator's restart
//!    GC, and checks invariants;
//! 3. on a violation prints a **minimal reproducer** — the site index,
//!    algorithm, durability domain, adversary policy and seed — that
//!    replays the exact same crash deterministically (single-threaded
//!    workloads are fully determined by the case seed).
//!
//! The generic invariants (recovery idempotence, heap attach + GC
//! consistency) live here; workload-specific ones (e.g. the bank's
//! committed-prefix check) live in the [`CrashWorkload`] impl.

use std::sync::Arc;

use palloc::{GcReport, PHeap};
use pmem_sim::{
    catch_simulated_crash, silence_simulated_crash_panics, AdversaryPolicy, CrashImage,
    CrashInjector, DurabilityDomain, Machine, MachineConfig, SiteKind,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{Algo, PtmConfig};
use crate::db::ReopenReports;
use crate::recovery::{recover_with_options, resolve_in_doubt, RecoverOptions, RecoveryReport};
use crate::shard::{ShardedEngine, SHARD_HEAP_PREFIX};
use crate::twopc::CrossShardTx;
use crate::txn::{Ptm, TxThread};

/// One point of the sweep grid: which algorithm, durability domain and
/// crash adversary to run the workload under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCase {
    pub algo: Algo,
    pub domain: DurabilityDomain,
    pub policy: AdversaryPolicy,
    /// Seed for the workload's transfer plan (and, mixed with the site
    /// index, for the crash adversary).
    pub seed: u64,
}

/// Short stable names used in reproducer lines and CLI flags
/// (delegates to [`Algo::name`] so the registry is the single source).
pub fn algo_name(algo: Algo) -> &'static str {
    algo.name()
}

/// Inverse of [`algo_name`].
pub fn parse_algo(s: &str) -> Option<Algo> {
    s.parse().ok()
}

/// Short stable names used in reproducer lines and CLI flags.
pub fn domain_name(domain: DurabilityDomain) -> &'static str {
    match domain {
        DurabilityDomain::NoPowerReserve => "nores",
        DurabilityDomain::Adr => "adr",
        DurabilityDomain::Eadr => "eadr",
        DurabilityDomain::Pdram => "pdram",
        DurabilityDomain::PdramLite => "pdram-lite",
    }
}

/// Inverse of [`domain_name`].
pub fn parse_domain(s: &str) -> Option<DurabilityDomain> {
    match s {
        "nores" => Some(DurabilityDomain::NoPowerReserve),
        "adr" => Some(DurabilityDomain::Adr),
        "eadr" => Some(DurabilityDomain::Eadr),
        "pdram" => Some(DurabilityDomain::Pdram),
        "pdram-lite" => Some(DurabilityDomain::PdramLite),
        _ => None,
    }
}

/// The crash adversary seed used when crashing at `site`: per-site so
/// that neighbouring sites don't share coin flips, but a pure function
/// of (case seed, site) so a reproducer replays the exact image.
pub fn derive_crash_seed(seed: u64, site: u64) -> u64 {
    seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A workload the harness can sweep. Implementations must be
/// **deterministic in the case seed** when run single-threaded: the
/// dry-run and every armed run must produce the identical event
/// sequence.
pub trait CrashWorkload {
    /// Display name (appears in reproducer lines).
    fn name(&self) -> &str;
    /// Name of the pool holding the workload's persistent heap.
    fn heap_pool(&self) -> &str;
    /// Execute the full workload (format, populate, transact) on a fresh
    /// machine. May unwind with a simulated crash at any site.
    fn run(&self, machine: &Arc<Machine>, case: &SweepCase);
    /// Check workload invariants on the recovered machine. Returns one
    /// description per violation (empty = consistent).
    fn check(
        &self,
        machine: &Arc<Machine>,
        heap: &Arc<PHeap>,
        gc: &GcReport,
        case: &SweepCase,
    ) -> Vec<String>;
}

/// One invariant violation found by the sweep.
#[derive(Debug, Clone)]
pub struct Violation {
    pub workload: String,
    pub case: SweepCase,
    /// The site the injector was armed for (what a replay must arm).
    pub site: u64,
    /// Where the crash actually fired (later than `site` if deferred by
    /// a crash-atomic section), and the event kind there.
    pub fired: Option<(u64, SiteKind)>,
    pub detail: String,
}

impl Violation {
    /// The minimal deterministic reproducer for this violation. Feed the
    /// fields back to [`run_site`] (or `crash_sites --site ...`) to
    /// replay the exact same crash.
    pub fn reproducer(&self) -> String {
        format!(
            "CRASH-REPRO workload={} site={} algo={} domain={} policy={} seed={}",
            self.workload,
            self.site,
            algo_name(self.case.algo),
            domain_name(self.case.domain),
            self.case.policy,
            self.case.seed,
        )
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.reproducer(), self.detail)
    }
}

/// Sweep tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOptions {
    /// Upper bound on armed sites per case; above it the sweep strides
    /// evenly across the site space. `None` = exhaustive.
    pub max_sites_per_case: Option<u64>,
    /// Fault-injection switches for harness self-tests (deliberately
    /// broken recovery must make the sweep fail).
    pub recover: RecoverOptions,
}

/// Outcome of crashing one workload run at one site and recovering.
#[derive(Debug, Clone)]
pub struct SiteResult {
    /// Actual firing point, `None` when the run completed (the armed
    /// site was past the end; the harness then crashes at end-of-run).
    pub fired: Option<(u64, SiteKind)>,
    pub recovery: RecoveryReport,
    pub gc: Option<GcReport>,
    /// FNV-1a digest over every pool's post-recovery contents; equal
    /// digests ⇒ identical recovered states (replay determinism checks).
    pub state_digest: u64,
    pub violations: Vec<String>,
}

/// Results for one [`SweepCase`].
#[derive(Debug, Clone)]
pub struct CaseResult {
    pub case: SweepCase,
    /// Sites counted by the dry run.
    pub total_sites: u64,
    /// Sites actually armed (≤ `total_sites + 1`; the `+1` is the
    /// end-of-run crash).
    pub sites_run: u64,
    pub violations: Vec<Violation>,
}

/// Aggregate of a full sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    pub cases: Vec<CaseResult>,
}

impl SweepReport {
    pub fn sites_run(&self) -> u64 {
        self.cases.iter().map(|c| c.sites_run).sum()
    }

    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.cases.iter().flat_map(|c| c.violations.iter())
    }

    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }
}

/// Dry-run `workload` under `case`, counting every crash site without
/// firing. Returns the total number of sites.
pub fn count_sites(workload: &dyn CrashWorkload, case: &SweepCase) -> u64 {
    let machine = Machine::new(MachineConfig::functional(case.domain));
    let injector = CrashInjector::count_only();
    machine.arm_injector(Arc::clone(&injector));
    workload.run(&machine, case);
    machine.disarm_injector();
    injector.sites_counted()
}

fn snapshot_pools(machine: &Arc<Machine>) -> Vec<Vec<u64>> {
    machine
        .pools()
        .iter()
        .map(|p| (0..p.len_words() as u64).map(|w| p.raw_load(w)).collect())
        .collect()
}

fn digest_pools(machine: &Arc<Machine>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for pool in machine.pools() {
        for w in 0..pool.len_words() as u64 {
            h = (h ^ pool.raw_load(w)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Run `workload` with a crash armed at `site`, reboot, recover with
/// `opts`, and check every invariant. A `site` at or past the end of the
/// run crashes at end-of-run instead (the run completes first).
pub fn run_site(
    workload: &dyn CrashWorkload,
    case: &SweepCase,
    site: u64,
    opts: RecoverOptions,
) -> SiteResult {
    silence_simulated_crash_panics();
    let machine = Machine::new(MachineConfig::functional(case.domain));
    let crash_seed = derive_crash_seed(case.seed, site);
    let injector = CrashInjector::at_site(site, case.policy, crash_seed);
    machine.arm_injector(Arc::clone(&injector));
    let completed = catch_simulated_crash(|| workload.run(&machine, case)).is_ok();
    machine.disarm_injector();
    let (image, fired) = if completed {
        (machine.crash_with(crash_seed, case.policy), None)
    } else {
        let f = injector
            .take_outcome()
            .expect("simulated crash unwound without a captured image");
        (f.image, Some((f.site, f.kind)))
    };
    drop(machine);

    let recovered = Machine::reboot(&image, MachineConfig::functional(case.domain));
    let recovery = recover_with_options(&recovered, opts);
    let mut violations = Vec::new();

    // Generic invariant: recovery is idempotent — a second pass finds no
    // work and leaves every durable word unchanged.
    let before = snapshot_pools(&recovered);
    let second = recover_with_options(&recovered, opts);
    if second.redo_replayed + second.undo_rolled_back + second.htm_replayed != 0 {
        violations.push(format!("second recovery pass still found work: {second:?}"));
    }
    if snapshot_pools(&recovered) != before {
        violations.push("second recovery pass changed durable state".to_string());
    }

    // Generic invariant: recovery is worker-count independent — the same
    // image recovered at a different worker count lands on a bit-
    // identical durable state (replay-order independence; see the
    // recovery module docs) and, timing aside, an identical report.
    {
        let alt_workers = if opts.workers <= 1 { 4 } else { 1 };
        let alt = Machine::reboot(&image, MachineConfig::functional(case.domain));
        let alt_recovery = recover_with_options(
            &alt,
            RecoverOptions {
                workers: alt_workers,
                ..opts
            },
        );
        if digest_pools(&alt) != digest_pools(&recovered) {
            violations.push(format!(
                "recovery with {alt_workers} workers diverged from {} workers \
                 (post-recovery digests differ)",
                recovery.recovery_workers
            ));
        }
        if alt_recovery.without_timing() != recovery.without_timing() {
            violations.push(format!(
                "recovery report depends on worker count: \
                 {} workers {recovery:?} vs {alt_workers} workers {alt_recovery:?}",
                recovery.recovery_workers
            ));
        }
    }

    // Generic invariant: the heap re-attaches, its GC report and header
    // chain are consistent, and the workload's own invariants hold. The
    // GC runs with the same worker count as log recovery, so parallel
    // sweeps exercise the parallel scan/mark too.
    let heap_pool = recovered
        .pools()
        .into_iter()
        .find(|p| p.name() == workload.heap_pool());
    let mut gc_report = None;
    match heap_pool {
        None => violations.push(format!(
            "heap pool `{}` missing after reboot",
            workload.heap_pool()
        )),
        Some(pool) => match PHeap::attach_with(pool, opts.workers.max(1)) {
            Err(e) => violations.push(format!("heap attach failed: {e}")),
            Ok((heap, gc)) => {
                if let Err(e) = heap.validate() {
                    violations.push(format!("heap inconsistent after GC: {e}"));
                }
                violations.extend(workload.check(&recovered, &heap, &gc, case));
                gc_report = Some(gc);
            }
        },
    }

    SiteResult {
        fired,
        recovery,
        gc: gc_report,
        state_digest: digest_pools(&recovered),
        violations,
    }
}

/// Sweep one case: count sites, then crash at every site (strided when
/// the count exceeds `opts.max_sites_per_case`) plus once at end-of-run.
pub fn sweep_case(
    workload: &dyn CrashWorkload,
    case: &SweepCase,
    opts: SweepOptions,
) -> CaseResult {
    let total_sites = count_sites(workload, case);
    // `total_sites` is itself a valid armed site: it never fires, which
    // exercises the end-of-run crash.
    let span = total_sites + 1;
    let stride = match opts.max_sites_per_case {
        Some(max) if max > 0 && span > max => span.div_ceil(max),
        _ => 1,
    };
    let mut violations = Vec::new();
    let mut sites_run = 0;
    let mut site = 0;
    while site < span {
        let result = run_site(workload, case, site, opts.recover);
        sites_run += 1;
        violations.extend(result.violations.into_iter().map(|detail| Violation {
            workload: workload.name().to_string(),
            case: *case,
            site,
            fired: result.fired,
            detail,
        }));
        site += stride;
    }
    CaseResult {
        case: *case,
        total_sites,
        sites_run,
        violations,
    }
}

/// Sweep every case in `cases`.
pub fn sweep(workload: &dyn CrashWorkload, cases: &[SweepCase], opts: SweepOptions) -> SweepReport {
    SweepReport {
        cases: cases
            .iter()
            .map(|case| sweep_case(workload, case, opts))
            .collect(),
    }
}

/// The paper-relevant sweep grid: every registered algorithm × the four
/// live durability domains × every adversary policy in
/// [`AdversaryPolicy::SWEEP`].
pub fn default_cases(seed: u64) -> Vec<SweepCase> {
    let mut cases = Vec::new();
    for algo in Algo::ALL {
        for domain in [
            DurabilityDomain::Adr,
            DurabilityDomain::Eadr,
            DurabilityDomain::Pdram,
            DurabilityDomain::PdramLite,
        ] {
            for policy in AdversaryPolicy::SWEEP {
                cases.push(SweepCase {
                    algo,
                    domain,
                    policy,
                    seed,
                });
            }
        }
    }
    cases
}

/// The canonical sweep workload: a single-threaded sequence of bank
/// transfers over a rooted table, with deliberately leaked scratch
/// allocations so the restart GC has something to reclaim.
///
/// The transfer plan is a pure function of the case seed, so the checker
/// can enumerate every committed-prefix state: after recovery the table
/// must equal the state after exactly k committed transfers for some k
/// (transactions are atomic — no mixtures, no partial transfers), which
/// also implies the total balance is conserved.
#[derive(Debug, Clone)]
pub struct BankTransfers {
    pub accounts: u64,
    pub initial: u64,
    pub transfers: usize,
    /// Run commits through the write-combining pipeline (the default:
    /// the sweep's acceptance bar is that batching survives every crash
    /// site; set `false` to sweep the naive baseline).
    pub write_combining: bool,
}

impl Default for BankTransfers {
    fn default() -> Self {
        BankTransfers {
            accounts: 8,
            initial: 100,
            transfers: 10,
            write_combining: true,
        }
    }
}

impl BankTransfers {
    /// The deterministic transfer plan for `seed`.
    fn plan(&self, seed: u64) -> Vec<(u64, u64, u64)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..self.transfers)
            .map(|_| {
                (
                    rng.gen_range(0..self.accounts),
                    rng.gen_range(0..self.accounts),
                    rng.gen_range(1..self.initial / 2),
                )
            })
            .collect()
    }

    /// Table contents after k committed transfers, for k = 0..=transfers.
    fn prefix_states(&self, seed: u64) -> Vec<Vec<u64>> {
        let mut state = vec![self.initial; self.accounts as usize];
        let mut states = vec![state.clone()];
        for (from, to, amt) in self.plan(seed) {
            let f = state[from as usize];
            if from != to && f >= amt {
                state[from as usize] -= amt;
                state[to as usize] += amt;
            }
            states.push(state.clone());
        }
        states
    }
}

impl CrashWorkload for BankTransfers {
    fn name(&self) -> &str {
        "bank"
    }

    fn heap_pool(&self) -> &str {
        "bank"
    }

    fn run(&self, machine: &Arc<Machine>, case: &SweepCase) {
        let heap = PHeap::format(machine, self.heap_pool(), 1 << 15, 4);
        let cfg = PtmConfig {
            algo: case.algo,
            write_combining: self.write_combining,
            ..PtmConfig::default()
        };
        let ptm = Ptm::new(cfg);
        let mut th = TxThread::new(ptm, Arc::clone(&heap), machine.session(0));
        let table = heap.alloc(th.session_mut(), self.accounts as usize);
        th.run(|tx| {
            for i in 0..self.accounts {
                tx.write_at(table, i, self.initial)?;
            }
            Ok(())
        });
        heap.set_root(th.session_mut(), 0, table);
        for (from, to, amt) in self.plan(case.seed) {
            // Leak a scratch block on purpose: a crash anywhere leaves it
            // unreachable, and the restart GC must reclaim it.
            let scratch = heap.alloc(th.session_mut(), 3);
            th.session_mut().store(scratch, 0xC0FFEE);
            th.run(|tx| {
                let f = tx.read_at(table, from)?;
                let t = tx.read_at(table, to)?;
                if from != to && f >= amt {
                    tx.write_at(table, from, f - amt)?;
                    tx.write_at(table, to, t + amt)?;
                }
                Ok(())
            });
        }
    }

    fn check(
        &self,
        machine: &Arc<Machine>,
        heap: &Arc<PHeap>,
        gc: &GcReport,
        case: &SweepCase,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        let root = heap.root_raw(0);
        // Once the root is durable, the (committed) init transaction is
        // recoverable, so exactly the table block is reachable; before
        // that, nothing is. Everything else must have been reclaimed.
        let expected_live = if root.is_null() { 0 } else { 1 };
        if gc.live_blocks != expected_live {
            violations.push(format!(
                "GC kept {} live blocks, expected {expected_live} (leaked {} of {} scanned)",
                gc.live_blocks, gc.leaked_blocks, gc.blocks_scanned
            ));
        }
        if root.is_null() {
            return violations;
        }
        let pool = machine.pool(root.pool());
        let table: Vec<u64> = (0..self.accounts)
            .map(|i| pool.raw_load(root.word() + i))
            .collect();
        let states = self.prefix_states(case.seed);
        if !states.contains(&table) {
            let total: u64 = table.iter().sum();
            violations.push(format!(
                "recovered table {table:?} (sum {total}) matches no committed prefix \
                 (expected sum {})",
                self.accounts * self.initial
            ));
        }
        violations
    }
}

/// A two-thread bank driven through a shared group-commit window, for
/// sweeping crash sites that land *inside* an open window — after a lead
/// transaction published its fence but while joiners are still riding it.
///
/// Both virtual threads live on one OS thread and are stepped
/// alternately (A, B, A, B, ...), so the run is fully deterministic in
/// the case seed while still exercising the cross-transaction join path:
/// under the functional machine config the second thread's
/// `make_durable` always lands within the lead's window and joins
/// instead of fencing. Each thread transfers only within its own
/// account range, so recovery must land on a committed prefix of each
/// thread's plan *independently* — a torn window (a joiner treated as
/// durable although its covering fence never retired) shows up as a
/// non-prefix state.
#[derive(Debug, Clone)]
pub struct GroupWindowBank {
    pub accounts_per_thread: u64,
    pub initial: u64,
    pub transfers_per_thread: usize,
}

impl Default for GroupWindowBank {
    fn default() -> Self {
        GroupWindowBank {
            accounts_per_thread: 4,
            initial: 100,
            transfers_per_thread: 4,
        }
    }
}

impl GroupWindowBank {
    /// Thread `t`'s deterministic transfer plan, confined to its own
    /// account range `[t·n, (t+1)·n)` (offsets are range-local).
    fn plan(&self, seed: u64, t: u64) -> Vec<(u64, u64, u64)> {
        let n = self.accounts_per_thread;
        let mut rng = SmallRng::seed_from_u64(seed ^ (t + 1).wrapping_mul(0x9E37_79B9));
        (0..self.transfers_per_thread)
            .map(|_| {
                (
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(1..self.initial / 2),
                )
            })
            .collect()
    }

    /// Thread `t`'s range contents after k committed transfers.
    fn prefix_states(&self, seed: u64, t: u64) -> Vec<Vec<u64>> {
        let mut state = vec![self.initial; self.accounts_per_thread as usize];
        let mut states = vec![state.clone()];
        for (from, to, amt) in self.plan(seed, t) {
            let f = state[from as usize];
            if from != to && f >= amt {
                state[from as usize] -= amt;
                state[to as usize] += amt;
            }
            states.push(state.clone());
        }
        states
    }
}

impl CrashWorkload for GroupWindowBank {
    fn name(&self) -> &str {
        "group-bank"
    }

    fn heap_pool(&self) -> &str {
        "group-bank"
    }

    fn run(&self, machine: &Arc<Machine>, case: &SweepCase) {
        machine.begin_run(2, u64::MAX);
        let heap = PHeap::format(machine, self.heap_pool(), 1 << 15, 4);
        let cfg = PtmConfig {
            algo: case.algo,
            group_commit: true,
            // Generous window: under the functional (zero-latency) config
            // every second fence lands inside it, so the join path runs
            // at every transfer.
            group_window_ns: 1 << 20,
            ..PtmConfig::default()
        };
        let ptm = Ptm::new(cfg);
        let mut ths: Vec<TxThread> = (0..2)
            .map(|t| TxThread::new(Arc::clone(&ptm), Arc::clone(&heap), machine.session(t)))
            .collect();
        let n = self.accounts_per_thread;
        let table = heap.alloc(ths[0].session_mut(), (2 * n) as usize);
        ths[0].run(|tx| {
            for i in 0..2 * n {
                tx.write_at(table, i, self.initial)?;
            }
            Ok(())
        });
        heap.set_root(ths[0].session_mut(), 0, table);
        let plans = [self.plan(case.seed, 0), self.plan(case.seed, 1)];
        // Step the two virtual threads alternately from this one OS
        // thread: every B-transfer commits right after an A-transfer's
        // fence, inside the window A just opened (and vice versa).
        for (pa, pb) in plans[0].iter().zip(&plans[1]) {
            for (t, &(from, to, amt)) in [pa, pb].into_iter().enumerate() {
                let base = t as u64 * n;
                ths[t].run(|tx| {
                    let f = tx.read_at(table, base + from)?;
                    let v = tx.read_at(table, base + to)?;
                    if from != to && f >= amt {
                        tx.write_at(table, base + from, f - amt)?;
                        tx.write_at(table, base + to, v + amt)?;
                    }
                    Ok(())
                });
            }
        }
    }

    fn check(
        &self,
        machine: &Arc<Machine>,
        heap: &Arc<PHeap>,
        gc: &GcReport,
        case: &SweepCase,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        let root = heap.root_raw(0);
        let expected_live = if root.is_null() { 0 } else { 1 };
        if gc.live_blocks != expected_live {
            violations.push(format!(
                "GC kept {} live blocks, expected {expected_live}",
                gc.live_blocks
            ));
        }
        if root.is_null() {
            return violations;
        }
        let pool = machine.pool(root.pool());
        let n = self.accounts_per_thread;
        for t in 0..2u64 {
            let slice: Vec<u64> = (0..n)
                .map(|i| pool.raw_load(root.word() + t * n + i))
                .collect();
            if !self.prefix_states(case.seed, t).contains(&slice) {
                violations.push(format!(
                    "thread {t} range {slice:?} matches no committed prefix \
                     (torn group-commit window?)"
                ));
            }
        }
        violations
    }
}

// ---------------------------------------------------------------------
// Sharded (cross-shard 2PC) crash-site sweep
// ---------------------------------------------------------------------

/// The cross-shard sweep workload: a single worker issuing a
/// deterministic sequence of bank transfers over accounts partitioned
/// round-robin across the shards of a [`ShardedEngine`], driven through
/// [`CrossShardTx`] so that roughly half the transfers span two shards
/// and commit via 2PC (prepare → coordinator record → commit), while the
/// rest take the single-writer fast path.
///
/// Like [`BankTransfers`], the plan is a pure function of the case seed,
/// so the checker enumerates every committed-prefix state: after
/// recovery the global account vector (gathered across all shards) must
/// equal the state after exactly k committed transfers for some k. A
/// torn cross-shard transfer — debit applied on one shard, credit lost
/// on the other — matches no prefix and fails the sweep.
#[derive(Debug, Clone)]
pub struct ShardedTransfers {
    pub shards: usize,
    /// Total accounts, homed round-robin: account `a` lives on shard
    /// `a % shards` at table offset `a / shards`.
    pub accounts: u64,
    pub initial: u64,
    pub transfers: usize,
}

impl Default for ShardedTransfers {
    fn default() -> Self {
        ShardedTransfers {
            shards: 2,
            accounts: 8,
            initial: 100,
            transfers: 8,
        }
    }
}

impl ShardedTransfers {
    fn ptm_config(&self, case: &SweepCase) -> PtmConfig {
        PtmConfig {
            algo: case.algo,
            ..PtmConfig::default()
        }
    }

    /// Build the fresh engine a run starts from (heap format and
    /// coordinator pools are created *before* the injector is armed, so
    /// site numbering starts at the workload itself).
    fn build(&self, case: &SweepCase) -> ShardedEngine {
        ShardedEngine::create(
            self.shards,
            MachineConfig::functional(case.domain),
            self.ptm_config(case),
            1 << 15,
            4,
        )
    }

    /// Home shard and table offset of account `a`.
    fn home(&self, a: u64) -> (usize, u64) {
        ((a % self.shards as u64) as usize, a / self.shards as u64)
    }

    /// Number of accounts homed on shard `s`.
    fn accounts_on(&self, s: usize) -> u64 {
        (self.accounts + self.shards as u64 - 1 - s as u64) / self.shards as u64
    }

    /// The deterministic transfer plan for `seed`.
    fn plan(&self, seed: u64) -> Vec<(u64, u64, u64)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..self.transfers)
            .map(|_| {
                (
                    rng.gen_range(0..self.accounts),
                    rng.gen_range(0..self.accounts),
                    rng.gen_range(1..self.initial / 2),
                )
            })
            .collect()
    }

    /// Global account vector after k committed transfers, k = 0..=n.
    fn prefix_states(&self, seed: u64) -> Vec<Vec<u64>> {
        let mut state = vec![self.initial; self.accounts as usize];
        let mut states = vec![state.clone()];
        for (from, to, amt) in self.plan(seed) {
            let f = state[from as usize];
            if from != to && f >= amt {
                state[from as usize] -= amt;
                state[to as usize] += amt;
            }
            states.push(state.clone());
        }
        states
    }

    /// Execute the workload (populate every shard, then transact). May
    /// unwind with a simulated crash at any armed site.
    fn run(&self, engine: &ShardedEngine, case: &SweepCase) {
        engine.begin_run_all(1, u64::MAX);
        let mut cx = CrossShardTx::new(engine, 0);
        // Per-shard account tables, rooted so recovery can find them.
        let mut tables = Vec::with_capacity(self.shards);
        for s in 0..self.shards {
            let n = self.accounts_on(s) as usize;
            let th = cx.thread_mut(s);
            let heap = Arc::clone(th.heap());
            let table = heap.alloc(th.session_mut(), n.max(1));
            cx.run_single(s, |tx| {
                for i in 0..n as u64 {
                    tx.write_at(table, i, self.initial)?;
                }
                Ok(())
            });
            let th = cx.thread_mut(s);
            let heap = Arc::clone(th.heap());
            heap.set_root(th.session_mut(), 0, table);
            tables.push(table);
        }
        for (from, to, amt) in self.plan(case.seed) {
            let (sf, of) = self.home(from);
            let (st, ot) = self.home(to);
            // Leak a scratch block on the debit shard: a crash leaves it
            // unreachable and that shard's restart GC must reclaim it.
            {
                let th = cx.thread_mut(sf);
                let heap = Arc::clone(th.heap());
                let scratch = heap.alloc(th.session_mut(), 3);
                th.session_mut().store(scratch, 0xC0FFEE);
            }
            cx.run(|tx| {
                let f = tx.read_at(sf, tables[sf], of)?;
                let t = tx.read_at(st, tables[st], ot)?;
                if from != to && f >= amt {
                    tx.write_at(sf, tables[sf], of, f - amt)?;
                    tx.write_at(st, tables[st], ot, t + amt)?;
                }
                Ok(())
            });
        }
    }

    /// Workload invariants on the recovered engine.
    fn check(
        &self,
        engine: &ShardedEngine,
        reports: &[ReopenReports],
        case: &SweepCase,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        let mut roots = Vec::with_capacity(self.shards);
        for (s, report) in reports.iter().enumerate().take(self.shards) {
            let root = engine.heap(s).root_raw(0);
            // Same reasoning as the single-shard bank: once shard s's
            // root is durable its (committed) init transaction is
            // recoverable, so exactly the table block is live there.
            let expected_live = if root.is_null() { 0 } else { 1 };
            if report.gc.live_blocks != expected_live {
                violations.push(format!(
                    "shard {s}: GC kept {} live blocks, expected {expected_live}",
                    report.gc.live_blocks
                ));
            }
            roots.push(root);
        }
        // Shards are set up in order, so transfers only ever ran if every
        // root is durable; a null root anywhere means we crashed during
        // setup and there is no committed-prefix state to compare yet.
        if roots.iter().any(|r| r.is_null()) {
            return violations;
        }
        let mut state = vec![0u64; self.accounts as usize];
        for a in 0..self.accounts {
            let (s, off) = self.home(a);
            let pool = engine.machine(s).pool(roots[s].pool());
            state[a as usize] = pool.raw_load(roots[s].word() + off);
        }
        if !self.prefix_states(case.seed).contains(&state) {
            let total: u64 = state.iter().sum();
            violations.push(format!(
                "recovered accounts {state:?} (sum {total}) match no committed prefix \
                 (expected sum {}): a cross-shard transfer tore",
                self.accounts * self.initial
            ));
        }
        violations
    }
}

/// Per-shard adversary seed for survivor shards, matching the
/// [`pmem_sim::MachineSet::crash_all`] derivation so every shard's image
/// stays an independent pure function of the case seed and site.
fn shard_crash_seed(crash_seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        crash_seed
    } else {
        crash_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64)
    }
}

/// Which shard's machine a fired crash image belongs to, identified by
/// its `shard-heap-<i>` pool.
fn crashed_shard(image: &CrashImage) -> usize {
    let prefix = format!("{SHARD_HEAP_PREFIX}-");
    image
        .pools
        .iter()
        .find_map(|p| p.name.strip_prefix(&prefix).and_then(|s| s.parse().ok()))
        .expect("fired crash image contains no shard heap pool")
}

fn digest_machines(machines: &[Arc<Machine>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for machine in machines {
        for pool in machine.pools() {
            for w in 0..pool.len_words() as u64 {
                h = (h ^ pool.raw_load(w)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

fn snapshot_machines(machines: &[Arc<Machine>]) -> Vec<Vec<Vec<u64>>> {
    machines
        .iter()
        .map(|m| {
            m.pools()
                .iter()
                .map(|p| (0..p.len_words() as u64).map(|w| p.raw_load(w)).collect())
                .collect()
        })
        .collect()
}

/// Dry-run the sharded workload, counting every crash site across *all*
/// shard machines with one shared injector (the global site numbering is
/// what lets one index name an event on any shard).
pub fn count_sites_sharded(workload: &ShardedTransfers, case: &SweepCase) -> u64 {
    let engine = workload.build(case);
    let injector = CrashInjector::count_only();
    for s in 0..workload.shards {
        engine.machine(s).arm_injector(Arc::clone(&injector));
    }
    workload.run(&engine, case);
    for s in 0..workload.shards {
        engine.machine(s).disarm_injector();
    }
    injector.sites_counted()
}

/// Run the sharded workload with a crash armed at global `site`, image
/// every shard (the firing shard synchronously at the site, survivors
/// under per-shard derived adversary seeds), reopen the whole engine —
/// per-shard recovery followed by the cross-shard resolution pass — and
/// check every invariant:
///
/// * recovery + resolution are **idempotent** (a second pass finds no
///   work and changes no durable word on any shard);
/// * the reopened state is **worker-count independent** (recovery at 1
///   and 4 workers lands on bit-identical cross-engine digests);
/// * every shard's heap re-attaches and validates, restart GC reclaims
///   exactly the leaked scratch blocks;
/// * the recovered global account vector matches a committed prefix —
///   cross-shard transfers are all-or-nothing under every crash site.
pub fn run_site_sharded(
    workload: &ShardedTransfers,
    case: &SweepCase,
    site: u64,
    opts: RecoverOptions,
) -> SiteResult {
    silence_simulated_crash_panics();
    let engine = workload.build(case);
    let crash_seed = derive_crash_seed(case.seed, site);
    let injector = CrashInjector::at_site(site, case.policy, crash_seed);
    for s in 0..workload.shards {
        engine.machine(s).arm_injector(Arc::clone(&injector));
    }
    let completed = catch_simulated_crash(|| workload.run(&engine, case)).is_ok();
    for s in 0..workload.shards {
        engine.machine(s).disarm_injector();
    }
    let (images, fired) = if completed {
        let images = (0..workload.shards)
            .map(|s| {
                engine
                    .machine(s)
                    .crash_with(shard_crash_seed(crash_seed, s), case.policy)
            })
            .collect::<Vec<_>>();
        (images, None)
    } else {
        let f = injector
            .take_outcome()
            .expect("simulated crash unwound without a captured image");
        let hit = crashed_shard(&f.image);
        let fired = Some((f.site, f.kind));
        let mut images = Vec::with_capacity(workload.shards);
        for s in 0..workload.shards {
            if s == hit {
                images.push(f.image.clone());
            } else {
                images.push(
                    engine
                        .machine(s)
                        .crash_with(shard_crash_seed(crash_seed, s), case.policy),
                );
            }
        }
        (images, fired)
    };
    drop(engine);

    let machine_cfg = MachineConfig::functional(case.domain);
    let ptm_cfg = workload.ptm_config(case);
    let (recovered, reports) =
        ShardedEngine::reopen_with(&images, machine_cfg.clone(), ptm_cfg.clone(), opts);
    let mut violations = Vec::new();

    // Generic invariant: recovery + resolution are idempotent.
    let machines: Vec<Arc<Machine>> = recovered.machine_set().machines().to_vec();
    let before = snapshot_machines(&machines);
    for machine in &machines {
        let second = recover_with_options(machine, opts);
        if second.redo_replayed + second.undo_rolled_back + second.htm_replayed != 0 {
            violations.push(format!("second recovery pass still found work: {second:?}"));
        }
        if second.prepared_skipped != 0 {
            violations.push(format!(
                "second recovery pass still sees {} prepared logs",
                second.prepared_skipped
            ));
        }
    }
    let second_res = resolve_in_doubt(&machines);
    for r in &second_res {
        if r.indoubt_resolved_commit + r.indoubt_resolved_abort != 0 {
            violations.push(format!("second resolution pass still decided logs: {r:?}"));
        }
    }
    if snapshot_machines(&machines) != before {
        violations.push("second recovery+resolution pass changed durable state".to_string());
    }

    // Generic invariant: worker-count independence — the same images
    // reopened at a different recovery worker count land on an
    // identical cross-engine digest (and, timing aside, reports).
    {
        let alt_workers = if opts.workers <= 1 { 4 } else { 1 };
        let (alt, alt_reports) = ShardedEngine::reopen_with(
            &images,
            machine_cfg.clone(),
            ptm_cfg.clone(),
            RecoverOptions {
                workers: alt_workers,
                ..opts
            },
        );
        let alt_machines: Vec<Arc<Machine>> = alt.machine_set().machines().to_vec();
        if digest_machines(&alt_machines) != digest_machines(&machines) {
            violations.push(format!(
                "sharded recovery with {alt_workers} workers diverged from {} workers \
                 (post-recovery digests differ)",
                opts.workers.max(1)
            ));
        }
        for (s, (a, b)) in reports.iter().zip(alt_reports.iter()).enumerate() {
            if a.recovery.without_timing() != b.recovery.without_timing() {
                violations.push(format!(
                    "shard {s} recovery report depends on worker count: {:?} vs {:?}",
                    a.recovery, b.recovery
                ));
            }
        }
    }

    // Per-shard heap health, then the workload's own invariants.
    for s in 0..workload.shards {
        if let Err(e) = recovered.heap(s).validate() {
            violations.push(format!("shard {s}: heap inconsistent after GC: {e}"));
        }
    }
    violations.extend(workload.check(&recovered, &reports, case));

    let mut merged = ReopenReports::default();
    for r in &reports {
        merged.merge(r);
    }
    SiteResult {
        fired,
        recovery: merged.recovery,
        gc: Some(merged.gc),
        state_digest: digest_machines(&machines),
        violations,
    }
}

/// Sweep one case of the sharded grid: count global sites, crash at
/// every site (strided above `opts.max_sites_per_case`) plus once at
/// end-of-run.
pub fn sweep_case_sharded(
    workload: &ShardedTransfers,
    case: &SweepCase,
    opts: SweepOptions,
) -> CaseResult {
    let total_sites = count_sites_sharded(workload, case);
    let span = total_sites + 1;
    let stride = match opts.max_sites_per_case {
        Some(max) if max > 0 && span > max => span.div_ceil(max),
        _ => 1,
    };
    let mut violations = Vec::new();
    let mut sites_run = 0;
    let mut site = 0;
    while site < span {
        let result = run_site_sharded(workload, case, site, opts.recover);
        sites_run += 1;
        violations.extend(result.violations.into_iter().map(|detail| Violation {
            workload: format!("xshard-{}", workload.shards),
            case: *case,
            site,
            fired: result.fired,
            detail,
        }));
        site += stride;
    }
    CaseResult {
        case: *case,
        total_sites,
        sites_run,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bank() -> BankTransfers {
        BankTransfers {
            accounts: 4,
            initial: 64,
            transfers: 3,
            ..BankTransfers::default()
        }
    }

    fn case(algo: Algo, policy: AdversaryPolicy) -> SweepCase {
        SweepCase {
            algo,
            domain: DurabilityDomain::Adr,
            policy,
            seed: 42,
        }
    }

    #[test]
    fn site_counting_is_deterministic_and_nonzero() {
        let bank = tiny_bank();
        let c = case(Algo::RedoLazy, AdversaryPolicy::PerWord);
        let a = count_sites(&bank, &c);
        let b = count_sites(&bank, &c);
        assert_eq!(a, b);
        assert!(a > 0, "a transactional workload must emit crash sites");
    }

    #[test]
    fn replaying_a_site_reproduces_the_exact_state() {
        let bank = tiny_bank();
        let c = case(Algo::UndoEager, AdversaryPolicy::PerWord);
        let total = count_sites(&bank, &c);
        let site = total / 2;
        let a = run_site(&bank, &c, site, RecoverOptions::default());
        let b = run_site(&bank, &c, site, RecoverOptions::default());
        assert_eq!(a.fired, b.fired);
        assert_eq!(a.state_digest, b.state_digest, "replay must be bit-exact");
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn bounded_sweep_of_every_algorithm_is_clean() {
        let bank = tiny_bank();
        let opts = SweepOptions {
            max_sites_per_case: Some(24),
            ..SweepOptions::default()
        };
        for algo in Algo::ALL {
            let report = sweep_case(&bank, &case(algo, AdversaryPolicy::PerWord), opts);
            assert!(report.sites_run > 0 && report.sites_run <= 25);
            let msgs: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
            assert!(report.violations.is_empty(), "{msgs:?}");
        }
    }

    #[test]
    fn end_of_run_site_recovers_the_final_state() {
        let bank = tiny_bank();
        let c = case(Algo::RedoLazy, AdversaryPolicy::PerWord);
        let total = count_sites(&bank, &c);
        let r = run_site(&bank, &c, total, RecoverOptions::default());
        assert!(r.fired.is_none(), "site == total must complete the run");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    /// The sweep's teeth: deliberately broken recovery must produce a
    /// violation with a reproducer that replays deterministically.
    #[test]
    fn broken_recovery_fails_the_sweep_with_a_replayable_reproducer() {
        let bank = tiny_bank();
        // AllNew persists every speculative in-place write, so skipping
        // undo rollback is guaranteed to leave torn transfers behind.
        let c = case(Algo::UndoEager, AdversaryPolicy::AllNew);
        let opts = SweepOptions {
            max_sites_per_case: Some(64),
            recover: RecoverOptions {
                skip_undo_rollback: true,
                ..RecoverOptions::default()
            },
        };
        let report = sweep_case(&bank, &c, opts);
        let v = report
            .violations
            .first()
            .expect("skipping undo rollback must violate an invariant");
        let line = v.reproducer();
        assert!(
            line.contains("workload=bank")
                && line.contains("algo=undo")
                && line.contains("policy=all-new"),
            "{line}"
        );
        // Replay: the same armed site under the same broken recovery
        // reproduces the same violation.
        let replay = run_site(&bank, &c, v.site, opts.recover);
        assert!(replay.violations.contains(&v.detail), "{line}");
        // And correct recovery at that site is clean.
        let fixed = run_site(&bank, &c, v.site, RecoverOptions::default());
        assert!(fixed.violations.is_empty(), "{:?}", fixed.violations);
    }

    fn tiny_group_bank() -> GroupWindowBank {
        GroupWindowBank {
            accounts_per_thread: 4,
            initial: 64,
            transfers_per_thread: 3,
        }
    }

    /// The two-thread group-commit workload really exercises the join
    /// path: its fence stream contains `FenceJoin` events (transactions
    /// riding another transaction's fence), so the sweep below genuinely
    /// enumerates crash sites inside open windows.
    #[test]
    fn group_window_bank_joins_fences() {
        let bank = tiny_group_bank();
        let c = case(Algo::RedoLazy, AdversaryPolicy::PerWord);
        let machine = Machine::new(MachineConfig::functional(c.domain));
        let sink = trace::TraceSink::new(1 << 14);
        machine.attach_tracer(Arc::clone(&sink));
        bank.run(&machine, &c);
        machine.detach_tracer();
        let joins = sink
            .merged()
            .iter()
            .filter(|e| e.kind == trace::EventKind::FenceJoin)
            .count();
        assert!(joins > 0, "no transaction ever joined a fence window");
    }

    /// The tentpole's torn-window acceptance bar: crash sites inside an
    /// open group-commit window — for every algorithm across all four
    /// live durability domains — recover to a committed prefix on both
    /// participating threads.
    #[test]
    fn group_window_sweep_is_clean_across_algos_and_domains() {
        let bank = tiny_group_bank();
        let opts = SweepOptions {
            max_sites_per_case: Some(16),
            ..SweepOptions::default()
        };
        for algo in Algo::ALL {
            for domain in [
                DurabilityDomain::Adr,
                DurabilityDomain::Eadr,
                DurabilityDomain::Pdram,
                DurabilityDomain::PdramLite,
            ] {
                let c = SweepCase {
                    algo,
                    domain,
                    policy: AdversaryPolicy::PerWord,
                    seed: 42,
                };
                let report = sweep_case(&bank, &c, opts);
                assert!(report.sites_run > 0);
                let msgs: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
                assert!(
                    report.violations.is_empty(),
                    "{algo:?}/{domain:?}: {msgs:?}"
                );
            }
        }
    }

    #[test]
    fn group_window_replay_is_deterministic() {
        let bank = tiny_group_bank();
        let c = case(Algo::CowShadow, AdversaryPolicy::PerWord);
        let total = count_sites(&bank, &c);
        assert!(total > 0);
        let site = total / 3;
        let a = run_site(&bank, &c, site, RecoverOptions::default());
        let b = run_site(&bank, &c, site, RecoverOptions::default());
        assert_eq!(a.fired, b.fired);
        assert_eq!(a.state_digest, b.state_digest);
    }

    /// Satellite acceptance: the sweep run at recovery workers 1 and 4
    /// lands on bit-identical post-recovery digests at every probed
    /// site (the two-thread workload has two logs, so 4 workers really
    /// does split the repair work).
    #[test]
    fn sweep_with_parallel_recovery_matches_serial_digests() {
        let bank = tiny_group_bank();
        let c = case(Algo::RedoLazy, AdversaryPolicy::PerWord);
        let total = count_sites(&bank, &c);
        assert!(total > 2);
        for site in [total / 4, total / 2, total - 1] {
            let serial = run_site(&bank, &c, site, RecoverOptions::default());
            let parallel = run_site(
                &bank,
                &c,
                site,
                RecoverOptions {
                    workers: 4,
                    ..RecoverOptions::default()
                },
            );
            assert_eq!(serial.fired, parallel.fired, "site {site}");
            assert_eq!(
                serial.state_digest, parallel.state_digest,
                "site {site}: serial and parallel recovery must converge bit-identically"
            );
            assert!(parallel.violations.is_empty(), "{:?}", parallel.violations);
        }
    }

    /// A bounded sweep of every algorithm with recovery (and GC) at 4
    /// workers stays clean — the in-sweep worker-independence invariant
    /// re-checks each site against a serial pass.
    #[test]
    fn bounded_sweep_with_four_recovery_workers_is_clean() {
        let bank = tiny_group_bank();
        let opts = SweepOptions {
            max_sites_per_case: Some(12),
            recover: RecoverOptions {
                workers: 4,
                ..RecoverOptions::default()
            },
        };
        for algo in Algo::ALL {
            let report = sweep_case(&bank, &case(algo, AdversaryPolicy::PerWord), opts);
            assert!(report.sites_run > 0);
            let msgs: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
            assert!(report.violations.is_empty(), "{algo:?}: {msgs:?}");
        }
    }

    #[test]
    fn default_grid_covers_algos_domains_and_policies() {
        let cases = default_cases(7);
        assert_eq!(
            cases.len(),
            Algo::ALL.len() * 4 * AdversaryPolicy::SWEEP.len()
        );
        assert!(cases.iter().all(|c| c.seed == 7));
    }

    fn tiny_xshard() -> ShardedTransfers {
        ShardedTransfers {
            shards: 2,
            accounts: 6,
            initial: 64,
            transfers: 3,
        }
    }

    #[test]
    fn sharded_site_counting_is_deterministic_and_nonzero() {
        let w = tiny_xshard();
        let c = case(Algo::RedoLazy, AdversaryPolicy::PerWord);
        let a = count_sites_sharded(&w, &c);
        let b = count_sites_sharded(&w, &c);
        assert_eq!(a, b);
        assert!(a > 0, "a cross-shard workload must emit crash sites");
        // The plan for this seed must actually cross shards, or the
        // sweep below would never exercise the 2PC windows.
        assert!(
            w.plan(c.seed)
                .iter()
                .any(|&(f, t, _)| w.home(f).0 != w.home(t).0),
            "seed {} produces no cross-shard transfer",
            c.seed
        );
    }

    #[test]
    fn sharded_replay_of_a_site_reproduces_the_exact_state() {
        let w = tiny_xshard();
        let c = case(Algo::UndoEager, AdversaryPolicy::PerWord);
        let total = count_sites_sharded(&w, &c);
        let site = total / 2;
        let a = run_site_sharded(&w, &c, site, RecoverOptions::default());
        let b = run_site_sharded(&w, &c, site, RecoverOptions::default());
        assert_eq!(a.fired, b.fired);
        assert_eq!(a.state_digest, b.state_digest, "replay must be bit-exact");
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn sharded_end_of_run_site_recovers_the_final_state() {
        let w = tiny_xshard();
        let c = case(Algo::RedoLazy, AdversaryPolicy::PerWord);
        let total = count_sites_sharded(&w, &c);
        let r = run_site_sharded(&w, &c, total, RecoverOptions::default());
        assert!(r.fired.is_none(), "site == total must complete the run");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    /// The tentpole acceptance bar: crash sites across the whole 2PC
    /// window — prepares durable on a subset of participants, torn
    /// coordinator record, decision durable but participant retirement
    /// unfinished — recover all-or-nothing for every logging policy
    /// across all four live durability domains.
    #[test]
    fn sharded_sweep_is_clean_across_algos_and_domains() {
        let w = tiny_xshard();
        let opts = SweepOptions {
            max_sites_per_case: Some(10),
            ..SweepOptions::default()
        };
        for algo in [Algo::RedoLazy, Algo::UndoEager, Algo::CowShadow] {
            for domain in [
                DurabilityDomain::Adr,
                DurabilityDomain::Eadr,
                DurabilityDomain::Pdram,
                DurabilityDomain::PdramLite,
            ] {
                let c = SweepCase {
                    algo,
                    domain,
                    policy: AdversaryPolicy::PerWord,
                    seed: 42,
                };
                let report = sweep_case_sharded(&w, &c, opts);
                assert!(report.sites_run > 0);
                let msgs: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
                assert!(
                    report.violations.is_empty(),
                    "{algo:?}/{domain:?}: {msgs:?}"
                );
            }
        }
    }

    /// Every sweep adversary policy (including the extreme all-old /
    /// all-new images and line-granular tearing) leaves cross-shard
    /// transfers atomic.
    #[test]
    fn sharded_sweep_is_clean_across_adversary_policies() {
        let w = tiny_xshard();
        let opts = SweepOptions {
            max_sites_per_case: Some(8),
            ..SweepOptions::default()
        };
        for policy in AdversaryPolicy::SWEEP {
            let c = SweepCase {
                algo: Algo::RedoLazy,
                domain: DurabilityDomain::Adr,
                policy,
                seed: 42,
            };
            let report = sweep_case_sharded(&w, &c, opts);
            assert!(report.sites_run > 0);
            let msgs: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
            assert!(report.violations.is_empty(), "{policy}: {msgs:?}");
        }
    }

    /// The sweep genuinely reaches the in-doubt window: somewhere in the
    /// tail of the run (the last transfer's commit sequence) there is a
    /// site whose recovery finds PREPARED participant logs and resolves
    /// them from the coordinator record (or its absence).
    #[test]
    fn sharded_sweep_exercises_in_doubt_resolution() {
        let w = tiny_xshard();
        // Deterministically pick a seed whose *last* transfer is
        // cross-shard and actually moves money, so the tail of the run
        // is a 2PC commit sequence.
        let seed = (0..100u64)
            .find(|&s| {
                let crossing = w
                    .plan(s)
                    .last()
                    .map(|&(f, t, _)| f != t && w.home(f).0 != w.home(t).0)
                    .unwrap_or(false);
                let states = w.prefix_states(s);
                crossing && states[states.len() - 1] != states[states.len() - 2]
            })
            .expect("some small seed must end on an effective cross-shard transfer");
        let c = SweepCase {
            algo: Algo::RedoLazy,
            domain: DurabilityDomain::Adr,
            policy: AdversaryPolicy::AllOld,
            seed,
        };
        let total = count_sites_sharded(&w, &c);
        let mut resolved = 0usize;
        for site in total.saturating_sub(48)..total {
            let r = run_site_sharded(&w, &c, site, RecoverOptions::default());
            assert!(r.violations.is_empty(), "site {site}: {:?}", r.violations);
            resolved += r.recovery.indoubt_resolved_commit + r.recovery.indoubt_resolved_abort;
        }
        assert!(
            resolved > 0,
            "no tail site left a log in doubt — the sweep is missing the 2PC window"
        );
    }

    #[test]
    fn names_roundtrip() {
        for algo in Algo::ALL {
            assert_eq!(parse_algo(algo_name(algo)), Some(algo));
        }
        for domain in [
            DurabilityDomain::NoPowerReserve,
            DurabilityDomain::Adr,
            DurabilityDomain::Eadr,
            DurabilityDomain::Pdram,
            DurabilityDomain::PdramLite,
        ] {
            assert_eq!(parse_domain(domain_name(domain)), Some(domain));
        }
    }
}
